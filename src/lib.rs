//! # asim2 — Computer Architecture Simulation Using a Register Transfer Language
//!
//! A complete Rust reproduction of **ASIM II** (Lester Bartel, Kansas
//! State University, 1986): a register-transfer-language toolkit whose
//! three primitives — ALU, selector, memory — describe "nearly any piece
//! of digital electronic equipment", together with the interpreter it was
//! benchmarked against, an optimizing compiler with three backends, two
//! fully worked reference machines, and hardware-construction support.
//!
//! This crate is a facade: it re-exports the workspace and hosts the
//! examples and cross-crate integration tests. The pieces:
//!
//! | crate | role |
//! |-------|------|
//! | [`lang`] | lexer, macros, parser, AST, pretty-printer |
//! | [`core`] | word semantics, elaboration, scheduling, simulation state |
//! | [`interp`] | ASIM — the table-driven interpreter baseline |
//! | [`compile`] | ASIM II — IR, optimizer, bytecode VM, Rust & Pascal codegen |
//! | [`machines`] | stack machine + sieve, tiny computer, example specs, scenario registry |
//! | [`hw`] | netlists, parts inventories, DOT export |
//! | [`cosim`] | differential co-simulation (lockstep + divergence reports) and scenario fuzzing |
//! | [`campaign`] | parallel, resumable fuzz/cosim campaigns with a persistent divergence corpus |
//! | [`dist`] | sharded campaigns across machines: shard plans, digest-lockstep lanes, corpus merge |
//! | [`fleet`] | live campaign control plane: TCP controller, networked workers, lease work-stealing |
//!
//! ```
//! use asim2::prelude::*;
//!
//! let design = Design::from_source(
//!     "# quickstart counter\n= 4\ncount* next .\n\
//!      M count 0 next 1 1\n\
//!      A next 4 count 1 .",
//! )?;
//! let mut sim = Interpreter::new(&design);
//! let trace = run_captured(&mut sim, 3).expect("counter has no runtime errors");
//! assert!(trace.contains("Cycle   2 count= 2"));
//! # Ok::<(), rtl_core::LoadError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rtl_campaign as campaign;
pub use rtl_compile as compile;
pub use rtl_core as core;
pub use rtl_cosim as cosim;
pub use rtl_dist as dist;
pub use rtl_fleet as fleet;
pub use rtl_hw as hw;
pub use rtl_interp as interp;
pub use rtl_lang as lang;
pub use rtl_machines as machines;

/// The most commonly used items, one `use` away.
pub mod prelude {
    pub use rtl_compile::{emit_pascal, emit_rust, EmitOptions, OptOptions, Vm};
    pub use rtl_core::{
        run_captured, Design, Engine, EngineOptions, EngineRegistry, HaltKind, InputSource,
        NoInput, RunOutcome, ScriptedInput, Session, SimError, StopReason, Until, Word,
    };
    pub use rtl_cosim::{registry, CosimOptions, CosimOutcome, EngineKind, Lockstep};
    pub use rtl_interp::Interpreter;
    pub use rtl_lang::{parse, pretty, Spec};
}
