//! Grammar-level integration tests: thesis-style source fragments,
//! macro interactions, and Appendix A corner cases.

use rtl_lang::{parse, ComponentKind, ParseErrorKind, Part};

/// The Appendix F header defines instruction opcodes as macros and sums
/// them with addresses in memory initializers: `~LD+30` must expand to
/// `256+30` and evaluate to 286.
#[test]
fn appendix_f_style_opcode_macros() {
    let src = "\
# tiny computer specification 1986 June 12
~LD 256 ~ST 384 ~BB 512 ~BR 640 ~SU 768
mem .
M mem 0 0 0 -8 ~LD+30 ~SU+31 ~ST+30 ~BB+7 ~BR+0 ~SU+32 0 5
.";
    let spec = parse(src).unwrap_or_else(|e| panic!("{e}"));
    match &spec.components[0].kind {
        ComponentKind::Memory(m) => {
            assert_eq!(
                m.init.as_deref(),
                Some(&[286, 799, 414, 519, 640, 800, 0, 5][..])
            );
        }
        other => panic!("{other:?}"),
    }
}

/// Appendix D uses macros inside bit subfields (`zero.0.~k` style) and in
/// concatenations (`addr.~n,rom.~w`).
#[test]
fn appendix_d_style_subfield_macros() {
    let src = "\
# macro subfields
~k 5 ~n 12 ~w 8
x rom addr .
A x 2 addr.0.~k 0
A rom 2 addr.~n,one.~w 0
M addr 0 0 0 1
M one 0 0 0 1
.";
    let spec = parse(src).unwrap_or_else(|e| panic!("{e}"));
    match &spec.components[0].kind {
        ComponentKind::Alu(a) => {
            assert_eq!(a.left.parts, vec![Part::field("addr", 0, 5)]);
        }
        other => panic!("{other:?}"),
    }
    match &spec.components[1].kind {
        ComponentKind::Alu(a) => {
            assert_eq!(
                a.left.parts,
                vec![Part::bit("addr", 12), Part::bit("one", 8)]
            );
        }
        other => panic!("{other:?}"),
    }
}

/// Macros chain at definition time: `~dd` built from `~d`.
#[test]
fn chained_macro_definitions() {
    let src = "# m\n~d 5\n~dd ~d+2\nx .\nA x 2 ~dd 0 .";
    let spec = parse(src).unwrap();
    match &spec.components[0].kind {
        ComponentKind::Alu(a) => assert_eq!(a.left.parts, vec![Part::constant(7)]),
        other => panic!("{other:?}"),
    }
}

/// A `~name` after the macro section is no longer a definition; it is
/// substituted (or rejected when undefined).
#[test]
fn macro_definitions_end_at_first_non_tilde_token() {
    // `~late 9` appears after `=`: `~late` is undefined at use.
    let err = parse("# m\n= 3\n~late 9\nx .\nA x 2 ~late 0 .").unwrap_err();
    assert_eq!(err.kind, ParseErrorKind::UndefinedMacro("late".into()));
}

/// The cycle count accepts every number radix.
#[test]
fn cycle_count_radixes() {
    for (text, value) in [
        ("= 5545", 5545),
        ("= $10", 16),
        ("= %101", 5),
        ("= ^10", 1024),
    ] {
        let spec = parse(&format!("# m\n{text}\n.\n.")).unwrap();
        assert_eq!(spec.cycles, Some(value), "{text}");
    }
}

/// Comments may interrupt any whitespace position, including between a
/// component letter and its name — Appendix D does this constantly.
#[test]
fn comments_between_every_token() {
    let src = "# c\n{names} count {traced} next .\n\
               M {the register} count {addr} 0 {data} next {op} 1 {cells} 1\n\
               A {the adder} next 4 count 1 {increment}\n.";
    let spec = parse(src).unwrap();
    assert_eq!(spec.components.len(), 2);
}

/// The original splits a trailing period off a token; interior periods
/// stay (they are subfields).
#[test]
fn trailing_period_vs_subfield_periods() {
    let spec = parse("# p\nx m .\nA x 2 m.0.3 0\nM m 0 0 0 1 .").unwrap();
    assert_eq!(spec.components.len(), 2);
    // Glued terminator after an expression token.
    let spec = parse("# p\nx m .\nM m 0 0 0 1\nA x 2 m.0.3 0 .").unwrap();
    assert_eq!(spec.components.len(), 2);
}

/// Selector case lists terminate at the next component letter even with
/// single-character case values in play.
#[test]
fn selector_termination_ambiguity() {
    // Values `a` and `b` are fine; a case literally named `A` would end
    // the list — the language's documented ambiguity.
    let spec = parse("# s\nsel a b .\nS sel a.0 a b\nA a 2 1 0\nA b 2 2 0 .").unwrap();
    match &spec.components[0].kind {
        ComponentKind::Selector(s) => assert_eq!(s.cases.len(), 2),
        other => panic!("{other:?}"),
    }
}

/// Whitespace variety: tabs, CRLF, and runs of blank lines.
#[test]
fn whitespace_forms() {
    let src = "# w\r\n\tcount\tnext .\r\n\r\nM count 0 next 1 1\r\nA next 4 count 1 .\r\n";
    let spec = parse(src).unwrap();
    assert_eq!(spec.components.len(), 2);
}

/// Every number radix works inside expressions and memory counts.
#[test]
fn radix_zoo() {
    let src = "# r\nx m .\nA x 8 %1111,$F.4 #1010\nM m 0 0 0 ^3 .";
    let spec = parse(src).unwrap();
    match &spec.components[1].kind {
        ComponentKind::Memory(m) => assert_eq!(m.size, 8),
        other => panic!("{other:?}"),
    }
    match &spec.components[0].kind {
        ComponentKind::Alu(a) => {
            assert_eq!(a.left.parts, vec![Part::constant(15), Part::sized(15, 4)]);
            assert_eq!(a.right.parts, vec![Part::bits(10, 4)]);
        }
        other => panic!("{other:?}"),
    }
}

/// The documented 500-component limit of the original is *not* enforced
/// (divergence D2): a 600-component spec parses and elaborates.
#[test]
fn no_component_limit() {
    let mut names = String::new();
    let mut comps = String::new();
    for i in 0..600 {
        names.push_str(&format!("c{i} "));
        comps.push_str(&format!("A c{i} 2 {i} 0\n"));
    }
    let src = format!("# big\n{names}.\n{comps}.");
    let spec = parse(&src).unwrap();
    assert_eq!(spec.components.len(), 600);
    // (Elaboration of over-limit designs is covered by the workspace
    // integration tests; rtl-lang cannot depend on rtl-core.)
}
