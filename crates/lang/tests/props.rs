//! Property tests over the syntax layer alone: numbers, expressions, and
//! the pretty-printer round trip.

use proptest::prelude::*;
use rtl_lang::{parse_expr, parse_number, Part, Span, WORD_MASK};

proptest! {
    /// Every radix round-trips any word value.
    #[test]
    fn numbers_round_trip_in_every_radix(v in 0i64..=WORD_MASK) {
        prop_assert_eq!(parse_number(&v.to_string()), Ok(v));
        prop_assert_eq!(parse_number(&format!("${v:X}")), Ok(v));
        prop_assert_eq!(parse_number(&format!("${v:x}")), Ok(v), "lowercase hex");
        prop_assert_eq!(parse_number(&format!("%{v:b}")), Ok(v));
    }

    /// Sums evaluate like addition for in-range pairs.
    #[test]
    fn sums_add(a in 0i64..=(WORD_MASK / 2), b in 0i64..=(WORD_MASK / 2)) {
        prop_assert_eq!(parse_number(&format!("{a}+{b}")), Ok(a + b));
        prop_assert_eq!(parse_number(&format!("{a}+%{b:b}+$0")), Ok(a + b));
    }

    /// Powers of two match shifts.
    #[test]
    fn powers_of_two(n in 0i64..=30) {
        prop_assert_eq!(parse_number(&format!("^{n}")), Ok(1 << n));
    }

    /// A part rendered by Display re-parses to itself.
    #[test]
    fn parts_round_trip_through_display(
        value in 0i64..=WORD_MASK,
        width in 1u8..=31,
        from in 0u8..=30,
        extra in 0u8..=10,
    ) {
        let to = from.saturating_add(extra).min(30);
        let cases = vec![
            Part::constant(value),
            Part::sized(value & ((1 << width) - 1), width),
            Part::bits(value & ((1i64 << width.min(31)) - 1), width),
            Part::reference("x"),
            Part::bit("x", from),
            Part::field("x", from, to),
        ];
        for part in cases {
            let text = part.to_string();
            let parsed = parse_expr(&text, Span::default())
                .unwrap_or_else(|e| panic!("{text:?}: {e}"));
            prop_assert_eq!(parsed.parts, vec![part], "{}", text);
        }
    }

    /// Concatenations of sized parts re-parse, preserving order and the
    /// total width accounting.
    #[test]
    fn sized_concatenations_round_trip(widths in proptest::collection::vec(1u8..=6, 1..5)) {
        if widths.iter().map(|&w| u32::from(w)).sum::<u32>() > 31 {
            return Ok(());
        }
        let parts: Vec<Part> = widths
            .iter()
            .enumerate()
            .map(|(i, &w)| Part::sized((i as i64) & ((1 << w) - 1), w))
            .collect();
        let text = parts
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let parsed = parse_expr(&text, Span::default()).unwrap();
        prop_assert_eq!(parsed.parts, parts);
    }

    /// Malformed numeric garbage never panics — it errors.
    #[test]
    fn junk_never_panics(s in "[0-9a-zA-Z$%^#+.,]{0,12}") {
        let _ = parse_number(&s);
        let _ = parse_expr(&s, Span::default());
    }
}
