//! Parse-time diagnostics.
//!
//! Error messages deliberately mirror the wording of the original ASIM II
//! compiler (Appendix C of the thesis) — e.g. `Error. Malformed number %102.`
//! — with a source location appended.

use crate::span::Span;
use std::fmt;

/// Everything that can go wrong while turning source text into a
/// [`Spec`](crate::ast::Spec).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// The first line of the file did not start with `#`.
    MissingComment,
    /// A `{ ... }` comment was still open at end of file.
    UnterminatedComment,
    /// A number did not follow the `decint`/`$hex`/`%bin`/`^pow` grammar.
    MalformedNumber(String),
    /// A number exceeded the 31-bit word range (`2^31 - 1`).
    NumberTooLarge(String),
    /// A `~name` reference had no definition.
    UndefinedMacro(String),
    /// A name contained characters other than letters and digits.
    InvalidName(String),
    /// Expected `A`, `S` or `M` but found something else.
    ExpectedComponent(String),
    /// The token stream ended while the parser still needed input; the
    /// string describes what was expected.
    UnexpectedEnd(String),
    /// An expression token could not be parsed; the string is the token.
    MalformedExpression(String),
    /// A bit subfield was out of range or inverted.
    BadSubfield {
        /// The offending expression text.
        text: String,
        /// Why the subfield was rejected.
        reason: &'static str,
    },
    /// A selector had no case values.
    EmptySelector(String),
    /// A memory declared zero cells.
    BadMemoryCount {
        /// Memory name.
        name: String,
        /// The declared count.
        count: i64,
    },
    /// A `#` bit string contained characters other than `0`/`1`, or had a
    /// length outside `1..=31`.
    MalformedBitString(String),
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ParseErrorKind::*;
        match self {
            MissingComment => write!(f, "Error. Comment required."),
            UnterminatedComment => write!(f, "Error. Comment opened with '{{' never closed."),
            MalformedNumber(s) => write!(f, "Error. Malformed number {s}."),
            NumberTooLarge(s) => write!(f, "Error. Number {s} exceeds 31 bits."),
            UndefinedMacro(s) => write!(f, "Error. Macro <~{s}> not defined."),
            InvalidName(s) => {
                write!(
                    f,
                    "Error. Component name {s} invalid, use letters and numbers only."
                )
            }
            ExpectedComponent(s) => write!(f, "Error. Component expected. Got <{s}> instead."),
            UnexpectedEnd(what) => write!(f, "Error. Unexpected end of file: expected {what}."),
            MalformedExpression(s) => write!(f, "Error. Malformed expression {s}."),
            BadSubfield { text, reason } => {
                write!(f, "Error. Bad bit subfield in {text}: {reason}.")
            }
            EmptySelector(s) => write!(f, "Error. Selector {s} has no values."),
            BadMemoryCount { name, count } => {
                write!(f, "Error. Memory {name} declares {count} cells.")
            }
            MalformedBitString(s) => write!(f, "Error. Malformed bit string {s}."),
        }
    }
}

/// A parse error with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub kind: ParseErrorKind,
    /// Where it went wrong.
    pub span: Span,
}

impl ParseError {
    /// Creates an error at a location.
    pub fn new(kind: ParseErrorKind, span: Span) -> Self {
        ParseError { kind, span }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.kind, self.span)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Pos, Span};

    #[test]
    fn messages_mirror_the_original_compiler() {
        let e = ParseError::new(
            ParseErrorKind::MalformedNumber("%102".into()),
            Span::point(Pos::new(7, 3)),
        );
        assert_eq!(
            e.to_string(),
            "Error. Malformed number %102. (line 7, col 3)"
        );

        let e = ParseError::new(ParseErrorKind::MissingComment, Span::point(Pos::start()));
        assert!(e.to_string().starts_with("Error. Comment required."));

        let e = ParseError::new(
            ParseErrorKind::UndefinedMacro("pack".into()),
            Span::point(Pos::new(2, 1)),
        );
        assert!(e.to_string().contains("Macro <~pack> not defined"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_err<E: std::error::Error>(_: E) {}
        takes_err(ParseError::new(
            ParseErrorKind::MissingComment,
            Span::point(Pos::start()),
        ));
    }
}
