//! The specification parser.
//!
//! Grammar (Appendix A/B of the thesis):
//!
//! ```text
//! file       := commentline macrodef* cycles? namelist '.' component* '.'
//! macrodef   := '~'name body-token
//! cycles     := '=' number
//! namelist   := (name '*'?)*
//! component  := 'A' name expr expr expr
//!             | 'S' name expr expr+              -- until A/S/M/'.' token
//!             | 'M' name expr expr expr count number*
//! ```
//!
//! Tokens after the macro definitions are macro-expanded, and a trailing
//! period on a token is split off as its own token (so `newst.` ends the
//! name list), both exactly as the original `gettoken` behaves.

use crate::ast::{Alu, Component, ComponentKind, Declared, Expr, Ident, Memory, Selector, Spec};
use crate::error::{ParseError, ParseErrorKind};
use crate::expr::parse_expr;
use crate::lexer::lex;
use crate::macros::MacroTable;
use crate::number::{parse_number, NumberError, Word};
use crate::span::Span;
use crate::token::Token;

/// Parses a complete specification file.
///
/// ```
/// let src = "# up counter\n= 4\ncount* next .\n\
///            M count 0 next 1 1\n\
///            A next 4 count 1 .";
/// let spec = rtl_lang::parse(src).unwrap();
/// assert_eq!(spec.cycles, Some(4));
/// assert_eq!(spec.components.len(), 2);
/// ```
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered, with the original
/// compiler's message wording where one exists.
pub fn parse(source: &str) -> Result<Spec, ParseError> {
    let lexed = lex(source)?;
    let mut cur = Cursor::new(lexed.tokens);

    // Macro definitions: pairs of raw tokens, bodies expanded at definition
    // time with the table built so far.
    while cur.peek_raw().map(Token::is_macro_intro).unwrap_or(false) {
        let name_tok = cur.next_raw().expect("peeked");
        let name = name_tok.text.strip_prefix('~').expect("macro intro");
        if Ident::parse(name).is_none() {
            return Err(ParseError::new(
                ParseErrorKind::InvalidName(name_tok.text.clone()),
                name_tok.span,
            ));
        }
        let body_tok = cur
            .next_raw()
            .ok_or_else(|| unexpected_end("a macro body", &cur))?;
        let body = cur.macros.expand(&body_tok.text, body_tok.span)?;
        cur.macros.define(name, body);
    }

    // Optional cycle count.
    let mut cycles = None;
    if cur.peek()?.map(|t| t.is_cycles_intro()).unwrap_or(false) {
        cur.next()?;
        let tok = cur
            .next()?
            .ok_or_else(|| unexpected_end("a cycle count", &cur))?;
        cycles = Some(number_token(&tok)?);
    }

    let declared = parse_name_list(&mut cur)?;
    let components = parse_components(&mut cur)?;

    Ok(Spec {
        title: lexed.title,
        cycles,
        declared,
        components,
    })
}

fn parse_name_list(cur: &mut Cursor) -> Result<Vec<Declared>, ParseError> {
    let mut declared = Vec::new();
    loop {
        let tok = cur
            .next()?
            .ok_or_else(|| unexpected_end("'.' ending the name list", cur))?;
        if tok.is_period() {
            return Ok(declared);
        }
        let (name_text, traced) = match tok.text.strip_suffix('*') {
            Some(stripped) => (stripped, true),
            None => (tok.text.as_str(), false),
        };
        let name = Ident::parse(name_text).ok_or_else(|| {
            ParseError::new(ParseErrorKind::InvalidName(tok.text.clone()), tok.span)
        })?;
        declared.push(Declared {
            name,
            traced,
            span: tok.span,
        });
    }
}

fn parse_components(cur: &mut Cursor) -> Result<Vec<Component>, ParseError> {
    let mut components = Vec::new();
    loop {
        let tok = cur
            .next()?
            .ok_or_else(|| unexpected_end("'.' ending the component list", cur))?;
        if tok.is_period() {
            return Ok(components);
        }
        if !tok.is_component_letter() {
            return Err(ParseError::new(
                ParseErrorKind::ExpectedComponent(tok.text.clone()),
                tok.span,
            ));
        }
        let name_tok = cur
            .next()?
            .ok_or_else(|| unexpected_end("a component name", cur))?;
        let name = Ident::parse(&name_tok.text).ok_or_else(|| {
            ParseError::new(
                ParseErrorKind::InvalidName(name_tok.text.clone()),
                name_tok.span,
            )
        })?;

        let (kind, end_span) = match tok.text.as_str() {
            "A" => parse_alu(cur)?,
            "S" => parse_selector(cur, &name)?,
            "M" => parse_memory(cur, &name)?,
            _ => unreachable!("is_component_letter checked"),
        };
        components.push(Component {
            name,
            kind,
            span: tok.span.merge(end_span),
        });
    }
}

fn parse_alu(cur: &mut Cursor) -> Result<(ComponentKind, Span), ParseError> {
    let funct = expr_token(cur, "an ALU function expression")?;
    let left = expr_token(cur, "an ALU left operand")?;
    let right = expr_token(cur, "an ALU right operand")?;
    let span = right.span;
    Ok((ComponentKind::Alu(Alu { funct, left, right }), span))
}

fn parse_selector(cur: &mut Cursor, name: &Ident) -> Result<(ComponentKind, Span), ParseError> {
    let select = expr_token(cur, "a selector index expression")?;
    let mut cases = Vec::new();
    let mut span = select.span;
    loop {
        match cur.peek()? {
            Some(t) if t.is_component_letter() || t.is_period() => break,
            Some(_) => {
                let case = expr_token(cur, "a selector case value")?;
                span = case.span;
                cases.push(case);
            }
            None => return Err(unexpected_end("'.' ending the component list", cur)),
        }
    }
    if cases.is_empty() {
        return Err(ParseError::new(
            ParseErrorKind::EmptySelector(name.as_str().to_string()),
            span,
        ));
    }
    Ok((ComponentKind::Selector(Selector { select, cases }), span))
}

fn parse_memory(cur: &mut Cursor, name: &Ident) -> Result<(ComponentKind, Span), ParseError> {
    let addr = expr_token(cur, "a memory address expression")?;
    let data = expr_token(cur, "a memory data expression")?;
    let opn = expr_token(cur, "a memory operation expression")?;
    let count_tok = cur
        .next()?
        .ok_or_else(|| unexpected_end("a memory cell count", cur))?;
    let mut span = count_tok.span;

    let (size, init) = if let Some(neg) = count_tok.text.strip_prefix('-') {
        let n = number_text(neg, &count_tok)?;
        check_count(name, n, count_tok.span)?;
        let mut values = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let v = cur
                .next()?
                .ok_or_else(|| unexpected_end("a memory initial value", cur))?;
            values.push(number_token(&v)?);
            span = v.span;
        }
        (n as u32, Some(values))
    } else {
        let n = number_token(&count_tok)?;
        check_count(name, n, count_tok.span)?;
        (n as u32, None)
    };

    Ok((
        ComponentKind::Memory(Memory {
            addr,
            data,
            opn,
            size,
            init,
        }),
        span,
    ))
}

fn check_count(name: &Ident, n: Word, span: Span) -> Result<(), ParseError> {
    if n < 1 {
        return Err(ParseError::new(
            ParseErrorKind::BadMemoryCount {
                name: name.as_str().to_string(),
                count: n,
            },
            span,
        ));
    }
    Ok(())
}

fn expr_token(cur: &mut Cursor, what: &str) -> Result<Expr, ParseError> {
    let tok = cur.next()?.ok_or_else(|| unexpected_end(what, cur))?;
    parse_expr(&tok.text, tok.span)
}

fn number_token(tok: &Token) -> Result<Word, ParseError> {
    number_text(&tok.text, tok)
}

fn number_text(text: &str, tok: &Token) -> Result<Word, ParseError> {
    parse_number(text).map_err(|e| {
        let kind = match e {
            NumberError::Malformed => ParseErrorKind::MalformedNumber(tok.text.clone()),
            NumberError::TooLarge => ParseErrorKind::NumberTooLarge(tok.text.clone()),
        };
        ParseError::new(kind, tok.span)
    })
}

fn unexpected_end(what: &str, cur: &Cursor) -> ParseError {
    ParseError::new(
        ParseErrorKind::UnexpectedEnd(what.to_string()),
        cur.last_span,
    )
}

/// A token cursor that applies macro expansion and trailing-period splitting
/// lazily, mirroring `gettoken`.
struct Cursor {
    tokens: std::vec::IntoIter<Token>,
    macros: MacroTable,
    /// A pending `.` token produced by a trailing-period split.
    pending: Option<Token>,
    /// A token already expanded by `peek`.
    peeked: Option<Token>,
    /// Span of the most recently produced token (for end-of-input errors).
    last_span: Span,
}

impl Cursor {
    fn new(tokens: Vec<Token>) -> Self {
        Cursor {
            tokens: tokens.into_iter(),
            macros: MacroTable::new(),
            pending: None,
            peeked: None,
            last_span: Span::default(),
        }
    }

    /// Next raw token — no expansion, no period split. Only used in the
    /// macro-definition phase.
    fn next_raw(&mut self) -> Option<Token> {
        debug_assert!(self.pending.is_none() && self.peeked.is_none());
        let t = self.tokens.next()?;
        self.last_span = t.span;
        Some(t)
    }

    fn peek_raw(&mut self) -> Option<&Token> {
        debug_assert!(self.peeked.is_none());
        self.tokens.as_slice().first()
    }

    /// Next processed token: expanded, with a trailing period split off.
    fn next(&mut self) -> Result<Option<Token>, ParseError> {
        if let Some(t) = self.peeked.take() {
            self.last_span = t.span;
            return Ok(Some(t));
        }
        if let Some(t) = self.pending.take() {
            self.last_span = t.span;
            return Ok(Some(t));
        }
        let Some(raw) = self.tokens.next() else {
            return Ok(None);
        };
        let text = self.macros.expand(&raw.text, raw.span)?;
        let mut tok = Token::new(text, raw.span);
        if tok.text.len() > 1 && tok.text.ends_with('.') {
            tok.text.pop();
            self.pending = Some(Token::new(".", Span::point(raw.span.end)));
        }
        self.last_span = tok.span;
        Ok(Some(tok))
    }

    fn peek(&mut self) -> Result<Option<&Token>, ParseError> {
        if self.peeked.is_none() {
            self.peeked = self.next()?;
        }
        Ok(self.peeked.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Part;

    const COUNTER: &str = "# up counter\n= 8\ncount* next .\n\
                           M count 0 next 1 1\n\
                           A next 4 count 1 .";

    #[test]
    fn parses_a_minimal_spec() {
        let spec = parse(COUNTER).unwrap();
        assert_eq!(spec.title, "# up counter");
        assert_eq!(spec.cycles, Some(8));
        assert_eq!(spec.declared.len(), 2);
        assert!(spec.declared[0].traced);
        assert!(!spec.declared[1].traced);
        assert_eq!(spec.components.len(), 2);
        match &spec.components[0].kind {
            ComponentKind::Memory(m) => {
                assert_eq!(m.size, 1);
                assert!(m.init.is_none());
                assert_eq!(
                    m.data,
                    Expr {
                        parts: vec![Part::reference("next")],
                        span: m.data.span
                    }
                );
            }
            other => panic!("expected memory, got {other:?}"),
        }
    }

    #[test]
    fn macros_expand_in_components() {
        let src = "# m\n~w 8\n~io 12\nr .\nA r rom.~w x.~io,1 2 .";
        let spec = parse(src).unwrap();
        match &spec.components[0].kind {
            ComponentKind::Alu(a) => {
                assert_eq!(a.funct.parts, vec![Part::bit("rom", 8)]);
                assert_eq!(a.left.parts, vec![Part::bit("x", 12), Part::constant(1)]);
            }
            other => panic!("expected alu, got {other:?}"),
        }
    }

    #[test]
    fn macro_bodies_expand_at_definition_time() {
        let src = "# m\n~a 4\n~b ~a+1\nx .\nA x ~b 0 0 .";
        let spec = parse(src).unwrap();
        match &spec.components[0].kind {
            ComponentKind::Alu(a) => assert_eq!(a.funct.parts, vec![Part::constant(5)]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn undefined_macro_diagnosed() {
        let err = parse("# m\nx .\nA x ~nope 0 0 .").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UndefinedMacro("nope".into()));
    }

    #[test]
    fn trailing_period_splits() {
        // The period ending the name list may be glued to the last name.
        let spec = parse("# m\na b.\nA a 4 b 1\nA b 2 1 0 .").unwrap();
        assert_eq!(spec.declared.len(), 2);
        assert_eq!(spec.components.len(), 2);
    }

    #[test]
    fn selector_values_end_at_component_letter_or_period() {
        let src = "# m\ns x .\nS s x 1 2 3\nA x 2 4 0 .";
        let spec = parse(src).unwrap();
        match &spec.components[0].kind {
            ComponentKind::Selector(s) => assert_eq!(s.cases.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn selector_needs_at_least_one_case() {
        let err = parse("# m\ns .\nS s x .").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::EmptySelector("s".into()));
    }

    #[test]
    fn memory_with_initializers() {
        let src = "# m\nm .\nM m addr data op -4 12 34 56 78 .";
        let spec = parse(src).unwrap();
        match &spec.components[0].kind {
            ComponentKind::Memory(m) => {
                assert_eq!(m.size, 4);
                assert_eq!(m.init.as_deref(), Some(&[12, 34, 56, 78][..]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn memory_zero_cells_rejected() {
        let err = parse("# m\nm .\nM m 0 0 0 0 .").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadMemoryCount { .. }));
    }

    #[test]
    fn component_expected_message() {
        let err = parse("# m\nx .\nB x 1 2 3 .").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::ExpectedComponent("B".into()));
        assert!(err
            .to_string()
            .contains("Component expected. Got <B> instead."));
    }

    #[test]
    fn truncated_inputs_report_unexpected_end() {
        for src in [
            "# m\n",
            "# m\nx y",
            "# m\nx .\nA x 1",
            "# m\nx .\nM x 0 0 0",
            "# m\nx .\nM x 0 0 0 -2 7",
            "# m\nx .\nA x 1 2 3",
        ] {
            let err = parse(src).unwrap_err();
            assert!(
                matches!(err.kind, ParseErrorKind::UnexpectedEnd(_)),
                "src {src:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn cycle_count_is_optional() {
        assert_eq!(parse("# m\n.\n.").unwrap().cycles, None);
        assert_eq!(parse("# m\n= 12\n.\n.").unwrap().cycles, Some(12));
    }

    #[test]
    fn tokens_after_final_period_are_ignored() {
        let spec = parse("# m\n.\n. leftover junk").unwrap();
        assert!(spec.components.is_empty());
    }

    #[test]
    fn star_alone_is_invalid_name() {
        let err = parse("# m\n* .\n.").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::InvalidName(_)));
    }
}
