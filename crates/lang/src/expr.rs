//! Parsing of expression tokens.
//!
//! An expression is a comma-separated concatenation of parts (no whitespace —
//! tokens cannot contain whitespace). Each part is either a number with an
//! optional `.width` subfield, a `#` bit string, or a component reference
//! with an optional `.from[.to]` bit subfield. See the syntax diagrams of
//! Appendix B.

use crate::ast::{Expr, Ident, Part};
use crate::error::{ParseError, ParseErrorKind};
use crate::number::{parse_number, starts_number, NumberError};
use crate::span::Span;

/// The highest addressable bit position in a subfield. Matches the original
/// compiler's `highbits` table usage, which only ever masks bits `0..=30`.
pub const MAX_BIT: u8 = 30;

/// Parses an expression token into an [`Expr`].
///
/// ```
/// use rtl_lang::expr::parse_expr;
/// use rtl_lang::{Part, Span};
/// let e = parse_expr("mem.3.4,#01,count.1", Span::default()).unwrap();
/// assert_eq!(e.parts, vec![
///     Part::field("mem", 3, 4),
///     Part::bits(1, 2),
///     Part::bit("count", 1),
/// ]);
/// ```
///
/// # Errors
///
/// Reports malformed numbers, invalid names, bad subfields and empty parts
/// with the offending token text.
pub fn parse_expr(text: &str, span: Span) -> Result<Expr, ParseError> {
    let mut parts = Vec::new();
    for raw in text.split(',') {
        parts.push(parse_part(raw, text, span)?);
    }
    Ok(Expr { parts, span })
}

fn parse_part(raw: &str, whole: &str, span: Span) -> Result<Part, ParseError> {
    let err = |kind| Err(ParseError::new(kind, span));
    let first = match raw.chars().next() {
        Some(c) => c,
        None => return err(ParseErrorKind::MalformedExpression(whole.to_string())),
    };

    if first == '#' {
        return parse_bits(&raw[1..], raw, span);
    }

    if starts_number(raw) {
        let (num_text, sub) = match raw.split_once('.') {
            Some((n, s)) => (n, Some(s)),
            None => (raw, None),
        };
        let value = map_num(parse_number(num_text), num_text, span)?;
        let width = match sub {
            None => None,
            Some(w_text) => {
                let w = map_num(parse_number(w_text), raw, span)?;
                if !(1..=31).contains(&w) {
                    return err(ParseErrorKind::BadSubfield {
                        text: raw.to_string(),
                        reason: "constant width must be between 1 and 31",
                    });
                }
                Some(w as u8)
            }
        };
        return Ok(Part::Const { value, width });
    }

    if first.is_ascii_alphabetic() {
        let mut pieces = raw.split('.');
        let name_text = pieces.next().expect("split yields at least one piece");
        let name = match Ident::parse(name_text) {
            Some(n) => n,
            None => return err(ParseErrorKind::InvalidName(name_text.to_string())),
        };
        let from = match pieces.next() {
            None => None,
            Some(f) => Some(parse_bit_index(f, raw, span)?),
        };
        let to = match pieces.next() {
            None => None,
            Some(t) => Some(parse_bit_index(t, raw, span)?),
        };
        if pieces.next().is_some() {
            return err(ParseErrorKind::BadSubfield {
                text: raw.to_string(),
                reason: "at most two subfield positions are allowed",
            });
        }
        if let (Some(f), Some(t)) = (from, to) {
            if f > t {
                return err(ParseErrorKind::BadSubfield {
                    text: raw.to_string(),
                    reason: "subfield start exceeds subfield end",
                });
            }
        }
        return Ok(Part::Ref { name, from, to });
    }

    err(ParseErrorKind::MalformedExpression(whole.to_string()))
}

fn parse_bit_index(text: &str, raw: &str, span: Span) -> Result<u8, ParseError> {
    let v = map_num(parse_number(text), raw, span)?;
    if v > MAX_BIT as i64 {
        return Err(ParseError::new(
            ParseErrorKind::BadSubfield {
                text: raw.to_string(),
                reason: "bit positions must be between 0 and 30",
            },
            span,
        ));
    }
    Ok(v as u8)
}

fn parse_bits(digits: &str, raw: &str, span: Span) -> Result<Part, ParseError> {
    let width = digits.len();
    if width == 0 || width > 31 || !digits.bytes().all(|b| b == b'0' || b == b'1') {
        return Err(ParseError::new(
            ParseErrorKind::MalformedBitString(raw.to_string()),
            span,
        ));
    }
    let mut value = 0i64;
    for b in digits.bytes() {
        value = (value << 1) | i64::from(b - b'0');
    }
    Ok(Part::Bits {
        value,
        width: width as u8,
    })
}

fn map_num(r: Result<i64, NumberError>, text: &str, span: Span) -> Result<i64, ParseError> {
    r.map_err(|e| {
        let kind = match e {
            NumberError::Malformed => ParseErrorKind::MalformedNumber(text.to_string()),
            NumberError::TooLarge => ParseErrorKind::NumberTooLarge(text.to_string()),
        };
        ParseError::new(kind, span)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Expr, ParseError> {
        parse_expr(s, Span::default())
    }

    fn parts(s: &str) -> Vec<Part> {
        parse(s).unwrap().parts
    }

    #[test]
    fn single_constant() {
        assert_eq!(parts("42"), vec![Part::constant(42)]);
        assert_eq!(parts("%110"), vec![Part::constant(6)]);
        assert_eq!(parts("$FF"), vec![Part::constant(255)]);
        assert_eq!(parts("^5"), vec![Part::constant(32)]);
        assert_eq!(parts("128+3+^8"), vec![Part::constant(387)]);
    }

    #[test]
    fn sized_constant() {
        assert_eq!(parts("9.4"), vec![Part::sized(9, 4)]);
        assert_eq!(parts("%1001.4"), vec![Part::sized(9, 4)]);
    }

    #[test]
    fn bit_strings() {
        assert_eq!(parts("#01"), vec![Part::bits(1, 2)]);
        assert_eq!(parts("#000000000000"), vec![Part::bits(0, 12)]);
        assert_eq!(parts("#10"), vec![Part::bits(2, 2)]);
        assert!(parse("#").is_err());
        assert!(parse("#012").is_err());
        assert!(parse("#01.2").is_err(), "bit strings take no subfield");
    }

    #[test]
    fn references() {
        assert_eq!(parts("ram"), vec![Part::reference("ram")]);
        assert_eq!(parts("ir.0"), vec![Part::bit("ir", 0)]);
        assert_eq!(parts("ir.0.3"), vec![Part::field("ir", 0, 3)]);
        assert_eq!(parts("state.0.5"), vec![Part::field("state", 0, 5)]);
    }

    #[test]
    fn figure_3_1_concatenation() {
        assert_eq!(
            parts("mem.3.4,#01,count.1"),
            vec![
                Part::field("mem", 3, 4),
                Part::bits(1, 2),
                Part::bit("count", 1)
            ]
        );
    }

    #[test]
    fn thesis_expressions() {
        // From Appendix D (after macro expansion).
        assert_eq!(
            parts("addr.12,rom.8"),
            vec![Part::bit("addr", 12), Part::bit("rom", 8)]
        );
        assert_eq!(
            parts("1,rom.12,prog.0.3"),
            vec![
                Part::constant(1),
                Part::bit("rom", 12),
                Part::field("prog", 0, 3)
            ]
        );
        assert_eq!(
            parts("%110,rom.8"),
            vec![Part::constant(6), Part::bit("rom", 8)]
        );
    }

    #[test]
    fn subfield_indices_may_be_any_number_form() {
        assert_eq!(parts("x.%11"), vec![Part::bit("x", 3)]);
        assert_eq!(parts("x.0.$A"), vec![Part::field("x", 0, 10)]);
        assert_eq!(parts("x.1+2"), vec![Part::bit("x", 3)]);
    }

    #[test]
    fn bad_subfields() {
        assert!(parse("x.4.2").is_err(), "inverted range");
        assert!(parse("x.31").is_err(), "bit 31 unaddressable");
        assert!(parse("x.0.1.2").is_err(), "three subfield positions");
        assert!(parse("9.0").is_err(), "zero-width constant");
        assert!(parse("9.32").is_err(), "over-wide constant");
    }

    #[test]
    fn malformed_parts() {
        assert!(parse("").is_err());
        assert!(parse("a,,b").is_err());
        assert!(parse("a,").is_err());
        assert!(parse(",a").is_err());
        assert!(parse("*x").is_err());
        assert!(parse("12a").is_err());
        assert!(parse("x.y").is_err(), "subfield must be numeric");
    }

    #[test]
    fn error_mentions_whole_token_for_empty_part() {
        let err = parse("a,,b").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::MalformedExpression("a,,b".into()));
    }
}
