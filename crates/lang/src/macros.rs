//! Textual macros (`~name body`).
//!
//! Macros are defined immediately after the comment line. A definition is a
//! pair of tokens: `~name` followed by the replacement text. Macro *bodies*
//! are expanded at definition time using previously defined macros, so
//! expansion at use sites is a single splice (no re-scanning) — exactly the
//! behaviour of the original `gettoken`/`macrodef` pair. Recursive or
//! forward references are therefore impossible by construction.

use crate::error::{ParseError, ParseErrorKind};
use crate::span::Span;
use std::collections::HashMap;

/// An ordered table of macro definitions.
#[derive(Debug, Clone, Default)]
pub struct MacroTable {
    map: HashMap<String, String>,
    order: Vec<String>,
}

impl MacroTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of definitions.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` if no macros are defined.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The raw (already expanded) body of a macro, if defined.
    pub fn body(&self, name: &str) -> Option<&str> {
        self.map.get(name).map(String::as_str)
    }

    /// Definition order, for pretty-printing and diagnostics.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.order.iter().map(String::as_str)
    }

    /// Defines `name` (without the `~`) with an *already expanded* body.
    /// Redefinition replaces the body, matching the original's last-match
    /// lookup being irrelevant in practice (it searched front-to-back on a
    /// list it only ever appended to).
    pub fn define(&mut self, name: impl Into<String>, body: impl Into<String>) {
        let name = name.into();
        if !self.map.contains_key(&name) {
            self.order.push(name.clone());
        }
        self.map.insert(name, body.into());
    }

    /// Expands every `~name` occurrence in `text`. Spliced bodies are not
    /// re-scanned. A macro name is the longest run of letters and digits
    /// after the `~`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseErrorKind::UndefinedMacro`] for unknown names.
    ///
    /// ```
    /// use rtl_lang::macros::MacroTable;
    /// use rtl_lang::{Pos, Span};
    /// let mut t = MacroTable::new();
    /// t.define("w", "8");
    /// let s = t.expand("rom.~w,~w", Span::point(Pos::start())).unwrap();
    /// assert_eq!(s, "rom.8,8");
    /// ```
    pub fn expand(&self, text: &str, span: Span) -> Result<String, ParseError> {
        if !text.contains('~') {
            return Ok(text.to_string());
        }
        let mut out = String::with_capacity(text.len());
        let mut chars = text.chars().peekable();
        while let Some(c) = chars.next() {
            if c != '~' {
                out.push(c);
                continue;
            }
            let mut name = String::new();
            while let Some(&n) = chars.peek() {
                if n.is_ascii_alphanumeric() {
                    name.push(n);
                    chars.next();
                } else {
                    break;
                }
            }
            match self.map.get(&name) {
                Some(body) => out.push_str(body),
                None => {
                    return Err(ParseError::new(ParseErrorKind::UndefinedMacro(name), span));
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Pos;

    fn sp() -> Span {
        Span::point(Pos::start())
    }

    #[test]
    fn expansion_splices_without_rescanning() {
        let mut t = MacroTable::new();
        t.define("a", "xy");
        // A body containing a tilde is spliced verbatim: no re-expansion.
        t.define("b", "~lit");
        // Macro names are maximal alphanumeric runs: a delimiter is needed
        // to end one ("any character except letters and numbers will
        // delimit a macro name" — Appendix A).
        assert_eq!(t.expand("q.~a.q", sp()).unwrap(), "q.xy.q");
        assert_eq!(t.expand("~b", sp()).unwrap(), "~lit");
        let err = t.expand("q~aq", sp()).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UndefinedMacro("aq".into()));
    }

    #[test]
    fn name_ends_at_non_alphanumeric() {
        let mut t = MacroTable::new();
        t.define("w", "8");
        t.define("w2", "12");
        assert_eq!(t.expand("rom.~w.~w2", sp()).unwrap(), "rom.8.12");
        assert_eq!(t.expand("~w,~w", sp()).unwrap(), "8,8");
        // Longest-match: `~w2` is w2, not w followed by '2'.
        assert_eq!(t.expand("~w2", sp()).unwrap(), "12");
    }

    #[test]
    fn undefined_macro_is_reported() {
        let t = MacroTable::new();
        let err = t.expand("~nope", sp()).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UndefinedMacro("nope".into()));
    }

    #[test]
    fn thesis_style_definitions() {
        // From Appendix D: `~k 0`, `~n 12`, `~w 8` and uses like
        // `addr.~n,rom.~w`.
        let mut t = MacroTable::new();
        t.define("n", "12");
        t.define("w", "8");
        assert_eq!(t.expand("addr.~n,rom.~w", sp()).unwrap(), "addr.12,rom.8");
    }

    #[test]
    fn redefinition_replaces() {
        let mut t = MacroTable::new();
        t.define("x", "1");
        t.define("x", "2");
        assert_eq!(t.expand("~x", sp()).unwrap(), "2");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn definition_time_expansion_of_bodies() {
        // The parser expands bodies at definition time; model that here.
        let mut t = MacroTable::new();
        t.define("base", "16");
        let body = t.expand("~base", sp()).unwrap();
        t.define("derived", body);
        assert_eq!(t.expand("~derived", sp()).unwrap(), "16");
    }
}
