//! The ASIM II tokenizer.
//!
//! The language is whitespace-delimited: after a mandatory `#` comment line,
//! the source is a stream of tokens separated by blanks, tabs, newlines and
//! `{ ... }` comments. Curly braces *delimit* tokens (a comment may butt up
//! against a token), exactly as in the original `gettoken`.

use crate::error::{ParseError, ParseErrorKind};
use crate::span::{Pos, Span};
use crate::token::Token;

/// The result of tokenizing a source file: the mandatory first-line comment
/// plus the raw (not yet macro-expanded) token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexOutput {
    /// The first line of the file, verbatim (it starts with `#`). The code
    /// generators echo it into the generated program.
    pub title: String,
    /// The raw tokens in source order.
    pub tokens: Vec<Token>,
}

/// Splits `source` into tokens.
///
/// # Errors
///
/// Returns [`ParseErrorKind::MissingComment`] if the first line does not
/// start with `#`, and [`ParseErrorKind::UnterminatedComment`] if a `{`
/// comment is still open at end of input.
///
/// ```
/// let out = rtl_lang::lexer::lex("# demo\nA alu 4 {add} left right .").unwrap();
/// assert_eq!(out.title, "# demo");
/// let texts: Vec<_> = out.tokens.iter().map(|t| t.text.as_str()).collect();
/// assert_eq!(texts, ["A", "alu", "4", "left", "right", "."]);
/// ```
pub fn lex(source: &str) -> Result<LexOutput, ParseError> {
    let (first_line, rest) = match source.split_once('\n') {
        Some((line, rest)) => (line, rest),
        None => (source, ""),
    };
    let first_line = first_line.strip_suffix('\r').unwrap_or(first_line);
    if !first_line.starts_with('#') {
        return Err(ParseError::new(
            ParseErrorKind::MissingComment,
            Span::point(Pos::start()),
        ));
    }

    let mut tokens = Vec::new();
    let mut scanner = Scanner::new(rest);
    loop {
        scanner.skip_blank()?;
        let Some(start) = scanner.peek_pos() else {
            break;
        };
        let mut text = String::new();
        let mut end = start;
        while let Some((pos, c)) = scanner.peek() {
            if is_blank(c) || c == '{' || c == '}' {
                break;
            }
            text.push(c);
            end = pos;
            scanner.bump();
        }
        debug_assert!(!text.is_empty());
        tokens.push(Token::new(text, Span::new(start, end)));
    }

    Ok(LexOutput {
        title: first_line.to_string(),
        tokens,
    })
}

fn is_blank(c: char) -> bool {
    matches!(c, ' ' | '\t' | '\r' | '\n')
}

/// A char scanner with 1-based line/column tracking. The scanner starts at
/// line 2 because line 1 is the comment line consumed by [`lex`].
struct Scanner<'s> {
    chars: std::iter::Peekable<std::str::Chars<'s>>,
    line: u32,
    col: u32,
}

impl<'s> Scanner<'s> {
    fn new(rest: &'s str) -> Self {
        Scanner {
            chars: rest.chars().peekable(),
            line: 2,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<(Pos, char)> {
        let c = *self.chars.peek()?;
        Some((Pos::new(self.line, self.col), c))
    }

    fn peek_pos(&mut self) -> Option<Pos> {
        self.peek().map(|(p, _)| p)
    }

    fn bump(&mut self) {
        if let Some(c) = self.chars.next() {
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    /// Skips whitespace, stray `}` and `{ ... }` comments.
    fn skip_blank(&mut self) -> Result<(), ParseError> {
        while let Some((pos, c)) = self.peek() {
            if is_blank(c) || c == '}' {
                self.bump();
            } else if c == '{' {
                self.bump();
                let mut closed = false;
                while let Some((_, c2)) = self.peek() {
                    self.bump();
                    if c2 == '}' {
                        closed = true;
                        break;
                    }
                }
                if !closed {
                    return Err(ParseError::new(
                        ParseErrorKind::UnterminatedComment,
                        Span::point(pos),
                    ));
                }
            } else {
                break;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src)
            .unwrap()
            .tokens
            .into_iter()
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn requires_leading_comment() {
        let err = lex("A alu 4 l r .").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::MissingComment);
        assert!(lex("# ok\n").is_ok());
        assert!(lex("#no space needed\n").is_ok());
    }

    #[test]
    fn crlf_title_line() {
        let out = lex("# title\r\nA b c d e .").unwrap();
        assert_eq!(out.title, "# title");
        assert_eq!(out.tokens[0].text, "A");
    }

    #[test]
    fn comments_are_delimiters() {
        // A comment glued to a token still separates tokens, per the
        // original whitespace set which contains '{' and '}'.
        assert_eq!(texts("#x\nfoo{c}bar"), ["foo", "bar"]);
        assert_eq!(texts("#x\nfoo {multi\nline} bar"), ["foo", "bar"]);
    }

    #[test]
    fn stray_close_brace_is_whitespace() {
        assert_eq!(texts("#x\nfoo } bar"), ["foo", "bar"]);
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        let err = lex("#x\nfoo {oops").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnterminatedComment);
    }

    #[test]
    fn spans_are_one_based_and_skip_the_title() {
        let out = lex("# t\n  ab\ncd").unwrap();
        assert_eq!(out.tokens[0].span.start, Pos::new(2, 3));
        assert_eq!(out.tokens[0].span.end, Pos::new(2, 4));
        assert_eq!(out.tokens[1].span.start, Pos::new(3, 1));
    }

    #[test]
    fn no_trailing_dot_split_at_lex_level() {
        // The trailing-period split happens after macro expansion, not here.
        assert_eq!(texts("#x\nnewst."), ["newst."]);
    }

    #[test]
    fn empty_body_is_fine() {
        assert!(texts("# only title").is_empty());
    }
}
