//! Whitespace-delimited tokens produced by the [`lexer`](crate::lexer).

use crate::span::Span;

/// A single whitespace-delimited token together with its source location.
///
/// Tokens are the unit the ASIM II grammar is defined over: component letters
/// (`A`, `S`, `M`), names, expressions (which contain no whitespace), numbers
/// and the structural period.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Token {
    /// The token text (after macro expansion, once the expander has run).
    pub text: String,
    /// Where the token occurred in the source.
    pub span: Span,
}

impl Token {
    /// Creates a token from text and a span.
    pub fn new(text: impl Into<String>, span: Span) -> Self {
        Token {
            text: text.into(),
            span,
        }
    }

    /// `true` if this token is the structural period that terminates the
    /// name list and the component list.
    pub fn is_period(&self) -> bool {
        self.text == "."
    }

    /// `true` if this token introduces a component (`A`, `S` or `M`).
    pub fn is_component_letter(&self) -> bool {
        matches!(self.text.as_str(), "A" | "S" | "M")
    }

    /// `true` if this token begins a macro definition (`~name`).
    pub fn is_macro_intro(&self) -> bool {
        self.text.starts_with('~')
    }

    /// `true` if this token is the `=` that introduces the cycle count.
    pub fn is_cycles_intro(&self) -> bool {
        self.text == "="
    }
}

impl std::fmt::Display for Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Pos, Span};

    fn tok(s: &str) -> Token {
        Token::new(s, Span::point(Pos::start()))
    }

    #[test]
    fn classification() {
        assert!(tok(".").is_period());
        assert!(!tok("x.").is_period());
        assert!(tok("A").is_component_letter());
        assert!(tok("S").is_component_letter());
        assert!(tok("M").is_component_letter());
        assert!(!tok("B").is_component_letter());
        assert!(tok("~pack").is_macro_intro());
        assert!(tok("=").is_cycles_intro());
    }
}
