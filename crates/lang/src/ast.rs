//! The abstract syntax tree for ASIM II specifications.
//!
//! A [`Spec`] is the parsed form of a specification file: a title comment, an
//! optional cycle count, the declared-name list (with trace markers) and the
//! component list. Expressions ([`Expr`]) are bit-concatenations of
//! [`Part`]s, most-significant part first.

use crate::number::Word;
use crate::span::Span;
use std::fmt;

/// A component or declared name: letters followed by letters and digits.
/// Names are case-sensitive, as in the original (Pascal `strcmp`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ident(String);

impl Ident {
    /// Wraps a string as an identifier **without validating it**.
    ///
    /// Invariant: the caller must guarantee the string is already a valid
    /// name — an ASCII letter followed by letters and digits — because
    /// every consumer (resolver, pretty-printer, lint) relies on it. This
    /// constructor is for strings that are valid *by construction*, such
    /// as the concatenation of two validated identifiers during module
    /// flattening; any name originating in user input (spec text,
    /// bindings, CLI arguments) must go through [`Ident::parse`] instead.
    pub fn new_unchecked(s: impl Into<String>) -> Self {
        let s = s.into();
        debug_assert!(
            Ident::parse(&s).is_some(),
            "new_unchecked called with invalid identifier {s:?}"
        );
        Ident(s)
    }

    /// Validates and wraps a name: first char a letter, rest letters/digits.
    pub fn parse(s: &str) -> Option<Self> {
        let mut chars = s.chars();
        let first = chars.next()?;
        if !first.is_ascii_alphabetic() {
            return None;
        }
        if chars.all(|c| c.is_ascii_alphanumeric()) {
            Some(Ident(s.to_string()))
        } else {
            None
        }
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl PartialEq<str> for Ident {
    fn eq(&self, other: &str) -> bool {
        self.0 == other
    }
}

impl PartialEq<&str> for Ident {
    fn eq(&self, other: &&str) -> bool {
        self.0 == *other
    }
}

impl From<&str> for Ident {
    fn from(s: &str) -> Self {
        Ident(s.to_string())
    }
}

/// One element of a bit-concatenation expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Part {
    /// A numeric constant. With `width: Some(w)` the low `w` bits are taken
    /// and the part is `w` bits wide; with `None` the constant fills the
    /// remaining word (it must be the leftmost part).
    Const {
        /// The constant value (`0 ..= 2^31 - 1`).
        value: Word,
        /// Explicit width in bits, if the source had a `.width` subfield.
        width: Option<u8>,
    },
    /// A `#`-prefixed bit string: both a value and an exact width.
    Bits {
        /// The value of the bit string.
        value: Word,
        /// Number of digits in the string (1..=31).
        width: u8,
    },
    /// A reference to another component's output. `name.f` selects bit `f`;
    /// `name.f.t` selects bits `f..=t` (bit 0 is the least significant);
    /// a bare `name` fills the remaining word.
    Ref {
        /// The referenced component.
        name: Ident,
        /// Low bit of the subfield.
        from: Option<u8>,
        /// High bit of the subfield.
        to: Option<u8>,
    },
}

impl Part {
    /// A full-width constant part.
    pub fn constant(value: Word) -> Self {
        Part::Const { value, width: None }
    }

    /// A constant masked to `width` bits.
    pub fn sized(value: Word, width: u8) -> Self {
        Part::Const {
            value,
            width: Some(width),
        }
    }

    /// A bit string of `width` digits.
    pub fn bits(value: Word, width: u8) -> Self {
        Part::Bits { value, width }
    }

    /// A full-width reference to `name`.
    pub fn reference(name: impl Into<Ident>) -> Self {
        Part::Ref {
            name: name.into(),
            from: None,
            to: None,
        }
    }

    /// A single-bit reference `name.bit`.
    pub fn bit(name: impl Into<Ident>, bit: u8) -> Self {
        Part::Ref {
            name: name.into(),
            from: Some(bit),
            to: None,
        }
    }

    /// A bit-field reference `name.from.to`.
    pub fn field(name: impl Into<Ident>, from: u8, to: u8) -> Self {
        Part::Ref {
            name: name.into(),
            from: Some(from),
            to: Some(to),
        }
    }

    /// The width this part contributes to a concatenation, or `None` when it
    /// fills the remaining word (31-bit semantics of the original).
    pub fn width(&self) -> Option<u8> {
        match self {
            Part::Const { width, .. } => *width,
            Part::Bits { width, .. } => Some(*width),
            Part::Ref {
                from: Some(f),
                to: Some(t),
                ..
            } => Some(t - f + 1),
            Part::Ref {
                from: Some(_),
                to: None,
                ..
            } => Some(1),
            Part::Ref { from: None, .. } => None,
        }
    }

    /// The referenced component name, if this part is a reference.
    pub fn referenced(&self) -> Option<&Ident> {
        match self {
            Part::Ref { name, .. } => Some(name),
            _ => None,
        }
    }
}

impl fmt::Display for Part {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Part::Const { value, width: None } => write!(f, "{value}"),
            Part::Const {
                value,
                width: Some(w),
            } => write!(f, "{value}.{w}"),
            Part::Bits { value, width } => {
                write!(f, "#{value:0width$b}", width = *width as usize)
            }
            Part::Ref {
                name, from: None, ..
            } => write!(f, "{name}"),
            Part::Ref {
                name,
                from: Some(a),
                to: None,
            } => write!(f, "{name}.{a}"),
            Part::Ref {
                name,
                from: Some(a),
                to: Some(b),
            } => write!(f, "{name}.{a}.{b}"),
        }
    }
}

/// A bit-concatenation expression; `parts[0]` is the most significant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Expr {
    /// The parts, most significant first. Never empty.
    pub parts: Vec<Part>,
    /// Source location of the expression token.
    pub span: Span,
}

impl Expr {
    /// Builds an expression from parts (most significant first).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn from_parts(parts: Vec<Part>) -> Self {
        assert!(!parts.is_empty(), "an expression needs at least one part");
        Expr {
            parts,
            span: Span::default(),
        }
    }

    /// A single-part expression.
    pub fn single(part: Part) -> Self {
        Expr::from_parts(vec![part])
    }

    /// A constant expression.
    pub fn constant(value: Word) -> Self {
        Expr::single(Part::constant(value))
    }

    /// A bare reference expression.
    pub fn reference(name: impl Into<Ident>) -> Self {
        Expr::single(Part::reference(name))
    }

    /// Iterates over every referenced component name.
    pub fn references(&self) -> impl Iterator<Item = &Ident> {
        self.parts.iter().filter_map(Part::referenced)
    }

    /// `true` if the expression contains no component references.
    pub fn is_constant(&self) -> bool {
        self.parts.iter().all(|p| p.referenced().is_none())
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.parts.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// An ALU component: `A name function left right`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alu {
    /// Selects one of the 14 ALU functions (Appendix A).
    pub funct: Expr,
    /// Left operand.
    pub left: Expr,
    /// Right operand.
    pub right: Expr,
}

/// A selector (multiplexor): `S name selector value0 ... valuen`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selector {
    /// The index expression.
    pub select: Expr,
    /// The case values; index `i` selects `cases[i]`.
    pub cases: Vec<Expr>,
}

/// A memory: `M name address data operation number [initial values]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memory {
    /// Cell address (0-based).
    pub addr: Expr,
    /// Value stored on write / emitted on output.
    pub data: Expr,
    /// Operation word: `op & 3` is read/write/input/output, `op & 4` traces
    /// writes, `op & 8` traces reads.
    pub opn: Expr,
    /// Number of cells (always positive here; a negative count in the
    /// source sets `init`).
    pub size: u32,
    /// Initial cell values, when the source used a negative count.
    pub init: Option<Vec<Word>>,
}

/// What kind of component a [`Component`] is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComponentKind {
    /// Arithmetic/logic unit.
    Alu(Alu),
    /// Multiplexor.
    Selector(Selector),
    /// Memory, register or I/O port.
    Memory(Memory),
}

impl ComponentKind {
    /// The component letter used in source text.
    pub fn letter(&self) -> char {
        match self {
            ComponentKind::Alu(_) => 'A',
            ComponentKind::Selector(_) => 'S',
            ComponentKind::Memory(_) => 'M',
        }
    }

    /// Iterates over every expression inside the component, in source order.
    pub fn expressions(&self) -> Vec<&Expr> {
        match self {
            ComponentKind::Alu(a) => vec![&a.funct, &a.left, &a.right],
            ComponentKind::Selector(s) => {
                let mut v = vec![&s.select];
                v.extend(s.cases.iter());
                v
            }
            ComponentKind::Memory(m) => vec![&m.addr, &m.data, &m.opn],
        }
    }
}

/// A named component definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// The component name (also its output net).
    pub name: Ident,
    /// The definition.
    pub kind: ComponentKind,
    /// Source location of the defining tokens.
    pub span: Span,
}

/// An entry of the declared-name list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Declared {
    /// The declared name.
    pub name: Ident,
    /// `true` if the name carried a `*` (traced every cycle).
    pub traced: bool,
    /// Source location.
    pub span: Span,
}

/// A parsed specification file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spec {
    /// The first line of the file (starts with `#`).
    pub title: String,
    /// The `= n` cycle count, if present.
    pub cycles: Option<Word>,
    /// The declared-name list, in order (trace output follows this order).
    pub declared: Vec<Declared>,
    /// The components, in definition order (memory update order).
    pub components: Vec<Component>,
}

impl Spec {
    /// Looks up a component by name (first definition wins, as in the
    /// original `findname`).
    pub fn component(&self, name: &str) -> Option<&Component> {
        self.components.iter().find(|c| c.name == name)
    }

    /// Names marked for tracing, in declaration order.
    pub fn traced_names(&self) -> impl Iterator<Item = &Ident> {
        self.declared.iter().filter(|d| d.traced).map(|d| &d.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_validation() {
        assert!(Ident::parse("alu").is_some());
        assert!(Ident::parse("r2d2").is_some());
        assert!(Ident::parse("2r").is_none());
        assert!(Ident::parse("").is_none());
        assert!(Ident::parse("a-b").is_none());
        assert!(Ident::parse("a.b").is_none());
    }

    #[test]
    fn part_widths() {
        assert_eq!(Part::constant(5).width(), None);
        assert_eq!(Part::sized(5, 4).width(), Some(4));
        assert_eq!(Part::bits(1, 2).width(), Some(2));
        assert_eq!(Part::reference("x").width(), None);
        assert_eq!(Part::bit("x", 3).width(), Some(1));
        assert_eq!(Part::field("x", 3, 4).width(), Some(2));
    }

    #[test]
    fn display_round_trip_texts() {
        assert_eq!(Part::constant(7).to_string(), "7");
        assert_eq!(Part::sized(7, 4).to_string(), "7.4");
        assert_eq!(Part::bits(1, 2).to_string(), "#01");
        assert_eq!(Part::bit("count", 1).to_string(), "count.1");
        assert_eq!(Part::field("mem", 3, 4).to_string(), "mem.3.4");

        // Figure 3.1: `mem.3.4, #01, count.1` (without blanks in tokens).
        let e = Expr::from_parts(vec![
            Part::field("mem", 3, 4),
            Part::bits(1, 2),
            Part::bit("count", 1),
        ]);
        assert_eq!(e.to_string(), "mem.3.4,#01,count.1");
    }

    #[test]
    fn expr_references() {
        let e = Expr::from_parts(vec![
            Part::field("mem", 3, 4),
            Part::bits(1, 2),
            Part::bit("count", 1),
        ]);
        let refs: Vec<_> = e.references().map(Ident::as_str).collect();
        assert_eq!(refs, ["mem", "count"]);
        assert!(!e.is_constant());
        assert!(Expr::constant(3).is_constant());
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn empty_expr_panics() {
        let _ = Expr::from_parts(vec![]);
    }
}
