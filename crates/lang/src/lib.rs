//! # rtl-lang — the ASIM II register transfer language
//!
//! This crate implements the specification language of **ASIM II**
//! (Bartel, *Computer Architecture Simulation Using a Register Transfer
//! Language*, Kansas State University, 1986): a hardware description
//! language with exactly three primitives — **ALU**, **Selector** and
//! **Memory** — from which "nearly any piece of digital electronic
//! equipment" can be composed.
//!
//! The crate covers lexing (whitespace-delimited tokens, `{}` comments),
//! `~name` textual macros, the number grammar (`123`, `$hex`, `%bin`,
//! `^pow2`, `+` sums), bit-concatenation expressions with subfields, the
//! full file grammar, and a canonical pretty-printer.
//!
//! ```
//! let src = "# two bit counter\n= 6\ncount* next sum .\n\
//!            M count 0 next 1 1\n\
//!            A next 8 sum %11\n\
//!            A sum 4 count 1 .";
//! let spec = rtl_lang::parse(src).unwrap();
//! assert_eq!(spec.cycles, Some(6));
//! assert_eq!(spec.components.len(), 3);
//! assert!(spec.declared[0].traced);
//! ```
//!
//! Semantics (evaluation, scheduling, simulation) live in `rtl-core`; this
//! crate is purely syntactic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod expr;
pub mod lexer;
pub mod macros;
pub mod modules;
pub mod number;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;

pub use ast::{Alu, Component, ComponentKind, Declared, Expr, Ident, Memory, Part, Selector, Spec};
pub use error::{ParseError, ParseErrorKind};
pub use expr::parse_expr;
pub use number::{parse_number, Word, WORD_MASK};
pub use parser::parse;
pub use pretty::pretty;
pub use span::{Pos, Span};
pub use token::Token;
