//! Canonical pretty-printing of specifications.
//!
//! [`pretty`] renders a [`Spec`] back to source text that re-parses to the
//! same AST (macros are printed in their expanded form, constants in
//! decimal, bit strings with `#`). This gives the library a stable
//! round-trip property that the test suite leans on.

use crate::ast::{ComponentKind, Spec};
use std::fmt::Write as _;

/// Renders a specification as canonical source text.
///
/// ```
/// let src = "# demo\n~one 1\nc* n .\nM c 0 n ~one 1\nA n 4 c ~one .";
/// let spec = rtl_lang::parse(src).unwrap();
/// let text = rtl_lang::pretty(&spec);
/// let again = rtl_lang::parse(&text).unwrap();
/// assert_eq!(rtl_lang::pretty(&again), text);
/// ```
pub fn pretty(spec: &Spec) -> String {
    let mut out = String::new();
    if spec.title.starts_with('#') {
        out.push_str(&spec.title);
    } else {
        out.push_str("# ");
        out.push_str(&spec.title);
    }
    out.push('\n');

    if let Some(n) = spec.cycles {
        let _ = writeln!(out, "= {n}");
    }

    if spec.declared.is_empty() {
        out.push_str(".\n");
    } else {
        for (i, d) in spec.declared.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(d.name.as_str());
            if d.traced {
                out.push('*');
            }
        }
        out.push_str(" .\n");
    }

    for c in &spec.components {
        match &c.kind {
            ComponentKind::Alu(a) => {
                let _ = writeln!(out, "A {} {} {} {}", c.name, a.funct, a.left, a.right);
            }
            ComponentKind::Selector(s) => {
                let _ = write!(out, "S {} {}", c.name, s.select);
                for case in &s.cases {
                    let _ = write!(out, " {case}");
                }
                out.push('\n');
            }
            ComponentKind::Memory(m) => {
                let _ = write!(out, "M {} {} {} {}", c.name, m.addr, m.data, m.opn);
                match &m.init {
                    None => {
                        let _ = writeln!(out, " {}", m.size);
                    }
                    Some(values) => {
                        let _ = write!(out, " -{}", m.size);
                        for v in values {
                            let _ = write!(out, " {v}");
                        }
                        out.push('\n');
                    }
                }
            }
        }
    }
    out.push_str(".\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trips(src: &str) {
        let spec = parse(src).unwrap();
        let text = pretty(&spec);
        let spec2 = parse(&text).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{text}"));
        assert_eq!(pretty(&spec2), text, "pretty is a fixed point");
        // Structural equality modulo spans: compare re-pretty of both.
        assert_eq!(spec.cycles, spec2.cycles);
        assert_eq!(spec.declared.len(), spec2.declared.len());
        assert_eq!(spec.components.len(), spec2.components.len());
    }

    #[test]
    fn counter_round_trip() {
        round_trips("# up counter\n= 8\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .");
    }

    #[test]
    fn selector_and_init_round_trip() {
        round_trips(
            "# demo\nsel mem x .\nS sel x.0.1 1 2 3 4\n\
             M mem x,%1 sel 1 -4 9 8 7 6\nA x 4 mem.0.3 #01 .",
        );
    }

    #[test]
    fn empty_spec_round_trip() {
        round_trips("# empty\n.\n.");
    }

    #[test]
    fn macros_print_expanded() {
        let spec = parse("# m\n~w 8\nx .\nA x rom.~w 0 0 .").unwrap();
        let text = pretty(&spec);
        assert!(text.contains("rom.8"), "{text}");
        assert!(!text.contains('~'), "{text}");
    }

    #[test]
    fn title_without_hash_gets_one() {
        let mut spec = parse("# t\n.\n.").unwrap();
        spec.title = "bare title".into();
        let text = pretty(&spec);
        assert!(text.starts_with("# bare title\n"));
        assert!(parse(&text).is_ok());
    }
}
