//! Compile-time module instantiation — the §5.4 future-work feature.
//!
//! "The behavior of an electronic circuit is difficult to express in a
//! modular fashion without providing the actual description of the module
//! and expanding that description at compile time" (§5.4). That is exactly
//! what this module does: a specification is treated as a *module*, and
//! [`instantiate`] expands it into a flat set of components under an
//! instance prefix, with selected internal names rebound to the
//! surrounding design's nets (ports).
//!
//! ```
//! use rtl_lang::modules::{instantiate, Instance};
//!
//! // A two-bit counter module with an external increment input `inc`.
//! let module = rtl_lang::parse(
//!     "# counter module\nvalue next .\n\
//!      M value 0 next.0.1 1 1\nA next 4 value inc .",
//! ).unwrap();
//!
//! let inst = Instance::new("c0").bind("inc", "one");
//! let comps = instantiate(&module, &inst).unwrap();
//! let names: Vec<_> = comps.iter().map(|c| c.name.as_str()).collect();
//! assert_eq!(names, ["c0value", "c0next"]);
//! ```

use crate::ast::{Component, ComponentKind, Expr, Ident, Part, Spec};
use std::collections::HashMap;
use std::fmt;

/// An instantiation request: the prefix for internal names plus the port
/// bindings (module-internal name → outer net name).
#[derive(Debug, Clone, Default)]
pub struct Instance {
    prefix: String,
    bindings: HashMap<String, String>,
}

impl Instance {
    /// Creates an instantiation with a name prefix. The prefix must itself
    /// be a valid name fragment (letters and digits).
    ///
    /// # Panics
    ///
    /// Panics on prefixes that would produce invalid component names.
    pub fn new(prefix: impl Into<String>) -> Self {
        let prefix = prefix.into();
        assert!(
            !prefix.is_empty()
                && prefix.chars().all(|c| c.is_ascii_alphanumeric())
                && prefix
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphabetic()),
            "instance prefix {prefix:?} must be letters/digits starting with a letter"
        );
        Instance {
            prefix,
            bindings: HashMap::new(),
        }
    }

    /// Binds a module-internal name to an outer component name: every
    /// reference to `port` inside the module resolves to `outer` after
    /// expansion. Chainable.
    pub fn bind(mut self, port: impl Into<String>, outer: impl Into<String>) -> Self {
        self.bindings.insert(port.into(), outer.into());
        self
    }

    /// The instance prefix.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// The flattened name of a module-internal component: `prefix + name`.
    pub fn flat_name(&self, inner: &str) -> String {
        format!("{}{}", self.prefix, inner)
    }
}

/// Errors from [`instantiate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModuleError {
    /// A binding targets a name the module also *defines* — ports must be
    /// free (referenced but not defined) inside the module.
    BindsDefinedName(String),
    /// The module references a name it neither defines nor has bound —
    /// after expansion it would dangle.
    UnboundReference(String),
    /// A binding's outer name is not a valid identifier (letters followed
    /// by letters and digits), so splicing it into the outer spec would
    /// produce a component no reference could ever name.
    InvalidBinding(String),
}

impl fmt::Display for ModuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModuleError::BindsDefinedName(n) => {
                write!(f, "binding {n} targets a name the module defines")
            }
            ModuleError::UnboundReference(n) => {
                write!(
                    f,
                    "module references {n}, which is neither defined nor bound"
                )
            }
            ModuleError::InvalidBinding(n) => {
                write!(f, "binding target {n:?} is not a valid component name")
            }
        }
    }
}

impl std::error::Error for ModuleError {}

/// Expands a module under an instance, returning the flattened components
/// ready to splice into an outer [`Spec`].
///
/// Renaming rules, per reference:
/// * names the module *defines* become `prefix + name`;
/// * names listed in the instance's bindings become the bound outer name;
/// * anything else is an [`ModuleError::UnboundReference`].
///
/// # Errors
///
/// See [`ModuleError`].
pub fn instantiate(module: &Spec, inst: &Instance) -> Result<Vec<Component>, ModuleError> {
    let defined: HashMap<&str, ()> = module
        .components
        .iter()
        .map(|c| (c.name.as_str(), ()))
        .collect();
    for port in inst.bindings.keys() {
        if defined.contains_key(port.as_str()) {
            return Err(ModuleError::BindsDefinedName(port.clone()));
        }
    }

    let rename = |name: &Ident| -> Result<Ident, ModuleError> {
        if defined.contains_key(name.as_str()) {
            // Invariant-preserving: the prefix is validated by
            // `Instance::new` (letters/digits, leading letter) and `name`
            // is already a parsed identifier, so the concatenation is a
            // valid identifier by construction.
            Ok(Ident::new_unchecked(inst.flat_name(name.as_str())))
        } else if let Some(outer) = inst.bindings.get(name.as_str()) {
            // Binding targets arrive as raw strings from the caller, so
            // they go through the checked constructor.
            Ident::parse(outer).ok_or_else(|| ModuleError::InvalidBinding(outer.clone()))
        } else {
            Err(ModuleError::UnboundReference(name.as_str().to_string()))
        }
    };

    let rename_expr = |e: &Expr| -> Result<Expr, ModuleError> {
        let parts = e
            .parts
            .iter()
            .map(|p| match p {
                Part::Ref { name, from, to } => Ok(Part::Ref {
                    name: rename(name)?,
                    from: *from,
                    to: *to,
                }),
                other => Ok(other.clone()),
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Expr {
            parts,
            span: e.span,
        })
    };

    module
        .components
        .iter()
        .map(|c| {
            let kind = match &c.kind {
                ComponentKind::Alu(a) => ComponentKind::Alu(crate::ast::Alu {
                    funct: rename_expr(&a.funct)?,
                    left: rename_expr(&a.left)?,
                    right: rename_expr(&a.right)?,
                }),
                ComponentKind::Selector(s) => ComponentKind::Selector(crate::ast::Selector {
                    select: rename_expr(&s.select)?,
                    cases: s
                        .cases
                        .iter()
                        .map(&rename_expr)
                        .collect::<Result<Vec<_>, _>>()?,
                }),
                ComponentKind::Memory(m) => ComponentKind::Memory(crate::ast::Memory {
                    addr: rename_expr(&m.addr)?,
                    data: rename_expr(&m.data)?,
                    opn: rename_expr(&m.opn)?,
                    size: m.size,
                    init: m.init.clone(),
                }),
            };
            Ok(Component {
                name: rename(&c.name)?,
                kind,
                span: c.span,
            })
        })
        .collect()
}

/// Splices instantiated components into a host specification, declaring
/// each flattened name (untraced).
pub fn splice(host: &mut Spec, components: Vec<Component>) {
    for c in &components {
        host.declared.push(crate::ast::Declared {
            name: c.name.clone(),
            traced: false,
            span: c.span,
        });
    }
    host.components.extend(components);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::pretty::pretty;

    const COUNTER_MODULE: &str = "# counter module\nvalue next .\n\
                                  M value 0 next.0.3 1 1\nA next 4 value step .";

    #[test]
    fn invalid_binding_target_is_rejected() {
        let module = parse(COUNTER_MODULE).unwrap();
        let err = instantiate(&module, &Instance::new("c0").bind("step", "a.b")).unwrap_err();
        assert_eq!(err, ModuleError::InvalidBinding("a.b".into()));
        assert!(err.to_string().contains("not a valid component name"));
    }

    #[test]
    fn two_instances_of_one_module() {
        let module = parse(COUNTER_MODULE).unwrap();
        let mut host =
            parse("# host\none* two* eq* .\nA one 2 1 0\nA two 2 2 0\nA eq 12 c0value c1value .")
                .unwrap();
        splice(
            &mut host,
            instantiate(&module, &Instance::new("c0").bind("step", "one")).unwrap(),
        );
        splice(
            &mut host,
            instantiate(&module, &Instance::new("c1").bind("step", "two")).unwrap(),
        );
        // The flattened spec parses, pretty-prints and round-trips.
        let text = pretty(&host);
        let again = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(pretty(&again), text);
        assert_eq!(host.components.len(), 3 + 4);
        assert!(host.component("c0value").is_some());
        assert!(host.component("c1next").is_some());
    }

    #[test]
    fn bindings_rewrite_references() {
        let module = parse(COUNTER_MODULE).unwrap();
        let comps = instantiate(&module, &Instance::new("u").bind("step", "delta")).unwrap();
        let next = &comps[1];
        match &next.kind {
            ComponentKind::Alu(a) => {
                let refs: Vec<&str> = a
                    .left
                    .references()
                    .chain(a.right.references())
                    .map(Ident::as_str)
                    .collect();
                assert_eq!(refs, ["uvalue", "delta"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unbound_reference_is_diagnosed() {
        let module = parse(COUNTER_MODULE).unwrap();
        let err = instantiate(&module, &Instance::new("u")).unwrap_err();
        assert_eq!(err, ModuleError::UnboundReference("step".into()));
        assert!(err.to_string().contains("neither defined nor bound"));
    }

    #[test]
    fn binding_a_defined_name_is_diagnosed() {
        let module = parse(COUNTER_MODULE).unwrap();
        let err = instantiate(&module, &Instance::new("u").bind("value", "x")).unwrap_err();
        assert_eq!(err, ModuleError::BindsDefinedName("value".into()));
    }

    #[test]
    #[should_panic(expected = "must be letters/digits")]
    fn invalid_prefix_panics() {
        let _ = Instance::new("0bad");
    }

    #[test]
    fn subfields_survive_renaming() {
        let module = parse("# m\nr .\nM r 0 r.0.3 1 1 .").unwrap();
        let comps = instantiate(&module, &Instance::new("z")).unwrap();
        match &comps[0].kind {
            ComponentKind::Memory(m) => {
                assert_eq!(m.data.parts, vec![Part::field("zr", 0, 3)]);
            }
            other => panic!("{other:?}"),
        }
    }
}
