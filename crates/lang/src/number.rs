//! The ASIM II *number* grammar (the `str2num` of the original compiler).
//!
//! A number is a `+`-separated sum of atoms, where an atom is one of
//!
//! * `123` — decimal,
//! * `$1F` — hexadecimal,
//! * `%1011` — binary,
//! * `^8` — a power of two (`2^8 = 256`).
//!
//! Values are restricted to the 31-bit word range `0 ..= 2^31 - 1` used by
//! the simulator (`mask` in the generated code). Unlike the original, which
//! silently wrapped mid-sum, out-of-range numbers are diagnosed
//! (divergence **D3** in `DESIGN.md`).

/// The simulator word type. Wide enough to hold 31-bit hardware words plus
/// the negative intermediates that ALU subtraction can produce.
pub type Word = i64;

/// The 31-bit word mask, `2^31 - 1`. This is the `mask` constant of the
/// generated simulators and the modulus of the shift-left ALU function.
pub const WORD_MASK: Word = 0x7FFF_FFFF;

/// Why a number failed to parse. Mapped to
/// [`ParseErrorKind`](crate::error::ParseErrorKind) by callers that know the
/// source location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumberError {
    /// Not derivable from the number grammar.
    Malformed,
    /// Syntactically fine but out of the 31-bit range.
    TooLarge,
}

/// Parses a complete number token (a sum of atoms).
///
/// ```
/// use rtl_lang::number::parse_number;
/// assert_eq!(parse_number("128+3+^8"), Ok(387));
/// assert_eq!(parse_number("$FF"), Ok(255));
/// assert_eq!(parse_number("%1011"), Ok(11));
/// assert_eq!(parse_number("^5"), Ok(32));
/// assert!(parse_number("12a").is_err());
/// ```
pub fn parse_number(s: &str) -> Result<Word, NumberError> {
    if s.is_empty() {
        return Err(NumberError::Malformed);
    }
    let mut total: Word = 0;
    for atom in s.split('+') {
        total = total
            .checked_add(parse_atom(atom)?)
            .ok_or(NumberError::TooLarge)?;
        if total > WORD_MASK {
            return Err(NumberError::TooLarge);
        }
    }
    Ok(total)
}

/// Parses a single atom (no `+`).
fn parse_atom(atom: &str) -> Result<Word, NumberError> {
    let mut chars = atom.chars();
    let first = chars.next().ok_or(NumberError::Malformed)?;
    match first {
        '$' => parse_radix(chars.as_str(), 16),
        '%' => parse_radix(chars.as_str(), 2),
        '^' => {
            let exp = parse_radix(chars.as_str(), 10)?;
            if exp > 30 {
                return Err(NumberError::TooLarge);
            }
            Ok(1i64 << exp)
        }
        '0'..='9' => parse_radix(atom, 10),
        _ => Err(NumberError::Malformed),
    }
}

fn parse_radix(digits: &str, radix: u32) -> Result<Word, NumberError> {
    if digits.is_empty() {
        return Err(NumberError::Malformed);
    }
    let mut value: Word = 0;
    for c in digits.chars() {
        let d = c.to_digit(radix).ok_or(NumberError::Malformed)?;
        value = value
            .checked_mul(radix as Word)
            .and_then(|v| v.checked_add(d as Word))
            .ok_or(NumberError::TooLarge)?;
        if value > WORD_MASK {
            return Err(NumberError::TooLarge);
        }
    }
    Ok(value)
}

/// `true` if `s` starts like a number atom (used by the expression parser to
/// distinguish numeric parts from component references).
pub fn starts_number(s: &str) -> bool {
    matches!(s.chars().next(), Some('$' | '%' | '^' | '0'..='9'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal() {
        assert_eq!(parse_number("0"), Ok(0));
        assert_eq!(parse_number("5545"), Ok(5545));
        assert_eq!(parse_number("2147483647"), Ok(WORD_MASK));
    }

    #[test]
    fn hex_accepts_both_cases() {
        assert_eq!(parse_number("$ff"), Ok(255));
        assert_eq!(parse_number("$FF"), Ok(255));
        assert_eq!(parse_number("$3a"), Ok(58));
    }

    #[test]
    fn binary() {
        assert_eq!(parse_number("%0"), Ok(0));
        assert_eq!(parse_number("%110"), Ok(6));
        assert_eq!(parse_number("%0100"), Ok(4));
    }

    #[test]
    fn power_of_two() {
        assert_eq!(parse_number("^0"), Ok(1));
        assert_eq!(parse_number("^12"), Ok(4096));
        assert_eq!(parse_number("^30"), Ok(1 << 30));
        assert_eq!(parse_number("^31"), Err(NumberError::TooLarge));
    }

    #[test]
    fn sums_from_the_thesis_decode_rom() {
        // `128+3+^8` appears in the Appendix D parm ROM.
        assert_eq!(parse_number("128+3+^8"), Ok(387));
        // `0+^5+^7+^8` = 416.
        assert_eq!(parse_number("0+^5+^7+^8"), Ok(416));
        // `16+^5+^7+^8` = 432.
        assert_eq!(parse_number("16+^5+^7+^8"), Ok(432));
    }

    #[test]
    fn malformed() {
        for bad in [
            "", "+", "1+", "+1", "12a", "$", "%", "^", "%12", "$G1", "^x", "-3", "1.2",
        ] {
            assert_eq!(
                parse_number(bad),
                Err(NumberError::Malformed),
                "input {bad:?}"
            );
        }
    }

    #[test]
    fn too_large() {
        assert_eq!(parse_number("2147483648"), Err(NumberError::TooLarge));
        assert_eq!(
            parse_number("2147483647+1"),
            Err(NumberError::TooLarge),
            "sums are range-checked too"
        );
        assert_eq!(
            parse_number("99999999999999999999"),
            Err(NumberError::TooLarge)
        );
    }

    #[test]
    fn starts_number_classifier() {
        assert!(starts_number("12"));
        assert!(starts_number("$F"));
        assert!(starts_number("%1"));
        assert!(starts_number("^3"));
        assert!(!starts_number("abc"));
        assert!(!starts_number("#01"));
        assert!(!starts_number(""));
    }
}
