//! Source positions and spans used by diagnostics.

use std::fmt;

/// A position in the source text. Lines and columns are 1-based, matching the
/// way editors (and the original ASIM II error messages) count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Pos {
    /// Creates a position from a 1-based line and column.
    ///
    /// ```
    /// use rtl_lang::Pos;
    /// let p = Pos::new(3, 7);
    /// assert_eq!(p.line, 3);
    /// ```
    pub const fn new(line: u32, col: u32) -> Self {
        Pos { line, col }
    }

    /// The first position of a document.
    pub const fn start() -> Self {
        Pos { line: 1, col: 1 }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}", self.line, self.col)
    }
}

/// A contiguous region of source text, from `start` to `end` inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// First position covered by the span.
    pub start: Pos,
    /// Last position covered by the span.
    pub end: Pos,
}

impl Span {
    /// Creates a span covering `start..=end`.
    pub const fn new(start: Pos, end: Pos) -> Self {
        Span { start, end }
    }

    /// Creates a zero-width span at a single position.
    pub const fn point(pos: Pos) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }

    /// The smallest span containing both `self` and `other`.
    ///
    /// ```
    /// use rtl_lang::{Pos, Span};
    /// let a = Span::point(Pos::new(1, 2));
    /// let b = Span::point(Pos::new(2, 9));
    /// assert_eq!(a.merge(b), Span::new(Pos::new(1, 2), Pos::new(2, 9)));
    /// ```
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_orders_by_line_then_col() {
        assert!(Pos::new(1, 9) < Pos::new(2, 1));
        assert!(Pos::new(2, 1) < Pos::new(2, 2));
    }

    #[test]
    fn merge_is_commutative() {
        let a = Span::new(Pos::new(1, 1), Pos::new(1, 5));
        let b = Span::new(Pos::new(1, 3), Pos::new(2, 2));
        assert_eq!(a.merge(b), b.merge(a));
        assert_eq!(a.merge(b).end, Pos::new(2, 2));
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(Pos::new(4, 2).to_string(), "line 4, col 2");
        assert_eq!(Span::point(Pos::new(4, 2)).to_string(), "line 4, col 2");
    }
}
