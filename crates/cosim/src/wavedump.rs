//! Waveform-diff reporting: the divergent window of each lane as
//! side-by-side VCD documents.
//!
//! A [`DivergenceReport`](crate::DivergenceReport) names the first
//! divergent cycle and quotes trace text — but "what did the signals *do*
//! leading up to it" is a waveform question. This module replays each
//! stepped lane of a diverged scenario deterministically from cycle 0 and
//! records the window of cycles ending at the divergence as a VCD
//! document per lane, in exactly the sample format
//! [`VcdSink`] uses (width-masked cycle-edge
//! samples — the same values the [`VcdDiff`](rtl_core::observe::VcdDiff)
//! lens compares). Load the documents side by side in any waveform viewer
//! and the first differing sample *is* the divergence.
//!
//! Timestamps are relative to the window start (the first sampled cycle
//! is `#0`); each document's absolute window is returned alongside its
//! path and printed by `asim2 cosim --dump-divergence DIR`.

use crate::stream::ScenarioError;
use rtl_core::vcd::{VcdOptions, VcdSink};
use rtl_core::{
    Design, EngineLane, EngineOptions, EngineRegistry, Session, SimState, TraceSink, Until,
};
use rtl_machines::Scenario;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// How many cycles of history each document keeps before (and including)
/// the divergent cycle.
pub const DEFAULT_WINDOW: u64 = 32;

/// One lane's dumped window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneDump {
    /// The lane's registry name.
    pub lane: String,
    /// Where the document was written (`DIR/<lane>.vcd`).
    pub path: PathBuf,
    /// The absolute cycle range sampled, `start..end` (timestamp `#0` in
    /// the document is absolute cycle `start`).
    pub start: u64,
    /// One past the last sampled cycle — `divergence cycle + 1` unless
    /// the lane halted earlier.
    pub end: u64,
}

/// A [`TraceSink`] forwarding cycle-edge samples to a [`VcdSink`] only
/// inside the window: the first `skip` cycles run silently.
struct WindowSink<'a> {
    inner: VcdSink<&'a mut Vec<u8>>,
    skip: u64,
    seen: u64,
}

impl TraceSink for WindowSink<'_> {
    fn write_bytes(&mut self, _bytes: &[u8]) -> io::Result<()> {
        Ok(())
    }

    fn end_cycle(&mut self, design: &Design, state: &SimState) -> io::Result<()> {
        let index = self.seen;
        self.seen += 1;
        if index >= self.skip {
            self.inner.end_cycle(design, state)
        } else {
            Ok(())
        }
    }
}

/// Replays every *stepped* lane in `names` over `scenario` and writes one
/// VCD document per lane into `dir`, covering the `window` cycles ending
/// at `divergence_cycle` inclusive. Stream lanes (subprocess stdout) have
/// no steppable state and are skipped. A lane that halts before the
/// window still gets a (possibly empty) well-formed document — the halt
/// itself is the interesting signal there.
///
/// # Errors
///
/// Specification load failures, unknown lane names, or I/O.
pub fn dump_divergence(
    registry: &EngineRegistry,
    names: &[String],
    scenario: &Scenario,
    divergence_cycle: u64,
    window: u64,
    dir: &Path,
) -> Result<Vec<LaneDump>, ScenarioError> {
    let design = scenario.design()?;
    std::fs::create_dir_all(dir)
        .map_err(|e| ScenarioError::Engine(format!("cannot create {}: {e}", dir.display())))?;
    let end = divergence_cycle.saturating_add(1);
    let start = end.saturating_sub(window.max(1));
    let mut dumps = Vec::new();
    for name in names {
        let lane = registry
            .build(
                name,
                &design,
                &EngineOptions {
                    trace: true,
                    ..EngineOptions::default()
                },
            )
            .map_err(ScenarioError::Engine)?;
        let EngineLane::Stepped(engine) = lane else {
            continue;
        };
        let mut doc = Vec::new();
        let sampled = {
            let mut sink = WindowSink {
                inner: VcdSink::new(&mut doc, VcdOptions::default()),
                skip: start,
                seen: 0,
            };
            // Header up front: a lane that halts before the window start
            // still produces a well-formed zero-sample document.
            sink.inner.ensure_header(&design).map_err(|e| {
                ScenarioError::Engine(format!("cannot render VCD for {name:?}: {e}"))
            })?;
            let mut session = Session::over(engine)
                .sink(sink)
                .scripted(scenario.input.iter().copied())
                .build();
            // A halt inside the replay is expected for error-kind
            // divergences; the document simply ends where the lane did.
            let outcome = session.run(Until::Cycles(end));
            outcome.cycles.saturating_sub(start)
        };
        writeln!(doc, "#{sampled}")
            .map_err(|e| ScenarioError::Engine(format!("cannot render VCD for {name:?}: {e}")))?;
        let path = dir.join(format!("{name}.vcd"));
        std::fs::write(&path, &doc)
            .map_err(|e| ScenarioError::Engine(format!("cannot write {}: {e}", path.display())))?;
        dumps.push(LaneDump {
            lane: name.clone(),
            path,
            start,
            end: start + sampled,
        });
    }
    Ok(dumps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultyVmFactory;
    use rtl_machines::scenarios;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("asim2-wavedump-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn dumps_side_by_side_windows_that_differ_at_the_divergence() {
        let mut registry = crate::engines::default_registry();
        registry.register(Box::new(FaultyVmFactory::from_cycle(10)));
        let scenario = scenarios::by_name("classic/counter")
            .unwrap()
            .with_cycles(20);
        let names = vec!["interp".to_string(), "vm-fault".to_string()];
        let dir = scratch("fault");
        let dumps = dump_divergence(&registry, &names, &scenario, 10, 8, &dir).unwrap();
        assert_eq!(dumps.len(), 2);
        let healthy = std::fs::read_to_string(&dumps[0].path).unwrap();
        let faulty = std::fs::read_to_string(&dumps[1].path).unwrap();
        for (dump, text) in [(&dumps[0], &healthy), (&dumps[1], &faulty)] {
            assert_eq!((dump.start, dump.end), (3, 11), "{dump:?}");
            assert!(text.contains("$enddefinitions $end"), "{text}");
            assert!(text.ends_with("#8\n"), "window-relative close: {text}");
        }
        // The window covers the corruption onset, so the documents differ
        // — the faulty lane's observed output flips bit 0 from cycle 10.
        assert_ne!(healthy, faulty);
        // But the shared prefix (cycles before the trigger) is identical.
        let diverge_at = healthy
            .lines()
            .zip(faulty.lines())
            .position(|(a, b)| a != b)
            .expect("documents differ");
        assert!(diverge_at > 0, "agreeing prefix precedes the divergence");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_lanes_are_skipped_and_windows_clamp_to_cycle_zero() {
        let registry = crate::engines::default_registry();
        let scenario = scenarios::by_name("classic/counter")
            .unwrap()
            .with_cycles(8);
        let names = vec!["interp".to_string(), "vm".to_string(), "rust".to_string()];
        let dir = scratch("clamp");
        // Divergence at cycle 2 with a huge window: starts at 0.
        let dumps = dump_divergence(&registry, &names, &scenario, 2, 500, &dir).unwrap();
        assert_eq!(dumps.len(), 2, "the rust stream lane has no waveform");
        assert_eq!((dumps[0].start, dumps[0].end), (0, 3));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
