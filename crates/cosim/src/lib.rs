//! # rtl-cosim — differential co-simulation and scenario fuzzing
//!
//! The [`Engine`](rtl_core::Engine) contract promises that the
//! interpreter, the bytecode VM and the generated simulators are
//! observationally identical. This crate is the subsystem that *enforces*
//! the promise:
//!
//! * [`lockstep`] — drives N engines over the same design and stimulus,
//!   every lane a [`Session`](rtl_core::Session), compared per interval
//!   by a pluggable [`Comparator`] set
//!   (trace bytes, cycle counters, outputs, memory cells, VCD waveform
//!   samples — see [`rtl_core::observe`]). On mismatch it produces a
//!   structured [`DivergenceReport`] pinpointing the first divergent
//!   cycle and component, with a trace window per engine. Comparison can
//!   run at a coarse interval (`compare_every`); the harness then uses
//!   the lanes' [`Session::checkpoint`](rtl_core::Session::checkpoint)/
//!   [`resume`](rtl_core::Session::resume) to rewind and bisect to the
//!   exact cycle — and the same mechanism lets one long case stop and
//!   restart mid-run ([`Lockstep::checkpoint`]/[`Lockstep::resume`]).
//! * [`engines`] — assembles the *default* core
//!   [`EngineRegistry`](rtl_core::EngineRegistry): `interp`,
//!   `interp-faithful`, `vm`, `vm-noopt`, the `rust` generated-binary
//!   subprocess lane, and the deliberately broken `vm-fault` self-test
//!   lane ([`fault`]); [`EngineKind`] stays as a thin `Copy` alias over
//!   it.
//! * [`stream`] — drives scenarios across registry lanes by name,
//!   comparing stream lanes (subprocess stdout) against the stepped
//!   lanes' agreed trace.
//! * [`generate`] — a seeded, deterministic scenario generator producing
//!   valid random specifications *plus stimulus scripts* (memory-mapped
//!   input included), so lockstep doubles as a fuzzer.
//! * [`fuzz`] — the fuzz campaign driver and its structured report.
//! * [`corpus`] — runs the whole built-in
//!   [`rtl_machines::scenarios`] corpus through lockstep.
//! * [`digest`] — per-interval observation-fingerprint streams: export a
//!   reference lane's digests and replay them on another machine as a
//!   [`DigestLane`] comparison lane — cross-shard lockstep at 8 bytes
//!   per interval.
//! * [`wavedump`] — waveform-diff reporting: the divergent window of
//!   each lane rendered as side-by-side VCD documents.
//!
//! ```
//! use rtl_cosim::{run_scenario, CosimOptions, CosimOutcome, EngineKind};
//! let scenario = rtl_machines::scenarios::by_name("classic/counter").unwrap();
//! let outcome = run_scenario(
//!     &scenario,
//!     &[EngineKind::Interp, EngineKind::Vm],
//!     &CosimOptions::default(),
//! ).unwrap();
//! assert!(matches!(outcome, CosimOutcome::Agreement { .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod digest;
pub mod engines;
pub mod fault;
pub mod fuzz;
pub mod generate;
pub mod lockstep;
mod report;
pub mod stream;
pub mod wavedump;

pub use corpus::{run_corpus, run_corpus_names, CorpusReport};
pub use digest::{DigestLane, DigestLog, DigestRecorder};
pub use engines::{default_registry, registry, EngineKind};
pub use fault::{FaultyVmFactory, DEFAULT_FAULT_CYCLE};
pub use fuzz::{run_fuzz, run_fuzz_case, FuzzCase, FuzzOptions, FuzzReport};
pub use generate::{generate_scenario, GenOptions};
pub use lockstep::{
    run_scenario, CosimOptions, CosimOutcome, DivergenceReport, Lockstep, LockstepCheckpoint,
};
pub use rtl_core::observe::{Comparator, CompareMode, DivergenceKind, LaneReport, LaneStats};
pub use stream::{run_scenario_names, ScenarioError};

/// Writes a file via a temp sibling + rename, so a kill mid-write never
/// leaves a truncated document behind (lockstep checkpoints, digest
/// streams).
pub(crate) fn write_atomic(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let tmp = dir
        .unwrap_or_else(|| std::path::Path::new("."))
        .join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            path.file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("document")
        ));
    std::fs::write(&tmp, bytes)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}
