//! Digest streams: comparing lanes across machines without shipping
//! traces.
//!
//! A distributed campaign shards its case range over machines that share
//! no file system. To let one shard cross-check another's reference lane,
//! it does not need the lane's trace or memory image — only the lane's
//! [`Observation::fingerprint`] at every comparison interval: 8 bytes per
//! interval, however large the design, and (by the fingerprint contract)
//! equal iff every shipped value lens would agree.
//!
//! * [`DigestLog`] — the stream as a value: scenario name, design
//!   fingerprint, comparison stride, and one `(cycle, digest)` entry per
//!   interval, with a versioned text serialization
//!   (`asim2 cosim --export-digests FILE`).
//! * [`DigestRecorder`] — a [`Comparator`] that never diverges; it taps
//!   the reference lane's observation at each interval and records its
//!   fingerprint into a shared log.
//! * [`DigestLane`] — the other machine's lane, replayed from its log: a
//!   [`Comparator`] that checks the *local* reference lane's fingerprint
//!   against the recorded digest at the same cycle
//!   (`asim2 cosim --check-digests FILE`). A mismatch is a
//!   [`DivergenceKind::Digest`].
//!
//! Caveats (also see [`rtl_core::observe::Digest`]): digests fold in the
//! observation *mask*, so the exporting and checking reference lanes must
//! observe the same component set — export and check with the same lane
//! list, or at least the same reference engine. Strides must match too
//! (validated on load). A log exported from a run that *diverged* carries
//! the rewind-bisection's off-stride tail entries; only logs from agreed
//! runs are meaningful to check against. And at coarse strides a digest
//! mismatch is pinned to the interval boundary, not bisected to the exact
//! cycle — the recorded stream has nothing between intervals to bisect
//! against.

use rtl_core::observe::{Comparator, Observation};
use rtl_core::DivergenceKind;
use std::cell::RefCell;
use std::io::{self, BufRead, Write};
use std::path::Path;
use std::rc::Rc;

/// The digest stream format line; bump on breaking changes.
pub const FORMAT: &str = "asim2-digests v1";

/// A recorded stream of per-interval reference-lane digests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestLog {
    /// The scenario the stream was recorded over (informational).
    pub scenario: String,
    /// The design's shape fingerprint
    /// ([`design_fingerprint`](rtl_core::design_fingerprint)) — a check
    /// refuses a log recorded over a different design.
    pub design: u64,
    /// The comparison stride the stream was recorded at.
    pub every: u64,
    /// `(cycle, digest)` per interval, cycles strictly increasing.
    pub entries: Vec<(u64, u64)>,
}

impl DigestLog {
    /// An empty log for a scenario/design/stride triple.
    pub fn new(scenario: impl Into<String>, design: u64, every: u64) -> Self {
        DigestLog {
            scenario: scenario.into(),
            design,
            every: every.max(1),
            entries: Vec::new(),
        }
    }

    /// Appends one interval digest; out-of-order cycles (a bisection
    /// replaying below the last recorded interval) are ignored.
    pub fn record(&mut self, cycle: u64, digest: u64) {
        if self.entries.last().is_none_or(|&(last, _)| cycle > last) {
            self.entries.push((cycle, digest));
        }
    }

    /// The digest recorded at exactly `cycle`, if any.
    pub fn digest_at(&self, cycle: u64) -> Option<u64> {
        self.entries
            .binary_search_by_key(&cycle, |&(c, _)| c)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Serializes the stream.
    ///
    /// # Errors
    ///
    /// I/O failure of the writer.
    pub fn write(&self, out: &mut dyn Write) -> io::Result<()> {
        writeln!(out, "{FORMAT}")?;
        writeln!(out, "scenario {}", self.scenario)?;
        writeln!(out, "design {:016x}", self.design)?;
        writeln!(out, "every {}", self.every)?;
        for (cycle, digest) in &self.entries {
            writeln!(out, "{cycle} {digest:016x}")?;
        }
        Ok(())
    }

    /// [`write`](DigestLog::write) to a file, atomically (temp sibling +
    /// rename).
    ///
    /// # Errors
    ///
    /// File creation, write, or rename failure.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut doc = Vec::new();
        self.write(&mut doc)?;
        crate::write_atomic(path.as_ref(), &doc)
    }

    /// Parses a serialized stream.
    ///
    /// # Errors
    ///
    /// A message naming the malformed line.
    pub fn parse(input: &mut dyn BufRead) -> io::Result<DigestLog> {
        let bad = |what: String| io::Error::new(io::ErrorKind::InvalidData, what);
        let next = |input: &mut dyn BufRead, what: &str| -> io::Result<String> {
            rtl_core::session::read_doc_line(input, what)
        };
        if next(input, "magic")? != FORMAT {
            return Err(bad(format!("not an {FORMAT} stream")));
        }
        let scenario = next(input, "scenario")?
            .strip_prefix("scenario ")
            .map(str::to_string)
            .ok_or_else(|| bad("bad scenario line".into()))?;
        let design = next(input, "design")?
            .strip_prefix("design ")
            .and_then(|h| u64::from_str_radix(h.trim(), 16).ok())
            .ok_or_else(|| bad("bad design line".into()))?;
        let every = next(input, "every")?
            .strip_prefix("every ")
            .and_then(|n| n.trim().parse().ok())
            .ok_or_else(|| bad("bad every line".into()))?;
        let mut log = DigestLog::new(scenario, design, every);
        let mut line = String::new();
        loop {
            line.clear();
            if input.read_line(&mut line)? == 0 {
                return Ok(log);
            }
            let text = line.trim();
            if text.is_empty() {
                continue;
            }
            let (cycle, digest) = text
                .split_once(' ')
                .and_then(|(c, d)| Some((c.parse().ok()?, u64::from_str_radix(d, 16).ok()?)))
                .ok_or_else(|| bad(format!("bad digest line {text:?}")))?;
            if log.entries.last().is_some_and(|&(last, _)| cycle <= last) {
                return Err(bad(format!("digest cycles not increasing at {cycle}")));
            }
            log.entries.push((cycle, digest));
        }
    }

    /// [`parse`](DigestLog::parse) from a file path.
    ///
    /// # Errors
    ///
    /// See [`DigestLog::parse`]; file-open failures too.
    pub fn load(path: impl AsRef<Path>) -> io::Result<DigestLog> {
        let mut file = io::BufReader::new(std::fs::File::open(path)?);
        Self::parse(&mut file)
    }
}

/// A [`Comparator`] that records the reference lane's observation
/// fingerprint at every comparison interval into a shared [`DigestLog`]
/// — and never reports a divergence itself. Append it last so the log
/// only grows when the configured lenses agreed up to it.
pub struct DigestRecorder {
    log: Rc<RefCell<DigestLog>>,
}

impl DigestRecorder {
    /// A recorder appending into `log`.
    pub fn new(log: Rc<RefCell<DigestLog>>) -> Self {
        DigestRecorder { log }
    }
}

impl Comparator for DigestRecorder {
    fn name(&self) -> &str {
        "digest-record"
    }

    fn compare(
        &mut self,
        reference: &Observation<'_>,
        _candidate: &Observation<'_>,
    ) -> Option<DivergenceKind> {
        // Called once per candidate lane at the same cycle; record()
        // drops the repeats (and any bisection replays below the tip).
        let cycle = u64::try_from(reference.cycle()).unwrap_or(0);
        self.log.borrow_mut().record(cycle, reference.fingerprint());
        None
    }
}

/// A remote lane replayed from its recorded digest stream: a
/// [`Comparator`] that checks the local reference lane's fingerprint
/// against the log's digest at the same cycle. Cycles the log has no
/// entry for (between intervals) pass unchecked.
pub struct DigestLane {
    log: DigestLog,
}

impl DigestLane {
    /// A lane over a recorded log.
    pub fn new(log: DigestLog) -> Self {
        DigestLane { log }
    }

    /// The wrapped log.
    pub fn log(&self) -> &DigestLog {
        &self.log
    }
}

impl Comparator for DigestLane {
    fn name(&self) -> &str {
        "digest-lane"
    }

    fn compare(
        &mut self,
        reference: &Observation<'_>,
        _candidate: &Observation<'_>,
    ) -> Option<DivergenceKind> {
        let cycle = u64::try_from(reference.cycle()).unwrap_or(0);
        let recorded = self.log.digest_at(cycle)?;
        (recorded != reference.fingerprint()).then_some(DivergenceKind::Digest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_round_trips_through_text() {
        let mut log = DigestLog::new("classic/counter", 0xabcd, 16);
        log.record(16, 1);
        log.record(32, 0xffff_ffff_ffff_ffff);
        log.record(32, 9); // repeat at the tip: dropped
        log.record(20, 9); // below the tip: dropped
        let mut doc = Vec::new();
        log.write(&mut doc).unwrap();
        let back = DigestLog::parse(&mut &doc[..]).unwrap();
        assert_eq!(back, log);
        assert_eq!(back.digest_at(32), Some(u64::MAX));
        assert_eq!(back.digest_at(17), None);
    }

    #[test]
    fn export_then_check_round_trips_and_catches_a_faulty_remote() {
        use crate::lockstep::{CosimOptions, CosimOutcome};
        use crate::stream::run_scenario_names;
        use rtl_core::DivergenceKind;

        let path = std::env::temp_dir().join(format!("asim2-digest-{}.log", std::process::id()));
        let scenario = rtl_machines::scenarios::by_name("classic/counter")
            .unwrap()
            .with_cycles(64);
        let names: Vec<String> = vec!["interp".into(), "vm".into()];
        let mut registry = crate::engines::default_registry();
        registry.register(Box::new(crate::fault::FaultyVmFactory::from_cycle(40)));

        // Machine A: run the healthy pair, exporting digests.
        let export = CosimOptions {
            export_digests: Some(path.clone()),
            ..CosimOptions::default()
        };
        assert!(run_scenario_names(&registry, &names, &scenario, &export)
            .unwrap()
            .agreed());
        let log = DigestLog::load(&path).unwrap();
        assert_eq!(log.entries.len(), 64, "one digest per interval");

        // Machine B, healthy: replaying A's digests as an extra lane
        // agrees cycle for cycle.
        let check = CosimOptions {
            check_digests: Some(path.clone()),
            ..CosimOptions::default()
        };
        assert!(run_scenario_names(&registry, &names, &scenario, &check)
            .unwrap()
            .agreed());

        // Machine B, corrupted: the digest stream pins the fault to the
        // same first divergent cycle the full-value lenses would.
        let faulty: Vec<String> = vec!["interp".into(), "vm-fault".into()];
        let outcome = run_scenario_names(&registry, &faulty, &scenario, &check).unwrap();
        let CosimOutcome::Divergence(report) = outcome else {
            panic!("the faulty remote must diverge, got {outcome:?}");
        };
        assert_eq!(report.cycle, 40, "{report}");
        // The local trace lens fires first (comparators run in order);
        // with only the digest lens configured, the digest itself fires.
        let digest_only = CosimOptions {
            compare: vec![rtl_core::observe::CompareMode::Digest],
            check_digests: Some(path.clone()),
            ..CosimOptions::default()
        };
        let outcome = run_scenario_names(&registry, &faulty, &scenario, &digest_only).unwrap();
        let CosimOutcome::Divergence(report) = outcome else {
            panic!("digest-only lens must diverge");
        };
        assert_eq!(report.cycle, 40);
        assert_eq!(report.kind, DivergenceKind::Digest);

        // A mismatched stride is refused up front, not silently unchecked.
        let wrong_stride = CosimOptions {
            compare_every: 2,
            check_digests: Some(path.clone()),
            ..CosimOptions::default()
        };
        let err = run_scenario_names(&registry, &names, &scenario, &wrong_stride).unwrap_err();
        assert!(err.to_string().contains("stride"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_streams_are_rejected() {
        for bad in [
            "nope\n",
            "asim2-digests v1\nscenario x\ndesign zz\nevery 1\n",
            "asim2-digests v1\nscenario x\ndesign 00ff\nevery 1\n5 10\n3 10\n",
            "asim2-digests v1\nscenario x\ndesign 00ff\nevery 1\nfive ten\n",
        ] {
            assert!(
                DigestLog::parse(&mut bad.as_bytes()).is_err(),
                "{bad:?} should not parse"
            );
        }
    }
}
