//! The lockstep driver: N engines, one design, one stimulus, compared
//! every interval — rebuilt on the [`Session`] API.
//!
//! Each engine runs in its own *lane*, and each lane **is** a
//! [`Session`]: the sink (a shared capture buffer) and the stimulus (a
//! metered replay of the scripted input) are bound once, and the lane is
//! driven exclusively through [`Session::run`] — `Lockstep` never calls
//! [`Engine::step`] directly.
//!
//! After every comparison interval the lanes' [`Observation`]s are
//! checked against lane 0 by the configured [`Comparator`] set (the
//! classic trace/cycles/outputs/cells tuple by default; see
//! [`CompareMode`]), and — at coarse strides — checkpointed through
//! [`Session::checkpoint`]. When a coarse-interval comparison fails,
//! every lane rewinds to the last agreeing checkpoint
//! ([`Session::resume`] plus re-supplied stimulus) and replays one cycle
//! at a time, so the report always names the *first* divergent cycle
//! regardless of stride.
//!
//! Because a lane's whole position is a value (session checkpoint +
//! stimulus offset + verified count), a lockstep run itself can stop and
//! restart mid-case: [`Lockstep::checkpoint`] writes every lane to one
//! document and [`Lockstep::resume`] restores it — the mechanism behind
//! `asim2 cosim --checkpoint/--resume` and `asim2 campaign run
//! --case-checkpoint`.

use crate::engines::EngineKind;
use rtl_core::observe::{stop_state, Comparator, CompareMode, Observation};
use rtl_core::{
    design_fingerprint, Design, DivergenceKind, Engine, Fingerprint, HaltKind, InputSource,
    LaneReport, LaneStats, LoadError, Recorder, ScriptedInput, Session, SimError, StopReason,
    TraceSink, Until, Word,
};
use rtl_machines::Scenario;
use std::cell::{Cell, RefCell};
use std::io::{self, BufRead, Write};
use std::path::{Path, PathBuf};
use std::rc::Rc;

/// Mid-run checkpointing for one lockstep case: where to write the
/// document and how often (in cycles).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockstepCheckpoint {
    /// Checkpoint file path (written atomically: temp sibling + rename).
    pub path: PathBuf,
    /// Write a checkpoint every `every` verified cycles (clamped to 1).
    pub every: u64,
}

/// Lockstep configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CosimOptions {
    /// Compare lanes every N cycles (1 = every cycle). Coarser intervals
    /// amortize comparison cost on long runs; divergences are still
    /// pinpointed exactly by checkpoint-rewind bisection.
    pub compare_every: u64,
    /// Lines of trailing trace text quoted per lane in a report.
    pub trace_window: usize,
    /// Run engines with trace output on and compare it byte-for-byte.
    pub trace: bool,
    /// Keep the full agreed trace in memory so
    /// [`Lockstep::agreed_output`] can return it. Off by default: long
    /// runs would otherwise grow O(cycles × lanes); with retention off,
    /// verified output is drained at each checkpoint down to a small tail
    /// (kept for divergence-report trace windows).
    pub retain_output: bool,
    /// The comparator set, as values (see [`CompareMode`]); empty falls
    /// back to [`CompareMode::All`]. Lane error states are always
    /// compared first, regardless of this list.
    pub compare: Vec<CompareMode>,
    /// Write a mid-run checkpoint at this cadence (scenario drivers honor
    /// it; a bare [`Lockstep`] exposes the same through
    /// [`Lockstep::checkpoint`]).
    pub checkpoint: Option<LockstepCheckpoint>,
    /// Resume the run from this lockstep checkpoint before executing.
    pub resume: Option<PathBuf>,
    /// Record the reference lane's observation digest at every comparison
    /// interval and write the stream here after the run (see
    /// [`crate::digest`]) — the cheap cross-machine comparison artifact.
    pub export_digests: Option<PathBuf>,
    /// Replay a digest stream recorded by another run as an extra
    /// comparison lane: the reference lane must match the recorded
    /// digests cycle for cycle.
    pub check_digests: Option<PathBuf>,
    /// Telemetry tap (disabled/no-op by default): lane sessions count
    /// executed cycles, the harness counts comparator invocations per
    /// lens (`lockstep/compare_<lens>`) and bisection rewinds
    /// (`lockstep/bisect_rewinds`). A [`Recorder`] never affects
    /// behavior, compares equal to every other recorder, and stays out
    /// of harness fingerprints.
    pub recorder: Recorder,
    /// Execution-profile tap (disabled/no-op by default): every stepped
    /// lane attaches a per-component tally to it, so the snapshot holds
    /// the *sum* over lanes. Counts are a pure function of the simulated
    /// work — bisection rewinds re-execute deterministically — so
    /// profiles stay byte-identical across runs. Like the recorder, a
    /// hook compares equal to every other hook and stays out of harness
    /// fingerprints.
    pub profile: rtl_core::ProfileHook,
    /// Cross-validate the static analyzer against the running lanes: when
    /// the design has sound lint claims (statically-dead selector arms,
    /// statically-undriven memories), scenario drivers attach the
    /// `rtl-lint` oracle comparator, and a runtime observation that
    /// contradicts a claim is reported as a
    /// [`DivergenceKind::Oracle`](rtl_core::DivergenceKind) divergence.
    pub lint_oracle: bool,
}

impl Default for CosimOptions {
    fn default() -> Self {
        CosimOptions {
            compare_every: 1,
            trace_window: 8,
            trace: true,
            retain_output: false,
            compare: vec![CompareMode::All],
            checkpoint: None,
            resume: None,
            export_digests: None,
            check_digests: None,
            recorder: Recorder::disabled(),
            profile: rtl_core::ProfileHook::disabled(),
            lint_oracle: false,
        }
    }
}

/// The result of a lockstep run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CosimOutcome {
    /// Every comparison passed.
    Agreement {
        /// Cycles executed and verified.
        cycles: u64,
        /// How the run stopped: [`StopReason::CycleLimit`] for a full
        /// horizon, or a structured [`StopReason::Halt`] when *every*
        /// engine raised the identical runtime halt — agreement about
        /// failure, as a value.
        stop: StopReason,
        /// Per-lane simulation statistics, for lanes whose engines keep
        /// them ([`Engine::stats`]).
        stats: Vec<LaneStats>,
    },
    /// Lanes disagreed; the report pinpoints where and how.
    Divergence(Box<DivergenceReport>),
}

impl CosimOutcome {
    /// `true` for [`CosimOutcome::Agreement`].
    pub fn agreed(&self) -> bool {
        matches!(self, CosimOutcome::Agreement { .. })
    }

    /// The unanimous halt classification, when the lanes agreed about a
    /// runtime halt.
    pub fn halt(&self) -> Option<&HaltKind> {
        match self {
            CosimOutcome::Agreement { stop, .. } => stop.halt(),
            CosimOutcome::Divergence(_) => None,
        }
    }

    /// Per-lane statistics: the agreement field, or the divergence
    /// report's lane stats.
    pub fn lane_stats(&self) -> Vec<LaneStats> {
        match self {
            CosimOutcome::Agreement { stats, .. } => stats.clone(),
            CosimOutcome::Divergence(report) => report
                .lanes
                .iter()
                .filter_map(|l| {
                    l.stats.as_ref().map(|s| LaneStats {
                        lane: l.engine.clone(),
                        stats: s.clone(),
                    })
                })
                .collect(),
        }
    }
}

/// A structured first-divergence report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceReport {
    /// Scenario label (filled by the scenario/fuzz runners).
    pub scenario: String,
    /// First divergent cycle (0-based; the cycle whose execution first
    /// broke agreement).
    pub cycle: Word,
    /// What diverged.
    pub kind: DivergenceKind,
    /// Per-engine details, in lane order.
    pub lanes: Vec<LaneReport>,
}

impl std::fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "DIVERGENCE in {} at cycle {}: {}",
            self.scenario, self.cycle, self.kind
        )?;
        for lane in &self.lanes {
            write!(f, "  [{}] cycle {}", lane.engine, lane.cycle)?;
            if let Some(v) = lane.value {
                write!(f, ", value {v}")?;
            }
            if let Some(stats) = &lane.stats {
                write!(f, ", {} accesses", stats.total_accesses())?;
            }
            match &lane.error {
                Some(e) => writeln!(f, ", error: {e}")?,
                None => writeln!(f)?,
            }
        }
        for lane in &self.lanes {
            if lane.trace_window.is_empty() {
                continue;
            }
            writeln!(f, "  trace window [{}]:", lane.engine)?;
            for line in &lane.trace_window {
                writeln!(f, "    | {line}")?;
            }
        }
        Ok(())
    }
}

/// A [`TraceSink`] appending into a buffer the harness also holds — the
/// lane's session writes through it, the comparator reads (and, on
/// rewind, truncates) the same bytes.
struct SharedSink(Rc<RefCell<Vec<u8>>>);

impl TraceSink for SharedSink {
    fn write_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.0.borrow_mut().extend_from_slice(bytes);
        Ok(())
    }
}

/// A [`ScriptedInput`] that reports how many words it has consumed
/// through a cell the harness also holds — the piece of lane state the
/// session checkpoint format deliberately leaves to the caller.
struct MeteredInput {
    inner: ScriptedInput,
    consumed: Rc<Cell<usize>>,
}

impl MeteredInput {
    /// Replays `words[offset..]`, with `consumed` preset to `offset`.
    fn from_offset(words: &[Word], offset: usize, consumed: Rc<Cell<usize>>) -> Self {
        consumed.set(offset);
        MeteredInput {
            inner: ScriptedInput::new(words[offset.min(words.len())..].iter().copied()),
            consumed,
        }
    }

    fn bump(&self) {
        self.consumed.set(self.consumed.get() + 1);
    }
}

impl InputSource for MeteredInput {
    fn read_char(&mut self) -> Result<Word, SimError> {
        let word = self.inner.read_char()?;
        self.bump();
        Ok(word)
    }

    fn read_int(&mut self) -> Result<Word, SimError> {
        let word = self.inner.read_int()?;
        self.bump();
        Ok(word)
    }
}

struct Lane<'d> {
    name: String,
    /// The lane *is* a session: engine + shared sink + metered stimulus,
    /// bound once.
    session: Session<'d>,
    /// The session's sink buffer (shared with [`SharedSink`]).
    out: Rc<RefCell<Vec<u8>>>,
    /// Stimulus words consumed so far (shared with [`MeteredInput`]).
    consumed: Rc<Cell<usize>>,
    /// Sticky stop state: the error this lane raised, if any.
    error: Option<SimError>,
    /// The lane's session checkpoint at the last agreeing comparison
    /// (only maintained at coarse strides, where rewind can happen).
    check: Vec<u8>,
    check_consumed: usize,
    check_out: usize,
}

impl Lane<'_> {
    fn serialize_check(&mut self) {
        self.check.clear();
        self.session
            .checkpoint(&mut self.check)
            .expect("writing a checkpoint to memory cannot fail");
        self.check_consumed = self.consumed.get();
    }
}

/// The lockstep harness. See the [module docs](self) for the comparison
/// discipline.
pub struct Lockstep<'d> {
    design: &'d Design,
    options: CosimOptions,
    comparators: Vec<Box<dyn Comparator>>,
    stimulus: Vec<Word>,
    lanes: Vec<Lane<'d>>,
    /// Cycles verified equal so far; also the index of the next cycle.
    verified: u64,
    /// Output length up to which all lanes are known byte-identical.
    verified_out: usize,
    /// Comparator invocations per lens since the last telemetry emit
    /// (parallel to `comparators`); aggregated locally so the hot
    /// comparison loop never allocates a counter key.
    compare_calls: Vec<u64>,
    /// Bisection rewinds since the last telemetry emit.
    rewinds: u64,
}

impl<'d> Lockstep<'d> {
    /// A harness over one design with the given options and no lanes yet.
    /// The comparator set is built from [`CosimOptions::compare`]; add
    /// custom lenses with [`add_comparator`](Lockstep::add_comparator).
    pub fn new(design: &'d Design, options: CosimOptions) -> Self {
        let modes: &[CompareMode] = if options.compare.is_empty() {
            &[CompareMode::All]
        } else {
            &options.compare
        };
        let comparators: Vec<Box<dyn Comparator>> = modes.iter().map(|m| m.build()).collect();
        let compare_calls = vec![0; comparators.len()];
        Lockstep {
            design,
            options,
            comparators,
            stimulus: Vec::new(),
            lanes: Vec::new(),
            verified: 0,
            verified_out: 0,
            compare_calls,
            rewinds: 0,
        }
    }

    /// Sets the scripted input replayed into every lane. Call before
    /// adding lanes.
    pub fn stimulus(&mut self, words: impl Into<Vec<Word>>) -> &mut Self {
        debug_assert!(self.lanes.is_empty(), "set stimulus before adding lanes");
        self.stimulus = words.into();
        self
    }

    /// Appends a custom [`Comparator`] after the configured set.
    pub fn add_comparator(&mut self, comparator: Box<dyn Comparator>) -> &mut Self {
        self.comparators.push(comparator);
        self.compare_calls.push(0);
        self
    }

    /// Adds a registry engine as a lane.
    pub fn add_engine(&mut self, kind: EngineKind) -> &mut Self {
        let engine = kind.build_with(
            self.design,
            &rtl_core::EngineOptions {
                trace: self.options.trace,
                profile: self.options.profile.clone(),
            },
        );
        self.add_lane(kind.name(), engine)
    }

    /// Adds an arbitrary engine as a lane under a label — the hook for
    /// testing the harness itself with deliberately broken engines. The
    /// engine is wrapped in a [`Session`] (shared capture sink, metered
    /// stimulus) and driven only through it from here on.
    pub fn add_lane(&mut self, name: &str, engine: Box<dyn Engine + 'd>) -> &mut Self {
        let out = Rc::new(RefCell::new(Vec::new()));
        let consumed = Rc::new(Cell::new(0usize));
        let session = Session::over(engine)
            .sink(SharedSink(Rc::clone(&out)))
            .stimulus(MeteredInput::from_offset(
                &self.stimulus,
                0,
                Rc::clone(&consumed),
            ))
            .recorder(self.options.recorder.clone())
            .build();
        let mut lane = Lane {
            name: name.to_string(),
            session,
            out,
            consumed,
            error: None,
            check: Vec::new(),
            check_consumed: 0,
            check_out: 0,
        };
        if self.options.compare_every > 1 {
            lane.serialize_check();
        }
        self.lanes.push(lane);
        self
    }

    /// Cycles verified equal so far (across [`run`](Lockstep::run) calls,
    /// and including any prefix restored by [`resume`](Lockstep::resume)).
    pub fn verified_cycles(&self) -> u64 {
        self.verified
    }

    /// Per-lane statistics, for lanes whose engines keep them.
    pub fn lane_stats(&self) -> Vec<LaneStats> {
        self.lanes
            .iter()
            .filter_map(|l| {
                l.session.engine().stats().map(|s| LaneStats {
                    lane: l.name.clone(),
                    stats: s.clone(),
                })
            })
            .collect()
    }

    /// The trace/output text all lanes agreed on (bytes up to the last
    /// verified checkpoint). Empty until the first successful comparison.
    /// The *full* run text is only available with
    /// [`CosimOptions::retain_output`] set; otherwise verified output is
    /// drained at checkpoints and only the retained tail is returned.
    pub fn agreed_output(&self) -> Vec<u8> {
        self.lanes[0].out.borrow()[..self.verified_out].to_vec()
    }

    /// Runs up to `cycles` further cycles in lockstep.
    ///
    /// # Panics
    ///
    /// Panics when fewer than two lanes were added.
    pub fn run(&mut self, cycles: u64) -> CosimOutcome {
        assert!(self.lanes.len() >= 2, "lockstep needs at least two lanes");
        let outcome = self.run_inner(cycles);
        self.emit_counters();
        outcome
    }

    /// Emits locally-aggregated deterministic counters as deltas
    /// (comparator invocations per lens, bisection rewinds) and resets
    /// the local tallies — folding sums deltas, so repeated `run` calls
    /// total correctly.
    fn emit_counters(&mut self) {
        let recorder = &self.options.recorder;
        if !recorder.enabled() {
            return;
        }
        for (comparator, calls) in self.comparators.iter().zip(self.compare_calls.iter_mut()) {
            let key = format!("compare_{}", comparator.name());
            recorder.count("lockstep", &key, std::mem::take(calls));
        }
        recorder.count(
            "lockstep",
            "bisect_rewinds",
            std::mem::take(&mut self.rewinds),
        );
    }

    fn run_inner(&mut self, cycles: u64) -> CosimOutcome {
        let granularity = self.options.compare_every.max(1);
        let mut executed = 0;
        while executed < cycles {
            let burst = granularity.min(cycles - executed);
            match self.burst(burst) {
                BurstResult::Agree => executed += burst,
                BurstResult::Halted(stopped) => {
                    let error = self.lanes[0]
                        .error
                        .clone()
                        .expect("unanimous halt carries the shared error");
                    return CosimOutcome::Agreement {
                        cycles: executed + stopped,
                        stop: StopReason::from_error(error),
                        stats: self.lane_stats(),
                    };
                }
                BurstResult::Diverged(stepped) => {
                    // Rewind to the last agreeing checkpoint and replay one
                    // cycle at a time to find the exact divergence point.
                    // compare() is Some here, so capture the coarse report
                    // first: an engine whose behavior is not fully restored
                    // by checkpoint/resume may fail to reproduce on replay,
                    // and the observed divergence must still be reported
                    // (at comparison granularity) rather than panic.
                    let coarse = self.build_report();
                    if stepped > 1 {
                        self.rewind();
                        for _ in 0..stepped {
                            match self.burst(1) {
                                BurstResult::Agree => {}
                                BurstResult::Halted(_) | BurstResult::Diverged(_) => break,
                            }
                        }
                    }
                    let report = if self.compare().is_some() {
                        self.build_report()
                    } else {
                        coarse
                    };
                    return CosimOutcome::Divergence(Box::new(report));
                }
            }
        }
        CosimOutcome::Agreement {
            cycles: executed,
            stop: StopReason::CycleLimit,
            stats: self.lane_stats(),
        }
    }

    /// Drives every lane `cycles` further cycles through its session,
    /// then compares and (on agreement) commits.
    fn burst(&mut self, cycles: u64) -> BurstResult {
        let mut stepped = 0;
        for _ in 0..cycles {
            for lane in &mut self.lanes {
                if lane.error.is_some() {
                    continue;
                }
                let outcome = lane.session.run(Until::Cycles(1));
                if let Some(e) = outcome.stop.into_error() {
                    lane.error = Some(e);
                }
            }
            stepped += 1;
            if self.lanes.iter().any(|l| l.error.is_some()) {
                break;
            }
        }
        if self.compare().is_some() {
            return BurstResult::Diverged(stepped);
        }
        self.commit();
        if self.lanes.iter().any(|l| l.error.is_some()) {
            // compare() passed, so every lane raised the identical error:
            // unanimous halt. The halting cycle itself did not complete.
            let stopped = stepped.saturating_sub(1);
            self.verified += stopped;
            return BurstResult::Halted(stopped);
        }
        self.verified += stepped;
        BurstResult::Agree
    }

    /// Compares all lanes against lane 0: the error-state pre-check
    /// first, then the configured comparators over each lane's
    /// [`Observation`]. `None` means agreement.
    fn compare(&mut self) -> Option<DivergenceKind> {
        let span = self.verified_out;
        let bufs: Vec<std::cell::Ref<'_, Vec<u8>>> =
            self.lanes.iter().map(|l| l.out.borrow()).collect();
        let observations: Vec<Observation<'_>> = self
            .lanes
            .iter()
            .zip(&bufs)
            .map(|(lane, buf)| {
                Observation::new(
                    lane.session.engine(),
                    &buf[span.min(buf.len())..],
                    lane.error.as_ref(),
                )
            })
            .collect();
        let (first, rest) = observations.split_first().expect("at least two lanes");

        // Error states are not an optional lens: comparing the values of
        // a crashed lane is meaningless, so this check always runs first.
        for candidate in rest {
            if let Some(kind) = stop_state(first, candidate) {
                return Some(kind);
            }
        }
        for (comparator, calls) in self
            .comparators
            .iter_mut()
            .zip(self.compare_calls.iter_mut())
        {
            for candidate in rest {
                *calls += 1;
                if let Some(kind) = comparator.compare(first, candidate) {
                    return Some(kind);
                }
            }
        }
        None
    }

    /// Commits an agreeing comparison: drains verified output down to a
    /// report tail (unless retained) and refreshes the per-lane rewind
    /// checkpoints ([`Session::checkpoint`] at coarse strides).
    fn commit(&mut self) {
        let len = self.lanes[0].out.borrow().len();
        if self.options.retain_output {
            self.verified_out = len;
        } else {
            // Keep a tail for divergence-report trace windows; drain the
            // rest so long runs stay O(interval), not O(cycles).
            const TRACE_TAIL: usize = 4096;
            let drain = len.saturating_sub(TRACE_TAIL);
            if drain > 0 {
                for lane in &self.lanes {
                    lane.out.borrow_mut().drain(..drain);
                }
            }
            self.verified_out = len - drain;
        }
        // Rewind only ever happens when a burst covered more than one
        // cycle, so at stride 1 the serialized checkpoints would be pure
        // overhead (the whole memory image per lane per cycle).
        let rewindable = self.options.compare_every > 1;
        for lane in &mut self.lanes {
            if rewindable {
                lane.serialize_check();
            }
            lane.check_out = lane.out.borrow().len();
        }
    }

    /// Rewinds every lane to the last agreeing checkpoint: session state
    /// through [`Session::resume`], stimulus re-supplied from the
    /// recorded offset, output truncated.
    fn rewind(&mut self) {
        self.rewinds += 1;
        for lane in &mut self.lanes {
            lane.session
                .resume(&mut &lane.check[..])
                .expect("an in-memory checkpoint round-trips");
            let stimulus = MeteredInput::from_offset(
                &self.stimulus,
                lane.check_consumed,
                Rc::clone(&lane.consumed),
            );
            lane.session.set_stimulus(stimulus);
            lane.out.borrow_mut().truncate(lane.check_out);
            lane.error = None;
        }
    }

    fn build_report(&mut self) -> DivergenceReport {
        let kind = self.compare().expect("report requested without divergence");
        let window = self.options.trace_window;
        let lanes = self
            .lanes
            .iter()
            .map(|lane| {
                let buf = lane.out.borrow();
                let span = self.verified_out.min(buf.len());
                let observation =
                    Observation::new(lane.session.engine(), &buf[span..], lane.error.as_ref());
                LaneReport::from_observation(&lane.name, &kind, &observation, &buf, window)
            })
            .collect();
        DivergenceReport {
            scenario: String::new(),
            cycle: Word::try_from(self.verified).unwrap_or(Word::MAX),
            kind,
            lanes,
        }
    }

    /// A stable fingerprint over the harness identity: design shape, lane
    /// names and order, stimulus script, the trace flag, and the
    /// comparator set (by name, custom lenses included). A lockstep
    /// checkpoint refuses to resume into a differently-assembled harness
    /// — in particular, cycles verified under a weak lens must not be
    /// re-reported as verified under a stronger one.
    fn harness_fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_str(LOCKSTEP_MAGIC);
        fp.write_u64(design_fingerprint(self.design));
        fp.write_u64(self.lanes.len() as u64);
        for lane in &self.lanes {
            fp.write_str(&lane.name);
        }
        fp.write_u64(self.stimulus.len() as u64);
        for &word in &self.stimulus {
            fp.write_u64(word as u64);
        }
        fp.write(&[u8::from(self.options.trace)]);
        fp.write_u64(self.comparators.len() as u64);
        for comparator in &self.comparators {
            fp.write_str(comparator.name());
        }
        fp.finish()
    }

    /// Serializes the whole harness position — verified cycle count and,
    /// per lane, the stimulus offset and the lane's
    /// [`Session::checkpoint`] document — so one long case can stop and
    /// restart mid-run. Call between [`run`](Lockstep::run) calls (the
    /// lanes are at an agreed point there).
    ///
    /// # Errors
    ///
    /// I/O failure of the writer.
    pub fn checkpoint(&self, out: &mut dyn Write) -> io::Result<()> {
        writeln!(out, "{LOCKSTEP_MAGIC}")?;
        writeln!(out, "fingerprint {:016x}", self.harness_fingerprint())?;
        writeln!(out, "verified {}", self.verified)?;
        for lane in &self.lanes {
            writeln!(out, "lane {} consumed {}", lane.name, lane.consumed.get())?;
            lane.session.checkpoint(out)?;
        }
        Ok(())
    }

    /// [`checkpoint`](Lockstep::checkpoint) to a file path, written
    /// atomically (temp sibling + rename) so a kill mid-write never
    /// leaves a truncated document.
    ///
    /// # Errors
    ///
    /// File creation, write, or rename failure.
    pub fn checkpoint_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut doc = Vec::new();
        self.checkpoint(&mut doc)?;
        crate::write_atomic(path.as_ref(), &doc)
    }

    /// Restores a harness position previously written by
    /// [`checkpoint`](Lockstep::checkpoint) over the *same* design, lane
    /// list and stimulus (validated by fingerprint). Call after adding
    /// all lanes and before [`run`](Lockstep::run); the lanes' trace
    /// buffers restart empty, so [`agreed_output`](Lockstep::agreed_output)
    /// only covers the resumed suffix.
    ///
    /// # Errors
    ///
    /// I/O failure, a malformed document, or a fingerprint/lane mismatch
    /// (all as [`io::Error`]).
    pub fn resume(&mut self, input: &mut dyn BufRead) -> io::Result<()> {
        let bad = |what: String| io::Error::new(io::ErrorKind::InvalidData, what);
        fn next(input: &mut dyn BufRead, what: &str) -> io::Result<String> {
            rtl_core::session::read_doc_line(input, what)
        }

        if next(input, "magic")? != LOCKSTEP_MAGIC {
            return Err(bad("not an asim2 lockstep v1 checkpoint".into()));
        }
        let fp = next(input, "fingerprint")?
            .strip_prefix("fingerprint ")
            .and_then(|h| u64::from_str_radix(h.trim(), 16).ok())
            .ok_or_else(|| bad("bad fingerprint line".into()))?;
        if fp != self.harness_fingerprint() {
            return Err(bad(
                "lockstep checkpoint was written by a different harness \
                 (design, lanes, stimulus or comparators differ)"
                    .into(),
            ));
        }
        let verified: u64 = next(input, "verified")?
            .strip_prefix("verified ")
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| bad("bad verified line".into()))?;

        for lane in &mut self.lanes {
            let header = next(input, "lane header")?;
            let rest = header
                .strip_prefix("lane ")
                .ok_or_else(|| bad(format!("expected a lane header, got {header:?}")))?;
            let (name, consumed) = rest
                .rsplit_once(" consumed ")
                .ok_or_else(|| bad(format!("bad lane header {header:?}")))?;
            if name != lane.name {
                return Err(bad(format!(
                    "lane order mismatch: checkpoint has {name:?}, harness has {:?}",
                    lane.name
                )));
            }
            let consumed: usize = consumed
                .trim()
                .parse()
                .map_err(|_| bad(format!("bad consumed count in {header:?}")))?;
            if consumed > self.stimulus.len() {
                return Err(bad(format!(
                    "lane {name:?} consumed {consumed} stimulus words, only {} supplied",
                    self.stimulus.len()
                )));
            }
            // Session::resume consumes exactly its own document and
            // leaves the reader at the next lane header.
            lane.session.resume(input)?;
            let stimulus =
                MeteredInput::from_offset(&self.stimulus, consumed, Rc::clone(&lane.consumed));
            lane.session.set_stimulus(stimulus);
            lane.out.borrow_mut().clear();
            lane.error = None;
            lane.check_out = 0;
            lane.check_consumed = consumed;
        }
        self.verified = verified;
        self.verified_out = 0;
        if self.options.compare_every > 1 {
            for lane in &mut self.lanes {
                lane.serialize_check();
            }
        }
        Ok(())
    }

    /// [`resume`](Lockstep::resume) from a file path.
    ///
    /// # Errors
    ///
    /// See [`Lockstep::resume`].
    pub fn resume_from(&mut self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut file = io::BufReader::new(std::fs::File::open(path)?);
        self.resume(&mut file)
    }
}

const LOCKSTEP_MAGIC: &str = "asim2-lockstep v1";

enum BurstResult {
    /// All cycles ran and compared equal.
    Agree,
    /// Lanes agree, including an identical runtime error; carries the
    /// number of *completed* cycles in this burst.
    Halted(u64),
    /// Comparison failed; carries the cycles stepped in this burst.
    Diverged(u64),
}

/// Runs a [`Scenario`] through lockstep with the given engine tiers.
///
/// # Errors
///
/// Propagates specification parse/elaboration errors; simulation runtime
/// errors are part of the [`CosimOutcome`], not an `Err`.
pub fn run_scenario(
    scenario: &Scenario,
    kinds: &[EngineKind],
    options: &CosimOptions,
) -> Result<CosimOutcome, LoadError> {
    let design = scenario.design()?;
    let mut lockstep = Lockstep::new(&design, options.clone());
    lockstep.stimulus(scenario.input.clone());
    for &kind in kinds {
        lockstep.add_engine(kind);
    }
    let mut outcome = lockstep.run(scenario.cycles);
    if let CosimOutcome::Divergence(report) = &mut outcome {
        report.scenario = scenario.name.clone();
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design(src: &str) -> Design {
        Design::from_source(src).unwrap()
    }

    const COUNTER: &str = "# c\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .";

    #[test]
    fn engines_agree_on_the_counter() {
        let d = design(COUNTER);
        let mut ls = Lockstep::new(&d, CosimOptions::default());
        ls.add_engine(EngineKind::Interp).add_engine(EngineKind::Vm);
        match ls.run(64) {
            CosimOutcome::Agreement {
                cycles: 64,
                stop: StopReason::CycleLimit,
                stats,
            } => {
                // Both tiers keep statistics; they count identically.
                assert_eq!(stats.len(), 2);
                assert!(stats.iter().all(|s| s.stats.cycles == 64), "{stats:?}");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(ls.verified_cycles(), 64);
    }

    #[test]
    fn all_four_tiers_agree_with_coarse_comparison() {
        let d = design(COUNTER);
        let mut ls = Lockstep::new(
            &d,
            CosimOptions {
                compare_every: 16,
                ..CosimOptions::default()
            },
        );
        for kind in EngineKind::ALL {
            ls.add_engine(kind);
        }
        assert!(ls.run(100).agreed());
    }

    #[test]
    fn unanimous_runtime_errors_are_agreement() {
        // Selector goes out of range at cycle 2 in every engine.
        let d = design("# bad\nc s n .\nM c 0 n 1 1\nA n 4 c 1\nS s c 1 2 .");
        let mut ls = Lockstep::new(&d, CosimOptions::default());
        ls.add_engine(EngineKind::Interp).add_engine(EngineKind::Vm);
        match ls.run(50) {
            CosimOutcome::Agreement {
                cycles,
                stop: StopReason::Halt(halt),
                ..
            } => {
                assert_eq!(cycles, 2);
                assert_eq!(halt.label(), "selector-out-of-range");
                assert!(halt.to_string().contains("selector"), "{halt}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scripted_input_is_replayed_per_lane() {
        let d = design("# io\ni* acc n .\nM i 1 0 2 1\nM acc 0 n 1 1\nA n 4 acc i .");
        let mut ls = Lockstep::new(&d, CosimOptions::default());
        ls.stimulus((1..=8).collect::<Vec<Word>>());
        ls.add_engine(EngineKind::Interp).add_engine(EngineKind::Vm);
        assert!(ls.run(8).agreed());
    }

    #[test]
    fn exhausted_input_halts_unanimously() {
        let d = design("# io\ni .\nM i 1 0 2 1 .");
        let mut ls = Lockstep::new(&d, CosimOptions::default());
        ls.stimulus(vec![5, 6]);
        ls.add_engine(EngineKind::Interp).add_engine(EngineKind::Vm);
        match ls.run(10) {
            CosimOutcome::Agreement {
                cycles: 2,
                stop: StopReason::Halt(halt),
                ..
            } => {
                assert_eq!(halt, HaltKind::InputExhausted { cycle: 2 });
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn coarse_stride_rewinds_scripted_input_too() {
        // An input-consuming design at a coarse stride: the rewind path
        // must re-supply the stimulus from the checkpoint offset, or the
        // replay runs dry / reads the wrong words.
        let d = design("# io\ni* acc n .\nM i 1 0 2 1\nM acc 0 n 1 1\nA n 4 acc i .");
        let mut ls = Lockstep::new(
            &d,
            CosimOptions {
                compare_every: 16,
                ..CosimOptions::default()
            },
        );
        ls.stimulus((1..=64).collect::<Vec<Word>>());
        ls.add_engine(EngineKind::Interp).add_engine(EngineKind::Vm);
        assert!(ls.run(48).agreed());
        assert_eq!(ls.verified_cycles(), 48);
    }

    #[test]
    fn checkpoint_resume_round_trips_mid_run() {
        let d = design(COUNTER);
        let drive = |stop_at: u64| -> (Vec<u8>, CosimOutcome) {
            let mut ls = Lockstep::new(
                &d,
                CosimOptions {
                    retain_output: true,
                    ..CosimOptions::default()
                },
            );
            ls.add_engine(EngineKind::Interp).add_engine(EngineKind::Vm);
            assert!(ls.run(stop_at).agreed());
            let mut doc = Vec::new();
            ls.checkpoint(&mut doc).unwrap();
            let outcome = ls.run(64 - stop_at);
            (doc, outcome)
        };
        let (doc, finished) = drive(24);

        // A fresh harness resumes from the document and finishes to the
        // identical outcome.
        let mut ls = Lockstep::new(
            &d,
            CosimOptions {
                retain_output: true,
                ..CosimOptions::default()
            },
        );
        ls.add_engine(EngineKind::Interp).add_engine(EngineKind::Vm);
        ls.resume(&mut &doc[..]).unwrap();
        assert_eq!(ls.verified_cycles(), 24);
        let resumed = ls.run(64 - 24);
        match (&finished, &resumed) {
            (
                CosimOutcome::Agreement {
                    cycles: a,
                    stop: sa,
                    ..
                },
                CosimOutcome::Agreement {
                    cycles: b,
                    stop: sb,
                    ..
                },
            ) => {
                assert_eq!(a, b);
                assert_eq!(sa, sb);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(ls.verified_cycles(), 64);
    }

    #[test]
    fn resume_refuses_a_different_harness() {
        let d = design(COUNTER);
        let mut ls = Lockstep::new(&d, CosimOptions::default());
        ls.add_engine(EngineKind::Interp).add_engine(EngineKind::Vm);
        let mut doc = Vec::new();
        ls.checkpoint(&mut doc).unwrap();

        // Different lane list: refused.
        let mut other = Lockstep::new(&d, CosimOptions::default());
        other
            .add_engine(EngineKind::Interp)
            .add_engine(EngineKind::VmNoOpt);
        let err = other.resume(&mut &doc[..]).unwrap_err();
        assert!(err.to_string().contains("different harness"), "{err}");

        // Garbage: refused.
        let mut same = Lockstep::new(&d, CosimOptions::default());
        same.add_engine(EngineKind::Interp)
            .add_engine(EngineKind::Vm);
        assert!(same.resume(&mut &b"not a checkpoint"[..]).is_err());
    }

    #[test]
    fn comparator_sets_are_configurable() {
        // A custom comparator that always flags a cycle mismatch proves
        // the set is open; a [vcd]-only set proves selection works.
        struct AlwaysDiverges;
        impl Comparator for AlwaysDiverges {
            fn name(&self) -> &str {
                "always"
            }
            fn compare(
                &mut self,
                _reference: &Observation<'_>,
                _candidate: &Observation<'_>,
            ) -> Option<DivergenceKind> {
                Some(DivergenceKind::CycleCounter)
            }
        }
        let d = design(COUNTER);
        let mut ls = Lockstep::new(
            &d,
            CosimOptions {
                compare: vec![CompareMode::Vcd],
                ..CosimOptions::default()
            },
        );
        ls.add_engine(EngineKind::Interp).add_engine(EngineKind::Vm);
        assert!(ls.run(16).agreed(), "healthy lanes agree under vcd");

        let mut ls = Lockstep::new(&d, CosimOptions::default());
        ls.add_engine(EngineKind::Interp).add_engine(EngineKind::Vm);
        ls.add_comparator(Box::new(AlwaysDiverges));
        let CosimOutcome::Divergence(report) = ls.run(16) else {
            panic!("custom comparator must fire");
        };
        assert_eq!(report.kind, DivergenceKind::CycleCounter);
        assert_eq!(report.cycle, 0, "fires at the first comparison");
    }
}
