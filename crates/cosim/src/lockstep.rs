//! The lockstep driver: N engines, one design, one stimulus, compared
//! every cycle.
//!
//! Each engine runs in its own *lane* with a private output buffer and a
//! private copy of the scripted input. After every comparison interval the
//! lanes are checked against each other — trace bytes, cycle counters,
//! visible outputs, memory cells, and error states — and checkpointed via
//! [`Engine::snapshot`]. When a coarse-interval comparison fails, every
//! lane rewinds to the last agreeing checkpoint ([`Engine::restore`]) and
//! replays one cycle at a time, so the report always names the *first*
//! divergent cycle regardless of the comparison stride.

use crate::engines::EngineKind;
use rtl_core::{
    Design, Engine, HaltKind, LoadError, ScriptedInput, SimError, SimState, StopReason, Word,
};
use rtl_machines::Scenario;

/// Lockstep configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CosimOptions {
    /// Compare lanes every N cycles (1 = every cycle). Coarser intervals
    /// amortize comparison cost on long runs; divergences are still
    /// pinpointed exactly by checkpoint-rewind bisection.
    pub compare_every: u64,
    /// Lines of trailing trace text quoted per lane in a report.
    pub trace_window: usize,
    /// Run engines with trace output on and compare it byte-for-byte.
    pub trace: bool,
    /// Keep the full agreed trace in memory so
    /// [`Lockstep::agreed_output`] can return it. Off by default: long
    /// runs would otherwise grow O(cycles × lanes); with retention off,
    /// verified output is drained at each checkpoint down to a small tail
    /// (kept for divergence-report trace windows).
    pub retain_output: bool,
}

impl Default for CosimOptions {
    fn default() -> Self {
        CosimOptions {
            compare_every: 1,
            trace_window: 8,
            trace: true,
            retain_output: false,
        }
    }
}

/// The result of a lockstep run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CosimOutcome {
    /// Every comparison passed.
    Agreement {
        /// Cycles executed and verified.
        cycles: u64,
        /// How the run stopped: [`StopReason::CycleLimit`] for a full
        /// horizon, or a structured [`StopReason::Halt`] when *every*
        /// engine raised the identical runtime halt — agreement about
        /// failure, as a value.
        stop: StopReason,
    },
    /// Lanes disagreed; the report pinpoints where and how.
    Divergence(Box<DivergenceReport>),
}

impl CosimOutcome {
    /// `true` for [`CosimOutcome::Agreement`].
    pub fn agreed(&self) -> bool {
        matches!(self, CosimOutcome::Agreement { .. })
    }

    /// The unanimous halt classification, when the lanes agreed about a
    /// runtime halt.
    pub fn halt(&self) -> Option<&HaltKind> {
        match self {
            CosimOutcome::Agreement { stop, .. } => stop.halt(),
            CosimOutcome::Divergence(_) => None,
        }
    }
}

/// What diverged first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DivergenceKind {
    /// Engines raised different errors (or only some raised one).
    Error,
    /// Trace/output text differed.
    Trace,
    /// Cycle counters differed.
    CycleCounter,
    /// A component's visible output differed.
    Output {
        /// Component name.
        component: String,
    },
    /// A memory cell differed.
    Cells {
        /// Memory name.
        component: String,
        /// Cell address.
        addr: u32,
    },
    /// A stream lane's output (e.g. the generated-Rust subprocess stdout)
    /// differed from the trace the stepped lanes agreed on. The cycle is
    /// estimated from the last matching cycle header.
    Stream {
        /// The stream lane's registry name.
        lane: String,
    },
}

/// One engine's view at the divergence point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneReport {
    /// Engine name (registry name, or the custom lane label).
    pub engine: String,
    /// The lane's cycle counter.
    pub cycle: Word,
    /// The diverging value in this lane (for output/cell kinds).
    pub value: Option<Word>,
    /// The lane's runtime error, if it raised one.
    pub error: Option<SimError>,
    /// The last few lines of the lane's trace text.
    pub trace_window: Vec<String>,
}

/// A structured first-divergence report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceReport {
    /// Scenario label (filled by the scenario/fuzz runners).
    pub scenario: String,
    /// First divergent cycle (0-based; the cycle whose execution first
    /// broke agreement).
    pub cycle: Word,
    /// What diverged.
    pub kind: DivergenceKind,
    /// Per-engine details, in lane order.
    pub lanes: Vec<LaneReport>,
}

impl std::fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match &self.kind {
            DivergenceKind::Error => "runtime error mismatch".to_string(),
            DivergenceKind::Trace => "trace text mismatch".to_string(),
            DivergenceKind::CycleCounter => "cycle counter mismatch".to_string(),
            DivergenceKind::Output { component } => {
                format!("output of component '{component}' differs")
            }
            DivergenceKind::Cells { component, addr } => {
                format!("memory '{component}' cell {addr} differs")
            }
            DivergenceKind::Stream { lane } => {
                format!("stream lane '{lane}' output differs from the agreed trace")
            }
        };
        writeln!(
            f,
            "DIVERGENCE in {} at cycle {}: {what}",
            self.scenario, self.cycle
        )?;
        for lane in &self.lanes {
            write!(f, "  [{}] cycle {}", lane.engine, lane.cycle)?;
            if let Some(v) = lane.value {
                write!(f, ", value {v}")?;
            }
            match &lane.error {
                Some(e) => writeln!(f, ", error: {e}")?,
                None => writeln!(f)?,
            }
        }
        for lane in &self.lanes {
            if lane.trace_window.is_empty() {
                continue;
            }
            writeln!(f, "  trace window [{}]:", lane.engine)?;
            for line in &lane.trace_window {
                writeln!(f, "    | {line}")?;
            }
        }
        Ok(())
    }
}

struct Lane<'d> {
    name: String,
    engine: Box<dyn Engine + 'd>,
    input: ScriptedInput,
    out: Vec<u8>,
    error: Option<SimError>,
    check_state: SimState,
    check_input: ScriptedInput,
    check_out: usize,
}

impl Lane<'_> {
    fn trace_window(&self, lines: usize) -> Vec<String> {
        let text = String::from_utf8_lossy(&self.out);
        let all: Vec<&str> = text.lines().collect();
        let start = all.len().saturating_sub(lines);
        all[start..].iter().map(|s| s.to_string()).collect()
    }

    fn report(&self, value: Option<Word>, window: usize) -> LaneReport {
        LaneReport {
            engine: self.name.clone(),
            cycle: self.engine.state().cycle(),
            value,
            error: self.error.clone(),
            trace_window: self.trace_window(window),
        }
    }
}

/// The lockstep harness. See the [module docs](self) for the comparison
/// discipline.
pub struct Lockstep<'d> {
    design: &'d Design,
    options: CosimOptions,
    stimulus: Vec<Word>,
    lanes: Vec<Lane<'d>>,
    /// Cycles verified equal so far; also the index of the next cycle.
    verified: u64,
    /// Output length up to which all lanes are known byte-identical.
    verified_out: usize,
}

impl<'d> Lockstep<'d> {
    /// A harness over one design with the given options and no lanes yet.
    pub fn new(design: &'d Design, options: CosimOptions) -> Self {
        Lockstep {
            design,
            options,
            stimulus: Vec::new(),
            lanes: Vec::new(),
            verified: 0,
            verified_out: 0,
        }
    }

    /// Sets the scripted input replayed into every lane. Call before
    /// adding lanes.
    pub fn stimulus(&mut self, words: impl Into<Vec<Word>>) -> &mut Self {
        debug_assert!(self.lanes.is_empty(), "set stimulus before adding lanes");
        self.stimulus = words.into();
        self
    }

    /// Adds a registry engine as a lane.
    pub fn add_engine(&mut self, kind: EngineKind) -> &mut Self {
        let engine = kind.build(self.design, self.options.trace);
        self.add_lane(kind.name(), engine)
    }

    /// Adds an arbitrary engine as a lane under a label — the hook for
    /// testing the harness itself with deliberately broken engines.
    pub fn add_lane(&mut self, name: &str, engine: Box<dyn Engine + 'd>) -> &mut Self {
        let check_state = engine.snapshot();
        let input = ScriptedInput::new(self.stimulus.iter().copied());
        self.lanes.push(Lane {
            name: name.to_string(),
            engine,
            check_input: input.clone(),
            input,
            out: Vec::new(),
            error: None,
            check_state,
            check_out: 0,
        });
        self
    }

    /// Cycles verified equal so far.
    pub fn verified_cycles(&self) -> u64 {
        self.verified
    }

    /// The trace/output text all lanes agreed on (bytes up to the last
    /// verified checkpoint). Empty until the first successful comparison.
    /// The *full* run text is only available with
    /// [`CosimOptions::retain_output`] set; otherwise verified output is
    /// drained at checkpoints and only the retained tail is returned.
    pub fn agreed_output(&self) -> &[u8] {
        &self.lanes[0].out[..self.verified_out]
    }

    /// Runs up to `cycles` further cycles in lockstep.
    ///
    /// # Panics
    ///
    /// Panics when fewer than two lanes were added.
    pub fn run(&mut self, cycles: u64) -> CosimOutcome {
        assert!(self.lanes.len() >= 2, "lockstep needs at least two lanes");
        let granularity = self.options.compare_every.max(1);
        let mut executed = 0;
        while executed < cycles {
            let burst = granularity.min(cycles - executed);
            match self.burst(burst) {
                BurstResult::Agree => executed += burst,
                BurstResult::Halted(stopped) => {
                    let error = self.lanes[0]
                        .error
                        .clone()
                        .expect("unanimous halt carries the shared error");
                    return CosimOutcome::Agreement {
                        cycles: executed + stopped,
                        stop: StopReason::from_error(error),
                    };
                }
                BurstResult::Diverged(stepped) => {
                    // Rewind to the last agreeing checkpoint and replay one
                    // cycle at a time to find the exact divergence point.
                    // compare() is Some here, so capture the coarse report
                    // first: an engine whose behavior is not fully restored
                    // by snapshot/restore may fail to reproduce on replay,
                    // and the observed divergence must still be reported
                    // (at comparison granularity) rather than panic.
                    let coarse = self.build_report();
                    if stepped > 1 {
                        self.rewind();
                        for _ in 0..stepped {
                            match self.burst(1) {
                                BurstResult::Agree => {}
                                BurstResult::Halted(_) | BurstResult::Diverged(_) => break,
                            }
                        }
                    }
                    let report = if self.compare().is_some() {
                        self.build_report()
                    } else {
                        coarse
                    };
                    return CosimOutcome::Divergence(Box::new(report));
                }
            }
        }
        CosimOutcome::Agreement {
            cycles: executed,
            stop: StopReason::CycleLimit,
        }
    }

    /// Steps every lane `cycles` times, then compares and (on agreement)
    /// checkpoints.
    fn burst(&mut self, cycles: u64) -> BurstResult {
        let mut stepped = 0;
        for _ in 0..cycles {
            for lane in &mut self.lanes {
                if lane.error.is_some() {
                    continue;
                }
                if let Err(e) = lane.engine.step(&mut lane.out, &mut lane.input) {
                    lane.error = Some(e);
                }
            }
            stepped += 1;
            if self.lanes.iter().any(|l| l.error.is_some()) {
                break;
            }
        }
        if self.compare().is_some() {
            return BurstResult::Diverged(stepped);
        }
        self.checkpoint();
        if self.lanes.iter().any(|l| l.error.is_some()) {
            // compare() passed, so every lane raised the identical error:
            // unanimous halt. The halting cycle itself did not complete.
            let stopped = stepped.saturating_sub(1);
            self.verified += stopped;
            return BurstResult::Halted(stopped);
        }
        self.verified += stepped;
        BurstResult::Agree
    }

    /// Compares all lanes against lane 0. `None` means agreement.
    fn compare(&self) -> Option<DivergenceKind> {
        let (first, rest) = self.lanes.split_first().expect("at least two lanes");

        // 1. Error states: all-or-nothing, and identical when raised.
        for lane in rest {
            if lane.error != first.error {
                return Some(DivergenceKind::Error);
            }
        }

        // 2. Trace bytes produced since the last agreed point.
        let reference = &first.out[self.verified_out.min(first.out.len())..];
        for lane in rest {
            if &lane.out[self.verified_out.min(lane.out.len())..] != reference {
                return Some(DivergenceKind::Trace);
            }
        }

        // 3. Cycle counters.
        for lane in rest {
            if lane.engine.state().cycle() != first.engine.state().cycle() {
                return Some(DivergenceKind::CycleCounter);
            }
        }

        // 4. Visible outputs — only components every lane maintains
        //    (optimizing engines may elide dead latches).
        for (id, _) in self.design.iter() {
            if !self.lanes.iter().all(|l| l.engine.observes_output(id)) {
                continue;
            }
            let v = first.engine.state().output(id);
            if rest.iter().any(|l| l.engine.state().output(id) != v) {
                return Some(DivergenceKind::Output {
                    component: self.design.name(id).to_string(),
                });
            }
        }

        // 5. Memory cells.
        for &id in self.design.memories() {
            let cells = first.engine.state().cells(id);
            for lane in rest {
                let other = lane.engine.state().cells(id);
                if let Some(addr) = first_difference(cells, other) {
                    return Some(DivergenceKind::Cells {
                        component: self.design.name(id).to_string(),
                        addr,
                    });
                }
            }
        }

        None
    }

    fn checkpoint(&mut self) {
        // At a checkpoint all lanes' output buffers are byte-identical
        // (the trace comparison just passed), so one length/drain amount
        // serves every lane.
        let len = self.lanes[0].out.len();
        if self.options.retain_output {
            self.verified_out = len;
        } else {
            // Keep a tail for divergence-report trace windows; drain the
            // rest so long runs stay O(interval), not O(cycles).
            const TRACE_TAIL: usize = 4096;
            let drain = len.saturating_sub(TRACE_TAIL);
            if drain > 0 {
                for lane in &mut self.lanes {
                    lane.out.drain(..drain);
                }
            }
            self.verified_out = len - drain;
        }
        // Rewind only ever happens when a burst covered more than one
        // cycle, so at stride 1 the state/input snapshots would be pure
        // clone traffic (the whole memory image per lane per cycle).
        let rewindable = self.options.compare_every > 1;
        for lane in &mut self.lanes {
            if rewindable {
                lane.check_state = lane.engine.snapshot();
                lane.check_input = lane.input.clone();
            }
            lane.check_out = lane.out.len();
        }
    }

    fn rewind(&mut self) {
        for lane in &mut self.lanes {
            lane.engine.restore(&lane.check_state);
            lane.input = lane.check_input.clone();
            lane.out.truncate(lane.check_out);
            lane.error = None;
        }
    }

    fn build_report(&self) -> DivergenceReport {
        let kind = self.compare().expect("report requested without divergence");
        let window = self.options.trace_window;
        let lanes = match &kind {
            DivergenceKind::Output { component } => {
                let id = self
                    .design
                    .find(component)
                    .expect("component came from design");
                self.lanes
                    .iter()
                    .map(|l| l.report(Some(l.engine.state().output(id)), window))
                    .collect()
            }
            DivergenceKind::Cells { component, addr } => {
                let id = self
                    .design
                    .find(component)
                    .expect("component came from design");
                self.lanes
                    .iter()
                    .map(|l| l.report(Some(l.engine.state().cell(id, *addr)), window))
                    .collect()
            }
            _ => self.lanes.iter().map(|l| l.report(None, window)).collect(),
        };
        DivergenceReport {
            scenario: String::new(),
            cycle: Word::try_from(self.verified).unwrap_or(Word::MAX),
            kind,
            lanes,
        }
    }
}

enum BurstResult {
    /// All cycles ran and compared equal.
    Agree,
    /// Lanes agree, including an identical runtime error; carries the
    /// number of *completed* cycles in this burst.
    Halted(u64),
    /// Comparison failed; carries the cycles stepped in this burst.
    Diverged(u64),
}

fn first_difference(a: &[Word], b: &[Word]) -> Option<u32> {
    debug_assert_eq!(a.len(), b.len(), "same design, same memory sizes");
    a.iter().zip(b).position(|(x, y)| x != y).map(|i| i as u32)
}

/// Runs a [`Scenario`] through lockstep with the given engine tiers.
///
/// # Errors
///
/// Propagates specification parse/elaboration errors; simulation runtime
/// errors are part of the [`CosimOutcome`], not an `Err`.
pub fn run_scenario(
    scenario: &Scenario,
    kinds: &[EngineKind],
    options: &CosimOptions,
) -> Result<CosimOutcome, LoadError> {
    let design = scenario.design()?;
    let mut lockstep = Lockstep::new(&design, options.clone());
    lockstep.stimulus(scenario.input.clone());
    for &kind in kinds {
        lockstep.add_engine(kind);
    }
    let mut outcome = lockstep.run(scenario.cycles);
    if let CosimOutcome::Divergence(report) = &mut outcome {
        report.scenario = scenario.name.clone();
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design(src: &str) -> Design {
        Design::from_source(src).unwrap()
    }

    const COUNTER: &str = "# c\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .";

    #[test]
    fn engines_agree_on_the_counter() {
        let d = design(COUNTER);
        let mut ls = Lockstep::new(&d, CosimOptions::default());
        ls.add_engine(EngineKind::Interp).add_engine(EngineKind::Vm);
        assert_eq!(
            ls.run(64),
            CosimOutcome::Agreement {
                cycles: 64,
                stop: StopReason::CycleLimit
            }
        );
        assert_eq!(ls.verified_cycles(), 64);
    }

    #[test]
    fn all_four_tiers_agree_with_coarse_comparison() {
        let d = design(COUNTER);
        let mut ls = Lockstep::new(
            &d,
            CosimOptions {
                compare_every: 16,
                ..CosimOptions::default()
            },
        );
        for kind in EngineKind::ALL {
            ls.add_engine(kind);
        }
        assert!(ls.run(100).agreed());
    }

    #[test]
    fn unanimous_runtime_errors_are_agreement() {
        // Selector goes out of range at cycle 2 in every engine.
        let d = design("# bad\nc s n .\nM c 0 n 1 1\nA n 4 c 1\nS s c 1 2 .");
        let mut ls = Lockstep::new(&d, CosimOptions::default());
        ls.add_engine(EngineKind::Interp).add_engine(EngineKind::Vm);
        match ls.run(50) {
            CosimOutcome::Agreement {
                cycles,
                stop: StopReason::Halt(halt),
            } => {
                assert_eq!(cycles, 2);
                assert_eq!(halt.label(), "selector-out-of-range");
                assert!(halt.to_string().contains("selector"), "{halt}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scripted_input_is_replayed_per_lane() {
        let d = design("# io\ni* acc n .\nM i 1 0 2 1\nM acc 0 n 1 1\nA n 4 acc i .");
        let mut ls = Lockstep::new(&d, CosimOptions::default());
        ls.stimulus((1..=8).collect::<Vec<Word>>());
        ls.add_engine(EngineKind::Interp).add_engine(EngineKind::Vm);
        assert!(ls.run(8).agreed());
    }

    #[test]
    fn exhausted_input_halts_unanimously() {
        let d = design("# io\ni .\nM i 1 0 2 1 .");
        let mut ls = Lockstep::new(&d, CosimOptions::default());
        ls.stimulus(vec![5, 6]);
        ls.add_engine(EngineKind::Interp).add_engine(EngineKind::Vm);
        match ls.run(10) {
            CosimOutcome::Agreement {
                cycles: 2,
                stop: StopReason::Halt(halt),
            } => {
                assert_eq!(halt, HaltKind::InputExhausted { cycle: 2 });
            }
            other => panic!("{other:?}"),
        }
    }
}
