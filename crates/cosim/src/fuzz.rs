//! The fuzz campaign driver: generate N scenarios, lockstep each, report.

use crate::engines::{registry, EngineKind};
use crate::generate::{generate_scenario, GenOptions};
use crate::lockstep::{CosimOptions, CosimOutcome, DivergenceReport};
use crate::report::{all_clean, write_rows, ResultRow};
use crate::stream::{run_scenario_names, ScenarioError};
use rtl_core::{LaneStats, StopReason};

/// Fuzz campaign configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzOptions {
    /// Base seed; case `i` uses seed `base + i` (wrapping), so any case
    /// can be re-run in isolation.
    pub seed: u64,
    /// Number of cases.
    pub cases: u32,
    /// Engine lane names under comparison (any registry lane, stream
    /// lanes included).
    pub engines: Vec<String>,
    /// Scenario generator tuning.
    pub generator: GenOptions,
    /// Lockstep tuning.
    pub cosim: CosimOptions,
}

impl FuzzOptions {
    /// Compares the given in-process tiers (the common case).
    pub fn with_kinds(kinds: &[EngineKind]) -> Self {
        FuzzOptions {
            engines: kinds.iter().map(|k| k.name().to_string()).collect(),
            ..Self::default()
        }
    }
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 0,
            cases: 50,
            engines: vec!["interp".into(), "vm".into()],
            generator: GenOptions::default(),
            cosim: CosimOptions::default(),
        }
    }
}

/// One fuzz case's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzCase {
    /// The case's own seed (`base + index`).
    pub seed: u64,
    /// Scenario name (`fuzz/seed-N`).
    pub name: String,
    /// Cycles verified in lockstep.
    pub cycles: u64,
    /// How the case stopped: cycle limit, or a structured unanimous halt.
    pub stop: StopReason,
    /// Per-lane simulation statistics, for lanes whose engines keep them.
    pub stats: Vec<LaneStats>,
    /// `Some` when the engines diverged.
    pub divergence: Option<DivergenceReport>,
}

impl FuzzCase {
    fn row(&self) -> ResultRow<'_> {
        ResultRow {
            name: &self.name,
            cycles: self.cycles,
            stop: &self.stop,
            divergence: self.divergence.as_ref(),
        }
    }
}

/// The structured result of a fuzz campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzReport {
    /// The campaign's options (for reproduction).
    pub options: FuzzOptions,
    /// Per-case results, in seed order.
    pub cases: Vec<FuzzCase>,
}

impl FuzzReport {
    /// Cases whose engines diverged.
    pub fn divergences(&self) -> impl Iterator<Item = &FuzzCase> {
        self.cases.iter().filter(|c| c.divergence.is_some())
    }

    /// `true` when every case agreed *and* ran its full horizon.
    /// Generated scenarios are valid by construction, so a runtime halt
    /// here means the generator's invariant broke — that must fail the
    /// campaign too, not just engine divergence.
    pub fn clean(&self) -> bool {
        all_clean(self.cases.iter().map(FuzzCase::row))
    }

    /// Total cycles verified across all cases.
    pub fn total_cycles(&self) -> u64 {
        self.cases.iter().map(|c| c.cycles).sum()
    }
}

impl std::fmt::Display for FuzzReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fuzz campaign: {} cases from seed {}, engines [{}], {} cycles/case",
            self.options.cases,
            self.options.seed,
            self.options.engines.join(", "),
            self.options.generator.cycles,
        )?;
        let rows: Vec<ResultRow<'_>> = self.cases.iter().map(FuzzCase::row).collect();
        write_rows(f, &rows)
    }
}

/// Runs the single fuzz case at `index` (seed `base + index`, wrapping)
/// against an explicit registry — the per-case entry point parallel
/// campaign workers call, each over its own registry instance.
/// Deterministic: the result depends only on `(options, index)`, never on
/// which worker or in what order cases run.
///
/// # Errors
///
/// Lane construction failures (unknown name, missing toolchain); runtime
/// disagreement is part of the returned case, not an `Err`.
pub fn run_fuzz_case(
    registry: &rtl_core::EngineRegistry,
    options: &FuzzOptions,
    index: u32,
) -> Result<FuzzCase, ScenarioError> {
    let seed = options.seed.wrapping_add(u64::from(index));
    let scenario = generate_scenario(seed, &options.generator);
    if options.cosim.recorder.enabled() {
        // Static tier in front of execution: lint every generated design
        // and fold per-code counts into the deterministic counter
        // section. The counts depend only on (config, index), so totals
        // are byte-identical across worker counts and kill+resume.
        let recorder = &options.cosim.recorder;
        recorder.count("lint", "designs_linted", 1);
        for (code, n) in rtl_lint::lint_source(&scenario.source).counts() {
            recorder.count("lint", code, n);
        }
    }
    let outcome = run_scenario_names(registry, &options.engines, &scenario, &options.cosim)?;
    let stats = outcome.lane_stats();
    let (cycles, stop, divergence) = match outcome {
        CosimOutcome::Agreement { cycles, stop, .. } => (cycles, stop, None),
        CosimOutcome::Divergence(report) => {
            let cycles = u64::try_from(report.cycle).unwrap_or(0);
            (cycles, StopReason::CycleLimit, Some(*report))
        }
    };
    Ok(FuzzCase {
        seed,
        name: scenario.name,
        cycles,
        stop,
        stats,
        divergence,
    })
}

/// Runs a fuzz campaign against the default registry. Deterministic:
/// identical options produce the identical report.
///
/// # Errors
///
/// Lane construction failures (unknown name, missing toolchain); runtime
/// disagreement is part of the report, not an `Err`.
pub fn run_fuzz(options: &FuzzOptions) -> Result<FuzzReport, ScenarioError> {
    let mut cases = Vec::with_capacity(options.cases as usize);
    for i in 0..options.cases {
        cases.push(run_fuzz_case(registry(), options, i)?);
    }
    Ok(FuzzReport {
        options: options.clone(),
        cases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl_core::HaltKind;

    fn quick_options() -> FuzzOptions {
        FuzzOptions {
            cases: 10,
            generator: GenOptions {
                size: 12,
                cycles: 24,
                ..GenOptions::default()
            },
            ..FuzzOptions::default()
        }
    }

    #[test]
    fn campaign_is_clean_and_deterministic() {
        let a = run_fuzz(&quick_options()).unwrap();
        assert!(a.clean(), "{a}");
        assert_eq!(a.cases.len(), 10);
        let b = run_fuzz(&quick_options()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn report_renders_structured_text() {
        let report = run_fuzz(&FuzzOptions {
            cases: 3,
            ..quick_options()
        })
        .unwrap();
        let text = report.to_string();
        assert!(
            text.contains("fuzz campaign: 3 cases from seed 0"),
            "{text}"
        );
        assert!(text.contains("summary: 3/3 agreed, 0 diverged"), "{text}");
        assert!(text.contains("fuzz/seed-2"), "{text}");
    }

    #[test]
    fn halted_cases_fail_the_campaign() {
        // A generated scenario halting means the generator's
        // validity-by-construction invariant broke; clean() must say so.
        let mut report = run_fuzz(&FuzzOptions {
            cases: 1,
            ..quick_options()
        })
        .unwrap();
        assert!(report.clean());
        report.cases[0].stop = StopReason::Halt(HaltKind::InputExhausted { cycle: 0 });
        assert!(!report.clean());
    }

    #[test]
    fn seed_near_u64_max_does_not_overflow() {
        let report = run_fuzz(&FuzzOptions {
            seed: u64::MAX,
            cases: 3,
            ..quick_options()
        })
        .unwrap();
        assert_eq!(report.cases.len(), 3);
        assert_eq!(report.cases[0].seed, u64::MAX);
        assert_eq!(report.cases[1].seed, 0, "wraps deterministically");
    }

    #[test]
    fn four_way_campaign_agrees() {
        let options = FuzzOptions {
            cases: 5,
            generator: quick_options().generator,
            ..FuzzOptions::with_kinds(&EngineKind::ALL)
        };
        assert!(run_fuzz(&options).unwrap().clean());
    }

    #[test]
    fn unknown_lane_errors_up_front() {
        let options = FuzzOptions {
            engines: vec!["interp".into(), "warp".into()],
            cases: 1,
            ..quick_options()
        };
        assert!(run_fuzz(&options).is_err());
    }
}
