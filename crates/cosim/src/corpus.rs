//! Runs the built-in scenario corpus through lockstep.

use crate::engines::{registry, EngineKind};
use crate::lockstep::{CosimOptions, CosimOutcome, DivergenceReport};
use crate::report::{all_clean, write_rows, ResultRow};
use crate::stream::{run_scenario_names, ScenarioError};
use rtl_core::{EngineRegistry, StopReason};
use rtl_machines::scenarios;

/// One corpus entry's lockstep result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusResult {
    /// Scenario registry name.
    pub name: String,
    /// Cycles verified.
    pub cycles: u64,
    /// How the scenario stopped: a clean cycle limit, or a structured
    /// unanimous halt.
    pub stop: StopReason,
    /// `Some` when engines diverged.
    pub divergence: Option<DivergenceReport>,
}

impl CorpusResult {
    fn row(&self) -> ResultRow<'_> {
        ResultRow {
            name: &self.name,
            cycles: self.cycles,
            stop: &self.stop,
            divergence: self.divergence.as_ref(),
        }
    }
}

/// Results for a corpus sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusReport {
    /// Engine lane names compared.
    pub engines: Vec<String>,
    /// Per-scenario results, in registry order.
    pub results: Vec<CorpusResult>,
}

impl CorpusReport {
    /// `true` when every scenario agreed *and* ran its full horizon.
    /// Registered scenarios promise a clean run at their cycle count, so
    /// a unanimous halt is a failure even though the engines agree —
    /// otherwise a scenario halting at cycle 0 would verify nothing and
    /// still report green.
    pub fn clean(&self) -> bool {
        all_clean(self.results.iter().map(CorpusResult::row))
    }

    /// Scenarios that ended in a unanimous halt.
    pub fn halts(&self) -> impl Iterator<Item = &CorpusResult> {
        self.results.iter().filter(|r| r.stop.halt().is_some())
    }

    /// Scenarios whose engines diverged.
    pub fn divergences(&self) -> impl Iterator<Item = &CorpusResult> {
        self.results.iter().filter(|r| r.divergence.is_some())
    }

    /// Total cycles verified across the corpus.
    pub fn total_cycles(&self) -> u64 {
        self.results.iter().map(|r| r.cycles).sum()
    }
}

impl std::fmt::Display for CorpusReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cosim corpus sweep, engines [{}]",
            self.engines.join(", ")
        )?;
        let rows: Vec<ResultRow<'_>> = self.results.iter().map(CorpusResult::row).collect();
        write_rows(f, &rows)
    }
}

/// Locksteps every scenario in the built-in corpus across the named
/// registry lanes (stream lanes included — see
/// [`run_scenario_names`]). `cycles` re-targets each scenario's horizon
/// when given (stimulus scripts are extended to match, so longer sweeps
/// never exhaust input).
///
/// # Errors
///
/// Lane construction failures (unknown name, missing toolchain); runtime
/// disagreement is part of the report, not an `Err`.
pub fn run_corpus_names(
    registry: &EngineRegistry,
    names: &[String],
    cycles: Option<u64>,
    options: &CosimOptions,
) -> Result<CorpusReport, ScenarioError> {
    let mut results = Vec::new();
    for entry in scenarios::corpus() {
        let scenario = match cycles {
            Some(n) => entry.with_cycles(n),
            None => entry,
        };
        let outcome = match run_scenario_names(registry, names, &scenario, options) {
            Ok(outcome) => outcome,
            Err(ScenarioError::Load(_)) => {
                unreachable!("built-in scenarios are valid (covered by rtl-machines tests)")
            }
            Err(e) => return Err(e),
        };
        let (ran, stop, divergence) = match outcome {
            CosimOutcome::Agreement { cycles, stop, .. } => (cycles, stop, None),
            CosimOutcome::Divergence(report) => (
                u64::try_from(report.cycle).unwrap_or(0),
                StopReason::CycleLimit,
                Some(*report),
            ),
        };
        results.push(CorpusResult {
            name: scenario.name,
            cycles: ran,
            stop,
            divergence,
        });
    }
    Ok(CorpusReport {
        engines: names.to_vec(),
        results,
    })
}

/// [`run_corpus_names`] over the in-process tiers of the default
/// registry — the harness-friendly entry point ([`EngineKind`] is `Copy`
/// and cannot fail to build).
pub fn run_corpus(
    engines: &[EngineKind],
    cycles: Option<u64>,
    options: &CosimOptions,
) -> CorpusReport {
    let names: Vec<String> = engines.iter().map(|k| k.name().to_string()).collect();
    run_corpus_names(registry(), &names, cycles, options).expect("in-process tiers always build")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl_core::HaltKind;

    #[test]
    fn halted_scenarios_fail_the_sweep() {
        let mut report = run_corpus(
            &[EngineKind::Interp, EngineKind::Vm],
            Some(4),
            &CosimOptions::default(),
        );
        assert!(report.clean());
        report.results[0].stop = StopReason::Halt(HaltKind::InputExhausted { cycle: 0 });
        assert!(
            !report.clean(),
            "a halt verifies nothing and must not be green"
        );
        assert_eq!(report.halts().count(), 1);
    }

    #[test]
    fn cycle_override_above_registered_horizons_stays_clean() {
        // Regression: the override used to leave io/accumulator's stimulus
        // at its registered length, so any horizon above it exhausted
        // input and failed the sweep.
        let report = run_corpus(
            &[EngineKind::Interp, EngineKind::Vm],
            Some(1100),
            &CosimOptions {
                compare_every: 64,
                ..CosimOptions::default()
            },
        );
        assert!(report.clean(), "{report}");
        for r in &report.results {
            assert_eq!(r.cycles, 1100, "{} fell short", r.name);
        }
    }

    #[test]
    fn corpus_agrees_briefly() {
        // Full-horizon sweeps run in the integration tests and the CLI;
        // keep the unit test quick with a short override.
        let report = run_corpus(
            &[EngineKind::Interp, EngineKind::Vm],
            Some(48),
            &CosimOptions::default(),
        );
        assert!(report.clean(), "{report}");
        assert!(report.results.len() >= 12);
        assert!(report.to_string().contains("summary:"));
    }

    #[test]
    fn unknown_lane_names_error_up_front() {
        let err = run_corpus_names(
            registry(),
            &["interp".to_string(), "warp".to_string()],
            Some(4),
            &CosimOptions::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown engine"), "{err}");
    }
}
