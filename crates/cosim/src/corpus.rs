//! Runs the built-in scenario corpus through lockstep.

use crate::engines::EngineKind;
use crate::lockstep::{run_scenario, CosimOptions, CosimOutcome, DivergenceReport};
use crate::report::{all_clean, write_rows, ResultRow};
use rtl_machines::scenarios;

/// One corpus entry's lockstep result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusResult {
    /// Scenario registry name.
    pub name: String,
    /// Cycles verified.
    pub cycles: u64,
    /// `Some` when the scenario ended in a unanimous runtime halt.
    pub halted: Option<String>,
    /// `Some` when engines diverged.
    pub divergence: Option<DivergenceReport>,
}

impl CorpusResult {
    fn row(&self) -> ResultRow<'_> {
        ResultRow {
            name: &self.name,
            cycles: self.cycles,
            halted: self.halted.as_deref(),
            divergence: self.divergence.as_ref(),
        }
    }
}

/// Results for a corpus sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusReport {
    /// Engine tiers compared.
    pub engines: Vec<EngineKind>,
    /// Per-scenario results, in registry order.
    pub results: Vec<CorpusResult>,
}

impl CorpusReport {
    /// `true` when every scenario agreed *and* ran its full horizon.
    /// Registered scenarios promise a clean run at their cycle count, so
    /// a unanimous halt is a failure even though the engines agree —
    /// otherwise a scenario halting at cycle 0 would verify nothing and
    /// still report green.
    pub fn clean(&self) -> bool {
        all_clean(self.results.iter().map(CorpusResult::row))
    }

    /// Scenarios that ended in a unanimous halt.
    pub fn halts(&self) -> impl Iterator<Item = &CorpusResult> {
        self.results.iter().filter(|r| r.halted.is_some())
    }

    /// Scenarios whose engines diverged.
    pub fn divergences(&self) -> impl Iterator<Item = &CorpusResult> {
        self.results.iter().filter(|r| r.divergence.is_some())
    }

    /// Total cycles verified across the corpus.
    pub fn total_cycles(&self) -> u64 {
        self.results.iter().map(|r| r.cycles).sum()
    }
}

impl std::fmt::Display for CorpusReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let engines: Vec<&str> = self.engines.iter().map(|k| k.name()).collect();
        writeln!(f, "cosim corpus sweep, engines [{}]", engines.join(", "))?;
        let rows: Vec<ResultRow<'_>> = self.results.iter().map(CorpusResult::row).collect();
        write_rows(f, &rows)
    }
}

/// Locksteps every scenario in the built-in corpus. `cycles` re-targets
/// each scenario's horizon when given (stimulus scripts are extended to
/// match, so longer sweeps never exhaust input).
pub fn run_corpus(
    engines: &[EngineKind],
    cycles: Option<u64>,
    options: &CosimOptions,
) -> CorpusReport {
    let mut results = Vec::new();
    for entry in scenarios::corpus() {
        let scenario = match cycles {
            Some(n) => entry.with_cycles(n),
            None => entry,
        };
        let outcome = run_scenario(&scenario, engines, options)
            .expect("built-in scenarios are valid (covered by rtl-machines tests)");
        let (ran, halted, divergence) = match outcome {
            CosimOutcome::Agreement { cycles, halted } => (cycles, halted, None),
            CosimOutcome::Divergence(report) => (
                u64::try_from(report.cycle).unwrap_or(0),
                None,
                Some(*report),
            ),
        };
        results.push(CorpusResult {
            name: scenario.name,
            cycles: ran,
            halted,
            divergence,
        });
    }
    CorpusReport {
        engines: engines.to_vec(),
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halted_scenarios_fail_the_sweep() {
        let mut report = run_corpus(
            &[EngineKind::Interp, EngineKind::Vm],
            Some(4),
            &CosimOptions::default(),
        );
        assert!(report.clean());
        report.results[0].halted = Some("input exhausted at cycle 0".into());
        assert!(
            !report.clean(),
            "a halt verifies nothing and must not be green"
        );
        assert_eq!(report.halts().count(), 1);
    }

    #[test]
    fn cycle_override_above_registered_horizons_stays_clean() {
        // Regression: the override used to leave io/accumulator's stimulus
        // at its registered length, so any horizon above it exhausted
        // input and failed the sweep.
        let report = run_corpus(
            &[EngineKind::Interp, EngineKind::Vm],
            Some(1100),
            &CosimOptions {
                compare_every: 64,
                ..CosimOptions::default()
            },
        );
        assert!(report.clean(), "{report}");
        for r in &report.results {
            assert_eq!(r.cycles, 1100, "{} fell short", r.name);
        }
    }

    #[test]
    fn corpus_agrees_briefly() {
        // Full-horizon sweeps run in the integration tests and the CLI;
        // keep the unit test quick with a short override.
        let report = run_corpus(
            &[EngineKind::Interp, EngineKind::Vm],
            Some(48),
            &CosimOptions::default(),
        );
        assert!(report.clean(), "{report}");
        assert!(report.results.len() >= 12);
        assert!(report.to_string().contains("summary:"));
    }
}
