//! Shared result-row rendering for the corpus and fuzz reports, so the
//! status derivation, summary line and halt/divergence dumps cannot
//! drift apart between the two.

use crate::lockstep::DivergenceReport;
use rtl_core::StopReason;

/// One scenario/case outcome, borrowed from the owning report.
pub(crate) struct ResultRow<'a> {
    pub name: &'a str,
    pub cycles: u64,
    pub stop: &'a StopReason,
    pub divergence: Option<&'a DivergenceReport>,
}

impl ResultRow<'_> {
    /// Agreed over the full horizon: no divergence *and* a clean cycle
    /// limit (a unanimous halt verifies nothing past the halting cycle,
    /// and both the corpus and the generator promise halt-free horizons).
    pub(crate) fn clean(&self) -> bool {
        self.divergence.is_none() && self.stop.is_cycle_limit()
    }
}

/// Whether every row is clean.
pub(crate) fn all_clean<'a>(rows: impl Iterator<Item = ResultRow<'a>>) -> bool {
    let mut rows = rows;
    rows.all(|r| r.clean())
}

/// Writes the per-row lines, the summary line, and the full divergence
/// reports.
pub(crate) fn write_rows(
    f: &mut std::fmt::Formatter<'_>,
    rows: &[ResultRow<'_>],
) -> std::fmt::Result {
    for r in rows {
        let status = match (&r.divergence, &r.stop) {
            (Some(_), _) => "DIVERGED",
            (None, StopReason::CycleLimit) => "ok",
            (None, StopReason::Halt(_)) => "halted",
            (None, StopReason::Error(_)) => "error",
        };
        writeln!(f, "  {:<22} {:>6} cycles  {status}", r.name, r.cycles)?;
        match &r.stop {
            StopReason::CycleLimit => {}
            StopReason::Halt(h) => writeln!(f, "    halt: {h}")?,
            StopReason::Error(e) => writeln!(f, "    error: {e}")?,
        }
    }
    let diverged = rows.iter().filter(|r| r.divergence.is_some()).count();
    let total: u64 = rows.iter().map(|r| r.cycles).sum();
    writeln!(
        f,
        "summary: {}/{} agreed, {} diverged, {} cycles verified",
        rows.len() - diverged,
        rows.len(),
        diverged,
        total,
    )?;
    for r in rows {
        if let Some(report) = r.divergence {
            write!(f, "{report}")?;
        }
    }
    Ok(())
}
