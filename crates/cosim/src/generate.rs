//! The seeded scenario generator: valid-by-construction random ASIM II
//! specifications *with stimulus scripts*.
//!
//! Where [`rtl_machines::synth::random_spec`] generates closed designs for
//! property tests, this generator also wires in memory-mapped input fed by
//! a seeded stimulus script, so a fuzz case exercises the full engine
//! surface: combinational evaluation, memory capture/update, trace
//! formatting, and the input path. Every construction rule keeps the
//! design free of runtime errors — addresses are bit-masked to the memory
//! size, selector indices to the case count, ALU functions stay in
//! `0..=13`, and the stimulus script always holds enough words — so any
//! divergence a fuzz run finds is an engine bug, never a bad scenario.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtl_core::Word;
use rtl_machines::{Scenario, SpecBuilder};

/// Generator tuning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenOptions {
    /// Combinational components to generate (clamped to `1..=200`).
    pub size: usize,
    /// Cycle horizon of the generated scenario (also sizes the stimulus).
    pub cycles: u64,
    /// Generate a memory-mapped input port (with stimulus) roughly every
    /// `1/io_every` cases; 0 disables input entirely.
    pub io_every: u32,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            size: 30,
            cycles: 64,
            io_every: 2,
        }
    }
}

/// Deterministically generates one scenario from a seed. Identical seed
/// and options always produce the identical scenario, so a fuzz report
/// identifies a failing case by seed alone.
pub fn generate_scenario(seed: u64, options: &GenOptions) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let size = options.size.clamp(1, 200);
    let mut b = SpecBuilder::new(format!("cosim fuzz case seed {seed} size {size}"));

    // Driver: a free-running counter every expression can draw from.
    b.trace("c");
    b.memory("c", "0", "next", "1", 1);
    b.alu("next", "4", "c.0.11", "1");
    let mut sources: Vec<String> = vec!["c".into()];

    // Optional memory-mapped input port, one word per cycle.
    let has_input = options.io_every > 0 && rng.random_range(0..options.io_every) == 0;
    if has_input {
        // Address 1 reads an integer; size 1 (input ops never index cells).
        b.memory("inp", "1", "0", "2", 1);
        b.trace("inp");
        sources.push("inp".into());
    }

    // A few internal memories: ROMs, registers, and dynamically-switched.
    let mem_count = rng.random_range(1..=3u32);
    for m in 0..mem_count {
        let name = format!("m{m}");
        let bits = rng.random_range(1..=4u8);
        let cells = 1u32 << bits;
        let addr = format!("c.0.{}", bits - 1);
        match rng.random_range(0..3) {
            0 => {
                let init: Vec<Word> = (0..cells).map(|_| rng.random_range(0..1000)).collect();
                b.memory_init(&name, &addr, "0", "0", init);
            }
            1 => {
                let data = pick_expr(&mut rng, &sources);
                b.memory(&name, &addr, &data, "1", cells);
            }
            _ => {
                let data = pick_expr(&mut rng, &sources);
                b.memory(&name, &addr, &data, "c.0", cells);
            }
        }
        b.trace(&name);
        sources.push(name);
    }

    // Combinational layers: ALUs with in-range functions, selectors with
    // masked indices.
    for i in 0..size {
        let name = format!("x{i}");
        if rng.random_range(0..4) == 0 {
            let bits = rng.random_range(1..=3u32);
            let cases: Vec<String> = (0..(1 << bits))
                .map(|_| pick_expr(&mut rng, &sources))
                .collect();
            let sel = format!("{}.0.{}", pick_source(&mut rng, &sources), bits - 1);
            b.selector(&name, &sel, cases);
        } else {
            let f = rng.random_range(0..=13i64).to_string();
            let left = pick_expr(&mut rng, &sources);
            let right = pick_expr(&mut rng, &sources);
            b.alu(&name, &f, &left, &right);
        }
        if rng.random_range(0..3) == 0 {
            b.trace(&name);
        }
        sources.push(name);
    }

    // Stimulus: one word per cycle for the input port, plus slack in case
    // a future edit adds a second port.
    let input = if has_input {
        (0..options.cycles + 8)
            .map(|_| rng.random_range(0..100_000i64))
            .collect()
    } else {
        Vec::new()
    };

    Scenario {
        name: format!("fuzz/seed-{seed}"),
        source: b.source(),
        cycles: options.cycles,
        input,
    }
}

fn pick_source(rng: &mut StdRng, sources: &[String]) -> String {
    sources[rng.random_range(0..sources.len())].clone()
}

/// A concatenation expression over existing sources and constants; only
/// the leftmost part may be unsized (the 31-bit width budget).
fn pick_expr(rng: &mut StdRng, sources: &[String]) -> String {
    let parts = rng.random_range(1..=3usize);
    let mut out = Vec::with_capacity(parts);
    for i in 0..parts {
        let sized = i > 0 || rng.random_range(0..2) == 0;
        if rng.random_range(0..3) == 0 {
            let v = rng.random_range(0..16i64);
            if sized {
                out.push(format!("{v}.4"));
            } else {
                out.push(v.to_string());
            }
        } else {
            let s = pick_source(rng, sources);
            if sized {
                let from = rng.random_range(0..4u8);
                let to = from + rng.random_range(0..4u8);
                out.push(format!("{s}.{from}.{to}"));
            } else {
                out.push(s);
            }
        }
    }
    out.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_scenario(7, &GenOptions::default());
        let b = generate_scenario(7, &GenOptions::default());
        assert_eq!(a, b);
        let c = generate_scenario(8, &GenOptions::default());
        assert_ne!(a.source, c.source);
    }

    #[test]
    fn many_seeds_elaborate() {
        for seed in 0..60 {
            let s = generate_scenario(seed, &GenOptions::default());
            s.design()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", s.source));
        }
    }

    #[test]
    fn io_cases_carry_enough_stimulus() {
        let options = GenOptions {
            io_every: 1,
            ..GenOptions::default()
        };
        for seed in 0..10 {
            let s = generate_scenario(seed, &options);
            assert!(
                s.source.contains("M inp"),
                "io_every=1 must generate a port\n{}",
                s.source
            );
            assert!(
                s.input.len() as u64 >= s.cycles,
                "stimulus must cover the horizon"
            );
        }
    }

    #[test]
    fn io_can_be_disabled() {
        let options = GenOptions {
            io_every: 0,
            ..GenOptions::default()
        };
        for seed in 0..10 {
            let s = generate_scenario(seed, &options);
            assert!(!s.source.contains("M inp"));
            assert!(s.input.is_empty());
        }
    }
}
