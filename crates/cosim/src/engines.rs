//! The default engine registry and the legacy tier names.
//!
//! Engine *construction* lives in `rtl-core`'s open
//! [`EngineRegistry`]: each execution tier registers an
//! [`EngineFactory`](rtl_core::EngineFactory) with its own crate
//! (`rtl-interp` the interpreter tiers, `rtl-compile` the VM tiers and
//! the generated-Rust subprocess lane). This module only *assembles* the
//! default registry — and keeps [`EngineKind`], the enum of in-process
//! tiers, as a thin alias over it for harness code that wants `Copy`
//! handles.

use rtl_core::{Design, Engine, EngineLane, EngineOptions, EngineRegistry};

/// The default registry: every built-in tier, in registration order —
/// `interp`, `interp-faithful`, `vm`, `vm-noopt`, the `rust` subprocess
/// stream lane, plus `vm-fault` (the deliberately broken VM that
/// validates the harness itself — see [`crate::fault`]). Open by
/// construction: callers may [`register`](EngineRegistry::register) more
/// lanes on their own copy.
///
/// The `rust` lane here compiles per run and cleans up after itself.
/// Long-running harnesses that revisit designs (campaigns) shadow the
/// lane with a [`BinaryCache`](rtl_compile::BinaryCache)-backed factory
/// instead — an *owned* cache, whose scratch directories are removed when
/// it drops. (A process-global cache would never drop and would leak its
/// compiled binaries into the temp directory at exit.)
pub fn default_registry() -> EngineRegistry {
    let mut r = EngineRegistry::new();
    r.register(Box::new(rtl_interp::InterpFactory::indexed()));
    r.register(Box::new(rtl_interp::InterpFactory::faithful()));
    r.register(Box::new(rtl_compile::VmFactory::full()));
    r.register(Box::new(rtl_compile::VmFactory::no_opt()));
    r.register(Box::new(rtl_compile::GeneratedRustFactory::default()));
    r.register(Box::new(crate::fault::FaultyVmFactory::default()));
    r
}

/// The shared default registry (built once per process).
pub fn registry() -> &'static EngineRegistry {
    static REGISTRY: std::sync::OnceLock<EngineRegistry> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(default_registry)
}

/// An in-process execution tier that can join a lockstep run — a `Copy`
/// alias over the core registry's stepped lanes. Stream lanes (the
/// generated-Rust subprocess) have no `EngineKind`; drive them by name
/// through [`run_scenario_names`](crate::stream::run_scenario_names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The ASIM table interpreter with indexed lookups.
    Interp,
    /// The interpreter in its faithful 1986 configuration (symbol-table
    /// lookups — slower, same values).
    InterpFaithful,
    /// The ASIM II bytecode VM with full optimization.
    Vm,
    /// The VM with every optimization pass disabled.
    VmNoOpt,
}

impl EngineKind {
    /// All in-process tiers, in registry order.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::Interp,
        EngineKind::InterpFaithful,
        EngineKind::Vm,
        EngineKind::VmNoOpt,
    ];

    /// The registry name (`interp`, `interp-faithful`, `vm`, `vm-noopt`).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Interp => "interp",
            EngineKind::InterpFaithful => "interp-faithful",
            EngineKind::Vm => "vm",
            EngineKind::VmNoOpt => "vm-noopt",
        }
    }

    /// Parses one in-process tier name.
    ///
    /// # Errors
    ///
    /// Returns a message listing the known names.
    pub fn parse(name: &str) -> Result<EngineKind, String> {
        Self::ALL
            .into_iter()
            .find(|k| k.name() == name)
            .ok_or_else(|| {
                let known: Vec<&str> = Self::ALL.iter().map(|k| k.name()).collect();
                format!("unknown engine {name:?} (known: {})", known.join(", "))
            })
    }

    /// Parses a comma-separated list (`"interp,vm"`), requiring at least
    /// two distinct tiers — lockstep against yourself proves nothing.
    ///
    /// # Errors
    ///
    /// Unknown names, fewer than two entries, or duplicates.
    pub fn parse_list(list: &str) -> Result<Vec<EngineKind>, String> {
        let kinds: Vec<EngineKind> = list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(Self::parse)
            .collect::<Result<_, _>>()?;
        if kinds.len() < 2 {
            return Err("need at least two engines (e.g. --engines interp,vm)".into());
        }
        for (i, k) in kinds.iter().enumerate() {
            if kinds[..i].contains(k) {
                return Err(format!("duplicate engine {:?}", k.name()));
            }
        }
        Ok(kinds)
    }

    /// Builds the engine over a design through the core registry. `trace`
    /// controls cycle-trace text (lockstep compares it byte-for-byte when
    /// on).
    pub fn build<'d>(self, design: &'d Design, trace: bool) -> Box<dyn Engine + 'd> {
        self.build_with(
            design,
            &EngineOptions {
                trace,
                ..EngineOptions::default()
            },
        )
    }

    /// [`build`](EngineKind::build) with full [`EngineOptions`] (trace
    /// plus the profile hook).
    pub fn build_with<'d>(
        self,
        design: &'d Design,
        options: &EngineOptions,
    ) -> Box<dyn Engine + 'd> {
        match registry().build(self.name(), design, options) {
            Ok(EngineLane::Stepped(engine)) => engine,
            Ok(EngineLane::Stream(_)) | Err(_) => {
                unreachable!("built-in in-process tiers always build stepped lanes")
            }
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for k in EngineKind::ALL {
            assert_eq!(EngineKind::parse(k.name()), Ok(k));
        }
        assert!(
            EngineKind::parse("rust").is_err(),
            "stream lanes have no EngineKind"
        );
    }

    #[test]
    fn list_parsing() {
        assert_eq!(
            EngineKind::parse_list("interp, vm"),
            Ok(vec![EngineKind::Interp, EngineKind::Vm])
        );
        assert!(
            EngineKind::parse_list("interp").is_err(),
            "one engine is not a comparison"
        );
        assert!(
            EngineKind::parse_list("vm,vm").is_err(),
            "duplicates rejected"
        );
        assert!(EngineKind::parse_list("interp,warp").is_err());
    }

    #[test]
    fn every_kind_builds_and_steps() {
        let design =
            Design::from_source("# c\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .")
                .unwrap();
        for kind in EngineKind::ALL {
            let mut engine = kind.build(&design, true);
            let mut out = Vec::new();
            engine.step(&mut out, &mut rtl_core::NoInput).unwrap();
            assert_eq!(engine.state().cycle(), 1, "{kind}");
        }
    }

    #[test]
    fn registries_cross_threads() {
        // The contract parallel campaign workers rely on: a registry can
        // be built on (or shared with) any thread, and lanes built there
        // run there. EngineFactory is Send + Sync by declaration; this
        // pins the whole registry.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EngineRegistry>();
        let handle = std::thread::spawn(|| {
            let registry = default_registry();
            let design =
                Design::from_source("# c\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .")
                    .unwrap();
            let lane = registry
                .build("vm", &design, &EngineOptions::default())
                .unwrap();
            let EngineLane::Stepped(mut engine) = lane else {
                panic!("vm is stepped");
            };
            engine
                .step(&mut Vec::new(), &mut rtl_core::NoInput)
                .unwrap();
            engine.state().cycle()
        });
        assert_eq!(handle.join().unwrap(), 1);
    }

    #[test]
    fn registry_lists_every_lane() {
        let names = registry().names();
        for kind in EngineKind::ALL {
            assert!(names.contains(&kind.name()), "{names:?}");
        }
        assert!(names.contains(&"rust"), "{names:?}");
        assert!(!registry().get("rust").unwrap().is_stepped());
        assert!(names.contains(&"vm-fault"), "{names:?}");
    }
}
