//! The engine registry: named execution tiers and their factories.

use rtl_compile::{OptOptions, Vm};
use rtl_core::{Design, Engine};
use rtl_interp::{InterpOptions, Interpreter};

/// An execution tier that can join a lockstep run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The ASIM table interpreter with indexed lookups.
    Interp,
    /// The interpreter in its faithful 1986 configuration (symbol-table
    /// lookups — slower, same values).
    InterpFaithful,
    /// The ASIM II bytecode VM with full optimization.
    Vm,
    /// The VM with every optimization pass disabled.
    VmNoOpt,
}

impl EngineKind {
    /// All tiers, in registry order.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::Interp,
        EngineKind::InterpFaithful,
        EngineKind::Vm,
        EngineKind::VmNoOpt,
    ];

    /// The registry name (`interp`, `interp-faithful`, `vm`, `vm-noopt`).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Interp => "interp",
            EngineKind::InterpFaithful => "interp-faithful",
            EngineKind::Vm => "vm",
            EngineKind::VmNoOpt => "vm-noopt",
        }
    }

    /// Parses one registry name.
    ///
    /// # Errors
    ///
    /// Returns a message listing the known names.
    pub fn parse(name: &str) -> Result<EngineKind, String> {
        Self::ALL
            .into_iter()
            .find(|k| k.name() == name)
            .ok_or_else(|| {
                let known: Vec<&str> = Self::ALL.iter().map(|k| k.name()).collect();
                format!("unknown engine {name:?} (known: {})", known.join(", "))
            })
    }

    /// Parses a comma-separated list (`"interp,vm"`), requiring at least
    /// two distinct tiers — lockstep against yourself proves nothing.
    ///
    /// # Errors
    ///
    /// Unknown names, fewer than two entries, or duplicates.
    pub fn parse_list(list: &str) -> Result<Vec<EngineKind>, String> {
        let kinds: Vec<EngineKind> = list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(Self::parse)
            .collect::<Result<_, _>>()?;
        if kinds.len() < 2 {
            return Err("need at least two engines (e.g. --engines interp,vm)".into());
        }
        for (i, k) in kinds.iter().enumerate() {
            if kinds[..i].contains(k) {
                return Err(format!("duplicate engine {:?}", k.name()));
            }
        }
        Ok(kinds)
    }

    /// Builds the engine over a design. `trace` controls cycle-trace text
    /// (lockstep compares it byte-for-byte when on).
    pub fn build<'d>(self, design: &'d Design, trace: bool) -> Box<dyn Engine + 'd> {
        match self {
            EngineKind::Interp => Box::new(Interpreter::with_options(
                design,
                InterpOptions {
                    trace,
                    ..InterpOptions::default()
                },
            )),
            EngineKind::InterpFaithful => Box::new(Interpreter::with_options(
                design,
                InterpOptions {
                    trace,
                    ..InterpOptions::faithful()
                },
            )),
            EngineKind::Vm => Box::new(Vm::with_options(design, OptOptions::full(), trace)),
            EngineKind::VmNoOpt => Box::new(Vm::with_options(design, OptOptions::none(), trace)),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for k in EngineKind::ALL {
            assert_eq!(EngineKind::parse(k.name()), Ok(k));
        }
        assert!(EngineKind::parse("rustc").is_err());
    }

    #[test]
    fn list_parsing() {
        assert_eq!(
            EngineKind::parse_list("interp, vm"),
            Ok(vec![EngineKind::Interp, EngineKind::Vm])
        );
        assert!(
            EngineKind::parse_list("interp").is_err(),
            "one engine is not a comparison"
        );
        assert!(
            EngineKind::parse_list("vm,vm").is_err(),
            "duplicates rejected"
        );
        assert!(EngineKind::parse_list("interp,warp").is_err());
    }

    #[test]
    fn every_kind_builds_and_steps() {
        let design =
            Design::from_source("# c\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .")
                .unwrap();
        for kind in EngineKind::ALL {
            let mut engine = kind.build(&design, true);
            let mut out = Vec::new();
            engine.step(&mut out, &mut rtl_core::NoInput).unwrap();
            assert_eq!(engine.state().cycle(), 1, "{kind}");
        }
    }
}
