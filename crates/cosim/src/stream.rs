//! Driving a scenario across registry lanes by *name*, including stream
//! lanes.
//!
//! Stepped lanes (interpreter, VM) run in per-cycle lockstep as usual.
//! Stream lanes — the generated-Rust simulator binary run as a subprocess
//! — cannot be stepped, so they join differently: after the stepped lanes
//! agree over the full horizon, each stream lane replays the same
//! scenario in one shot and its stdout is compared byte-for-byte against
//! the trace the stepped lanes agreed on (the same bytes a capture
//! [`TraceSink`](rtl_core::TraceSink) would have seen). A mismatch is a
//! [`DivergenceKind::Stream`] report with the divergence cycle estimated
//! from the last matching cycle header.

use crate::lockstep::{CosimOptions, CosimOutcome, DivergenceReport, Lockstep, LockstepCheckpoint};
use rtl_core::{
    DivergenceKind, EngineLane, EngineOptions, EngineRegistry, LaneReport, LaneStats, LoadError,
    Session, StopReason, StreamEngine, Until, Word,
};
use rtl_machines::Scenario;

/// Why a named-lane scenario run could not start.
#[derive(Debug)]
pub enum ScenarioError {
    /// The scenario's specification failed to parse/elaborate.
    Load(LoadError),
    /// A lane could not be built (unknown name, missing toolchain, or an
    /// unusable lane mix).
    Engine(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Load(e) => e.fmt(f),
            ScenarioError::Engine(e) => f.write_str(e),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<LoadError> for ScenarioError {
    fn from(e: LoadError) -> Self {
        ScenarioError::Load(e)
    }
}

/// Runs a [`Scenario`] through the named registry lanes: stepped lanes in
/// lockstep, stream lanes by full-stream comparison (see the [module
/// docs](self)).
///
/// When the stepped lanes end in a unanimous halt, the halt outcome is
/// returned and stream lanes are left unverified — a crashed horizon has
/// no agreed trace to compare against.
///
/// # Errors
///
/// Specification load failures and lane construction failures; runtime
/// disagreement is part of the [`CosimOutcome`], not an `Err`.
pub fn run_scenario_names(
    registry: &EngineRegistry,
    names: &[String],
    scenario: &Scenario,
    options: &CosimOptions,
) -> Result<CosimOutcome, ScenarioError> {
    let design = scenario.design()?;
    let engine_options = EngineOptions {
        trace: options.trace,
        profile: options.profile.clone(),
    };
    let mut stepped = Vec::new();
    let mut streams: Vec<(String, Box<dyn StreamEngine + '_>)> = Vec::new();
    for name in names {
        match registry
            .build(name, &design, &engine_options)
            .map_err(ScenarioError::Engine)?
        {
            EngineLane::Stepped(engine) => stepped.push((name.clone(), engine)),
            EngineLane::Stream(stream) => streams.push((name.clone(), stream)),
        }
    }
    if stepped.is_empty() {
        return Err(ScenarioError::Engine(
            "need at least one in-process engine (stream lanes are compared \
             against the stepped lanes' agreed trace)"
                .into(),
        ));
    }

    // The agreed reference trace: from lockstep when two or more lanes
    // step, from a single captured session otherwise.
    let reference_name = stepped[0].0.clone();
    let (mut outcome, agreed) = if stepped.len() >= 2 {
        let mut lockstep = Lockstep::new(
            &design,
            CosimOptions {
                retain_output: options.retain_output || !streams.is_empty(),
                ..options.clone()
            },
        );
        lockstep.stimulus(scenario.input.clone());
        for (name, engine) in stepped {
            lockstep.add_lane(&name, engine);
        }
        // Digest comparators join before any resume: they are part of the
        // harness identity a lockstep checkpoint fingerprints.
        let export_log = match &options.export_digests {
            Some(_) => {
                let log = std::rc::Rc::new(std::cell::RefCell::new(crate::digest::DigestLog::new(
                    scenario.name.clone(),
                    rtl_core::design_fingerprint(&design),
                    options.compare_every,
                )));
                lockstep.add_comparator(Box::new(crate::digest::DigestRecorder::new(
                    std::rc::Rc::clone(&log),
                )));
                Some(log)
            }
            None => None,
        };
        if options.lint_oracle {
            let claims = rtl_lint::StaticClaims::of(&design);
            if !claims.is_empty() {
                lockstep.add_comparator(Box::new(rtl_lint::OracleComparator::new(
                    claims,
                    options.recorder.clone(),
                )));
            }
        }
        if let Some(path) = &options.check_digests {
            let log = crate::digest::DigestLog::load(path).map_err(|e| {
                ScenarioError::Engine(format!("cannot read digests {}: {e}", path.display()))
            })?;
            if log.design != rtl_core::design_fingerprint(&design) {
                return Err(ScenarioError::Engine(format!(
                    "digest stream {} was recorded over a different design",
                    path.display()
                )));
            }
            if log.every != options.compare_every.max(1) {
                return Err(ScenarioError::Engine(format!(
                    "digest stream {} was recorded at stride {}, this run compares every {} \
                     (strides must match for the cycles to line up)",
                    path.display(),
                    log.every,
                    options.compare_every.max(1)
                )));
            }
            lockstep.add_comparator(Box::new(crate::digest::DigestLane::new(log)));
        }
        if let Some(path) = &options.resume {
            if !streams.is_empty() {
                return Err(ScenarioError::Engine(
                    "stream lanes cannot join a resumed lockstep run (the agreed trace \
                     before the resume point is not available for comparison)"
                        .into(),
                ));
            }
            lockstep.resume_from(path).map_err(|e| {
                ScenarioError::Engine(format!(
                    "cannot resume lockstep from {}: {e}",
                    path.display()
                ))
            })?;
        }
        let outcome = drive_lockstep(&mut lockstep, scenario.cycles, options.checkpoint.as_ref())?;
        if let (Some(path), Some(log)) = (&options.export_digests, export_log) {
            log.borrow().save(path).map_err(|e| {
                ScenarioError::Engine(format!("cannot write digests {}: {e}", path.display()))
            })?;
        }
        (outcome, lockstep.agreed_output())
    } else {
        let (name, engine) = stepped.into_iter().next().expect("checked non-empty");
        if streams.is_empty() {
            return Err(ScenarioError::Engine(format!(
                "engine {name:?} alone is not a comparison (add another lane)"
            )));
        }
        if options.resume.is_some() || options.checkpoint.is_some() {
            return Err(ScenarioError::Engine(
                "lockstep checkpoint/resume needs at least two stepped lanes".into(),
            ));
        }
        if options.export_digests.is_some() || options.check_digests.is_some() {
            return Err(ScenarioError::Engine(
                "digest export/check runs through the lockstep comparators and needs \
                 at least two stepped lanes"
                    .into(),
            ));
        }
        let mut session = Session::over(engine)
            .capture()
            .scripted(scenario.input.iter().copied())
            .recorder(options.recorder.clone())
            .build();
        let run = session.run(Until::Cycles(scenario.cycles));
        let stats = session
            .engine()
            .stats()
            .map(|s| LaneStats {
                lane: name.clone(),
                stats: s.clone(),
            })
            .into_iter()
            .collect();
        let outcome = CosimOutcome::Agreement {
            cycles: run.cycles,
            stop: run.stop,
            stats,
        };
        (outcome, session.output().to_vec())
    };

    if let CosimOutcome::Agreement {
        stop: StopReason::CycleLimit,
        ..
    } = &outcome
    {
        for (name, mut stream) in streams {
            let got = stream
                .run_stream(scenario.cycles, &scenario.input)
                .map_err(|e| ScenarioError::Engine(format!("stream lane {name:?}: {e}")))?;
            if got != agreed {
                return Ok(CosimOutcome::Divergence(Box::new(stream_report(
                    scenario,
                    &reference_name,
                    &agreed,
                    &name,
                    &got,
                    options.trace_window,
                ))));
            }
        }
    }

    if let CosimOutcome::Divergence(report) = &mut outcome {
        report.scenario = scenario.name.clone();
    }
    Ok(outcome)
}

/// Drives a lockstep harness to `horizon` total verified cycles, writing
/// the checkpoint document after every `checkpoint.every`-cycle chunk —
/// a kill at any instant leaves an atomically-published document a later
/// `--resume` picks up. Agreement cycle counts are reported as *total*
/// verified cycles (resumed prefix included), so a resumed run's outcome
/// is byte-identical to an uninterrupted one.
fn drive_lockstep(
    lockstep: &mut Lockstep<'_>,
    horizon: u64,
    checkpoint: Option<&LockstepCheckpoint>,
) -> Result<CosimOutcome, ScenarioError> {
    loop {
        let done = lockstep.verified_cycles();
        let remaining = horizon.saturating_sub(done);
        let chunk = match checkpoint {
            Some(ck) => ck.every.max(1).min(remaining),
            None => remaining,
        };
        match lockstep.run(chunk) {
            CosimOutcome::Agreement {
                stop: StopReason::CycleLimit,
                stats,
                ..
            } => {
                if let Some(ck) = checkpoint {
                    lockstep.checkpoint_to(&ck.path).map_err(|e| {
                        ScenarioError::Engine(format!(
                            "cannot write lockstep checkpoint {}: {e}",
                            ck.path.display()
                        ))
                    })?;
                }
                if lockstep.verified_cycles() >= horizon {
                    return Ok(CosimOutcome::Agreement {
                        cycles: lockstep.verified_cycles(),
                        stop: StopReason::CycleLimit,
                        stats,
                    });
                }
            }
            CosimOutcome::Agreement { stop, stats, .. } => {
                return Ok(CosimOutcome::Agreement {
                    cycles: lockstep.verified_cycles(),
                    stop,
                    stats,
                });
            }
            divergence => return Ok(divergence),
        }
    }
}

fn stream_report(
    scenario: &Scenario,
    reference_name: &str,
    agreed: &[u8],
    lane: &str,
    got: &[u8],
    window: usize,
) -> DivergenceReport {
    let prefix = agreed.iter().zip(got).take_while(|(a, b)| a == b).count();
    let cycle = cycle_at(&agreed[..prefix]);
    let lane_view = |name: &str, bytes: &[u8]| {
        // Quote the stream around the first mismatching byte.
        let end = (prefix + 120).min(bytes.len());
        let text = String::from_utf8_lossy(&bytes[..end]);
        let lines: Vec<&str> = text.lines().collect();
        let start = lines.len().saturating_sub(window);
        LaneReport {
            engine: name.to_string(),
            cycle,
            value: None,
            error: None,
            trace_window: lines[start..].iter().map(|s| s.to_string()).collect(),
            stats: None,
        }
    };
    DivergenceReport {
        scenario: scenario.name.clone(),
        cycle,
        kind: DivergenceKind::Stream {
            lane: lane.to_string(),
        },
        lanes: vec![lane_view(reference_name, agreed), lane_view(lane, got)],
    }
}

/// The cycle a byte offset into an agreed trace falls in: the index of
/// the last `Cycle ` header starting a line in the identical prefix
/// (0 when the streams diverge before the first header — or when trace
/// text is off and no headers exist).
fn cycle_at(prefix: &[u8]) -> Word {
    let mut count: Word = 0;
    let mut at_line_start = true;
    let mut i = 0;
    while i < prefix.len() {
        if at_line_start && prefix[i..].starts_with(b"Cycle ") {
            count += 1;
        }
        at_line_start = prefix[i] == b'\n';
        i += 1;
    }
    count.saturating_sub(1).max(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::registry;
    use rtl_core::HaltKind;
    use rtl_machines::scenarios;

    fn names(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn cycle_estimation_counts_headers() {
        assert_eq!(cycle_at(b""), 0);
        assert_eq!(cycle_at(b"Cycle   0 x= 1\n"), 0);
        assert_eq!(cycle_at(b"Cycle   0 x= 1\nCycle   1 x= 2\nCyc"), 1);
        assert_eq!(cycle_at(b"no headers at all"), 0);
    }

    #[test]
    fn stepped_lanes_by_name_match_engine_kinds() {
        let scenario = scenarios::by_name("classic/counter")
            .unwrap()
            .with_cycles(32);
        let outcome = run_scenario_names(
            registry(),
            &names(&["interp", "vm", "vm-noopt"]),
            &scenario,
            &CosimOptions::default(),
        )
        .unwrap();
        assert!(outcome.agreed(), "{outcome:?}");
    }

    #[test]
    fn unknown_and_underpowered_lane_lists_error() {
        let scenario = scenarios::by_name("classic/counter")
            .unwrap()
            .with_cycles(8);
        let err = run_scenario_names(
            registry(),
            &names(&["warp", "vm"]),
            &scenario,
            &CosimOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ScenarioError::Engine(_)), "{err}");
    }

    #[test]
    fn halts_skip_stream_verification() {
        // Scripted input runs dry at cycle 2 — the stepped lanes halt
        // unanimously; the outcome is the structured halt.
        let mut scenario = scenarios::by_name("io/accumulator")
            .unwrap()
            .with_cycles(50);
        scenario.input.truncate(2);
        let outcome = run_scenario_names(
            registry(),
            &names(&["interp", "vm"]),
            &scenario,
            &CosimOptions::default(),
        )
        .unwrap();
        assert_eq!(outcome.halt(), Some(&HaltKind::InputExhausted { cycle: 2 }));
    }

    #[test]
    fn rust_stream_lane_agrees_on_a_scenario() {
        if !rtl_compile::rustc_available() {
            eprintln!("skipping: rustc not on PATH");
            return;
        }
        let scenario = scenarios::by_name("classic/counter")
            .unwrap()
            .with_cycles(24);
        let outcome = run_scenario_names(
            registry(),
            &names(&["interp", "vm", "rust"]),
            &scenario,
            &CosimOptions::default(),
        )
        .unwrap();
        assert!(outcome.agreed(), "{outcome:?}");
    }

    #[test]
    fn rust_stream_lane_exercises_scripted_input() {
        if !rtl_compile::rustc_available() {
            eprintln!("skipping: rustc not on PATH");
            return;
        }
        let scenario = scenarios::by_name("io/accumulator")
            .unwrap()
            .with_cycles(16);
        let outcome = run_scenario_names(
            registry(),
            &names(&["vm", "rust"]),
            &scenario,
            &CosimOptions::default(),
        )
        .unwrap();
        assert!(outcome.agreed(), "{outcome:?}");
    }

    #[test]
    fn a_corrupt_stream_is_reported_with_a_cycle_estimate() {
        struct GarbageStream;
        impl StreamEngine for GarbageStream {
            fn run_stream(&mut self, _cycles: u64, _stimulus: &[Word]) -> Result<Vec<u8>, String> {
                // Matches the counter trace for cycles 0..=1, then lies.
                Ok(b"Cycle   0 count= 0\nCycle   1 count= 1\nCycle   2 count= 9\n".to_vec())
            }
        }
        struct GarbageFactory;
        impl rtl_core::EngineFactory for GarbageFactory {
            fn name(&self) -> &str {
                "garbage"
            }
            fn is_stepped(&self) -> bool {
                false
            }
            fn build<'d>(
                &self,
                _design: &'d rtl_core::Design,
                _options: &EngineOptions,
            ) -> Result<EngineLane<'d>, String> {
                Ok(EngineLane::Stream(Box::new(GarbageStream)))
            }
        }
        let mut reg = crate::engines::default_registry();
        reg.register(Box::new(GarbageFactory));
        let scenario = scenarios::by_name("classic/counter")
            .unwrap()
            .with_cycles(3);
        let outcome = run_scenario_names(
            &reg,
            &names(&["interp", "vm", "garbage"]),
            &scenario,
            &CosimOptions::default(),
        )
        .unwrap();
        let CosimOutcome::Divergence(report) = outcome else {
            panic!("expected divergence, got {outcome:?}");
        };
        assert_eq!(
            report.kind,
            DivergenceKind::Stream {
                lane: "garbage".into()
            }
        );
        assert_eq!(report.cycle, 2, "{report}");
        assert_eq!(report.lanes.len(), 2);
    }
}
