//! Deliberate fault injection: a broken engine lane for validating the
//! differential pipeline end to end.
//!
//! A verification subsystem that has never seen a bug is itself
//! unverified. The `vm-fault` lane wraps the production bytecode VM and,
//! from a trigger cycle on, corrupts what the lane *shows*: its trace
//! bytes (`=` becomes `#`) and its observed architectural state (bit 0 of
//! the first observed component's output flipped, via a corrupted view —
//! the VM's real state is never touched). Every shipped
//! [`Comparator`](rtl_core::observe::Comparator) lens — trace bytes,
//! outputs, VCD samples, the composite — therefore sees the fault at the
//! *same first cycle*, and because the underlying state stays healthy,
//! checkpoint/rewind bisection still replays the divergence
//! byte-for-byte.

use rtl_core::{
    CompId, Design, Engine, EngineFactory, EngineLane, EngineOptions, InputSource, SimError,
    SimState, SimStats, Word,
};
use std::io::Write;

/// The default trigger cycle of the registered `vm-fault` lane.
pub const DEFAULT_FAULT_CYCLE: u64 = 40;

/// Builds the `vm-fault` lane: the full-optimization VM with trace and
/// observed-output corruption from a trigger cycle on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultyVmFactory {
    from_cycle: u64,
}

impl Default for FaultyVmFactory {
    fn default() -> Self {
        FaultyVmFactory {
            from_cycle: DEFAULT_FAULT_CYCLE,
        }
    }
}

impl FaultyVmFactory {
    /// A factory whose lanes corrupt their observable face from `cycle`
    /// on.
    pub fn from_cycle(cycle: u64) -> Self {
        FaultyVmFactory { from_cycle: cycle }
    }
}

impl EngineFactory for FaultyVmFactory {
    fn name(&self) -> &str {
        "vm-fault"
    }

    fn description(&self) -> &str {
        "deliberately faulty VM (trace + observed-output corruption past a trigger cycle) \
         for harness self-tests"
    }

    fn build<'d>(
        &self,
        design: &'d Design,
        options: &EngineOptions,
    ) -> Result<EngineLane<'d>, String> {
        let EngineLane::Stepped(inner) = rtl_compile::VmFactory::full().build(design, options)?
        else {
            unreachable!("the VM factory builds stepped lanes");
        };
        Ok(EngineLane::Stepped(Box::new(FaultInjector {
            inner,
            from_cycle: Word::try_from(self.from_cycle).unwrap_or(Word::MAX),
            view: None,
        })))
    }
}

/// Wraps any engine: from the trigger cycle on, its trace bytes are
/// mangled (`=` becomes `#`) and its [`state`](Engine::state) is a
/// deterministically corrupted *view* (bit 0 of the first observed
/// component's output flipped). The inner engine's own state is never
/// modified, so restore/replay reproduces the fault exactly.
struct FaultInjector<'d> {
    inner: Box<dyn Engine + 'd>,
    from_cycle: Word,
    view: Option<SimState>,
}

impl FaultInjector<'_> {
    /// The corrupted component: the first one the wrapped engine
    /// observes (deterministic per design).
    fn target(&self) -> Option<CompId> {
        self.inner
            .design()
            .iter()
            .map(|(id, _)| id)
            .find(|&id| self.inner.observes_output(id))
    }

    fn refresh_view(&mut self) {
        let state = self.inner.state();
        // The step that executes cycle `from_cycle` leaves the counter at
        // `from_cycle + 1`; the view corrupts from that same step on, so
        // state-based lenses fire at the identical first cycle as the
        // trace corruption.
        if state.cycle() > self.from_cycle {
            if let Some(id) = self.target() {
                let mut view = state.clone();
                view.set_output(id, state.output(id) ^ 1);
                self.view = Some(view);
                return;
            }
        }
        self.view = None;
    }
}

impl Engine for FaultInjector<'_> {
    fn design(&self) -> &Design {
        self.inner.design()
    }

    fn state(&self) -> &SimState {
        self.view.as_ref().unwrap_or_else(|| self.inner.state())
    }

    fn restore(&mut self, snapshot: &SimState) {
        // Snapshots and checkpoints are taken through `state()`, i.e. the
        // corrupted *view* when past the trigger. The corruption is an
        // involution (XOR 1 on one output), so invert it here before
        // handing the state to the real engine — otherwise a
        // checkpoint/restore round trip would fold the view's flip into
        // the engine's true state and the fault would stop being
        // replayable byte-for-byte.
        if snapshot.cycle() > self.from_cycle {
            if let Some(id) = self.target() {
                let mut clean = snapshot.clone();
                clean.set_output(id, snapshot.output(id) ^ 1);
                self.inner.restore(&clean);
                self.refresh_view();
                return;
            }
        }
        self.inner.restore(snapshot);
        self.refresh_view();
    }

    fn observes_output(&self, id: CompId) -> bool {
        self.inner.observes_output(id)
    }

    fn stats(&self) -> Option<&SimStats> {
        self.inner.stats()
    }

    fn step(&mut self, out: &mut dyn Write, input: &mut dyn InputSource) -> Result<(), SimError> {
        let result = if self.inner.state().cycle() >= self.from_cycle {
            let mut corrupt = Corruptor { out };
            self.inner.step(&mut corrupt, input)
        } else {
            self.inner.step(out, input)
        };
        self.refresh_view();
        result
    }
}

struct Corruptor<'a> {
    out: &'a mut dyn Write,
}

impl Write for Corruptor<'_> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mangled: Vec<u8> = buf
            .iter()
            .map(|&b| if b == b'=' { b'#' } else { b })
            .collect();
        self.out.write_all(&mangled)?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CosimOptions, CosimOutcome, Lockstep};
    use rtl_core::observe::CompareMode;
    use rtl_core::DivergenceKind;

    const COUNTER: &str = "# c\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .";

    fn fault_registry(from_cycle: u64) -> rtl_core::EngineRegistry {
        let mut registry = crate::engines::default_registry();
        registry.register(Box::new(FaultyVmFactory::from_cycle(from_cycle)));
        registry
    }

    fn build<'d>(
        registry: &rtl_core::EngineRegistry,
        name: &str,
        design: &'d Design,
    ) -> Box<dyn Engine + 'd> {
        let EngineLane::Stepped(engine) = registry
            .build(name, design, &EngineOptions::default())
            .unwrap()
        else {
            panic!("stepped");
        };
        engine
    }

    #[test]
    fn fault_diverges_exactly_at_its_trigger() {
        let design = Design::from_source(COUNTER).unwrap();
        let registry = fault_registry(7);
        let mut lockstep = Lockstep::new(&design, CosimOptions::default());
        lockstep.add_lane("interp", build(&registry, "interp", &design));
        lockstep.add_lane("vm-fault", build(&registry, "vm-fault", &design));
        let CosimOutcome::Divergence(report) = lockstep.run(20) else {
            panic!("fault must diverge");
        };
        assert_eq!(report.cycle, 7);
        assert_eq!(report.kind, DivergenceKind::Trace);
    }

    #[test]
    fn fault_agrees_below_its_trigger() {
        let design = Design::from_source(COUNTER).unwrap();
        let registry = fault_registry(50);
        // Lockstep entirely below the trigger: no divergence.
        let mut lockstep = Lockstep::new(&design, CosimOptions::default());
        lockstep.add_lane("interp", build(&registry, "interp", &design));
        lockstep.add_lane("vm-fault", build(&registry, "vm-fault", &design));
        assert!(lockstep.run(20).agreed());
    }

    #[test]
    fn every_lens_sees_the_fault_at_the_same_cycle() {
        // The acceptance property behind `--compare vcd`: trace bytes,
        // VCD samples, raw outputs and the composite all report the
        // identical first divergent cycle.
        let design = Design::from_source(COUNTER).unwrap();
        let registry = fault_registry(7);
        for mode in [
            CompareMode::Trace,
            CompareMode::Vcd,
            CompareMode::Outputs,
            CompareMode::All,
        ] {
            let mut lockstep = Lockstep::new(
                &design,
                CosimOptions {
                    compare: vec![mode],
                    ..CosimOptions::default()
                },
            );
            lockstep.add_lane("interp", build(&registry, "interp", &design));
            lockstep.add_lane("vm-fault", build(&registry, "vm-fault", &design));
            let CosimOutcome::Divergence(report) = lockstep.run(20) else {
                panic!("{mode}: fault must diverge");
            };
            assert_eq!(report.cycle, 7, "{mode}: first divergent cycle");
        }
    }

    #[test]
    fn checkpoint_resume_past_the_trigger_stays_replayable() {
        // Session::checkpoint serializes `state()` — past the trigger
        // that is the corrupted view. restore() must invert the flip, or
        // the view folds into the engine's real state on resume and the
        // resumed run diverges from an uninterrupted one.
        use rtl_core::{Session, Until};
        let design = Design::from_source(COUNTER).unwrap();
        let registry = fault_registry(3);

        let mut reference = Session::over(build(&registry, "vm-fault", &design))
            .capture()
            .build();
        assert!(reference.run(Until::Cycles(6)).completed());
        let mut doc = Vec::new();
        reference.checkpoint(&mut doc).unwrap();
        assert!(reference.run(Until::Cycles(4)).completed());

        let mut resumed = Session::over(build(&registry, "vm-fault", &design))
            .capture()
            .build();
        resumed.resume(&mut &doc[..]).unwrap();
        assert!(resumed.run(Until::Cycles(4)).completed());
        assert_eq!(
            resumed.state(),
            reference.state(),
            "a post-trigger checkpoint round trip must not compound the corruption"
        );
        assert!(
            reference.output_text().ends_with(&resumed.output_text()),
            "the resumed trace is the uninterrupted run's suffix"
        );
    }

    #[test]
    fn the_view_never_touches_the_real_state() {
        // Below the trigger the view is pass-through; past it, only the
        // observation is corrupted — restore() to a pre-trigger snapshot
        // clears it, which is what makes rewind-bisection replayable.
        let design = Design::from_source(COUNTER).unwrap();
        let registry = fault_registry(3);
        let mut engine = build(&registry, "vm-fault", &design);
        let mut healthy = build(&registry, "vm", &design);
        let before = engine.snapshot();
        for _ in 0..5 {
            engine
                .step(&mut Vec::new(), &mut rtl_core::NoInput)
                .unwrap();
            healthy
                .step(&mut Vec::new(), &mut rtl_core::NoInput)
                .unwrap();
        }
        let count = design.find("count").unwrap();
        assert_eq!(
            engine.state().output(count),
            healthy.state().output(count) ^ 1,
            "view corrupts bit 0 past the trigger"
        );
        engine.restore(&before);
        assert_eq!(engine.state().cycle(), 0, "restore clears the view");
        assert_eq!(engine.state().output(count), 0);
    }
}
