//! Cross-validation of the static analyzer against the running engines.
//!
//! Three properties: (1) a spec with a statically-dead arm produces the
//! static diagnostic *and* a full dynamic run that never contradicts the
//! claim; (2) deliberately falsified claims — the "intentionally wrong
//! analyzer" — are caught as [`DivergenceKind::Oracle`] divergences; (3)
//! every registry scenario runs clean under the oracle.

use rtl_core::observe::DivergenceKind;
use rtl_core::Design;
use rtl_cosim::{registry, run_scenario_names, CosimOptions, CosimOutcome, EngineKind, Lockstep};
use rtl_lint::{lint_source, OracleComparator, StaticClaims};
use rtl_obs::Recorder;

/// A counter-driven selector whose arm 4 is statically unreachable: the
/// two-bit select never exceeds 3.
const DEAD_ARM: &str =
    "# dead arm demo\nc* n s* .\nM c 0 n 1 1\nA n 4 c 1\nS s c.0.1 10 20 30 40 50 .\n";

#[test]
fn dead_arm_is_flagged_statically_and_never_fires_dynamically() {
    // Static: the lint reports the unreachable arm.
    let report = lint_source(DEAD_ARM);
    assert!(
        report.diagnostics().iter().any(|d| d.code == "dead-arm"),
        "{}",
        report.render_text("dead-arm-demo")
    );

    // Dynamic: the oracle watches every observation of a full run and
    // never sees the arm fire or an undriven cell change.
    let design = Design::from_source(DEAD_ARM).unwrap();
    let claims = StaticClaims::of(&design);
    assert!(!claims.is_empty(), "the demo design must carry claims");
    let (recorder, log) = Recorder::memory();
    let mut lockstep = Lockstep::new(&design, CosimOptions::default());
    lockstep
        .add_engine(EngineKind::Interp)
        .add_engine(EngineKind::Vm)
        .add_comparator(Box::new(OracleComparator::new(claims, recorder.clone())));
    let outcome = lockstep.run(64);
    assert!(outcome.agreed(), "{outcome:?}");
    recorder.flush();
    let text = log.text();
    assert!(text.contains("\"key\":\"oracle_checks\""), "{text}");
    assert!(!text.contains("oracle_contradictions"), "{text}");
}

#[test]
fn falsified_dead_arm_claim_is_caught() {
    // The "intentionally wrong analyzer": claim arm 1 is dead when the
    // counter drives the select through it every fourth cycle.
    let design = Design::from_source(DEAD_ARM).unwrap();
    let s = design.find("s").unwrap().index();
    let claims = StaticClaims {
        dead_arms: vec![(s, vec![1])],
        undriven: vec![],
    };
    let recorder = Recorder::disabled();
    let mut lockstep = Lockstep::new(&design, CosimOptions::default());
    lockstep
        .add_engine(EngineKind::Interp)
        .add_engine(EngineKind::Vm)
        .add_comparator(Box::new(OracleComparator::new(claims, recorder)));
    match lockstep.run(64) {
        CosimOutcome::Divergence(report) => match &report.kind {
            DivergenceKind::Oracle { component, claim } => {
                assert_eq!(component, "s");
                assert!(claim.contains("arm 1"), "{claim}");
            }
            other => panic!("wrong divergence kind: {other}"),
        },
        other => panic!("falsified claim not caught: {other:?}"),
    }
}

#[test]
fn falsified_undriven_claim_is_caught() {
    // Claim the counter register is never written; it increments every
    // cycle, so the first comparison already contradicts the claim.
    let design = Design::from_source(DEAD_ARM).unwrap();
    let c = design.find("c").unwrap().index();
    let claims = StaticClaims {
        dead_arms: vec![],
        undriven: vec![(c, vec![0])],
    };
    let mut lockstep = Lockstep::new(&design, CosimOptions::default());
    lockstep
        .add_engine(EngineKind::Interp)
        .add_engine(EngineKind::Vm)
        .add_comparator(Box::new(OracleComparator::new(
            claims,
            Recorder::disabled(),
        )));
    match lockstep.run(64) {
        CosimOutcome::Divergence(report) => match &report.kind {
            DivergenceKind::Oracle { component, claim } => {
                assert_eq!(component, "c");
                assert!(claim.contains("undriven"), "{claim}");
            }
            other => panic!("wrong divergence kind: {other}"),
        },
        other => panic!("falsified claim not caught: {other:?}"),
    }
}

#[test]
fn registry_scenarios_agree_under_the_oracle() {
    let (recorder, log) = Recorder::memory();
    let options = CosimOptions {
        lint_oracle: true,
        recorder: recorder.clone(),
        ..CosimOptions::default()
    };
    let lanes = vec!["interp".to_string(), "vm".to_string()];
    for name in rtl_machines::scenarios::names() {
        let scenario = rtl_machines::scenarios::by_name(&name).unwrap();
        let outcome = run_scenario_names(registry(), &lanes, &scenario, &options).unwrap();
        assert!(outcome.agreed(), "{name}: {outcome:?}");
    }
    recorder.flush();
    let text = log.text();
    assert!(!text.contains("oracle_contradictions"), "{text}");
}
