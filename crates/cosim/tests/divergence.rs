//! Proof that the harness actually detects divergences: a deliberately
//! broken engine must be caught at exactly the cycle it misbehaves, with
//! the right report shape — and the interp-vs-VM pairing must stay clean
//! on generated scenarios (the property the whole subsystem guards).

use proptest::prelude::*;
use rtl_core::{Design, Engine, HaltKind, InputSource, SimError, SimState, StopReason, Word};
use rtl_cosim::{
    generate_scenario, CosimOptions, CosimOutcome, DivergenceKind, EngineKind, GenOptions, Lockstep,
};
use rtl_interp::Interpreter;
use std::io::Write;

/// How the broken engine misbehaves.
#[derive(Clone, Copy)]
enum Fault {
    /// Corrupts one component's visible output from `at_cycle` on.
    Output,
    /// Writes garbage into the trace stream at `at_cycle`.
    Trace,
    /// Raises a runtime error at `at_cycle`.
    Error,
}

/// An interpreter wrapper that sabotages one cycle — the test double for
/// the harness itself.
struct BrokenEngine<'d> {
    inner: Interpreter<'d>,
    fault: Fault,
    at_cycle: Word,
}

impl<'d> BrokenEngine<'d> {
    fn new(design: &'d Design, fault: Fault, at_cycle: Word) -> Self {
        BrokenEngine {
            inner: Interpreter::new(design),
            fault,
            at_cycle,
        }
    }
}

impl Engine for BrokenEngine<'_> {
    fn design(&self) -> &Design {
        self.inner.design()
    }

    fn state(&self) -> &SimState {
        self.inner.state()
    }

    fn restore(&mut self, snapshot: &SimState) {
        self.inner.restore(snapshot);
    }

    fn step(&mut self, out: &mut dyn Write, input: &mut dyn InputSource) -> Result<(), SimError> {
        let cycle = self.inner.state().cycle();
        if cycle >= self.at_cycle {
            match self.fault {
                Fault::Error => {
                    return Err(SimError::BadAluFunction {
                        component: "sabotaged".into(),
                        funct: 99,
                        cycle,
                    });
                }
                Fault::Trace => {
                    self.inner.step(out, input)?;
                    writeln!(out, "garbage")?;
                    return Ok(());
                }
                Fault::Output => {
                    self.inner.step(out, input)?;
                    let id = self.inner.design().id_at(0);
                    let bad = self.inner.state().output(id) + 1000;
                    let mut corrupted = self.inner.snapshot();
                    corrupted.set_output(id, bad);
                    self.inner.restore(&corrupted);
                    return Ok(());
                }
            }
        }
        self.inner.step(out, input)
    }
}

const COUNTER: &str = "# c\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .";

fn broken_lockstep(fault: Fault, at_cycle: Word, options: CosimOptions) -> CosimOutcome {
    let design = Design::from_source(COUNTER).unwrap();
    let mut lockstep = Lockstep::new(&design, options);
    lockstep.add_engine(EngineKind::Vm);
    lockstep.add_lane(
        "broken",
        Box::new(BrokenEngine::new(&design, fault, at_cycle)),
    );
    lockstep.run(40)
}

#[test]
fn output_fault_is_caught_at_the_exact_cycle() {
    let outcome = broken_lockstep(Fault::Output, 17, CosimOptions::default());
    let CosimOutcome::Divergence(report) = outcome else {
        panic!("expected divergence, got {outcome:?}");
    };
    assert_eq!(report.cycle, 17, "{report}");
    // The counter's memory is component 0; its corrupted latch diverges.
    assert!(
        matches!(&report.kind, DivergenceKind::Output { component } if component == "count"),
        "{report}"
    );
    assert_eq!(report.lanes.len(), 2);
    let values: Vec<Option<Word>> = report.lanes.iter().map(|l| l.value).collect();
    assert_eq!(values[0].unwrap() + 1000, values[1].unwrap(), "{report}");
}

#[test]
fn trace_fault_is_caught_at_the_exact_cycle() {
    let outcome = broken_lockstep(Fault::Trace, 5, CosimOptions::default());
    let CosimOutcome::Divergence(report) = outcome else {
        panic!("expected divergence, got {outcome:?}");
    };
    assert_eq!(report.cycle, 5);
    assert_eq!(report.kind, DivergenceKind::Trace);
    // The broken lane's window shows the injected garbage.
    let broken = report.lanes.iter().find(|l| l.engine == "broken").unwrap();
    assert!(
        broken.trace_window.iter().any(|l| l == "garbage"),
        "{report}"
    );
}

#[test]
fn one_sided_error_is_a_divergence_not_a_halt() {
    let outcome = broken_lockstep(Fault::Error, 9, CosimOptions::default());
    let CosimOutcome::Divergence(report) = outcome else {
        panic!("expected divergence, got {outcome:?}");
    };
    assert_eq!(report.cycle, 9);
    assert_eq!(report.kind, DivergenceKind::Error);
    let broken = report.lanes.iter().find(|l| l.engine == "broken").unwrap();
    assert!(
        matches!(
            &broken.error,
            Some(SimError::BadAluFunction { component, .. }) if component == "sabotaged"
        ),
        "{report}"
    );
    let healthy = report.lanes.iter().find(|l| l.engine == "vm").unwrap();
    assert!(healthy.error.is_none());
}

#[test]
fn unanimous_halts_are_classified_structurally() {
    // Every engine runs the scripted input dry at the same cycle: the
    // outcome is an agreement whose StopReason is a *structured* halt —
    // a value to match on, not a string to grep.
    let design = Design::from_source("# io\ni .\nM i 1 0 2 1 .").unwrap();
    let mut lockstep = Lockstep::new(&design, CosimOptions::default());
    lockstep.stimulus(vec![5, 6, 7]);
    lockstep.add_engine(EngineKind::Interp);
    lockstep.add_engine(EngineKind::Vm);
    match lockstep.run(20) {
        CosimOutcome::Agreement {
            cycles,
            stop: StopReason::Halt(halt),
            ..
        } => {
            assert_eq!(cycles, 3);
            assert_eq!(halt, HaltKind::InputExhausted { cycle: 3 });
            assert_eq!(halt.label(), "input-exhausted");
        }
        other => panic!("expected a classified unanimous halt, got {other:?}"),
    }

    // And a design-level crash classifies by component, not by message.
    let design =
        Design::from_source("# bad\nc s n .\nM c 0 n 1 1\nA n 4 c 1\nS s c 1 2 .").unwrap();
    let mut lockstep = Lockstep::new(&design, CosimOptions::default());
    lockstep.add_engine(EngineKind::Interp);
    lockstep.add_engine(EngineKind::Vm);
    let outcome = lockstep.run(20);
    let halt = outcome.halt().expect("unanimous selector crash");
    assert!(
        matches!(
            halt,
            HaltKind::SelectorOutOfRange { component, index: 2, cases: 2, cycle: 2 }
                if component == "s"
        ),
        "{halt:?}"
    );
}

#[test]
fn coarse_comparison_bisects_to_the_same_cycle() {
    // Compare every 16 cycles; the fault at cycle 21 lands mid-interval,
    // so detection requires the checkpoint-rewind bisection path.
    for fault in [Fault::Output, Fault::Trace, Fault::Error] {
        let options = CosimOptions {
            compare_every: 16,
            ..CosimOptions::default()
        };
        let outcome = broken_lockstep(fault, 21, options);
        let CosimOutcome::Divergence(report) = outcome else {
            panic!("expected divergence");
        };
        assert_eq!(report.cycle, 21, "{report}");
    }
}

proptest! {
    /// The central safety property, now via the subsystem that owns it:
    /// interpreter and VM agree in lockstep on arbitrary generated
    /// scenarios (stimulus included) for a bounded cycle budget.
    #[test]
    fn interp_vs_vm_lockstep_on_generated_scenarios(seed in 0u64..300, size in 1usize..25) {
        let options = GenOptions { size, cycles: 24, ..GenOptions::default() };
        let scenario = generate_scenario(seed, &options);
        let outcome = rtl_cosim::run_scenario(
            &scenario,
            &[EngineKind::Interp, EngineKind::Vm],
            &CosimOptions::default(),
        ).expect("generated scenarios elaborate");
        prop_assert!(outcome.agreed(), "{scenario:?}: {outcome:?}");
    }

    /// Coarse comparison intervals never change the verdict on clean runs.
    #[test]
    fn comparison_stride_does_not_change_verdicts(seed in 0u64..40, stride in 1u64..32) {
        let scenario = generate_scenario(seed, &GenOptions { size: 10, cycles: 32, ..GenOptions::default() });
        let fine = rtl_cosim::run_scenario(
            &scenario,
            &[EngineKind::Interp, EngineKind::Vm],
            &CosimOptions::default(),
        ).unwrap();
        let coarse = rtl_cosim::run_scenario(
            &scenario,
            &[EngineKind::Interp, EngineKind::Vm],
            &CosimOptions { compare_every: stride, ..CosimOptions::default() },
        ).unwrap();
        prop_assert_eq!(fine.agreed(), coarse.agreed());
    }
}
