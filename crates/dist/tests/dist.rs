//! The distributed-campaign determinism contract: `shard plan N` + N×
//! `shard run` + `merge` is **bit-identical** to a single-machine
//! `campaign run` — same report, same `campaign.json`, same case records,
//! same corpus — at any shard count, including a kill-and-resume inside a
//! shard.

use proptest::prelude::*;
use rtl_campaign::{CampaignConfig, CampaignDir, CampaignError, NoProgress, RunOptions};
use rtl_cosim::GenOptions;
use rtl_dist::{merge, run_shard, ShardPlan};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(name: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "asim2-dist-{}-{name}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quick_config(seed: u64, engines: &[&str], cycles: u64) -> CampaignConfig {
    CampaignConfig {
        seed,
        cases: 5,
        engines: engines.iter().map(|s| s.to_string()).collect(),
        generator: GenOptions {
            size: 6,
            cycles,
            ..GenOptions::default()
        },
        compare_every: 1,
        lint_oracle: false,
    }
}

/// Everything outcome-carrying in a campaign directory, as relative path
/// → bytes: the manifest, every case record, every corpus file. The
/// `bin-cache/` (a rebuildable cache) and `shard.json` (shard-local
/// metadata by design) are excluded.
fn tree(root: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    files.insert(
        "campaign.json".to_string(),
        std::fs::read(root.join("campaign.json")).expect("manifest exists"),
    );
    for sub in ["cases", "corpus"] {
        let dir = root.join(sub);
        let Ok(listing) = std::fs::read_dir(&dir) else {
            continue;
        };
        for dirent in listing {
            let path = dirent.unwrap().path();
            if path.is_file() {
                let name = format!("{sub}/{}", path.file_name().unwrap().to_string_lossy());
                files.insert(name, std::fs::read(&path).unwrap());
            }
        }
    }
    files
}

/// Runs the full sharded pipeline and asserts bit-identity against the
/// given single-machine baseline. When `interrupt` is set, shard 0 is
/// first killed after one case (`limit: Some(1)`) and then resumed — the
/// kill-and-resume inside one shard must change nothing.
fn assert_sharded_matches(
    config: &CampaignConfig,
    shards: u32,
    single_report: &str,
    single_tree: &BTreeMap<String, Vec<u8>>,
    interrupt: bool,
) {
    let plan = ShardPlan::partition(config.clone(), shards).unwrap();
    let mut dirs = Vec::new();
    for spec in &plan.shards {
        let dir = CampaignDir::new(scratch(&format!("shard{}", spec.index)));
        if interrupt && spec.index == 0 && spec.cases() > 1 {
            let partial = run_shard(
                &plan,
                spec.index,
                &dir,
                &RunOptions {
                    limit: Some(1),
                    ..RunOptions::default()
                },
                &mut NoProgress,
            )
            .unwrap();
            assert!(!partial.complete(), "limit interrupts the shard");
        }
        let report = run_shard(
            &plan,
            spec.index,
            &dir,
            &RunOptions::default(),
            &mut NoProgress,
        )
        .unwrap();
        assert!(report.complete(), "{report}");
        dirs.push(dir.root().to_path_buf());
    }
    // Argument order must not matter: merge sorts shards by index.
    dirs.reverse();
    let out = CampaignDir::new(scratch("merged"));
    let merged = merge(&plan, &dirs, &out).unwrap();
    assert_eq!(
        format!("{merged}"),
        single_report,
        "merged report text ({shards} shards)"
    );
    assert_eq!(
        &tree(out.root()),
        single_tree,
        "merged directory bytes ({shards} shards)"
    );
    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
    let _ = std::fs::remove_dir_all(out.root());
}

proptest! {
    /// The acceptance property: for any base seed and shard count, the
    /// union of independently-run shards merges to the byte-identical
    /// campaign — with a kill-and-resume exercised inside shard 0
    /// whenever the partition leaves it more than one case.
    #[test]
    fn sharded_campaign_is_bit_identical_to_single_machine(
        seed in 0u64..4,
        pick in 0usize..3,
    ) {
        let shards = [1u32, 2, 4][pick];
        let config = quick_config(seed, &["interp", "vm"], 12);
        let single = CampaignDir::new(scratch("single"));
        let report = rtl_campaign::run(
            &single,
            &config,
            &RunOptions::default(),
            &mut NoProgress,
        )
        .unwrap();
        prop_assert!(report.clean(), "{report}");
        let single_tree = tree(single.root());
        assert_sharded_matches(
            &config,
            shards,
            &format!("{report}"),
            &single_tree,
            shards > 1,
        );
        let _ = std::fs::remove_dir_all(single.root());
    }
}

#[test]
fn diverging_shards_merge_records_and_corpus_identically() {
    // The vm-fault lane diverges every case at cycle 40; each case is
    // shrunk and archived, so this exercises record *and* corpus
    // bit-identity (entries deduped by scenario fingerprint — distinct
    // seeds never collide, so nothing is dropped here).
    let mut config = quick_config(3, &["interp", "vm-fault"], 48);
    config.cases = 3;
    let single = CampaignDir::new(scratch("fault-single"));
    let report = rtl_campaign::run(&single, &config, &RunOptions::default(), &mut NoProgress)
        .expect("campaign runs (divergence is a result, not an error)");
    assert_eq!(report.diverged(), 3, "{report}");
    let single_tree = tree(single.root());
    assert!(
        single_tree.keys().any(|k| k.starts_with("corpus/")),
        "divergences archived: {:?}",
        single_tree.keys()
    );
    for shards in [1, 3] {
        assert_sharded_matches(&config, shards, &format!("{report}"), &single_tree, false);
    }
    let _ = std::fs::remove_dir_all(single.root());
}

#[test]
fn merge_refuses_drift_and_incompleteness() {
    let config = quick_config(0, &["interp", "vm"], 12);
    let plan = ShardPlan::partition(config.clone(), 2).unwrap();
    let a = CampaignDir::new(scratch("refuse-a"));
    let b = CampaignDir::new(scratch("refuse-b"));
    run_shard(&plan, 0, &a, &RunOptions::default(), &mut NoProgress).unwrap();

    // Shard 1 interrupted: merge refuses until it completes.
    run_shard(
        &plan,
        1,
        &b,
        &RunOptions {
            limit: Some(1),
            ..RunOptions::default()
        },
        &mut NoProgress,
    )
    .unwrap();
    let out = CampaignDir::new(scratch("refuse-out"));
    let dirs = vec![a.root().to_path_buf(), b.root().to_path_buf()];
    let err = merge(&plan, &dirs, &out).unwrap_err();
    assert!(err.to_string().contains("missing case"), "{err}");

    // The same directory twice: refused.
    let twice = vec![a.root().to_path_buf(), a.root().to_path_buf()];
    let err = merge(&plan, &twice, &out).unwrap_err();
    assert!(err.to_string().contains("more than once"), "{err}");

    // A directory from a different plan: refused.
    let other_plan = ShardPlan::partition(
        CampaignConfig {
            seed: 99,
            ..config.clone()
        },
        2,
    )
    .unwrap();
    let err = merge(&other_plan, &dirs, &out).unwrap_err();
    assert!(
        matches!(err, CampaignError::Config(_)),
        "drifted config must be refused, got {err}"
    );

    // Completing shard 1 heals the merge.
    run_shard(&plan, 1, &b, &RunOptions::default(), &mut NoProgress).unwrap();
    let merged = merge(&plan, &dirs, &out).unwrap();
    assert!(merged.clean(), "{merged}");

    // A record outside the shard's range poisons a future merge.
    let stray = CampaignDir::new(scratch("refuse-stray"));
    run_shard(&plan, 0, &stray, &RunOptions::default(), &mut NoProgress).unwrap();
    let out_of_range = plan.shards[1].start; // belongs to shard 1
    std::fs::copy(b.case_path(out_of_range), stray.case_path(out_of_range)).unwrap();
    let out2 = CampaignDir::new(scratch("refuse-out2"));
    let err = merge(
        &plan,
        &[stray.root().to_path_buf(), b.root().to_path_buf()],
        &out2,
    )
    .unwrap_err();
    assert!(err.to_string().contains("outside"), "{err}");

    for dir in [&a, &b, &out, &stray, &out2] {
        let _ = std::fs::remove_dir_all(dir.root());
    }
}

#[test]
fn run_shard_heals_a_kill_between_init_and_marker() {
    // run_shard writes campaign.json, then shard.json — a kill between
    // the two leaves a manifest with an empty cases/ and no marker.
    // Re-running the same shard must heal that window, not refuse it.
    let config = quick_config(0, &["interp", "vm"], 12);
    let plan = ShardPlan::partition(config, 2).unwrap();
    let dir = CampaignDir::new(scratch("healed"));
    dir.init(&plan.config).unwrap(); // simulate the crash window
    assert!(!dir.root().join("shard.json").exists());
    let report = run_shard(&plan, 0, &dir, &RunOptions::default(), &mut NoProgress).unwrap();
    assert!(report.clean(), "{report}");
    assert!(dir.root().join("shard.json").exists(), "marker rewritten");
    let _ = std::fs::remove_dir_all(dir.root());
}

#[test]
fn run_shard_refuses_foreign_directories() {
    let config = quick_config(0, &["interp", "vm"], 12);
    let plan = ShardPlan::partition(config.clone(), 2).unwrap();
    let dir = CampaignDir::new(scratch("foreign"));
    run_shard(&plan, 0, &dir, &RunOptions::default(), &mut NoProgress).unwrap();

    // Same directory, different shard index: refused.
    let err = run_shard(&plan, 1, &dir, &RunOptions::default(), &mut NoProgress).unwrap_err();
    assert!(err.to_string().contains("shard 0"), "{err}");

    // Same directory, different plan: refused.
    let other = ShardPlan::partition(CampaignConfig { seed: 7, ..config }, 2).unwrap();
    let err = run_shard(&other, 0, &dir, &RunOptions::default(), &mut NoProgress).unwrap_err();
    assert!(
        matches!(err, CampaignError::Config(_)),
        "foreign plan must be refused, got {err}"
    );

    // A plain (unsharded) campaign directory: refused, not silently
    // adopted.
    let plain = CampaignDir::new(scratch("plain"));
    rtl_campaign::run(
        &plain,
        &plan.config,
        &RunOptions::default(),
        &mut NoProgress,
    )
    .unwrap();
    let err = run_shard(&plan, 0, &plain, &RunOptions::default(), &mut NoProgress).unwrap_err();
    assert!(err.to_string().contains("shard.json"), "{err}");

    let _ = std::fs::remove_dir_all(dir.root());
    let _ = std::fs::remove_dir_all(plain.root());
}
