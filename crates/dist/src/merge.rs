//! Folding N shard directories back into one canonical campaign.
//!
//! The merge is deliberately boring: records are copied byte-verbatim
//! (they were produced deterministically from `(config, index)`, so the
//! merged `cases/` tree is bit-identical to a single-machine run's), and
//! the only judgment it exercises is *refusal* — drifted configurations,
//! markers from another plan, records outside a shard's range, records
//! whose seed contradicts the plan, and incomplete shards all stop the
//! merge before anything is written. Corpus entries are validated and
//! deduplicated by [`entry_fingerprint`](rtl_campaign::corpus), shards in
//! index order, so overlapping regression corpora collapse to one entry
//! each.

use crate::plan::ShardPlan;
use crate::shard::load_marker;
use rtl_campaign::state::write_atomic;
use rtl_campaign::{corpus, CampaignDir, CampaignError, CampaignReport, CaseRecord};
use rtl_core::Recorder;
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Validates shard directories against `plan` and merges them into
/// `out` (which must not already hold a campaign): manifest, verbatim
/// case records, and a deduplicated corpus. Directories may be passed in
/// any order; each plan shard must appear exactly once. Shard
/// `bin-cache/` directories are *not* merged — compiled binaries are a
/// cache, rebuilt on demand.
///
/// Returns the merged report — identical to what the equivalent
/// single-machine `campaign run` would have reported.
///
/// # Errors
///
/// Plan/directory mismatches, incomplete shards, out-of-range or
/// seed-mismatched records, corrupt corpus entries, an already-occupied
/// output directory, or I/O.
pub fn merge(
    plan: &ShardPlan,
    shard_dirs: &[PathBuf],
    out: &CampaignDir,
) -> Result<CampaignReport, CampaignError> {
    merge_with(plan, shard_dirs, out, &Recorder::disabled())
}

/// [`merge`] with a telemetry [`Recorder`]: counts merged case records
/// (`merge/records`) and deduplicated corpus entries
/// (`merge/corpus_entries`), and spans the whole merge (wall-clock).
///
/// # Errors
///
/// See [`merge`].
pub fn merge_with(
    plan: &ShardPlan,
    shard_dirs: &[PathBuf],
    out: &CampaignDir,
    recorder: &Recorder,
) -> Result<CampaignReport, CampaignError> {
    let started = Instant::now();
    let _span = recorder.span("merge", "merge");
    if shard_dirs.len() != plan.shards.len() {
        return Err(CampaignError::Config(format!(
            "the plan has {} shard(s), {} {} given",
            plan.shards.len(),
            shard_dirs.len(),
            if shard_dirs.len() == 1 {
                "directory"
            } else {
                "directories"
            }
        )));
    }

    // Pass 1: validate everything before writing anything.
    type Validated<'a> = (&'a Path, Vec<Option<CaseRecord>>);
    let mut by_index: Vec<Option<Validated<'_>>> = (0..plan.shards.len()).map(|_| None).collect();
    for root in shard_dirs {
        let dir = CampaignDir::new(root);
        let config = dir.load()?;
        if config.fingerprint() != plan.config.fingerprint() {
            return Err(CampaignError::Config(format!(
                "{}: campaign configuration differs from the plan",
                root.display()
            )));
        }
        let spec = load_marker(&dir, plan)?;
        if by_index[spec.index as usize].is_some() {
            return Err(CampaignError::Config(format!(
                "shard {} appears more than once (second copy: {})",
                spec.index,
                root.display()
            )));
        }
        let records = dir.load_cases(plan.config.cases)?;
        for (i, record) in records.iter().enumerate() {
            let index = i as u32;
            match record {
                Some(record) if !spec.range().contains(&index) => {
                    return Err(CampaignError::Corrupt(format!(
                        "{}: case {index} lies outside shard {}'s range {}..{}",
                        root.display(),
                        spec.index,
                        spec.start,
                        spec.end
                    )));
                }
                Some(record) => {
                    // Same invariants the fleet controller enforces on an
                    // uploaded record — one refusal surface, one message.
                    crate::verify::check_record(&plan.config, record)
                        .map_err(|m| CampaignError::Corrupt(format!("{}: {m}", root.display())))?;
                }
                None if spec.range().contains(&index) => {
                    return Err(CampaignError::Config(format!(
                        "{}: shard {} is missing case {index} — re-run it to completion \
                         before merging",
                        root.display(),
                        spec.index
                    )));
                }
                None => {}
            }
        }
        by_index[spec.index as usize] = Some((root.as_path(), records));
    }

    // Pass 2: write the canonical campaign.
    out.init(&plan.config)?;
    let mut merged: Vec<Option<CaseRecord>> = vec![None; plan.config.cases as usize];
    let mut seen_corpus: HashSet<u64> = HashSet::new();
    let mut new_corpus = Vec::new();
    for (slot, spec) in by_index.iter().zip(&plan.shards) {
        let (root, records) = slot.as_ref().expect("all shards matched in pass 1");
        let shard = CampaignDir::new(root);
        for index in spec.range() {
            // Byte-verbatim copy: the record file is the deterministic
            // artifact, so the merged tree diffs clean against a
            // single-machine run.
            let bytes = std::fs::read(shard.case_path(index))?;
            write_atomic(&out.case_path(index), &bytes)?;
            // Execution-profile sidecars (shards run with profiling)
            // ride along the same way: each is a pure function of
            // (config, index), so the merged fold stays bit-identical to
            // a single-machine profiled run.
            let profile = shard.profile_path(index);
            if profile.exists() {
                let bytes = std::fs::read(profile)?;
                write_atomic(&out.profile_path(index), &bytes)?;
            }
            merged[index as usize] = records[index as usize].clone();
        }
        // Corpus entries, validated on load (checkpoint recomputed) and
        // deduplicated across shards by scenario fingerprint.
        for entry in corpus::load_all(&shard.corpus())? {
            if !seen_corpus.insert(corpus::entry_fingerprint(&entry.scenario)) {
                continue;
            }
            for ext in ["asim", "stim", "ckpt", "json"] {
                let file = format!("{}.{ext}", entry.name);
                let bytes = std::fs::read(shard.corpus().join(&file))?;
                write_atomic(&out.corpus().join(&file), &bytes)?;
            }
            new_corpus.push(entry.name);
        }
    }
    new_corpus.sort();
    recorder.count("merge", "records", merged.iter().flatten().count() as u64);
    recorder.count("merge", "corpus_entries", new_corpus.len() as u64);
    Ok(CampaignReport {
        config: plan.config.clone(),
        replay: None,
        records: merged,
        new_corpus,
        elapsed: started.elapsed(),
    })
}
