//! # rtl-dist — distributed verification campaigns
//!
//! `rtl-campaign` scales verification across *cores*; this crate scales
//! it across *machines that share nothing*. A campaign becomes a
//! [`ShardPlan`] — a versioned, fingerprinted value that partitions the
//! case range so that case `i` keeps its global index and derived seed on
//! every machine — and each shard executes into a fully self-contained
//! directory ([`run_shard`]): its own `campaign.json`, `cases/`,
//! `corpus/`, `bin-cache/`, plus a `shard.json` marker tying it to the
//! plan. [`merge()`] folds the directories back into one canonical
//! campaign, copying case records byte-verbatim, deduplicating corpus
//! entries by scenario fingerprint, and refusing anything drifted — so
//! the merged campaign is **bit-identical** to what one machine would
//! have produced, at any shard count.
//!
//! For cross-machine *lane* comparison without shipping traces, pair this
//! with [`rtl_cosim::digest`]: export a shard's reference-lane digest
//! stream (8 bytes per comparison interval) and replay it elsewhere as a
//! [`DigestLane`](rtl_cosim::DigestLane).
//!
//! ```
//! use rtl_campaign::{CampaignConfig, CampaignDir, NoProgress, RunOptions};
//! use rtl_cosim::GenOptions;
//! use rtl_dist::{merge, run_shard, ShardPlan};
//!
//! let root = std::env::temp_dir().join(format!("dist-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&root);
//! let config = CampaignConfig {
//!     cases: 4,
//!     generator: GenOptions { size: 8, cycles: 16, ..GenOptions::default() },
//!     ..CampaignConfig::default()
//! };
//! let plan = ShardPlan::partition(config, 2).unwrap();
//! let shards: Vec<_> = (0..2)
//!     .map(|i| {
//!         let dir = CampaignDir::new(root.join(format!("shard-{i}")));
//!         run_shard(&plan, i, &dir, &RunOptions::default(), &mut NoProgress).unwrap();
//!         dir.root().to_path_buf()
//!     })
//!     .collect();
//! let report = merge(&plan, &shards, &CampaignDir::new(root.join("merged"))).unwrap();
//! assert!(report.clean(), "{report}");
//! # let _ = std::fs::remove_dir_all(&root);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod merge;
pub mod plan;
pub mod shard;
pub mod verify;

pub use merge::{merge, merge_with};
pub use plan::{ShardPlan, ShardSpec};
pub use shard::{load_marker, run_shard, ShardReport, SHARD_FORMAT};
pub use verify::{check_record, expected_seed, parse_record};

/// Renders a fingerprint the way every asim2 manifest does.
pub(crate) fn fingerprint_hex(fp: u64) -> String {
    format!("{fp:016x}")
}
