//! The shard plan: a campaign's case range partitioned for machines that
//! share nothing.
//!
//! A [`ShardPlan`] is a *value* — versioned JSON, fingerprinted with the
//! same FNV hasher as the campaign manifest — that fixes everything the
//! shards must agree on up front: the full [`CampaignConfig`] and a
//! contiguous partition of `0..cases` into one half-open range per shard.
//! Case `i` keeps its global index and therefore its derived seed
//! (`config.seed + i`, wrapping) no matter which shard runs it, which is
//! the whole determinism argument: the union of the shards' case records
//! is bit-identical to a single-machine run at any shard count.

use crate::fingerprint_hex;
use rtl_campaign::json::Json;
use rtl_campaign::{CampaignConfig, CampaignError};
use rtl_core::Fingerprint;
use std::path::Path;

/// The plan format line; bump on breaking changes.
pub const FORMAT: &str = "asim2-shard-plan v1";

/// One shard's slice of the case range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Shard index in `0..plan.shards.len()`.
    pub index: u32,
    /// First case index (inclusive).
    pub start: u32,
    /// One past the last case index.
    pub end: u32,
}

impl ShardSpec {
    /// The half-open case range.
    pub fn range(&self) -> std::ops::Range<u32> {
        self.start..self.end
    }

    /// Cases in this shard.
    pub fn cases(&self) -> u32 {
        self.end - self.start
    }
}

/// A versioned, fingerprinted partition of one campaign into independent
/// shards. See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// The full campaign configuration every shard runs under.
    pub config: CampaignConfig,
    /// The partition, in index order; ranges are contiguous and cover
    /// `0..config.cases` exactly.
    pub shards: Vec<ShardSpec>,
}

impl ShardPlan {
    /// Partitions `config.cases` into `shards` contiguous, balanced
    /// ranges (the first `cases % shards` shards get one extra case).
    /// Shards beyond the case count end up empty — legal, if pointless.
    ///
    /// # Errors
    ///
    /// Zero shards.
    pub fn partition(config: CampaignConfig, shards: u32) -> Result<ShardPlan, CampaignError> {
        if shards == 0 {
            return Err(CampaignError::Config(
                "a plan needs at least one shard".into(),
            ));
        }
        let base = config.cases / shards;
        let extra = config.cases % shards;
        let mut specs = Vec::with_capacity(shards as usize);
        let mut start = 0u32;
        for index in 0..shards {
            let len = base + u32::from(index < extra);
            specs.push(ShardSpec {
                index,
                start,
                end: start + len,
            });
            start += len;
        }
        Ok(ShardPlan {
            config,
            shards: specs,
        })
    }

    /// The shard at `index`.
    pub fn spec(&self, index: u32) -> Option<&ShardSpec> {
        self.shards.get(index as usize)
    }

    /// A stable fingerprint over the whole plan — the campaign config's
    /// own fingerprint plus the partition — using the campaign-manifest
    /// FNV hasher. Shard directories and merges refuse a plan whose
    /// fingerprint disagrees with what they were created under.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_str(FORMAT);
        fp.write_u64(self.config.fingerprint());
        fp.write_u64(self.shards.len() as u64);
        for spec in &self.shards {
            fp.write_u64(u64::from(spec.index));
            fp.write_u64(u64::from(spec.start));
            fp.write_u64(u64::from(spec.end));
        }
        fp.finish()
    }

    /// Serializes the plan.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("format".into(), Json::str(FORMAT)),
            (
                "fingerprint".into(),
                Json::str(fingerprint_hex(self.fingerprint())),
            ),
            ("config".into(), self.config.to_json()),
            (
                "shards".into(),
                Json::Arr(
                    self.shards
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("index".into(), Json::num(s.index)),
                                ("start".into(), Json::num(s.start)),
                                ("end".into(), Json::num(s.end)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserializes and validates a plan: format line, config, a
    /// partition that covers `0..cases` contiguously in index order, and
    /// a fingerprint that matches its own content.
    ///
    /// # Errors
    ///
    /// A message naming the missing/malformed field or broken invariant.
    pub fn from_json(doc: &Json) -> Result<ShardPlan, String> {
        match doc.get("format").and_then(Json::as_str) {
            Some(FORMAT) => {}
            other => {
                return Err(format!(
                    "unsupported shard-plan format {other:?} (expected {FORMAT:?})"
                ))
            }
        }
        let config =
            CampaignConfig::from_json(doc.get("config").ok_or("shard plan has no config")?)?;
        let mut shards = Vec::new();
        for entry in doc
            .get("shards")
            .and_then(Json::as_arr)
            .ok_or("shard plan has no shards array")?
        {
            let num = |name: &str| {
                entry
                    .get(name)
                    .and_then(Json::as_u64)
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| format!("shard entry missing field {name:?}"))
            };
            shards.push(ShardSpec {
                index: num("index")?,
                start: num("start")?,
                end: num("end")?,
            });
        }
        let plan = ShardPlan { config, shards };
        let mut expected_start = 0u32;
        for (i, spec) in plan.shards.iter().enumerate() {
            if spec.index as usize != i || spec.start != expected_start || spec.end < spec.start {
                return Err(format!(
                    "shard {i} range {}..{} does not continue the partition at {expected_start}",
                    spec.start, spec.end
                ));
            }
            expected_start = spec.end;
        }
        if plan.shards.is_empty() || expected_start != plan.config.cases {
            return Err(format!(
                "shard ranges cover {expected_start} of {} cases",
                plan.config.cases
            ));
        }
        let stored = doc
            .get("fingerprint")
            .and_then(Json::as_str)
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or("shard plan has no fingerprint")?;
        if stored != plan.fingerprint() {
            return Err("shard-plan fingerprint does not match its content (edited?)".into());
        }
        Ok(plan)
    }

    /// Writes the plan to a file, atomically.
    ///
    /// # Errors
    ///
    /// File-system failure.
    pub fn save(&self, path: &Path) -> Result<(), CampaignError> {
        rtl_campaign::state::write_atomic(path, self.to_json().render().as_bytes())?;
        Ok(())
    }

    /// Loads and validates a plan file.
    ///
    /// # Errors
    ///
    /// A missing or corrupt plan.
    pub fn load(path: &Path) -> Result<ShardPlan, CampaignError> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                CampaignError::Config(format!("no shard plan at {}", path.display()))
            } else {
                CampaignError::Io(e)
            }
        })?;
        Json::parse(&text)
            .and_then(|doc| Self::from_json(&doc))
            .map_err(|e| CampaignError::Corrupt(format!("{}: {e}", path.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(cases: u32) -> CampaignConfig {
        CampaignConfig {
            cases,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn partition_is_contiguous_balanced_and_complete() {
        let plan = ShardPlan::partition(config(10), 4).unwrap();
        let ranges: Vec<(u32, u32)> = plan.shards.iter().map(|s| (s.start, s.end)).collect();
        assert_eq!(ranges, [(0, 3), (3, 6), (6, 8), (8, 10)]);
        assert_eq!(plan.spec(3).unwrap().cases(), 2);
        assert!(plan.spec(4).is_none());
        assert!(ShardPlan::partition(config(10), 0).is_err());
        // More shards than cases: trailing shards are empty but legal.
        let thin = ShardPlan::partition(config(2), 4).unwrap();
        assert_eq!(thin.shards[3].cases(), 0);
    }

    #[test]
    fn plan_round_trips_and_refuses_tampering() {
        let plan = ShardPlan::partition(config(100), 4).unwrap();
        let back = ShardPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.fingerprint(), plan.fingerprint());

        // A different partition of the same config fingerprints apart.
        let other = ShardPlan::partition(config(100), 5).unwrap();
        assert_ne!(other.fingerprint(), plan.fingerprint());

        // Tampered ranges are caught by the invariant check…
        let mut doc = plan.to_json();
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "shards" {
                    if let Json::Arr(entries) = v {
                        entries.pop();
                    }
                }
            }
        }
        assert!(ShardPlan::from_json(&doc).is_err());

        // …and a hand-edited config by the fingerprint.
        let mut doc = plan.to_json();
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "config" {
                    *v = config(101).to_json();
                }
            }
        }
        let err = ShardPlan::from_json(&doc).unwrap_err();
        assert!(
            err.contains("fingerprint") || err.contains("cover"),
            "{err}"
        );
    }

    #[test]
    fn save_load_round_trips() {
        let path = std::env::temp_dir().join(format!("asim2-plan-{}.json", std::process::id()));
        let plan = ShardPlan::partition(config(40), 3).unwrap();
        plan.save(&path).unwrap();
        assert_eq!(ShardPlan::load(&path).unwrap(), plan);
        let _ = std::fs::remove_file(&path);
        assert!(matches!(
            ShardPlan::load(&path),
            Err(CampaignError::Config(_))
        ));
    }
}
