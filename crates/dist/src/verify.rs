//! Shared drift/refusal validation for distributed campaign artifacts.
//!
//! A shard merge and a fleet-controller upload enforce the same
//! invariants on a case record before trusting it: the index must lie in
//! the campaign's range, the file must record *its own* index, and the
//! recorded seed must be the one the campaign configuration derives
//! (`config.seed + index`, wrapping). Centralizing the checks keeps the
//! two refusal surfaces identical — a record a merge would refuse is a
//! record the controller refuses, with the same message.

use rtl_campaign::{CampaignConfig, CaseRecord};

/// The seed the configuration derives for case `index`.
pub fn expected_seed(config: &CampaignConfig, index: u32) -> u64 {
    config.seed.wrapping_add(u64::from(index))
}

/// Validates one case record against the campaign configuration:
/// in-range index and the derived seed.
///
/// # Errors
///
/// A message naming the failed invariant (stable text — both the shard
/// merge and the fleet controller surface it verbatim).
pub fn check_record(config: &CampaignConfig, record: &CaseRecord) -> Result<(), String> {
    if record.index >= config.cases {
        return Err(format!(
            "case {} lies outside the campaign's {} case(s)",
            record.index, config.cases
        ));
    }
    let expected = expected_seed(config, record.index);
    if record.seed != expected {
        return Err(format!(
            "case {} records seed {}, the configuration derives {expected}",
            record.index, record.seed
        ));
    }
    Ok(())
}

/// Parses a case record from its on-disk text and validates it against
/// the configuration ([`check_record`]), additionally requiring the
/// record to describe the claimed `index`.
///
/// # Errors
///
/// Unparseable text, an index/claim mismatch, or a [`check_record`]
/// failure.
pub fn parse_record(config: &CampaignConfig, index: u32, text: &str) -> Result<CaseRecord, String> {
    let doc = rtl_campaign::json::Json::parse(text)?;
    let record = CaseRecord::from_json(&doc)?;
    if record.index != index {
        return Err(format!(
            "record claims case {} but was uploaded for case {index}",
            record.index
        ));
    }
    check_record(config, &record)?;
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl_campaign::{CaseRecord, CaseStatus};

    fn record(index: u32, seed: u64) -> CaseRecord {
        CaseRecord {
            index,
            seed,
            cycles: 4,
            lane_stats: Vec::new(),
            status: CaseStatus::Agreed,
        }
    }

    #[test]
    fn seed_and_range_invariants_are_enforced() {
        let config = CampaignConfig {
            seed: 10,
            cases: 3,
            ..CampaignConfig::default()
        };
        assert_eq!(expected_seed(&config, 2), 12);
        assert!(check_record(&config, &record(2, 12)).is_ok());
        let err = check_record(&config, &record(2, 99)).unwrap_err();
        assert!(err.contains("derives 12"), "{err}");
        let err = check_record(&config, &record(3, 13)).unwrap_err();
        assert!(err.contains("outside"), "{err}");
    }

    #[test]
    fn seed_wraps_like_the_runner() {
        let config = CampaignConfig {
            seed: u64::MAX,
            cases: 2,
            ..CampaignConfig::default()
        };
        assert_eq!(expected_seed(&config, 1), 0);
    }

    #[test]
    fn parsed_uploads_must_describe_their_claimed_case() {
        let config = CampaignConfig {
            seed: 0,
            cases: 5,
            ..CampaignConfig::default()
        };
        let text = record(1, 1).to_json().render();
        assert!(parse_record(&config, 1, &text).is_ok());
        let err = parse_record(&config, 2, &text).unwrap_err();
        assert!(err.contains("claims case 1"), "{err}");
        assert!(parse_record(&config, 1, "not json").is_err());
    }
}
