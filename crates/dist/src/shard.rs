//! Executing one shard of a planned campaign into a self-contained
//! directory.
//!
//! A shard directory *is* a campaign directory — its own `campaign.json`
//! (carrying the plan's full configuration), `cases/`, `corpus/` and
//! `bin-cache/` — plus one extra file, `shard.json`, pinning which slice
//! of which plan it executes. Nothing in it references any other machine:
//! ship the plan file to N hosts, run one shard on each, and rsync the
//! directories back for [`merge`](crate::merge::merge). (When the hosts
//! can reach each other live, `rtl-fleet` replaces this static
//! plan/ship/merge cycle with leases streamed from a controller — same
//! byte-identical end state, no manual partitioning.)
//!
//! `run_shard` is kill-anywhere resumable for free: it rides the campaign
//! state layer's atomically-published case records, so invoking it again
//! on an interrupted directory runs exactly the missing cases of the
//! shard's range (`--limit` and `--case-checkpoint` compose the same way
//! they do for `campaign run`).

use crate::fingerprint_hex;
use crate::plan::{ShardPlan, ShardSpec};
use rtl_campaign::json::Json;
use rtl_campaign::state::write_atomic;
use rtl_campaign::{CampaignDir, CampaignError, CampaignReport, CaseStatus, Progress, RunOptions};

/// The shard marker format line; bump on breaking changes.
pub const SHARD_FORMAT: &str = "asim2-shard v1";

/// A shard run's result: the underlying campaign report, scoped to the
/// shard's range.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// The slice this shard is responsible for.
    pub spec: ShardSpec,
    /// The campaign report over the *whole* case range; indices outside
    /// [`spec`](ShardReport::spec) are structurally `None`.
    pub report: CampaignReport,
}

impl ShardReport {
    /// Records inside the shard's range, in index order.
    pub fn records(&self) -> impl Iterator<Item = &rtl_campaign::CaseRecord> {
        self.report.records[self.spec.start as usize..self.spec.end as usize]
            .iter()
            .flatten()
    }

    /// Completed cases in the shard's range.
    pub fn completed(&self) -> u32 {
        self.records().count() as u32
    }

    /// `true` when every case in the range has a record.
    pub fn complete(&self) -> bool {
        self.completed() == self.spec.cases()
    }

    /// Diverged cases in the shard's range.
    pub fn diverged(&self) -> u32 {
        self.records()
            .filter(|r| matches!(r.status, CaseStatus::Diverged { .. }))
            .count() as u32
    }

    /// Agreed cases in the shard's range.
    pub fn agreed(&self) -> u32 {
        self.records()
            .filter(|r| matches!(r.status, CaseStatus::Agreed))
            .count() as u32
    }

    /// Cycles verified in the shard's range.
    pub fn cycles_verified(&self) -> u64 {
        self.records().map(|r| r.cycles).sum()
    }

    /// `true` when the shard is complete and every case agreed.
    pub fn clean(&self) -> bool {
        self.complete() && self.agreed() == self.spec.cases()
    }
}

impl std::fmt::Display for ShardReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "shard {}: cases {}..{} of {} (seed {}, engines [{}])",
            self.spec.index,
            self.spec.start,
            self.spec.end,
            self.report.config.cases,
            self.report.config.seed,
            self.report.config.engines.join(", "),
        )?;
        for record in self.records() {
            match &record.status {
                CaseStatus::Agreed => {}
                CaseStatus::Halted { detail } => writeln!(
                    f,
                    "  case {} (seed {}): halted after {} cycles: {detail}",
                    record.index, record.seed, record.cycles
                )?,
                CaseStatus::Error { detail } => writeln!(
                    f,
                    "  case {} (seed {}): harness error: {detail}",
                    record.index, record.seed
                )?,
                CaseStatus::Diverged { cycle, kind, .. } => writeln!(
                    f,
                    "  case {} (seed {}): DIVERGED at cycle {cycle} ({kind})",
                    record.index, record.seed
                )?,
            }
        }
        for totals in rtl_campaign::aggregate_lanes(self.records().map(|r| &r.lane_stats[..])) {
            writeln!(
                f,
                "lane {}: {} cases, {} cycles, {} accesses",
                totals.lane, totals.cases, totals.cycles, totals.accesses
            )?;
        }
        write!(
            f,
            "shard summary: {}/{} agreed, {} diverged, {} cycles verified",
            self.agreed(),
            self.completed(),
            self.diverged(),
            self.cycles_verified(),
        )?;
        if !self.complete() {
            write!(
                f,
                " ({}/{} cases done, re-run this shard to continue)",
                self.completed(),
                self.spec.cases()
            )?;
        }
        writeln!(f)
    }
}

/// The `shard.json` path inside a shard directory.
pub fn marker_path(dir: &CampaignDir) -> std::path::PathBuf {
    dir.root().join("shard.json")
}

fn marker_json(plan: &ShardPlan, spec: &ShardSpec) -> Json {
    Json::Obj(vec![
        ("format".into(), Json::str(SHARD_FORMAT)),
        (
            "plan".into(),
            Json::str(fingerprint_hex(plan.fingerprint())),
        ),
        ("shard".into(), Json::num(spec.index)),
        ("start".into(), Json::num(spec.start)),
        ("end".into(), Json::num(spec.end)),
    ])
}

/// Loads and validates a shard directory's marker against a plan,
/// returning the spec it claims.
///
/// # Errors
///
/// A missing/corrupt marker, or one written under a different plan.
pub fn load_marker(dir: &CampaignDir, plan: &ShardPlan) -> Result<ShardSpec, CampaignError> {
    let path = marker_path(dir);
    let corrupt = |m: String| CampaignError::Corrupt(format!("{}: {m}", path.display()));
    let text = std::fs::read_to_string(&path).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            CampaignError::Config(format!(
                "{} is not a shard directory (missing shard.json)",
                dir.root().display()
            ))
        } else {
            CampaignError::Io(e)
        }
    })?;
    let doc = Json::parse(&text).map_err(corrupt)?;
    match doc.get("format").and_then(Json::as_str) {
        Some(SHARD_FORMAT) => {}
        other => {
            return Err(corrupt(format!(
                "unsupported shard format {other:?} (expected {SHARD_FORMAT:?})"
            )))
        }
    }
    let stored = doc
        .get("plan")
        .and_then(Json::as_str)
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(|| corrupt("missing plan fingerprint".into()))?;
    if stored != plan.fingerprint() {
        return Err(CampaignError::Config(format!(
            "{} was created under a different shard plan",
            dir.root().display()
        )));
    }
    let num = |name: &str| {
        doc.get(name)
            .and_then(Json::as_u64)
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| corrupt(format!("missing numeric field {name:?}")))
    };
    let spec = ShardSpec {
        index: num("shard")?,
        start: num("start")?,
        end: num("end")?,
    };
    if plan.spec(spec.index) != Some(&spec) {
        return Err(CampaignError::Config(format!(
            "{}: shard {} range {}..{} is not in the plan",
            path.display(),
            spec.index,
            spec.start,
            spec.end
        )));
    }
    Ok(spec)
}

/// Runs (or resumes) shard `index` of `plan` in `dir`. A fresh directory
/// is initialized as a campaign under the plan's config plus a
/// `shard.json` marker; an existing one must have been created under the
/// *same* plan and shard index — then only its missing cases run.
/// `options.case_range` is overwritten with the shard's range.
///
/// # Errors
///
/// An unknown shard index, a directory from a different plan or shard,
/// drifted configuration, lane failures, or I/O.
pub fn run_shard(
    plan: &ShardPlan,
    index: u32,
    dir: &CampaignDir,
    options: &RunOptions,
    progress: &mut dyn Progress,
) -> Result<ShardReport, CampaignError> {
    let spec = plan.spec(index).ok_or_else(|| {
        CampaignError::Config(format!(
            "no shard {index} in the plan ({} shards)",
            plan.shards.len()
        ))
    })?;
    let _span = options.recorder.span("shard", "run");
    options
        .recorder
        .mark("shard", "run", Some(&format!("shard {index}")));
    if dir.manifest().exists() {
        // Resume path: the directory must belong to this plan and shard.
        let stored = dir.load()?;
        if stored.fingerprint() != plan.config.fingerprint() {
            return Err(CampaignError::Config(format!(
                "{} holds a campaign with a different configuration than the plan",
                dir.root().display()
            )));
        }
        // A kill between init and the marker write leaves a manifest with
        // no shard.json and — because the marker always lands before any
        // case runs — an empty cases/. That exact window is healed by
        // rewriting the marker; a directory with case records and no
        // marker is a foreign campaign and stays refused.
        if !marker_path(dir).exists()
            && dir
                .load_cases(plan.config.cases)?
                .iter()
                .all(Option::is_none)
        {
            write_atomic(
                &marker_path(dir),
                marker_json(plan, spec).render().as_bytes(),
            )?;
        }
        let marked = load_marker(dir, plan)?;
        if marked.index != index {
            return Err(CampaignError::Config(format!(
                "{} executes shard {}, not shard {index}",
                dir.root().display(),
                marked.index
            )));
        }
    } else {
        dir.init(&plan.config)?;
        write_atomic(
            &marker_path(dir),
            marker_json(plan, spec).render().as_bytes(),
        )?;
    }
    let scoped = RunOptions {
        case_range: Some(spec.range()),
        ..options.clone()
    };
    let report = rtl_campaign::resume(dir, &scoped, progress)?;
    Ok(ShardReport {
        spec: spec.clone(),
        report,
    })
}
