//! # rtl-hw — hardware construction support
//!
//! §5.3 of the thesis argues that "a hardware circuit can be easily built
//! from a hardware specification in ASIM II": the specification *is* a
//! parts list with wiring implied by names and bit fields, demonstrated by
//! the hand-drawn Appendix F diagram and its parts list. This crate
//! automates that step:
//!
//! * [`netlist`] — explicit nets (producer, consumer port, bit range) and
//!   width inference,
//! * [`parts`] — catalog part selection in the Appendix F style ("quad D
//!   flip flop", "4 bit adder", "2K x 8 bit RAM", ...), with a bill of
//!   materials,
//! * [`report`] — wiring list and inventory text reports,
//! * [`dot`] — Graphviz export of the block diagram.
//!
//! ```
//! let d = rtl_core::Design::from_source(
//!     "# demo\nc n .\nM c 0 n 1 1\nA n 4 c 1 .",
//! ).unwrap();
//! let report = rtl_hw::report::full_report(&d);
//! assert!(report.contains("4 bit adder"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dot;
pub mod estimate;
pub mod netlist;
pub mod parts;
pub mod report;

pub use estimate::{estimate, Estimate};
pub use netlist::{BitRange, Net, Netlist, PortRole};
pub use parts::{bill_of_materials, select, Part, PartKind};

#[cfg(test)]
mod tests {
    use super::*;
    use rtl_machines::tiny;

    /// The Appendix F experiment: the tiny computer's parts inventory
    /// should line up with the thesis's hand-made list.
    #[test]
    fn tiny_computer_inventory_matches_appendix_f() {
        let image = tiny::divider_image(17, 5);
        let spec = tiny::rtl::spec(&image, Some(100));
        let design = rtl_core::Design::elaborate(&spec).unwrap();
        let netlist = Netlist::extract(&design);
        let parts = select(&design, &netlist);
        let bom = bill_of_materials(&parts);
        let names: Vec<&str> = bom.iter().map(|(n, _)| n.as_str()).collect();

        // The Appendix F list: RAM, flip-flops, adders, comparators,
        // multiplexors, gates. (The original also lists a "4 bit alu"; our
        // tiny datapath uses a dedicated subtractor instead.)
        assert!(names.iter().any(|n| n.contains("RAM")), "{names:?}");
        assert!(names.iter().any(|n| n.contains("flip flop")), "{names:?}");
        assert!(names.iter().any(|n| n.contains("adder")), "{names:?}");
        assert!(names.iter().any(|n| n.contains("comparator")), "{names:?}");
        assert!(names.iter().any(|n| n.contains("multiplexor")), "{names:?}");
        assert!(names.iter().any(|n| n.contains("AND")), "{names:?}");
    }

    #[test]
    fn stack_machine_report_is_complete() {
        let w = rtl_machines::stack::sieve_workload(5);
        let spec = rtl_machines::stack::rtl::spec(&w.program, Some(w.cycles));
        let design = rtl_core::Design::elaborate(&spec).unwrap();
        let report = report::full_report(&design);
        for (_, comp) in design.iter() {
            assert!(report.contains(comp.name.as_str()), "{} missing", comp.name);
        }
        // The 4096-word stack RAM maps onto 2K x 8 chips.
        assert!(report.contains("2K x 8 bit"), "{report}");
    }
}
