//! Netlist extraction.
//!
//! "Essentially, ASIM II is a list of hardware components with the wiring
//! interconnection specified by the names of the components and their bit
//! fields" (§5.3). This module makes that wiring explicit: every reference
//! inside a component's expressions becomes a [`Net`] from the producer to
//! the consuming port, carrying its bit range.

use rtl_core::{CompId, Design, RExpr, RKind};
use rtl_lang::Part;

/// Which input port of a component a net drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortRole {
    /// ALU function select.
    Funct,
    /// ALU left operand.
    Left,
    /// ALU right operand.
    Right,
    /// Selector index.
    Select,
    /// Selector case input `n`.
    Case(usize),
    /// Memory address.
    Addr,
    /// Memory data-in.
    Data,
    /// Memory operation.
    Opn,
}

impl std::fmt::Display for PortRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PortRole::Funct => f.write_str("funct"),
            PortRole::Left => f.write_str("left"),
            PortRole::Right => f.write_str("right"),
            PortRole::Select => f.write_str("select"),
            PortRole::Case(n) => write!(f, "case{n}"),
            PortRole::Addr => f.write_str("addr"),
            PortRole::Data => f.write_str("data"),
            PortRole::Opn => f.write_str("opn"),
        }
    }
}

/// The bit range a net carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitRange {
    /// The full output bus.
    Full,
    /// A single bit.
    Bit(u8),
    /// Bits `from ..= to`.
    Field(u8, u8),
}

impl std::fmt::Display for BitRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BitRange::Full => f.write_str("[*]"),
            BitRange::Bit(b) => write!(f, "[{b}]"),
            BitRange::Field(a, b) => write!(f, "[{a}..{b}]"),
        }
    }
}

/// One wire bundle: producer output bits into a consumer port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Net {
    /// Producing component.
    pub from: CompId,
    /// Consuming component.
    pub to: CompId,
    /// Consumer port.
    pub role: PortRole,
    /// Bits taken from the producer.
    pub bits: BitRange,
}

/// The extracted netlist plus inferred output widths.
#[derive(Debug, Clone)]
pub struct Netlist {
    /// All nets, in definition order of the consuming component.
    pub nets: Vec<Net>,
    /// Output width of each component (indexed by `CompId::index`).
    pub widths: Vec<u8>,
}

impl Netlist {
    /// Extracts the netlist of a design.
    ///
    /// ```
    /// let d = rtl_core::Design::from_source(
    ///     "# n\nc n .\nM c 0 n 1 1\nA n 4 c 1 .",
    /// ).unwrap();
    /// let nl = rtl_hw::netlist::Netlist::extract(&d);
    /// assert_eq!(nl.nets.len(), 2); // c -> n.left, n -> c.data
    /// ```
    pub fn extract(design: &Design) -> Netlist {
        let widths = rtl_core::width::infer(design);
        let mut nets = Vec::new();
        for (id, comp) in design.iter() {
            let mut push = |expr: &RExpr, role: PortRole| {
                collect_nets(design, id, expr, role, &mut nets);
            };
            match &comp.kind {
                RKind::Alu(a) => {
                    push(&a.funct, PortRole::Funct);
                    push(&a.left, PortRole::Left);
                    push(&a.right, PortRole::Right);
                }
                RKind::Selector(s) => {
                    push(&s.select, PortRole::Select);
                    for (i, c) in s.cases.iter().enumerate() {
                        push(c, PortRole::Case(i));
                    }
                }
                RKind::Memory(m) => {
                    push(&m.addr, PortRole::Addr);
                    push(&m.data, PortRole::Data);
                    push(&m.opn, PortRole::Opn);
                }
            }
        }
        Netlist { nets, widths }
    }

    /// Nets feeding a component.
    pub fn inputs_of(&self, id: CompId) -> impl Iterator<Item = &Net> {
        self.nets.iter().filter(move |n| n.to == id)
    }

    /// Nets driven by a component.
    pub fn outputs_of(&self, id: CompId) -> impl Iterator<Item = &Net> {
        self.nets.iter().filter(move |n| n.from == id)
    }

    /// Fan-out (number of consuming ports) per component.
    pub fn fanout(&self, id: CompId) -> usize {
        self.outputs_of(id).count()
    }
}

fn collect_nets(design: &Design, to: CompId, expr: &RExpr, role: PortRole, nets: &mut Vec<Net>) {
    for part in &expr.source.parts {
        if let Part::Ref { name, from, to: hi } = part {
            let from_id = design
                .find(name.as_str())
                .expect("elaborated design has no dangling references");
            let bits = match (from, hi) {
                (None, _) => BitRange::Full,
                (Some(f), None) => BitRange::Bit(*f),
                (Some(f), Some(t)) => BitRange::Field(*f, *t),
            };
            nets.push(Net {
                from: from_id,
                to,
                role,
                bits,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl_core::Design;

    fn design(src: &str) -> Design {
        Design::from_source(src).unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn roles_and_bits_are_recorded() {
        let d = design("# n\ns m a .\nS s m.0.1 a m.3 0 a\nA a 4 m 1\nM m 0 a.0.3 1 1 .");
        let nl = Netlist::extract(&d);
        let s = d.find("s").unwrap();
        let inputs: Vec<_> = nl.inputs_of(s).collect();
        assert_eq!(inputs.len(), 4, "select + three referencing cases");
        assert!(inputs
            .iter()
            .any(|n| n.role == PortRole::Select && n.bits == BitRange::Field(0, 1)));
        assert!(inputs
            .iter()
            .any(|n| n.role == PortRole::Case(1) && n.bits == BitRange::Bit(3)));

        let m = d.find("m").unwrap();
        let data: Vec<_> = nl
            .inputs_of(m)
            .filter(|n| n.role == PortRole::Data)
            .collect();
        assert_eq!(data.len(), 1);
        assert_eq!(data[0].bits, BitRange::Field(0, 3));
    }

    #[test]
    fn fanout_counts_consumers() {
        let d = design("# n\na b c .\nA a 2 1 0\nA b 4 a a\nA c 4 a 1 .");
        let nl = Netlist::extract(&d);
        assert_eq!(
            nl.fanout(d.find("a").unwrap()),
            3,
            "a feeds b twice and c once"
        );
        assert_eq!(nl.fanout(d.find("c").unwrap()), 0);
    }

    #[test]
    fn concatenation_yields_multiple_nets() {
        let d = design("# n\nx m .\nA x 2 m.0.3,m.8.11 0\nM m 0 0 0 2 .");
        let nl = Netlist::extract(&d);
        let x = d.find("x").unwrap();
        assert_eq!(nl.inputs_of(x).count(), 2);
    }
}
