//! Gate-count estimation.
//!
//! §2.2.2 notes that the logic-gate level "describes SSI, MSI and some LSI
//! circuits"; a designer comparing candidate datapaths wants a rough gate
//! budget long before layout. These estimates use standard-cell folklore
//! (a full adder ≈ 5 gate equivalents, a D flip-flop ≈ 6, a RAM bit ≈ 1.5)
//! — coarse by design, like the thesis's own cost discussion at the PMS
//! level (§2.2.5).

use crate::netlist::Netlist;
use crate::parts::{Part, PartKind};
use rtl_core::Design;

/// Gate-equivalent estimate for one part.
pub fn gates_for(part: &Part, width: u32) -> u64 {
    let w = u64::from(width.max(1));
    match &part.kind {
        PartKind::Wiring => 0,
        PartKind::Inverters => w,
        // Full adder per bit ≈ 5 gate equivalents.
        PartKind::Adders => 5 * w,
        // Magnitude comparator per bit ≈ 4.
        PartKind::Comparators => 4 * w,
        PartKind::Gates(_) => w,
        // Array multiplier: one adder cell per bit pair.
        PartKind::Multiplier => 5 * w * w,
        // Barrel shifter: log2(w) mux stages.
        PartKind::BarrelShifter => {
            let stages = 64 - u64::from(width.max(2) - 1).leading_zeros() as u64;
            3 * w * stages
        }
        // A 74181-style ALU slice ≈ 60 gates per 4 bits.
        PartKind::AluSlices => 15 * w,
        // A w-wide n-way mux: (n-1) 2:1 muxes per bit, ≈ 3 gates each.
        PartKind::Multiplexers { ways } => 3 * w * (ways.saturating_sub(1) as u64),
        // D flip-flop ≈ 6 gate equivalents per bit.
        PartKind::FlipFlops => 6 * w,
        PartKind::Ram | PartKind::Rom => 0, // counted via bits, below
    }
}

/// A design-level estimate: combinational gates, register bits, and
/// memory bits, the three axes a designer budgets separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Estimate {
    /// Combinational gate equivalents.
    pub gates: u64,
    /// Register (flip-flop) bits.
    pub register_bits: u64,
    /// RAM/ROM storage bits.
    pub memory_bits: u64,
}

impl std::fmt::Display for Estimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "~{} gates, {} register bits, {} memory bits",
            self.gates, self.register_bits, self.memory_bits
        )
    }
}

/// Estimates the whole design.
pub fn estimate(design: &Design, netlist: &Netlist, parts: &[Part]) -> Estimate {
    let mut e = Estimate::default();
    for part in parts {
        let width = u32::from(netlist.widths[part.comp.index()]);
        match &part.kind {
            PartKind::FlipFlops => e.register_bits += u64::from(width),
            PartKind::Ram | PartKind::Rom => {
                if let rtl_core::RKind::Memory(m) = &design.comp(part.comp).kind {
                    e.memory_bits += u64::from(m.size) * u64::from(width);
                }
            }
            _ => e.gates += gates_for(part, width),
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parts::select;

    fn estimate_of(src: &str) -> Estimate {
        let d = Design::from_source(src).unwrap_or_else(|e| panic!("{e}"));
        let nl = Netlist::extract(&d);
        let parts = select(&d, &nl);
        estimate(&d, &nl, &parts)
    }

    #[test]
    fn counter_estimate() {
        let e = estimate_of("# c\ncount next .\nM count 0 next.0.3 1 1\nA next 4 count 1 .");
        assert_eq!(e.register_bits, 4);
        assert!(e.gates >= 5 * 4, "an adder at least: {e}");
        assert_eq!(e.memory_bits, 0);
    }

    #[test]
    fn memory_bits_scale_with_cells() {
        let e = estimate_of("# m\nm c n .\nM c 0 n 1 1\nA n 4 c 1\nM m c.0.3 c 1 16 .");
        // 16 cells at the inferred width of the counter data.
        assert!(e.memory_bits >= 16, "{e}");
    }

    #[test]
    fn tiny_computer_is_a_few_hundred_gates() {
        let image = rtl_machines::tiny::divider_image(9, 3);
        let spec = rtl_machines::tiny::rtl::spec(&image, Some(10));
        let d = Design::elaborate(&spec).unwrap();
        let nl = Netlist::extract(&d);
        let parts = select(&d, &nl);
        let e = estimate(&d, &nl, &parts);
        assert!(
            (100..20_000).contains(&e.gates),
            "a five-instruction CPU is SSI/MSI scale: {e}"
        );
        assert!(e.memory_bits >= 128 * 10, "{e}");
        assert!(e.register_bits >= 10, "pc + ac + state + borrow: {e}");
    }

    #[test]
    fn wiring_costs_nothing() {
        let e = estimate_of("# w\nw m .\nA w 2 m 0\nM m 0 0 0 -2 3 3 .");
        assert_eq!(e.gates, 0);
    }
}
