//! Graphviz DOT export of the netlist — the machine-readable form of the
//! Appendix F hand-drawn circuit diagram.

use crate::netlist::Netlist;
use rtl_core::{Design, RKind};
use std::fmt::Write as _;

/// Renders the design as a DOT digraph: ALUs are ellipses, selectors are
/// trapezium multiplexors, memories are boxes; edges carry port and bit
/// annotations.
pub fn to_dot(design: &Design, netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph asim {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [fontname=\"monospace\"];");
    for (id, comp) in design.iter() {
        let (shape, tag) = match comp.kind {
            RKind::Alu(_) => ("ellipse", "A"),
            RKind::Selector(_) => ("trapezium", "S"),
            RKind::Memory(_) => ("box", "M"),
        };
        let _ = writeln!(
            out,
            "  {name} [shape={shape} label=\"{tag} {name}\\n{w} bits\"];",
            name = design.name(id),
            w = netlist.widths[id.index()],
        );
    }
    for net in &netlist.nets {
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{}{}\"];",
            design.name(net.from),
            design.name(net.to),
            net.role,
            net.bits,
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_output_is_well_formed() {
        let d =
            Design::from_source("# d\nc n mux .\nM c 0 n 1 1\nA n 4 c 1\nS mux c.0 n 0 .").unwrap();
        let nl = Netlist::extract(&d);
        let dot = to_dot(&d, &nl);
        assert!(dot.starts_with("digraph asim {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("c [shape=box"), "{dot}");
        assert!(dot.contains("n [shape=ellipse"), "{dot}");
        assert!(dot.contains("mux [shape=trapezium"), "{dot}");
        assert!(dot.contains("c -> n [label=\"left[*]\"]"), "{dot}");
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
