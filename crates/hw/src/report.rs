//! Human-readable hardware reports: the wiring list and the parts
//! inventory (§5.3's "block diagram of the circuit", in text form).

use crate::netlist::Netlist;
use crate::parts::{bill_of_materials, select, Part};
use rtl_core::{Design, RKind};
use std::fmt::Write as _;

/// The wiring list: one line per net, in the AHPL tradition of "wiring
/// lists specifying the interconnections".
pub fn wiring_list(design: &Design, netlist: &Netlist) -> String {
    let mut out = String::new();
    for net in &netlist.nets {
        let _ = writeln!(
            out,
            "{}{} -> {}.{}",
            design.name(net.from),
            net.bits,
            design.name(net.to),
            net.role,
        );
    }
    out
}

/// The component/parts table plus the aggregated bill of materials.
pub fn inventory(design: &Design, netlist: &Netlist, parts: &[Part]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>5} {:>6}  part",
        "component", "width", "fanout"
    );
    for (id, comp) in design.iter() {
        let part = parts
            .iter()
            .find(|p| p.comp == id)
            .expect("part per component");
        let kind = match comp.kind {
            RKind::Alu(_) => "A",
            RKind::Selector(_) => "S",
            RKind::Memory(_) => "M",
        };
        let qty = if part.chips > 0 {
            format!("{}x {}", part.chips, part.name)
        } else {
            part.name.clone()
        };
        let _ = writeln!(
            out,
            "{:<12} {:>5} {:>6}  [{kind}] {qty}",
            design.name(id),
            netlist.widths[id.index()],
            netlist.fanout(id),
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "bill of materials:");
    for (name, chips) in bill_of_materials(parts) {
        let _ = writeln!(out, "{chips:>4}  {name}");
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "estimate: {}",
        crate::estimate::estimate(design, netlist, parts)
    );
    out
}

/// Everything at once: inventory plus wiring list.
pub fn full_report(design: &Design) -> String {
    let netlist = Netlist::extract(design);
    let parts = select(design, &netlist);
    let mut out = String::new();
    let _ = writeln!(out, "{}", design.title());
    let _ = writeln!(out, "{} components", design.len());
    let _ = writeln!(out);
    out.push_str(&inventory(design, &netlist, &parts));
    let _ = writeln!(out);
    let _ = writeln!(out, "wiring list:");
    out.push_str(&wiring_list(design, &netlist));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_components() {
        let d = Design::from_source("# demo\nc n mux .\nM c 0 n 1 1\nA n 4 c 1\nS mux c.0 n 0 .")
            .unwrap();
        let r = full_report(&d);
        for name in ["c", "n", "mux"] {
            assert!(r.contains(name), "{name} missing:\n{r}");
        }
        assert!(r.contains("bill of materials"), "{r}");
        assert!(r.contains("wiring list"), "{r}");
        assert!(r.contains("c[*] -> n.left"), "{r}");
    }
}
