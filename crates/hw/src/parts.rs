//! Parts selection: mapping components to catalog hardware.
//!
//! Appendix F closes with a shopping list — "2K x 8 bit RAM, quad AND,
//! dual D flip flop, 4 bit adder, 4 bit comparator, 8 to 1 multiplexor,
//! dual 4 to 1 multiplexor, quad 2 to 1 multiplexor, hex D flip flop,
//! quad D flip flop, 4 bit alu". This module automates that step: each
//! primitive becomes a named part with a chip count derived from its
//! inferred width, so "the engineer can choose appropriate components
//! which perform the function of the specified component" (§5.3).

use crate::netlist::Netlist;
use rtl_core::{AluFn, CompId, Design, RKind};

/// What a component synthesizes to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartKind {
    /// Pure wiring (constant-0/pass-through functions).
    Wiring,
    /// An inverter bank (`not`).
    Inverters,
    /// Ripple adders (`add`/`sub`; subtract uses adders plus inverters).
    Adders,
    /// Magnitude comparators (`eq`/`lt`).
    Comparators,
    /// Gate packages (`and`/`or`/`xor`), named by the gate.
    Gates(&'static str),
    /// A combinational multiplier array (`mul`).
    Multiplier,
    /// A barrel shifter (`shl`).
    BarrelShifter,
    /// A generic ALU slice (dynamic function select).
    AluSlices,
    /// N-way multiplexors.
    Multiplexers {
        /// Input count.
        ways: usize,
    },
    /// D flip-flop packages (single-cell memories).
    FlipFlops,
    /// Read/write memory.
    Ram,
    /// Read-only memory (initialized, never written).
    Rom,
}

/// A selected part with quantity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Part {
    /// The component this implements.
    pub comp: CompId,
    /// The part family.
    pub kind: PartKind,
    /// Catalog name, in the Appendix F style.
    pub name: String,
    /// How many packages/chips.
    pub chips: u32,
}

/// Selects parts for every component of a design.
pub fn select(design: &Design, netlist: &Netlist) -> Vec<Part> {
    design
        .iter()
        .map(|(id, comp)| {
            let width = u32::from(netlist.widths[id.index()]);
            let (kind, name, chips) = match &comp.kind {
                RKind::Alu(a) => alu_part(a.funct.as_constant(), width),
                RKind::Selector(s) => mux_part(s.cases.len(), width),
                RKind::Memory(m) => memory_part(m, width),
            };
            Part {
                comp: id,
                kind,
                name,
                chips,
            }
        })
        .collect()
}

fn per(width: u32, slice: u32) -> u32 {
    width.div_ceil(slice).max(1)
}

fn alu_part(funct: Option<i64>, width: u32) -> (PartKind, String, u32) {
    match funct.and_then(AluFn::from_word) {
        Some(AluFn::Zero) | Some(AluFn::Unused) | Some(AluFn::Left) | Some(AluFn::Right) => {
            (PartKind::Wiring, "wiring only".into(), 0)
        }
        Some(AluFn::Not) => (PartKind::Inverters, "hex inverter".into(), per(width, 6)),
        Some(AluFn::Add) => (PartKind::Adders, "4 bit adder".into(), per(width, 4)),
        Some(AluFn::Sub) => (
            PartKind::Adders,
            "4 bit adder (borrow mode)".into(),
            per(width, 4),
        ),
        Some(AluFn::Eq) | Some(AluFn::Lt) => (
            PartKind::Comparators,
            "4 bit comparator".into(),
            per(width, 4),
        ),
        Some(AluFn::And) => (PartKind::Gates("AND"), "quad AND".into(), per(width, 4)),
        Some(AluFn::Or) => (PartKind::Gates("OR"), "quad OR".into(), per(width, 4)),
        Some(AluFn::Xor) => (PartKind::Gates("XOR"), "quad XOR".into(), per(width, 4)),
        Some(AluFn::Mul) => (
            PartKind::Multiplier,
            format!("{width} bit multiplier array"),
            1,
        ),
        Some(AluFn::Shl) => (
            PartKind::BarrelShifter,
            format!("{width} bit barrel shifter"),
            1,
        ),
        None => (PartKind::AluSlices, "4 bit alu".into(), per(width, 4)),
    }
}

fn mux_part(ways: usize, width: u32) -> (PartKind, String, u32) {
    let kind = PartKind::Multiplexers { ways };
    if ways <= 2 {
        (kind, "quad 2 to 1 multiplexor".into(), per(width, 4))
    } else if ways <= 4 {
        (kind, "dual 4 to 1 multiplexor".into(), per(width, 2))
    } else if ways <= 8 {
        (kind, "8 to 1 multiplexor".into(), width.max(1))
    } else {
        // Cascade: one 8-to-1 tree per bit per 8-way group.
        let groups = ways.div_ceil(8) as u32;
        (
            kind,
            format!("8 to 1 multiplexor tree ({ways} ways)"),
            width.max(1) * groups,
        )
    }
}

fn memory_part(m: &rtl_core::RMemory, width: u32) -> (PartKind, String, u32) {
    if m.size == 1 {
        let (name, slice) = if width <= 2 {
            ("dual D flip flop", 2)
        } else if width <= 4 {
            ("quad D flip flop", 4)
        } else {
            ("hex D flip flop", 6)
        };
        return (PartKind::FlipFlops, name.into(), per(width, slice));
    }
    // A memory that is never written (constant read operation) with
    // initial contents is a ROM; everything else is RAM.
    let read_only = m.opn.as_constant().map(|op| rtl_core::land(op, 3) == 0) == Some(true);
    let bits = u64::from(m.size) * u64::from(width);
    let chips = bits.div_ceil(2048 * 8).max(1) as u32;
    if read_only && m.init.iter().any(|&v| v != 0) {
        (PartKind::Rom, "2K x 8 bit ROM".into(), chips)
    } else {
        (PartKind::Ram, "2K x 8 bit RAM".into(), chips)
    }
}

/// Aggregated bill of materials: `(catalog name, total chips)`.
pub fn bill_of_materials(parts: &[Part]) -> Vec<(String, u32)> {
    let mut totals: Vec<(String, u32)> = Vec::new();
    for p in parts {
        if p.chips == 0 {
            continue;
        }
        match totals.iter_mut().find(|(n, _)| *n == p.name) {
            Some((_, c)) => *c += p.chips,
            None => totals.push((p.name.clone(), p.chips)),
        }
    }
    totals.sort_by(|a, b| a.0.cmp(&b.0));
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl_core::Design;

    fn parts_for(src: &str) -> (Design, Vec<Part>) {
        let d = Design::from_source(src).unwrap_or_else(|e| panic!("{e}"));
        let nl = Netlist::extract(&d);
        let parts = select(&d, &nl);
        (d, parts)
    }

    fn part_of<'p>(d: &Design, parts: &'p [Part], name: &str) -> &'p Part {
        let id = d.find(name).unwrap();
        parts.iter().find(|p| p.comp == id).unwrap()
    }

    #[test]
    fn adders_comparators_gates() {
        let (d, parts) = parts_for(
            "# p\nsum cmp gate m .\nA sum 4 m m\nA cmp 13 m m\nA gate 8 m m\nM m 0 0 0 -2 9 9 .",
        );
        assert!(matches!(part_of(&d, &parts, "sum").kind, PartKind::Adders));
        assert!(matches!(
            part_of(&d, &parts, "cmp").kind,
            PartKind::Comparators
        ));
        assert_eq!(part_of(&d, &parts, "gate").name, "quad AND");
    }

    #[test]
    fn flip_flops_by_width() {
        let (d, parts) = parts_for("# p\nr m .\nM r 0 m.0.9 1 1\nM m 0 0 0 2 .");
        let r = part_of(&d, &parts, "r");
        assert!(matches!(r.kind, PartKind::FlipFlops));
        assert_eq!(r.name, "hex D flip flop");
        assert_eq!(r.chips, 2, "10 bits need two hex packages");
    }

    #[test]
    fn rom_vs_ram() {
        let (d, parts) = parts_for(
            "# p\nrom ram c n .\nM c 0 n 1 1\nA n 4 c 1\n\
             M rom c.0.1 0 0 -4 1 2 3 4\nM ram c.0.1 c 1 4 .",
        );
        assert!(matches!(part_of(&d, &parts, "rom").kind, PartKind::Rom));
        assert!(matches!(part_of(&d, &parts, "ram").kind, PartKind::Ram));
    }

    #[test]
    fn mux_sizes() {
        let (d, parts) = parts_for(
            "# p\nm2 m4 m8 c n .\nM c 0 n 1 1\nA n 4 c 1\n\
             S m2 c.0 1 2\nS m4 c.0.1 1 2 3 4\nS m8 c.0.2 1 2 3 4 5 6 7 8 .",
        );
        assert_eq!(part_of(&d, &parts, "m2").name, "quad 2 to 1 multiplexor");
        assert_eq!(part_of(&d, &parts, "m4").name, "dual 4 to 1 multiplexor");
        assert_eq!(part_of(&d, &parts, "m8").name, "8 to 1 multiplexor");
    }

    #[test]
    fn dynamic_alu_needs_alu_slices() {
        let (d, parts) = parts_for("# p\na f m .\nA a f m m\nA f 2 4 0\nM m 0 0 0 2 .");
        assert_eq!(part_of(&d, &parts, "a").name, "4 bit alu");
    }

    #[test]
    fn bom_aggregates() {
        let (_, parts) = parts_for("# p\ns1 s2 m .\nA s1 4 m m\nA s2 4 m m\nM m 0 0 0 -2 9 9 .");
        let bom = bill_of_materials(&parts);
        let adders = bom.iter().find(|(n, _)| n == "4 bit adder").unwrap();
        // Each sum is 5 bits wide (4-bit operands plus carry): two chips
        // per adder, two adders.
        assert_eq!(adders.1, 4);
    }

    #[test]
    fn pass_through_alus_are_wiring() {
        let (d, parts) = parts_for("# p\nw m .\nA w 2 m 0\nM m 0 0 0 2 .");
        assert!(matches!(part_of(&d, &parts, "w").kind, PartKind::Wiring));
        assert_eq!(part_of(&d, &parts, "w").chips, 0);
    }
}
