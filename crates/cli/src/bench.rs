//! `asim2 bench snapshot` — a versioned, committable benchmark snapshot.
//!
//! Runs a fixed workload matrix — lockstep comparison strides, comparator
//! ablations, lint throughput over the scenario corpus, campaign
//! throughput across worker counts, and shard-merge throughput — and
//! writes one `asim2-bench-snapshot v1` JSON document.
//! The numbers are wall-clock and therefore machine-dependent; the
//! *document* is the deterministic part: a stable shape, stable workload
//! names and units, so snapshots from different commits diff cleanly
//! (the repo commits one per tentpole PR as `BENCH_<tag>.json`).
//!
//! `--quick` shrinks every workload (one timing iteration, smaller case
//! counts) for CI smoke use; the snapshot records which mode produced it.

use crate::{load_err, usage_err, CliError};
use rtl_campaign::json::Json;
use rtl_campaign::{CampaignConfig, CampaignDir, NoProgress, RunOptions};
use rtl_cosim::{CompareMode, CosimOptions, GenOptions};
use std::io::Write;
use std::time::Instant;

/// The snapshot format line; bump on breaking shape changes.
pub(crate) const BENCH_FORMAT: &str = "asim2-bench-snapshot v1";

struct BenchResult {
    name: String,
    unit: &'static str,
    value: f64,
    iters: u32,
}

pub(crate) fn bench_cmd(
    rest: &[&str],
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> Result<(), CliError> {
    let sub = rest
        .first()
        .copied()
        .ok_or_else(|| usage_err("bench needs a subcommand (snapshot)"))?;
    if sub != "snapshot" {
        return Err(usage_err(format!(
            "unknown bench subcommand {sub:?} (expected snapshot)"
        )));
    }
    let mut out_path: Option<&str> = None;
    let mut quick = false;
    let mut i = 1;
    while i < rest.len() {
        match rest[i] {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out_path = Some(
                    rest.get(i)
                        .copied()
                        .ok_or_else(|| usage_err("--out needs a value"))?,
                );
            }
            other => {
                return Err(usage_err(format!(
                    "bench snapshot does not take {other:?} (accepted: --out FILE --quick)"
                )));
            }
        }
        i += 1;
    }

    let results = run_benches(quick, err)?;
    let doc = render_snapshot(&results, quick);
    match out_path {
        Some(path) => {
            std::fs::write(path, &doc)
                .map_err(|e| load_err(format!("cannot write {path}: {e}")))?;
            let _ = writeln!(err, "bench snapshot -> {path}");
        }
        None => {
            let _ = out.write_all(doc.as_bytes());
        }
    }
    Ok(())
}

fn run_benches(quick: bool, err: &mut dyn Write) -> Result<Vec<BenchResult>, CliError> {
    let iters = if quick { 1 } else { 3 };
    let cycles: u64 = if quick { 100 } else { 500 };
    let scenario = rtl_cosim::generate_scenario(
        1,
        &GenOptions {
            size: 32,
            cycles,
            io_every: 1,
        },
    );
    let engines = ["interp".to_string(), "vm".to_string()];
    let mut results = Vec::new();

    // Lockstep stride sweep: how much does comparison cadence cost?
    let mut stride1_secs = f64::NAN;
    for stride in [1u64, 16, 128] {
        let options = CosimOptions {
            compare_every: stride,
            ..CosimOptions::default()
        };
        let secs = median_secs(iters, || {
            rtl_cosim::run_scenario_names(rtl_cosim::registry(), &engines, &scenario, &options)
                .map(|_| ())
                .map_err(load_err)
        })?;
        if stride == 1 {
            stride1_secs = secs;
        }
        results.push(report(
            err,
            format!("lockstep_stride_{stride}"),
            "cycles_per_sec",
            cycles as f64 / secs,
            iters,
        ));
    }

    // Profile-tap overhead: the identical stride-1 lockstep with the
    // per-component execution profile on in every lane. The hot path is
    // one bounds-checked vector increment per event, so the probe pins
    // the cost of `--profile-out` relative to the baseline above
    // (acceptance bar: under a few percent).
    let profiled_secs = median_secs(iters, || {
        let options = CosimOptions {
            compare_every: 1,
            profile: rtl_core::ProfileHook::collecting(),
            ..CosimOptions::default()
        };
        rtl_cosim::run_scenario_names(rtl_cosim::registry(), &engines, &scenario, &options)
            .map(|_| ())
            .map_err(load_err)
    })?;
    results.push(report(
        err,
        "lockstep_stride_1_profiled".to_string(),
        "cycles_per_sec",
        cycles as f64 / profiled_secs,
        iters,
    ));
    results.push(report(
        err,
        "profile_overhead".to_string(),
        "percent",
        (profiled_secs / stride1_secs - 1.0) * 100.0,
        iters,
    ));

    // Comparator ablation at stride 1: the cost of each lens.
    for (label, list) in [("trace", "trace"), ("vcd", "vcd"), ("all", "all")] {
        let options = CosimOptions {
            compare_every: 1,
            compare: CompareMode::parse_list(list).map_err(load_err)?,
            ..CosimOptions::default()
        };
        let secs = median_secs(iters, || {
            rtl_cosim::run_scenario_names(rtl_cosim::registry(), &engines, &scenario, &options)
                .map(|_| ())
                .map_err(load_err)
        })?;
        results.push(report(
            err,
            format!("comparators_{label}"),
            "cycles_per_sec",
            cycles as f64 / secs,
            iters,
        ));
    }

    // Lint throughput: full static analysis (parse, elaborate, every
    // pass) over the whole scenario corpus, in specs per second.
    let lint_corpus: Vec<String> = rtl_machines::scenarios::names()
        .into_iter()
        .filter_map(|name| rtl_machines::scenarios::by_name(&name))
        .map(|scenario| scenario.source)
        .collect();
    let lint_rounds: u32 = if quick { 2 } else { 20 };
    let secs = median_secs(iters, || {
        for _ in 0..lint_rounds {
            for source in &lint_corpus {
                std::hint::black_box(rtl_lint::lint_source(source));
            }
        }
        Ok(())
    })?;
    results.push(report(
        err,
        "lint_corpus".to_string(),
        "specs_per_sec",
        f64::from(lint_rounds) * lint_corpus.len() as f64 / secs,
        iters,
    ));

    // Campaign throughput across worker counts.
    let cases: u32 = if quick { 8 } else { 32 };
    let config = CampaignConfig {
        cases,
        engines: engines.to_vec(),
        generator: GenOptions {
            size: 16,
            cycles: 64,
            io_every: 2,
        },
        ..CampaignConfig::default()
    };
    for workers in [1usize, 2, 4] {
        let options = RunOptions {
            workers,
            ..RunOptions::default()
        };
        let secs = median_secs(iters, || {
            let dir = temp_dir(&format!("campaign-w{workers}"));
            let run =
                rtl_campaign::run(&CampaignDir::new(&dir), &config, &options, &mut NoProgress);
            let _ = std::fs::remove_dir_all(&dir);
            run.map(|_| ()).map_err(crate::campaign_err)
        })?;
        results.push(report(
            err,
            format!("campaign_workers_{workers}"),
            "cases_per_sec",
            f64::from(cases) / secs,
            iters,
        ));
    }

    // Merge throughput: fold two completed shard directories back into
    // one campaign. The shards run once outside the timed region.
    let plan = rtl_dist::ShardPlan::partition(config.clone(), 2).map_err(crate::campaign_err)?;
    let shard_dirs: Vec<std::path::PathBuf> = (0..2)
        .map(|i| {
            let dir = temp_dir(&format!("merge-shard-{i}"));
            rtl_dist::run_shard(
                &plan,
                i,
                &CampaignDir::new(&dir),
                &RunOptions::default(),
                &mut NoProgress,
            )
            .map(|_| dir)
            .map_err(crate::campaign_err)
        })
        .collect::<Result<_, _>>()?;
    let secs = median_secs(iters, || {
        let out_dir = temp_dir("merge-out");
        let run = rtl_dist::merge(&plan, &shard_dirs, &CampaignDir::new(&out_dir));
        let _ = std::fs::remove_dir_all(&out_dir);
        run.map(|_| ()).map_err(crate::campaign_err)
    })?;
    for dir in &shard_dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
    results.push(report(
        err,
        "merge_2_shards".to_string(),
        "cases_per_sec",
        f64::from(cases) / secs,
        iters,
    ));

    // Fleet throughput across worker counts: the same campaign served
    // live over localhost TCP. The delta against campaign_workers_N
    // above is the control-plane overhead — framing, record validation,
    // atomic publication — per case.
    let mut fleet_w2_secs = f64::NAN;
    for workers in [1usize, 2] {
        let secs = fleet_secs(iters, workers, &config, false)?;
        if workers == 2 {
            fleet_w2_secs = secs;
        }
        results.push(report(
            err,
            format!("fleet_workers_{workers}"),
            "cases_per_sec",
            f64::from(cases) / secs,
            iters,
        ));
    }

    // Telemetry-streaming overhead: the identical 2-worker fleet with
    // the controller's `--metrics-out` tap open, so every lease's event
    // log travels the wire and folds into one campaign-wide log. The
    // acceptance bar for the streamed plane is under a few percent.
    let streamed_secs = fleet_secs(iters, 2, &config, true)?;
    results.push(report(
        err,
        "fleet_workers_2_metrics".to_string(),
        "cases_per_sec",
        f64::from(cases) / streamed_secs,
        iters,
    ));
    results.push(report(
        err,
        "fleet_metrics_overhead".to_string(),
        "percent",
        (streamed_secs / fleet_w2_secs - 1.0) * 100.0,
        iters,
    ));

    Ok(results)
}

/// Times one fleet campaign over localhost TCP: a controller and
/// `workers` worker threads, optionally with the controller-side
/// metrics tap streaming every worker's telemetry into one log file.
fn fleet_secs(
    iters: u32,
    workers: usize,
    config: &CampaignConfig,
    metrics: bool,
) -> Result<f64, CliError> {
    median_secs(iters, || {
        let tag = if metrics { "fleet-m" } else { "fleet" };
        let dir = temp_dir(&format!("{tag}-w{workers}"));
        let metrics_path = temp_dir(&format!("{tag}-w{workers}-log"));
        let recorder = if metrics {
            rtl_core::Recorder::to_file(&metrics_path).map_err(|e| load_err(e.to_string()))?
        } else {
            rtl_core::Recorder::disabled()
        };
        let controller = rtl_fleet::Controller::bind("127.0.0.1:0").map_err(load_err)?;
        let addr = controller.local_addr().map_err(load_err)?.to_string();
        let handles: Vec<_> = (0..workers)
            .map(|i| {
                let scratch = temp_dir(&format!("{tag}-w{workers}-s{i}"));
                let options = rtl_fleet::WorkerOptions {
                    token: "bench".into(),
                    name: format!("w{i}"),
                    threads: 1,
                    scratch: scratch.clone(),
                    ..rtl_fleet::WorkerOptions::default()
                };
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let worked = rtl_fleet::work(&addr, &options);
                    let _ = std::fs::remove_dir_all(&scratch);
                    worked
                })
            })
            .collect();
        let served = controller.serve(
            &CampaignDir::new(&dir),
            config,
            &rtl_fleet::ControllerOptions {
                token: "bench".into(),
                lease: 4,
                recorder,
                ..rtl_fleet::ControllerOptions::default()
            },
            &mut rtl_fleet::NoFleetProgress,
        );
        for handle in handles {
            let _ = handle.join();
        }
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_file(&metrics_path);
        served.map(|_| ()).map_err(load_err)
    })
}

/// Times `work` `iters` times and returns the median duration in seconds.
fn median_secs(
    iters: u32,
    mut work: impl FnMut() -> Result<(), CliError>,
) -> Result<f64, CliError> {
    let mut times = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let started = Instant::now();
        work()?;
        times.push(started.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    Ok(times[times.len() / 2].max(1e-9))
}

fn report(
    err: &mut dyn Write,
    name: String,
    unit: &'static str,
    value: f64,
    iters: u32,
) -> BenchResult {
    let _ = writeln!(err, "bench {name}: {value:.1} {unit}");
    BenchResult {
        name,
        unit,
        value,
        iters,
    }
}

fn render_snapshot(results: &[BenchResult], quick: bool) -> String {
    let items: Vec<Json> = results
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("name".into(), Json::str(r.name.clone())),
                ("unit".into(), Json::str(r.unit)),
                ("value".into(), Json::num(format!("{:.1}", r.value))),
                ("iters".into(), Json::num(r.iters)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("format".into(), Json::str(BENCH_FORMAT)),
        ("date".into(), Json::str(today_utc())),
        ("quick".into(), Json::Bool(quick)),
        ("results".into(), Json::Arr(items)),
    ])
    .render()
}

/// Renders today's UTC date as `YYYY-MM-DD` from the system clock
/// (civil-from-days, Gregorian; no clock libraries in this workspace).
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    // Howard Hinnant's civil_from_days, shifted to the 0000-03-01 era.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("asim-bench-{}-{tag}", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_date_renders_plausibly() {
        let date = today_utc();
        assert_eq!(date.len(), 10, "{date}");
        assert_eq!(&date[4..5], "-");
        assert_eq!(&date[7..8], "-");
        let year: i64 = date[..4].parse().unwrap();
        assert!(year >= 2024, "{date}");
    }

    #[test]
    fn snapshot_document_shape() {
        let results = vec![BenchResult {
            name: "lockstep_stride_1".into(),
            unit: "cycles_per_sec",
            value: 1234.5,
            iters: 3,
        }];
        let doc = render_snapshot(&results, true);
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(
            parsed.get("format").and_then(Json::as_str),
            Some(BENCH_FORMAT)
        );
        assert_eq!(parsed.get("quick").and_then(Json::as_bool), Some(true));
        let items = parsed.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(
            items[0].get("name").and_then(Json::as_str),
            Some("lockstep_stride_1")
        );
    }

    #[test]
    fn usage_errors() {
        let mut out = Vec::new();
        let mut err = Vec::new();
        assert_eq!(bench_cmd(&[], &mut out, &mut err).unwrap_err().code, 1);
        assert_eq!(
            bench_cmd(&["frobnicate"], &mut out, &mut err)
                .unwrap_err()
                .code,
            1
        );
        assert_eq!(
            bench_cmd(&["snapshot", "--bogus"], &mut out, &mut err)
                .unwrap_err()
                .code,
            1
        );
        assert_eq!(
            bench_cmd(&["snapshot", "--out"], &mut out, &mut err)
                .unwrap_err()
                .code,
            1
        );
    }
}
