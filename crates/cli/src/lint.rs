//! `asim2 lint` — static semantic analysis of ASIM II specifications.
//!
//! Lints any number of spec files through the `rtl-lint` pipeline.
//! Errors are always denied; warnings are denied under `--deny
//! warnings`; individual codes can be waived with `--allow CODE`
//! (repeatable). Output is the deterministic text format or the
//! `asim2-lint v1` JSON document (`--format json`). Exit codes follow
//! the tool-wide convention: 0 clean, 1 usage, 2 unreadable file, 3
//! denied findings.

use crate::{load_err, usage_err, CliError};
use rtl_lint::Report;
use std::io::Write;

pub(crate) fn lint_cmd(rest: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    let mut files: Vec<&str> = Vec::new();
    let mut allow: Vec<&str> = Vec::new();
    let mut deny_warnings = false;
    let mut format = "text";
    let mut it = rest.iter().copied();
    while let Some(a) = it.next() {
        match a {
            "--deny" => match it.next() {
                Some("warnings") => deny_warnings = true,
                Some(other) => {
                    return Err(usage_err(format!(
                        "--deny takes \"warnings\" (errors are always denied), got {other:?}"
                    )))
                }
                None => return Err(usage_err("--deny needs a value")),
            },
            "--allow" => match it.next() {
                Some(code) => allow.push(code),
                None => return Err(usage_err("--allow needs a lint code")),
            },
            "--format" => match it.next() {
                Some(f @ ("text" | "json")) => format = f,
                Some(other) => {
                    return Err(usage_err(format!(
                        "--format takes text or json, got {other:?}"
                    )))
                }
                None => return Err(usage_err("--format needs a value")),
            },
            "--codes" => {
                for code in rtl_lint::all_codes() {
                    let _ = writeln!(out, "{code}");
                }
                return Ok(());
            }
            flag if flag.starts_with('-') => {
                return Err(usage_err(format!("lint does not take {flag}")))
            }
            file => files.push(file),
        }
    }
    if files.is_empty() {
        return Err(usage_err("lint needs at least one FILE (or --codes)"));
    }
    let known = rtl_lint::all_codes();
    if let Some(bad) = allow.iter().find(|code| !known.contains(code)) {
        return Err(usage_err(format!(
            "--allow {bad}: unknown lint code (asim2 lint --codes lists them)"
        )));
    }

    let mut reports: Vec<(&str, Report)> = Vec::new();
    for file in &files {
        let source = std::fs::read_to_string(file)
            .map_err(|e| load_err(format!("cannot read {file}: {e}")))?;
        reports.push((file, rtl_lint::lint_source(&source).allow(&allow)));
    }

    let (mut errors, mut warnings) = (0, 0);
    for (_, report) in &reports {
        errors += report.errors();
        warnings += report.warnings();
    }
    match format {
        "json" => {
            let entries: Vec<(&str, &Report)> = reports.iter().map(|(f, r)| (*f, r)).collect();
            let _ = write!(out, "{}", rtl_lint::render_json_document(&entries));
        }
        _ => {
            for (file, report) in &reports {
                let _ = write!(out, "{}", report.render_text(file));
            }
            let _ = writeln!(
                out,
                "{} file(s) linted: {errors} error(s), {warnings} warning(s)",
                files.len()
            );
        }
    }
    let denied = errors + if deny_warnings { warnings } else { 0 };
    if denied > 0 {
        Err(CliError {
            code: 3,
            message: format!("lint denied {denied} finding(s)"),
        })
    } else {
        Ok(())
    }
}
