//! # asim-cli — the `asim` command line tool
//!
//! The modern counterpart of the thesis's `sim [file]` (Appendix A):
//!
//! ```text
//! asim2 check  FILE                      parse + elaborate, report warnings
//! asim2 run    FILE [--cycles N] [--engine NAME] [--no-trace] [--stats]
//!              [--checkpoint FILE --checkpoint-every N] [--resume FILE]
//! asim2 compile FILE [--backend rust|pascal] [-o OUT] [--cycles N] [--interactive]
//! asim2 netlist FILE [--format report|dot|wiring]
//! asim2 vcd    FILE [-o OUT.vcd] [--cycles N]
//! asim2 spec   NAME                      print a bundled/generated specification
//! asim2 fig    3.1|4.1|4.2|4.3|5.1       regenerate a thesis figure
//! asim2 cosim  [FILE] [--engines LIST] [--cycles N] [--scenario NAME] [--compare-every N]
//!              [--dump-divergence DIR] [--export-digests F] [--check-digests F]
//! asim2 fuzz   [--seed N] [--cases N] [--cycles N] [--size N] [--engines LIST]
//! asim2 campaign run|resume|replay|shrink ...
//! asim2 campaign shard plan|run|merge ...    distributed campaigns (rtl-dist)
//! asim2 fleet serve|work ...                 live campaign control plane (rtl-fleet)
//! asim2 metrics summarize FILE... [--check]  fold asim2-events logs (rtl-obs)
//! asim2 bench snapshot [--out F] [--quick]   versioned benchmark snapshot
//! ```
//!
//! `cosim` with no FILE sweeps the whole built-in scenario corpus.
//! Engine names come from the open registry (`asim2 cosim --engines` lists
//! them): the in-process tiers plus the `rust` generated-binary subprocess
//! lane. Every command drives its engine through the [`Session`] API;
//! `--checkpoint-every`/`--resume` expose its on-disk checkpoints.
//!
//! The library entry point [`run`] takes arguments and output sinks so the
//! whole tool is testable in-process; `main` is a thin wrapper.

#![forbid(unsafe_code)]

use rtl_compile::{EmitOptions, OptOptions, Vm};
use rtl_core::{
    Design, EngineOptions, ReaderInput, Session, SimError, StopReason, Until, WriteSink,
};
use rtl_interp::Interpreter;
use rtl_machines::Scenario;
use std::io::Write;

mod bench;
mod fleet;
mod lint;
mod metrics;

/// Executes the tool with the process's stdin. Returns the process exit
/// code: 0 success, 1 usage error, 2 load (parse/elaborate) error, 3
/// runtime simulation error.
pub fn run(args: &[String], out: &mut dyn Write, err: &mut dyn Write) -> i32 {
    let stdin = std::io::stdin();
    run_with_input(args, &mut stdin.lock(), out, err)
}

/// Executes the tool with an explicit input stream (memory-mapped input
/// and interactive prompts read from it) — the testable entry point.
pub fn run_with_input(
    args: &[String],
    stdin: &mut dyn std::io::BufRead,
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> i32 {
    match dispatch(args, stdin, out, err) {
        Ok(()) => 0,
        Err(e) => {
            let _ = writeln!(err, "{}", e.message);
            e.code
        }
    }
}

struct CliError {
    code: i32,
    message: String,
}

fn usage_err(message: impl Into<String>) -> CliError {
    CliError {
        code: 1,
        message: format!("{}\n\n{USAGE}", message.into()),
    }
}

fn load_err(message: impl std::fmt::Display) -> CliError {
    CliError {
        code: 2,
        message: message.to_string(),
    }
}

fn sim_err(e: SimError) -> CliError {
    CliError {
        code: 3,
        message: format!("runtime error: {e}"),
    }
}

const USAGE: &str = "usage:
  asim2 check   FILE [-v]
  asim2 run     FILE [--cycles N] [--engine NAME] [--no-trace] [--stats] [--interactive]
                [--checkpoint FILE --checkpoint-every N] [--resume FILE]
  asim2 compile FILE [--backend rust|pascal] [-o OUT] [--cycles N] [--interactive] [--no-opt]
  asim2 netlist FILE [--format report|dot|wiring]
  asim2 vcd     FILE [-o OUT.vcd] [--cycles N]
  asim2 spec    NAME            (one of: counter gcd traffic fig3_1 fig4_1 fig4_2 fig4_3 sieve tiny)
  asim2 fig     3.1|4.1|4.2|4.3|5.1
  asim2 lint    FILE... [--deny warnings] [--allow CODE] [--format text|json] [--codes]
  asim2 cosim   [FILE] [--engines interp,vm,rust,...] [--cycles N] [--scenario NAME]
                [--compare-every N] [--compare trace,vcd,cells,...]
                [--checkpoint F [--checkpoint-every N]] [--resume F]
                [--dump-divergence DIR] [--export-digests F] [--check-digests F]
                [--lint-oracle]
  asim2 fuzz    [--seed N] [--cases N] [--cycles N] [--size N] [--engines interp,vm,...]
  asim2 campaign run    --dir D [--cases N] [--seed N] [--workers N] [--engines LIST]
                        [--cycles N] [--size N] [--compare-every N] [--limit N]
                        [--case-checkpoint] [--lint-oracle] [--flight]
                        [--metrics-out F.jsonl] [--profile-out F] [--progress[=MS]] [--quiet]
  asim2 campaign resume --dir D [--workers N] [--limit N] [--case-checkpoint] [--flight]
                        [--metrics-out F.jsonl] [--profile-out F]
                        [--progress[=MS]] [--quiet]
  asim2 campaign replay --dir D [--engines LIST]
  asim2 campaign shrink --dir D --seed N [--engines LIST] [--cycles N] [--size N]
  asim2 campaign shard plan  [--plan F] --cases N --shards K [--seed N] [--engines LIST]
                             [--cycles N] [--size N] [--compare-every N]
  asim2 campaign shard run   [--plan F] --shard I --dir D [--workers N] [--limit N]
                             [--case-checkpoint] [--metrics-out F.jsonl]
                             [--profile-out F] [--progress[=MS]] [--quiet]
  asim2 campaign shard merge [--plan F] --out D --shards DIR1,DIR2,...
                             [--metrics-out F.jsonl] [--profile-out F]
  asim2 fleet serve --dir D --token T [--bind ADDR] [--port-file F] [--cases N] [--seed N]
                             [--engines LIST] [--cycles N] [--size N] [--compare-every N]
                             [--lint-oracle] [--lease N] [--lease-deadline MS] [--limit N]
                             [--flight] [--metrics-out F.jsonl] [--profile-out F]
                             [--progress[=MS]] [--quiet]
  asim2 fleet work  --connect HOST:PORT --token T [--name N] [--workers N] [--scratch D]
                             [--fingerprint HEX] [--abandon-after N] [--quiet]
  asim2 fleet status --connect HOST:PORT --token T [--watch[=MS]] [--format text|json]
                             (read-only live fleet status: cases done/remaining, leases
                             with deadlines, per-worker heartbeat age and throughput, ETA)
  asim2 profile FILE | --scenario NAME  [--engine NAME] [--cycles N] [--top N]
                             [--format text|json]
  asim2 metrics summarize FILE...           (fold asim2-events v1 logs into one summary;
                             FILE may be - for stdin)
  asim2 metrics summarize --check RUN1 RUN2...  (RUNs are files, comma-joined file
                             groups, or --group FILE... blocks; exit 3 unless all
                             deterministic sections match)
  asim2 metrics trace-export FILE... [--out F.json]  (logs, or - for stdin, to Chrome
                             trace-event JSON for Perfetto/chrome://tracing; several
                             FILEs merge onto one timeline, one track per log)
  asim2 metrics flight FILE                 (pretty-print a case-N.flight.jsonl divergence
                             flight-recorder sidecar, or - for stdin)
  asim2 bench snapshot  [--out FILE.json] [--quick]

engine NAMEs come from the registry: interp, interp-faithful, vm, vm-noopt,
rust (the generated binary run as a subprocess cosim lane) and vm-fault (a
deliberately broken VM for validating the find->shrink->replay pipeline).
cosim comparators: trace, cycles, outputs, cells, vcd, digest, all
lint checks specs statically (asim2 lint --codes lists the finding codes);
--lint-oracle cross-validates the analyzer's dead-arm/undriven claims
against the running lanes — a contradiction reports as a divergence.
shard plans default to ./shard-plan.json; each shard runs on its own machine
into a self-contained --dir, and merge folds the directories back into one
canonical campaign, bit-identical to a single-machine run.
fleet serves one campaign live over TCP: workers lease contiguous case ranges,
upload records byte-verbatim, dead workers' leases expire back into the pool,
and the controller's finished directory is bit-identical to a single-machine
`campaign run`. Handshake refusals (wrong protocol version, bad token,
fingerprint drift, duplicate worker name) exit 2 with the named reason.
profile runs one engine with the execution-profile tap on and ranks components
by event count; campaign/shard --profile-out F folds per-case profile sidecars
into one asim2-profile v1 document, byte-identical across worker counts and
kill+resume (incompatible with --case-checkpoint).
--flight arms the divergence flight recorder: each case runs with a bounded
ring buffer of its own telemetry, and any case that halts, errors or diverges
leaves a cases/case-N.flight.jsonl sidecar with the last events before the
trigger — byte-identical across worker counts and kill+resume, on single
machines and fleets alike (incompatible with --case-checkpoint).
fleet status watches a serving controller read-only over the same protocol:
one asim2-fleet-status v1 document per poll, --watch to repeat until the
campaign drains.";

fn dispatch(
    args: &[String],
    stdin: &mut dyn std::io::BufRead,
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> Result<(), CliError> {
    let mut it = args.iter().map(String::as_str);
    let cmd = it.next().ok_or_else(|| usage_err("missing command"))?;
    let rest: Vec<&str> = it.collect();
    match cmd {
        "check" => check(&rest, out),
        "run" => run_cmd(&rest, stdin, out),
        "compile" => compile(&rest, out),
        "netlist" => netlist(&rest, out),
        "vcd" => vcd_cmd(&rest, out),
        "spec" => spec_cmd(&rest, out),
        "fig" => fig(&rest, out),
        "lint" => lint::lint_cmd(&rest, out),
        "cosim" => cosim_cmd(&rest, out),
        "fuzz" => fuzz_cmd(&rest, out),
        "campaign" => campaign_cmd(&rest, out, err),
        "fleet" => fleet::fleet_cmd(&rest, out, err),
        "profile" => profile_cmd(&rest, out),
        "metrics" => metrics::metrics_cmd(&rest, stdin, out),
        "bench" => bench::bench_cmd(&rest, out, err),
        "help" | "--help" | "-h" => {
            let _ = writeln!(out, "{USAGE}");
            Ok(())
        }
        other => Err(usage_err(format!("unknown command {other:?}"))),
    }
}

fn load_design(path: &str) -> Result<Design, CliError> {
    let source =
        std::fs::read_to_string(path).map_err(|e| load_err(format!("cannot read {path}: {e}")))?;
    Design::from_source(&source).map_err(load_err)
}

fn check(rest: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    let (file, flags) = split_file(rest)?;
    let verbose = flags.contains(&"-v");
    let design = load_design(file)?;
    // The original's progress line: "N components read."
    let _ = writeln!(out, "{} components read.", design.len());
    for w in design.warnings() {
        let _ = writeln!(out, "{w}");
    }
    if verbose {
        let order: Vec<&str> = design
            .comb_order()
            .iter()
            .map(|&i| design.name(i))
            .collect();
        let _ = writeln!(out, "evaluation order: {}", order.join(" "));
        let mems: Vec<&str> = design.memories().iter().map(|&i| design.name(i)).collect();
        let _ = writeln!(out, "memories: {}", mems.join(" "));
        if let Some(n) = design.cycles() {
            let _ = writeln!(out, "cycles: {n}");
        }
    }
    Ok(())
}

fn run_cmd(
    rest: &[&str],
    stdin: &mut dyn std::io::BufRead,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let (file, flags) = split_file(rest)?;
    let cycles = flag_value(&flags, "--cycles")?
        .map(|v| {
            v.parse::<i64>()
                .map_err(|_| usage_err("--cycles needs an integer"))
        })
        .transpose()?;
    let engine = flag_value(&flags, "--engine")?.unwrap_or("vm");
    let trace = !flags.contains(&"--no-trace");
    let want_stats = flags.contains(&"--stats");
    let interactive = flags.contains(&"--interactive");
    let checkpoint_path = flag_value(&flags, "--checkpoint")?;
    let checkpoint_every = parse_u64_flag(&flags, "--checkpoint-every")?;
    let resume_path = flag_value(&flags, "--resume")?;
    if checkpoint_every.is_some() != checkpoint_path.is_some() {
        return Err(usage_err(
            "--checkpoint FILE and --checkpoint-every N go together",
        ));
    }
    if checkpoint_every == Some(0) {
        return Err(usage_err("--checkpoint-every needs a positive interval"));
    }

    let design = load_design(file)?;
    for w in design.warnings() {
        let _ = writeln!(out, "{w}");
    }

    // The whole run goes through one Session: the registry engine, the
    // caller's output stream as the sink, stdin as the stimulus.
    let mut session = Session::builder(&design)
        .engine_named(
            rtl_cosim::registry(),
            engine,
            &EngineOptions {
                trace,
                ..EngineOptions::default()
            },
        )
        .map_err(usage_err)?
        .sink(WriteSink::new(&mut *out))
        .stimulus(ReaderInput::new(stdin))
        .build();
    if let Some(path) = resume_path {
        session
            .resume_from(path)
            .map_err(|e| load_err(format!("cannot resume from {path}: {e}")))?;
    }

    let mut last = cycles.or(design.cycles()).unwrap_or(0);
    if interactive && last == 0 {
        // The Appendix A prompt: "If the number of cycles is not
        // specified, you will be asked how many cycles to execute".
        prompt(&mut session, "Number of cycles to trace")?;
        last = session.stimulus_mut().read_int().unwrap_or(0);
    } else if !interactive && cycles.is_none() && design.cycles().is_none() {
        return Err(usage_err(
            "no cycle count: pass --cycles, add '= n' to the specification, or use --interactive",
        ));
    }

    loop {
        drive_checkpointed(&mut session, last, checkpoint_every, checkpoint_path)?;
        if !interactive {
            break;
        }
        // "After those cycles have been executed, you will again be
        // prompted for the cycle number to continue to."
        prompt(&mut session, "Continue to cycle (0 to quit)")?;
        let next = session.stimulus_mut().read_int().unwrap_or(0);
        if next < session.cycle() {
            break;
        }
        last = next;
    }

    let stats = session
        .engine()
        .stats()
        .filter(|_| want_stats)
        .map(|s| s.report(&design));
    drop(session);
    if let Some(report) = stats {
        let _ = out.write_all(report.as_bytes());
    }
    Ok(())
}

/// Writes an interactive prompt line through the session's sink (the same
/// stream the trace goes to).
fn prompt(session: &mut Session<'_>, line: &str) -> Result<(), CliError> {
    session
        .sink_mut()
        .write_bytes(format!("{line}\n").as_bytes())
        .map_err(|e| sim_err(SimError::from(e)))
}

/// Runs to the `= last` bound, writing a checkpoint at every
/// `--checkpoint-every` cycle boundary along the way.
fn drive_checkpointed(
    session: &mut Session<'_>,
    last: i64,
    every: Option<u64>,
    path: Option<&str>,
) -> Result<(), CliError> {
    let every = every.filter(|&n| n > 0).map(|n| n as i64);
    loop {
        let current = session.cycle();
        if current > last {
            return Ok(());
        }
        let stop_at = match every {
            // Pause at the next multiple of `every` (Until::Cycle(n) runs
            // while the counter is <= n, so pass boundary - 1).
            Some(n) => ((current / n + 1) * n - 1).min(last),
            None => last,
        };
        session
            .run(Until::Cycle(stop_at))
            .into_result()
            .map_err(sim_err)?;
        if let (Some(n), Some(path)) = (every, path) {
            if session.cycle() % n == 0 && session.cycle() <= last {
                session
                    .checkpoint_to(path)
                    .map_err(|e| load_err(format!("cannot write checkpoint {path}: {e}")))?;
            }
        }
    }
}

fn compile(rest: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    let (file, flags) = split_file(rest)?;
    let backend = flag_value(&flags, "--backend")?.unwrap_or("rust");
    let output = flag_value(&flags, "-o")?;
    let cycles = flag_value(&flags, "--cycles")?
        .map(|v| {
            v.parse::<i64>()
                .map_err(|_| usage_err("--cycles needs an integer"))
        })
        .transpose()?;
    let options = EmitOptions {
        cycles,
        interactive: flags.contains(&"--interactive"),
        opt: if flags.contains(&"--no-opt") {
            OptOptions::none()
        } else {
            OptOptions::full()
        },
        ..EmitOptions::default()
    };

    let design = load_design(file)?;
    let source = match backend {
        "rust" => rtl_compile::emit_rust(&design, &options),
        "pascal" => rtl_compile::emit_pascal(&design, &options),
        other => return Err(usage_err(format!("unknown backend {other:?}"))),
    };
    match output {
        Some(path) => std::fs::write(path, source)
            .map_err(|e| load_err(format!("cannot write {path}: {e}")))?,
        None => {
            let _ = out.write_all(source.as_bytes());
        }
    }
    Ok(())
}

fn netlist(rest: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    let (file, flags) = split_file(rest)?;
    let format = flag_value(&flags, "--format")?.unwrap_or("report");
    let design = load_design(file)?;
    let nl = rtl_hw::Netlist::extract(&design);
    let text = match format {
        "report" => rtl_hw::report::full_report(&design),
        "dot" => rtl_hw::dot::to_dot(&design, &nl),
        "wiring" => rtl_hw::report::wiring_list(&design, &nl),
        other => return Err(usage_err(format!("unknown format {other:?}"))),
    };
    let _ = out.write_all(text.as_bytes());
    Ok(())
}

fn vcd_cmd(rest: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    let (file, flags) = split_file(rest)?;
    let cycles = flag_value(&flags, "--cycles")?
        .map(|v| {
            v.parse::<i64>()
                .map_err(|_| usage_err("--cycles needs an integer"))
        })
        .transpose()?;
    let output = flag_value(&flags, "-o")?;
    let design = load_design(file)?;
    let total = cycles.or(design.cycles()).ok_or_else(|| {
        usage_err("no cycle count: pass --cycles or add '= n' to the specification")
    })? + 1;

    let vm = Vm::with_options(&design, OptOptions::full(), false);
    let doc = rtl_core::vcd::dump(vm, total as u64, &rtl_core::vcd::VcdOptions::default())
        .map_err(sim_err)?;
    match output {
        Some(path) => {
            std::fs::write(path, doc).map_err(|e| load_err(format!("cannot write {path}: {e}")))?
        }
        None => {
            let _ = out.write_all(&doc);
        }
    }
    Ok(())
}

fn spec_cmd(rest: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    let name = rest.first().ok_or_else(|| usage_err("spec needs a name"))?;
    let text = match *name {
        "sieve" => {
            let w = rtl_machines::stack::sieve_workload(20);
            rtl_machines::stack::rtl::spec_source(&w.program, Some(w.cycles))
        }
        "tiny" => {
            let image = rtl_machines::tiny::divider_image(17, 5);
            rtl_machines::tiny::rtl::spec_source(&image, Some(200))
        }
        other => rtl_machines::classic::source(other)
            .ok_or_else(|| usage_err(format!("unknown spec {other:?}")))?
            .to_string(),
    };
    let _ = out.write_all(text.as_bytes());
    Ok(())
}

fn fig(rest: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    let id = rest.first().ok_or_else(|| usage_err("fig needs an id"))?;
    match *id {
        "3.1" => fig_3_1(out),
        "4.1" => fig_codegen(out, rtl_machines::classic::FIG4_1, "Figure 4.1"),
        "4.2" => fig_codegen(out, rtl_machines::classic::FIG4_2, "Figure 4.2"),
        "4.3" => fig_codegen(out, rtl_machines::classic::FIG4_3, "Figure 4.3"),
        "5.1" => fig_5_1_quick(out),
        other => Err(usage_err(format!("unknown figure {other:?}"))),
    }
}

fn fig_3_1(out: &mut dyn Write) -> Result<(), CliError> {
    let _ = writeln!(out, "Figure 3.1 — bit concatenation mem.3.4,#01,count.1");
    let _ = writeln!(
        out,
        "with mem = 24 (binary 11000) and count = 2 (binary 10):"
    );
    let design = Design::from_source(rtl_machines::classic::FIG3_1).map_err(load_err)?;
    Session::over(Interpreter::new(&design))
        .sink(WriteSink::new(&mut *out))
        .build()
        .run(Until::Spec)
        .into_result()
        .map_err(sim_err)?;
    let _ = writeln!(out, "cat = 27 = binary 11011 (mem bits | 01 | count bit)");
    Ok(())
}

fn fig_codegen(out: &mut dyn Write, src: &str, title: &str) -> Result<(), CliError> {
    let design = Design::from_source(src).map_err(load_err)?;
    let _ = writeln!(out, "{title} — specification:");
    let _ = writeln!(out, "{src}");
    let _ = writeln!(out, "{title} — Pascal generated by the ASIM II backend:");
    let pascal = rtl_compile::emit_pascal(&design, &EmitOptions::default());
    let _ = out.write_all(pascal.as_bytes());
    let _ = writeln!(out);
    let _ = writeln!(out, "{title} — Rust generated by the asim2 backend:");
    let rust = rtl_compile::emit_rust(&design, &EmitOptions::default());
    let _ = out.write_all(rust.as_bytes());
    Ok(())
}

/// A quick, in-process cut of the Figure 5.1 comparison (interpreter vs.
/// compiled VM on the sieve). The full pipeline including `rustc` lives in
/// `cargo run -p rtl-bench --bin fig5_1_table`.
fn fig_5_1_quick(out: &mut dyn Write) -> Result<(), CliError> {
    use std::time::Instant;
    let w = rtl_machines::stack::sieve_workload(20);
    let spec = rtl_machines::stack::rtl::spec(&w.program, Some(w.cycles));
    let design = Design::elaborate(&spec).map_err(load_err)?;

    let t = Instant::now();
    Session::over(Interpreter::new(&design))
        .build()
        .run(Until::Spec)
        .into_result()
        .map_err(sim_err)?;
    let interp_time = t.elapsed();

    let t = Instant::now();
    Session::over(Vm::new(&design))
        .build()
        .run(Until::Spec)
        .into_result()
        .map_err(sim_err)?;
    let vm_time = t.elapsed();

    let _ = writeln!(
        out,
        "Figure 5.1 (quick cut) — sieve, {} cycles:",
        w.cycles + 1
    );
    let _ = writeln!(out, "  ASIM   (interpreter)  {:>10.3?}", interp_time);
    let _ = writeln!(out, "  ASIM II (compiled VM) {:>10.3?}", vm_time);
    let _ = writeln!(
        out,
        "  speedup: {:.1}x (paper: ~20x simulation-only; see rtl-bench for the full table)",
        interp_time.as_secs_f64() / vm_time.as_secs_f64().max(1e-9)
    );
    Ok(())
}

/// Flags shared by `cosim` and `fuzz`: engine list (validated against the
/// open registry, so subprocess lanes like `rust` work too) and lockstep
/// tuning.
fn parse_engines(flags: &[&str]) -> Result<Vec<String>, CliError> {
    let list = flag_value(flags, "--engines")?.unwrap_or("interp,vm");
    rtl_cosim::registry().parse_list(list).map_err(usage_err)
}

fn parse_u64_flag(flags: &[&str], name: &str) -> Result<Option<u64>, CliError> {
    flag_value(flags, name)?
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| usage_err(format!("{name} needs an integer")))
        })
        .transpose()
}

fn cosim_cmd(rest: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    let (file, flags) = split_optional_file(
        rest,
        &[
            "--engines",
            "--cycles",
            "--scenario",
            "--compare-every",
            "--compare",
            "--checkpoint",
            "--checkpoint-every",
            "--resume",
            "--dump-divergence",
            "--export-digests",
            "--check-digests",
        ],
    )?;
    let engines = parse_engines(&flags)?;
    let cycles = parse_u64_flag(&flags, "--cycles")?;
    let compare_every = parse_u64_flag(&flags, "--compare-every")?.unwrap_or(1);
    let compare = match flag_value(&flags, "--compare")? {
        Some(list) => rtl_core::observe::CompareMode::parse_list(list).map_err(usage_err)?,
        None => vec![rtl_core::observe::CompareMode::All],
    };
    let checkpoint_path = flag_value(&flags, "--checkpoint")?;
    let checkpoint_every = parse_u64_flag(&flags, "--checkpoint-every")?;
    if checkpoint_every.is_some() && checkpoint_path.is_none() {
        return Err(usage_err("--checkpoint-every needs --checkpoint FILE"));
    }
    if checkpoint_every == Some(0) {
        return Err(usage_err("--checkpoint-every needs a positive interval"));
    }
    let checkpoint = checkpoint_path.map(|path| rtl_cosim::LockstepCheckpoint {
        path: path.into(),
        every: checkpoint_every.unwrap_or(256),
    });
    let resume = flag_value(&flags, "--resume")?.map(std::path::PathBuf::from);
    let dump_divergence = flag_value(&flags, "--dump-divergence")?;
    let export_digests = flag_value(&flags, "--export-digests")?.map(std::path::PathBuf::from);
    let check_digests = flag_value(&flags, "--check-digests")?.map(std::path::PathBuf::from);
    if (checkpoint.is_some()
        || resume.is_some()
        || dump_divergence.is_some()
        || export_digests.is_some()
        || check_digests.is_some())
        && file.is_none()
        && flag_value(&flags, "--scenario")?.is_none()
    {
        return Err(usage_err(
            "--checkpoint/--resume/--dump-divergence/--export-digests/--check-digests \
             apply to a single scenario (pass FILE or --scenario)",
        ));
    }
    let options = rtl_cosim::CosimOptions {
        compare_every: compare_every.max(1),
        compare,
        checkpoint,
        resume,
        export_digests,
        check_digests,
        lint_oracle: flags.contains(&"--lint-oracle"),
        ..rtl_cosim::CosimOptions::default()
    };

    // One scenario (a file or a named corpus entry), or the full corpus.
    match (file, flag_value(&flags, "--scenario")?) {
        (Some(_), Some(_)) => Err(usage_err("pass either FILE or --scenario, not both")),
        (Some(path), None) => {
            let source = std::fs::read_to_string(path)
                .map_err(|e| load_err(format!("cannot read {path}: {e}")))?;
            // Elaborate only when the horizon must come from the spec's
            // own `= n` clause (run_scenario_names elaborates again; with
            // --cycles given, the file is elaborated exactly once).
            let horizon = match cycles {
                Some(n) => n,
                None => rtl_core::Design::from_source(&source)
                    .map_err(load_err)?
                    .cycles()
                    .and_then(|n| u64::try_from(n + 1).ok())
                    .unwrap_or(rtl_machines::scenarios::DEFAULT_CYCLES),
            };
            let scenario = Scenario {
                name: path.to_string(),
                source,
                cycles: horizon,
                input: Vec::new(),
            };
            let outcome =
                rtl_cosim::run_scenario_names(rtl_cosim::registry(), &engines, &scenario, &options)
                    .map_err(load_err)?;
            dump_divergent_window(&engines, &scenario, &outcome, dump_divergence, out)?;
            report_single(path, outcome, out)
        }
        (None, Some(name)) => {
            let scenario = rtl_machines::scenarios::by_name(name).ok_or_else(|| {
                let known = rtl_machines::scenarios::names().join(", ");
                usage_err(format!("unknown scenario {name:?} (known: {known})"))
            })?;
            let scenario = match cycles {
                Some(n) => scenario.with_cycles(n),
                None => scenario,
            };
            let outcome =
                rtl_cosim::run_scenario_names(rtl_cosim::registry(), &engines, &scenario, &options)
                    .map_err(load_err)?;
            dump_divergent_window(&engines, &scenario, &outcome, dump_divergence, out)?;
            report_single(&scenario.name, outcome, out)
        }
        (None, None) => {
            let report =
                rtl_cosim::run_corpus_names(rtl_cosim::registry(), &engines, cycles, &options)
                    .map_err(load_err)?;
            let _ = write!(out, "{report}");
            let diverged = report.divergences().count();
            let halts = report.halts().count();
            if diverged > 0 {
                Err(CliError {
                    code: 3,
                    message: format!("cosim found {diverged} divergence(s)"),
                })
            } else if halts > 0 {
                Err(CliError {
                    code: 3,
                    message: format!(
                        "{halts} scenario(s) halted before their horizon (nothing diverged, \
                         but the halted cycles were not verified)"
                    ),
                })
            } else {
                Ok(())
            }
        }
    }
}

/// `--dump-divergence DIR`: on a divergence, replay every stepped lane
/// and write the window of cycles ending at the divergence as one VCD
/// document per lane — side-by-side waveforms of the disagreement.
fn dump_divergent_window(
    engines: &[String],
    scenario: &rtl_machines::Scenario,
    outcome: &rtl_cosim::CosimOutcome,
    dir: Option<&str>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let (Some(dir), rtl_cosim::CosimOutcome::Divergence(report)) = (dir, outcome) else {
        return Ok(());
    };
    let dumps = rtl_cosim::wavedump::dump_divergence(
        rtl_cosim::registry(),
        engines,
        scenario,
        u64::try_from(report.cycle).unwrap_or(0),
        rtl_cosim::wavedump::DEFAULT_WINDOW,
        std::path::Path::new(dir),
    )
    .map_err(load_err)?;
    for dump in dumps {
        let _ = writeln!(
            out,
            "waveform window (cycles {}..{}, timestamps relative): {}",
            dump.start,
            dump.end,
            dump.path.display()
        );
    }
    Ok(())
}

/// Prints a single-scenario outcome. A unanimous runtime halt is reported
/// as a runtime error (exit 3), matching `asim2 run` on the same design —
/// the engines agreeing about a crash does not verify the requested
/// horizon.
fn report_single(
    name: &str,
    outcome: rtl_cosim::CosimOutcome,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    match outcome {
        rtl_cosim::CosimOutcome::Agreement {
            cycles,
            stop: StopReason::CycleLimit,
            ..
        } => {
            let _ = writeln!(out, "{name}: {cycles} cycles verified, no divergence");
            Ok(())
        }
        rtl_cosim::CosimOutcome::Agreement { cycles, stop, .. } => {
            let _ = writeln!(out, "{name}: {cycles} cycles verified, no divergence");
            Err(CliError {
                code: 3,
                message: format!("unanimous runtime halt (all engines agree): {stop}"),
            })
        }
        rtl_cosim::CosimOutcome::Divergence(report) => {
            let _ = write!(out, "{report}");
            Err(CliError {
                code: 3,
                message: "cosim found a divergence".into(),
            })
        }
    }
}

fn fuzz_cmd(rest: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    let (file, flags) = split_optional_file(
        rest,
        &["--engines", "--cycles", "--seed", "--cases", "--size"],
    )?;
    if let Some(f) = file {
        return Err(usage_err(format!(
            "fuzz takes no FILE argument (got {f:?})"
        )));
    }
    let mut options = rtl_cosim::FuzzOptions {
        engines: parse_engines(&flags)?,
        ..rtl_cosim::FuzzOptions::default()
    };
    if let Some(seed) = parse_u64_flag(&flags, "--seed")? {
        options.seed = seed;
    }
    if let Some(cases) = parse_u64_flag(&flags, "--cases")? {
        options.cases = u32::try_from(cases).map_err(|_| usage_err("--cases is too large"))?;
    }
    if let Some(cycles) = parse_u64_flag(&flags, "--cycles")? {
        options.generator.cycles = cycles;
    }
    if let Some(size) = parse_u64_flag(&flags, "--size")? {
        options.generator.size = size as usize;
    }
    let report = rtl_cosim::run_fuzz(&options).map_err(load_err)?;
    let _ = write!(out, "{report}");
    if !report.clean() {
        return Err(CliError {
            code: 3,
            message: "fuzz found divergences".into(),
        });
    }
    Ok(())
}

/// `asim2 profile` — run one engine with the execution-profile tap on
/// and print the hot-component table (or the raw `asim2-profile v1`
/// document with `--format json`). The output is a pure function of
/// (design, stimulus, engine), so two runs print identical bytes.
fn profile_cmd(rest: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    let (file, flags) = split_optional_file(
        rest,
        &["--engine", "--cycles", "--scenario", "--top", "--format"],
    )?;
    let engine = flag_value(&flags, "--engine")?.unwrap_or("interp");
    let format = flag_value(&flags, "--format")?.unwrap_or("text");
    if !matches!(format, "text" | "json") {
        return Err(usage_err(format!(
            "unknown profile format {format:?} (expected text or json)"
        )));
    }
    let top = parse_u64_flag(&flags, "--top")?;
    let cycles = parse_u64_flag(&flags, "--cycles")?;

    // One scenario: a spec file or a named corpus entry, like cosim.
    let scenario = match (file, flag_value(&flags, "--scenario")?) {
        (Some(_), Some(_)) => return Err(usage_err("pass either FILE or --scenario, not both")),
        (None, None) => return Err(usage_err("profile needs a FILE or --scenario NAME")),
        (Some(path), None) => {
            let source = std::fs::read_to_string(path)
                .map_err(|e| load_err(format!("cannot read {path}: {e}")))?;
            let horizon = match cycles {
                Some(n) => n,
                None => rtl_core::Design::from_source(&source)
                    .map_err(load_err)?
                    .cycles()
                    .and_then(|n| u64::try_from(n + 1).ok())
                    .unwrap_or(rtl_machines::scenarios::DEFAULT_CYCLES),
            };
            Scenario {
                name: path.to_string(),
                source,
                cycles: horizon,
                input: Vec::new(),
            }
        }
        (None, Some(name)) => {
            let scenario = rtl_machines::scenarios::by_name(name).ok_or_else(|| {
                let known = rtl_machines::scenarios::names().join(", ");
                usage_err(format!("unknown scenario {name:?} (known: {known})"))
            })?;
            match cycles {
                Some(n) => scenario.with_cycles(n),
                None => scenario,
            }
        }
    };

    let design = Design::from_source(&scenario.source).map_err(load_err)?;
    let hook = rtl_core::ProfileHook::collecting();
    let mut session = Session::builder(&design)
        .engine_named(
            rtl_cosim::registry(),
            engine,
            &EngineOptions {
                trace: false,
                profile: hook.clone(),
            },
        )
        .map_err(usage_err)?
        .scripted(scenario.input.iter().copied())
        .build();
    let last = i64::try_from(scenario.cycles.saturating_sub(1)).unwrap_or(i64::MAX);
    session
        .run(Until::Cycle(last))
        .into_result()
        .map_err(sim_err)?;
    let executed = session.cycle();
    // Dropping the session drops the engine, flushing its lane tally.
    drop(session);
    let profile = hook.snapshot();

    if format == "json" {
        let _ = out.write_all(profile.render().as_bytes());
        return Ok(());
    }
    let rows = profile.components();
    let shown = match top {
        Some(n) => usize::try_from(n).unwrap_or(usize::MAX).min(rows.len()),
        None => rows.len(),
    };
    let _ = writeln!(
        out,
        "profile: {} — engine {engine}, {executed} cycle(s), {} event(s) across {} component(s)",
        scenario.name,
        profile.total_events(),
        rows.len()
    );
    let width = rows
        .iter()
        .take(shown)
        .map(|r| r.name.len())
        .max()
        .unwrap_or(0)
        .max("component".len());
    let _ = writeln!(
        out,
        "  {:<width$}  {:>10}  {:>10}  {:>10}  {:>8}",
        "component", "events", "evals", "changes", "activity"
    );
    for row in rows.iter().take(shown) {
        let activity = match row.activity() {
            Some(a) => format!("{:>7.1}%", a * 100.0),
            None => "       -".to_string(),
        };
        let _ = writeln!(
            out,
            "  {:<width$}  {:>10}  {:>10}  {:>10}  {activity}",
            row.name, row.events, row.evals, row.changes
        );
    }
    if shown < rows.len() {
        let _ = writeln!(
            out,
            "  ... {} more component(s); see --top",
            rows.len() - shown
        );
    }
    Ok(())
}

/// Maps a campaign-layer failure onto the tool's exit-code conventions:
/// configuration problems read as usage errors (1), corrupt state and
/// lane/toolchain failures as load errors (2).
fn campaign_err(e: rtl_campaign::CampaignError) -> CliError {
    use rtl_campaign::CampaignError;
    match e {
        CampaignError::Config(m) => usage_err(m),
        other => load_err(other),
    }
}

/// Live campaign progress, written to stderr so stdout stays the
/// deterministic report. Rate-limited: at most one line per refresh
/// period (plus the final case), so a 10k-case sweep does not write 10k
/// lines and CI logs stop interleaving progress with test output.
/// `--quiet` silences it entirely; `--progress=MS` tunes the period.
struct ProgressReporter<'a> {
    err: &'a mut dyn Write,
    enabled: bool,
    period: std::time::Duration,
    started: std::time::Instant,
    last_line: Option<std::time::Instant>,
    completed: u32,
    agreed: u32,
    diverged: u32,
}

impl<'a> ProgressReporter<'a> {
    /// Default refresh period between progress lines, in milliseconds.
    const DEFAULT_PERIOD_MS: u64 = 1000;

    fn new(err: &'a mut dyn Write, enabled: bool, period_ms: u64) -> Self {
        ProgressReporter {
            err,
            enabled,
            period: std::time::Duration::from_millis(period_ms),
            started: std::time::Instant::now(),
            last_line: None,
            completed: 0,
            agreed: 0,
            diverged: 0,
        }
    }

    /// Builds the reporter from the parsed `--progress[=MS]`/`--quiet`
    /// flags (progress is on by default, at the default period).
    fn from_flags(
        err: &'a mut dyn Write,
        flags: &[&str],
    ) -> Result<ProgressReporter<'a>, CliError> {
        let quiet = flags.contains(&"--quiet");
        let period = progress_period(flags)?.unwrap_or(Self::DEFAULT_PERIOD_MS);
        Ok(ProgressReporter::new(err, !quiet, period))
    }
}

impl rtl_campaign::Progress for ProgressReporter<'_> {
    fn case_done(&mut self, record: &rtl_campaign::CaseRecord, done: u32, total: u32) {
        self.completed += 1;
        match &record.status {
            rtl_campaign::CaseStatus::Agreed => self.agreed += 1,
            rtl_campaign::CaseStatus::Diverged { .. } => self.diverged += 1,
            _ => {}
        }
        if !self.enabled {
            return;
        }
        let now = std::time::Instant::now();
        let due = match self.last_line {
            None => true,
            Some(last) => now.duration_since(last) >= self.period,
        };
        if !due && done != total {
            return;
        }
        self.last_line = Some(now);
        let secs = self.started.elapsed().as_secs_f64().max(1e-9);
        let rate = f64::from(self.completed) / secs;
        let eta = f64::from(total.saturating_sub(done)) / rate.max(1e-9);
        let _ = writeln!(
            self.err,
            "[{done}/{total}] {} agreed, {} diverged, {rate:.1} cases/s, ETA {eta:.0}s",
            self.agreed, self.diverged,
        );
    }
}

/// Parses `--progress` / `--progress=MS` from the flag list (the bare
/// form uses the default period). `None` when absent.
fn progress_period(flags: &[&str]) -> Result<Option<u64>, CliError> {
    for flag in flags {
        if *flag == "--progress" {
            return Ok(Some(ProgressReporter::DEFAULT_PERIOD_MS));
        }
        if let Some(ms) = flag.strip_prefix("--progress=") {
            return ms
                .parse()
                .map(Some)
                .map_err(|_| usage_err(format!("--progress needs milliseconds, got {ms:?}")));
        }
    }
    Ok(None)
}

/// Opens the `--metrics-out` event log, when requested.
fn metrics_recorder(flags: &[&str]) -> Result<rtl_core::Recorder, CliError> {
    match flag_value(flags, "--metrics-out")? {
        None => Ok(rtl_core::Recorder::disabled()),
        Some(path) => rtl_core::Recorder::to_file(std::path::Path::new(path))
            .map_err(|e| load_err(format!("cannot write metrics to {path}: {e}"))),
    }
}

fn campaign_cmd(rest: &[&str], out: &mut dyn Write, err: &mut dyn Write) -> Result<(), CliError> {
    use rtl_campaign::{CampaignConfig, CampaignDir, RunOptions};

    let sub = rest
        .first()
        .copied()
        .ok_or_else(|| usage_err("campaign needs a subcommand (run|resume|replay|shrink|shard)"))?;
    if sub == "shard" {
        return shard_cmd(&rest[1..], out, err);
    }
    let (extra, flags) = split_optional_file(
        &rest[1..],
        &[
            "--dir",
            "--cases",
            "--seed",
            "--workers",
            "--engines",
            "--cycles",
            "--size",
            "--compare-every",
            "--limit",
            "--metrics-out",
            "--profile-out",
        ],
    )?;
    if let Some(x) = extra {
        return Err(usage_err(format!("unexpected argument {x:?}")));
    }
    // Each subcommand accepts only its own flags — silently swallowing,
    // say, `resume --cases 200` would let the user believe the campaign
    // was extended.
    let allowed: &[&str] = match sub {
        "run" => &[
            "--dir",
            "--cases",
            "--seed",
            "--workers",
            "--engines",
            "--cycles",
            "--size",
            "--compare-every",
            "--limit",
            "--case-checkpoint",
            "--lint-oracle",
            "--flight",
            "--metrics-out",
            "--profile-out",
            "--progress",
            "--quiet",
        ],
        "resume" => &[
            "--dir",
            "--workers",
            "--limit",
            "--case-checkpoint",
            "--flight",
            "--metrics-out",
            "--profile-out",
            "--progress",
            "--quiet",
        ],
        "replay" => &["--dir", "--engines"],
        "shrink" => &[
            "--dir",
            "--seed",
            "--engines",
            "--cycles",
            "--size",
            "--compare-every",
        ],
        other => return Err(usage_err(format!("unknown campaign subcommand {other:?}"))),
    };
    // `--progress=500` carries its value in the token: compare it against
    // the allowed list by its name part.
    if let Some(bad) = flags.iter().find(|f| {
        let name = if f.starts_with("--progress=") {
            "--progress"
        } else {
            **f
        };
        f.starts_with('-') && !allowed.contains(&name)
    }) {
        return Err(usage_err(format!(
            "campaign {sub} does not take {bad} (accepted: {})",
            allowed.join(" ")
        )));
    }
    let dir = CampaignDir::new(
        flag_value(&flags, "--dir")?.ok_or_else(|| usage_err("campaign needs --dir DIR"))?,
    );
    let mut run_options = RunOptions::default();
    if let Some(workers) = parse_u64_flag(&flags, "--workers")? {
        if workers == 0 {
            return Err(usage_err("--workers needs a positive count"));
        }
        run_options.workers = workers as usize;
    }
    if let Some(limit) = parse_u64_flag(&flags, "--limit")? {
        run_options.limit =
            Some(u32::try_from(limit).map_err(|_| usage_err("--limit is too large"))?);
    }
    run_options.case_checkpoint = flags.contains(&"--case-checkpoint");
    run_options.flight = flags.contains(&"--flight");
    run_options.recorder = metrics_recorder(&flags)?;
    let profile_out = flag_value(&flags, "--profile-out")?;
    run_options.profile = profile_out.is_some();
    let engines_flag = match flag_value(&flags, "--engines")? {
        Some(list) => Some(
            rtl_campaign::campaign_registry(None)
                .parse_list(list)
                .map_err(usage_err)?,
        ),
        None => None,
    };

    match sub {
        "run" => {
            let mut config = CampaignConfig::default();
            if let Some(engines) = engines_flag {
                config.engines = engines;
            }
            if let Some(seed) = parse_u64_flag(&flags, "--seed")? {
                config.seed = seed;
            }
            if let Some(cases) = parse_u64_flag(&flags, "--cases")? {
                config.cases =
                    u32::try_from(cases).map_err(|_| usage_err("--cases is too large"))?;
            }
            if let Some(cycles) = parse_u64_flag(&flags, "--cycles")? {
                config.generator.cycles = cycles;
            }
            if let Some(size) = parse_u64_flag(&flags, "--size")? {
                config.generator.size = size as usize;
            }
            if let Some(stride) = parse_u64_flag(&flags, "--compare-every")? {
                config.compare_every = stride.max(1);
            }
            config.lint_oracle = flags.contains(&"--lint-oracle");
            let mut progress = ProgressReporter::from_flags(err, &flags)?;
            let report = rtl_campaign::run(&dir, &config, &run_options, &mut progress)
                .map_err(campaign_err)?;
            run_options.recorder.flush();
            write_profile_out(&dir, &report, profile_out)?;
            finish_campaign(report, out, err, &run_options, flags.contains(&"--quiet"))
        }
        "resume" => {
            let mut progress = ProgressReporter::from_flags(err, &flags)?;
            let report =
                rtl_campaign::resume(&dir, &run_options, &mut progress).map_err(campaign_err)?;
            run_options.recorder.flush();
            write_profile_out(&dir, &report, profile_out)?;
            finish_campaign(report, out, err, &run_options, flags.contains(&"--quiet"))
        }
        "replay" => {
            let report =
                rtl_campaign::replay_corpus(&dir, engines_flag.as_deref()).map_err(campaign_err)?;
            let _ = write!(out, "{report}");
            let reproduced = report.reproduced().count();
            if reproduced > 0 {
                Err(CliError {
                    code: 3,
                    message: format!("{reproduced} corpus divergence(s) reproduced"),
                })
            } else if !report.clean() {
                Err(CliError {
                    code: 3,
                    message: "corpus replay hit runtime halts (nothing verified past them)".into(),
                })
            } else {
                Ok(())
            }
        }
        "shrink" => {
            let seed = parse_u64_flag(&flags, "--seed")?
                .ok_or_else(|| usage_err("campaign shrink needs --seed N"))?;
            // Defaults come from the campaign living in --dir, when there
            // is one: a shrink must probe the same scenario the campaign
            // flagged, not a generic one. Flags still override.
            let stored = if dir.manifest().exists() {
                Some(dir.load().map_err(campaign_err)?)
            } else {
                None
            };
            let engines = engines_flag
                .or_else(|| stored.as_ref().map(|c| c.engines.clone()))
                .unwrap_or_else(|| vec!["interp".to_string(), "vm".to_string()]);
            let mut generator = stored
                .as_ref()
                .map(|c| c.generator.clone())
                .unwrap_or_default();
            if let Some(cycles) = parse_u64_flag(&flags, "--cycles")? {
                generator.cycles = cycles;
            }
            if let Some(size) = parse_u64_flag(&flags, "--size")? {
                generator.size = size as usize;
            }
            let stride = parse_u64_flag(&flags, "--compare-every")?
                .or(stored.as_ref().map(|c| c.compare_every))
                .unwrap_or(1)
                .max(1);
            let cache = std::sync::Arc::new(rtl_compile::BinaryCache::at_dir(dir.bin_cache()));
            let registry = rtl_campaign::campaign_registry(Some(cache));
            let cosim = rtl_cosim::CosimOptions {
                compare_every: stride,
                ..rtl_cosim::CosimOptions::default()
            };
            let shrunk =
                rtl_campaign::shrink_divergence(&registry, &engines, seed, &generator, &cosim)
                    .map_err(campaign_err)?;
            match shrunk {
                None => {
                    let _ = writeln!(
                        out,
                        "seed {seed}: no divergence across [{}] — nothing to shrink",
                        engines.join(", ")
                    );
                    Ok(())
                }
                Some(shrunk) => {
                    let entry =
                        rtl_campaign::corpus::save(&dir.corpus(), &shrunk, &engines, stride)
                            .map_err(campaign_err)?;
                    let _ = writeln!(
                        out,
                        "seed {seed}: shrunk to size {}, {} cycles, {} stimulus words \
                         in {} lockstep runs -> corpus {}",
                        shrunk.size, shrunk.cycles, shrunk.input_len, shrunk.attempts, entry.name,
                    );
                    let _ = write!(out, "{}", shrunk.report);
                    Err(CliError {
                        code: 3,
                        message: "campaign shrink archived a divergence".into(),
                    })
                }
            }
        }
        other => Err(usage_err(format!("unknown campaign subcommand {other:?}"))),
    }
}

/// `asim2 campaign shard plan|run|merge` — distributed campaigns: plan a
/// partition, execute one shard per machine into a self-contained
/// directory, merge the directories back into one canonical campaign.
fn shard_cmd(rest: &[&str], out: &mut dyn Write, err: &mut dyn Write) -> Result<(), CliError> {
    use rtl_campaign::{CampaignConfig, CampaignDir, RunOptions};
    use rtl_dist::ShardPlan;

    let sub = rest
        .first()
        .copied()
        .ok_or_else(|| usage_err("campaign shard needs a subcommand (plan|run|merge)"))?;
    let (extra, flags) = split_optional_file(
        &rest[1..],
        &[
            "--plan",
            "--cases",
            "--shards",
            "--seed",
            "--engines",
            "--cycles",
            "--size",
            "--compare-every",
            "--shard",
            "--dir",
            "--workers",
            "--limit",
            "--out",
            "--metrics-out",
            "--profile-out",
        ],
    )?;
    if let Some(x) = extra {
        return Err(usage_err(format!("unexpected argument {x:?}")));
    }
    let allowed: &[&str] = match sub {
        "plan" => &[
            "--plan",
            "--cases",
            "--shards",
            "--seed",
            "--engines",
            "--cycles",
            "--size",
            "--compare-every",
        ],
        "run" => &[
            "--plan",
            "--shard",
            "--dir",
            "--workers",
            "--limit",
            "--case-checkpoint",
            "--metrics-out",
            "--profile-out",
            "--progress",
            "--quiet",
        ],
        "merge" => &[
            "--plan",
            "--out",
            "--shards",
            "--metrics-out",
            "--profile-out",
        ],
        other => {
            return Err(usage_err(format!(
                "unknown campaign shard subcommand {other:?}"
            )))
        }
    };
    if let Some(bad) = flags.iter().find(|f| {
        let name = if f.starts_with("--progress=") {
            "--progress"
        } else {
            **f
        };
        f.starts_with('-') && !allowed.contains(&name)
    }) {
        return Err(usage_err(format!(
            "campaign shard {sub} does not take {bad} (accepted: {})",
            allowed.join(" ")
        )));
    }
    let plan_path =
        std::path::PathBuf::from(flag_value(&flags, "--plan")?.unwrap_or("shard-plan.json"));

    match sub {
        "plan" => {
            let shards = parse_u64_flag(&flags, "--shards")?
                .ok_or_else(|| usage_err("campaign shard plan needs --shards K"))?;
            let shards = u32::try_from(shards).map_err(|_| usage_err("--shards is too large"))?;
            let mut config = CampaignConfig::default();
            if let Some(list) = flag_value(&flags, "--engines")? {
                config.engines = rtl_campaign::campaign_registry(None)
                    .parse_list(list)
                    .map_err(usage_err)?;
            }
            if let Some(seed) = parse_u64_flag(&flags, "--seed")? {
                config.seed = seed;
            }
            if let Some(cases) = parse_u64_flag(&flags, "--cases")? {
                config.cases =
                    u32::try_from(cases).map_err(|_| usage_err("--cases is too large"))?;
            }
            if let Some(cycles) = parse_u64_flag(&flags, "--cycles")? {
                config.generator.cycles = cycles;
            }
            if let Some(size) = parse_u64_flag(&flags, "--size")? {
                config.generator.size = size as usize;
            }
            if let Some(stride) = parse_u64_flag(&flags, "--compare-every")? {
                config.compare_every = stride.max(1);
            }
            let plan = ShardPlan::partition(config, shards).map_err(campaign_err)?;
            plan.save(&plan_path).map_err(campaign_err)?;
            let _ = writeln!(
                out,
                "plan: {} cases from seed {} across {} shard(s) -> {}",
                plan.config.cases,
                plan.config.seed,
                plan.shards.len(),
                plan_path.display()
            );
            for spec in &plan.shards {
                let _ = writeln!(
                    out,
                    "  shard {}: cases {}..{} ({} cases)",
                    spec.index,
                    spec.start,
                    spec.end,
                    spec.cases()
                );
            }
            Ok(())
        }
        "run" => {
            let plan = ShardPlan::load(&plan_path).map_err(campaign_err)?;
            let index = parse_u64_flag(&flags, "--shard")?
                .ok_or_else(|| usage_err("campaign shard run needs --shard I"))?;
            let index = u32::try_from(index).map_err(|_| usage_err("--shard is too large"))?;
            let dir = CampaignDir::new(
                flag_value(&flags, "--dir")?
                    .ok_or_else(|| usage_err("campaign shard run needs --dir DIR"))?,
            );
            let mut options = RunOptions::default();
            if let Some(workers) = parse_u64_flag(&flags, "--workers")? {
                if workers == 0 {
                    return Err(usage_err("--workers needs a positive count"));
                }
                options.workers = workers as usize;
            }
            if let Some(limit) = parse_u64_flag(&flags, "--limit")? {
                options.limit =
                    Some(u32::try_from(limit).map_err(|_| usage_err("--limit is too large"))?);
            }
            options.case_checkpoint = flags.contains(&"--case-checkpoint");
            options.recorder = metrics_recorder(&flags)?;
            let profile_out = flag_value(&flags, "--profile-out")?;
            options.profile = profile_out.is_some();
            let mut progress = ProgressReporter::from_flags(err, &flags)?;
            let report = rtl_dist::run_shard(&plan, index, &dir, &options, &mut progress)
                .map_err(campaign_err)?;
            options.recorder.flush();
            write_profile_out(&dir, &report.report, profile_out)?;
            let _ = write!(out, "{report}");
            if report.clean() {
                Ok(())
            } else if report.diverged() > 0 {
                Err(CliError {
                    code: 3,
                    message: format!("shard {index} found {} divergence(s)", report.diverged()),
                })
            } else if !report.complete() {
                let _ = writeln!(
                    err,
                    "shard interrupted at --limit; re-run `campaign shard run` to continue"
                );
                Ok(())
            } else {
                Err(CliError {
                    code: 3,
                    message: "shard hit runtime halts/errors (nothing verified past them)".into(),
                })
            }
        }
        "merge" => {
            let plan = ShardPlan::load(&plan_path).map_err(campaign_err)?;
            let dirs: Vec<std::path::PathBuf> = flag_value(&flags, "--shards")?
                .ok_or_else(|| usage_err("campaign shard merge needs --shards DIR1,DIR2,..."))?
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(std::path::PathBuf::from)
                .collect();
            let out_dir = CampaignDir::new(
                flag_value(&flags, "--out")?
                    .ok_or_else(|| usage_err("campaign shard merge needs --out DIR"))?,
            );
            let recorder = metrics_recorder(&flags)?;
            let report =
                rtl_dist::merge_with(&plan, &dirs, &out_dir, &recorder).map_err(campaign_err)?;
            recorder.flush();
            write_profile_out(&out_dir, &report, flag_value(&flags, "--profile-out")?)?;
            let _ = write!(out, "{report}");
            let _ = writeln!(
                err,
                "merged {} shard(s) into {}",
                dirs.len(),
                out_dir.root().display()
            );
            if report.clean() {
                Ok(())
            } else if report.diverged() > 0 {
                Err(CliError {
                    code: 3,
                    message: format!("merged campaign has {} divergence(s)", report.diverged()),
                })
            } else {
                Err(CliError {
                    code: 3,
                    message: "merged campaign hit runtime halts/errors".into(),
                })
            }
        }
        _ => unreachable!("validated above"),
    }
}

/// `--profile-out F`: folds the per-case profile sidecars of every
/// completed case into one `asim2-profile v1` document. Runs before the
/// exit-status verdict so the profile survives a diverged campaign.
fn write_profile_out(
    dir: &rtl_campaign::CampaignDir,
    report: &rtl_campaign::CampaignReport,
    path: Option<&str>,
) -> Result<(), CliError> {
    let Some(path) = path else { return Ok(()) };
    let profile = rtl_campaign::fold_profiles(dir, report).map_err(campaign_err)?;
    std::fs::write(path, profile.render())
        .map_err(|e| load_err(format!("cannot write profile to {path}: {e}")))
}

/// Prints the campaign report and (unless `--quiet`) a stderr throughput
/// line; exit 3 unless the campaign is complete and clean.
fn finish_campaign(
    report: rtl_campaign::CampaignReport,
    out: &mut dyn Write,
    err: &mut dyn Write,
    options: &rtl_campaign::RunOptions,
    quiet: bool,
) -> Result<(), CliError> {
    let _ = write!(out, "{report}");
    if !quiet {
        let secs = report.elapsed.as_secs_f64().max(1e-9);
        let _ = writeln!(
            err,
            "throughput: {} cases with {} worker(s) in {:.2}s ({:.1} cases/s)",
            report.completed(),
            options.workers,
            secs,
            f64::from(report.completed()) / secs,
        );
    }
    let reproduced = report.replay.as_ref().map_or(0, |r| r.reproduced().count());
    if report.clean() {
        Ok(())
    } else if report.diverged() > 0 || reproduced > 0 {
        let mut parts = Vec::new();
        if report.diverged() > 0 {
            parts.push(format!("found {} divergence(s)", report.diverged()));
        }
        if reproduced > 0 {
            parts.push(format!(
                "{reproduced} pre-seeded corpus divergence(s) reproduced"
            ));
        }
        Err(CliError {
            code: 3,
            message: format!("campaign {}", parts.join("; ")),
        })
    } else if !report.complete() {
        let _ = writeln!(
            err,
            "campaign interrupted at --limit; run `asim2 campaign resume` to continue"
        );
        Ok(())
    } else {
        Err(CliError {
            code: 3,
            message: "campaign hit runtime halts/errors (nothing verified past them)".into(),
        })
    }
}

/// Splits arguments into an optional positional FILE and a flag list;
/// a token following any of `value_flags` is swallowed as that flag's
/// value.
fn split_optional_file<'a>(
    rest: &[&'a str],
    value_flags: &[&str],
) -> Result<(Option<&'a str>, Vec<&'a str>), CliError> {
    let mut file = None;
    let mut flags = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        let a = rest[i];
        if a.starts_with('-') {
            flags.push(a);
            if value_flags.contains(&a) {
                i += 1;
                if let Some(v) = rest.get(i) {
                    flags.push(v);
                }
            }
        } else if file.is_none() {
            file = Some(a);
        } else {
            return Err(usage_err(format!("unexpected argument {a:?}")));
        }
        i += 1;
    }
    Ok((file, flags))
}

fn split_file<'a>(rest: &[&'a str]) -> Result<(&'a str, Vec<&'a str>), CliError> {
    let (file, flags) = split_optional_file(
        rest,
        &[
            "--cycles",
            "--engine",
            "--backend",
            "-o",
            "--format",
            "--checkpoint",
            "--checkpoint-every",
            "--resume",
        ],
    )?;
    Ok((file.ok_or_else(|| usage_err("missing FILE"))?, flags))
}

fn flag_value<'a>(flags: &[&'a str], name: &str) -> Result<Option<&'a str>, CliError> {
    match flags.iter().position(|f| *f == name) {
        None => Ok(None),
        Some(i) => flags
            .get(i + 1)
            .copied()
            .map(Some)
            .ok_or_else(|| usage_err(format!("{name} needs a value"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_with(args: &[&str], stdin: &[u8]) -> (i32, String, String) {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut input = stdin;
        let mut out = Vec::new();
        let mut err = Vec::new();
        let code = run_with_input(&args, &mut input, &mut out, &mut err);
        (
            code,
            String::from_utf8(out).unwrap(),
            String::from_utf8(err).unwrap(),
        )
    }

    fn run_ok(args: &[&str]) -> String {
        let (code, out, err) = run_with(args, b"");
        assert_eq!(code, 0, "stderr: {err}");
        out
    }

    fn run_fail(args: &[&str]) -> (i32, String) {
        let (code, _, err) = run_with(args, b"");
        assert_ne!(code, 0);
        (code, err)
    }

    fn tmp_spec(name: &str, content: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("asim-cli-test-{}-{name}", std::process::id()));
        std::fs::write(&path, content).unwrap();
        path
    }

    const COUNTER: &str = "# c\n= 3\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .";

    #[test]
    fn check_reports_component_count_and_warnings() {
        let p = tmp_spec("check", "# c\nghost x .\nA x 4 1 1 .");
        let out = run_ok(&["check", p.to_str().unwrap()]);
        assert!(out.contains("1 components read."), "{out}");
        assert!(
            out.contains("Warning: ghost declared but not defined."),
            "{out}"
        );
    }

    #[test]
    fn check_verbose_shows_order() {
        let p = tmp_spec("checkv", COUNTER);
        let out = run_ok(&["check", p.to_str().unwrap(), "-v"]);
        assert!(out.contains("evaluation order: next"), "{out}");
        assert!(out.contains("memories: count"), "{out}");
    }

    #[test]
    fn run_both_engines_agree() {
        let p = tmp_spec("run", COUNTER);
        let a = run_ok(&["run", p.to_str().unwrap(), "--engine", "interp"]);
        let b = run_ok(&["run", p.to_str().unwrap(), "--engine", "vm"]);
        assert_eq!(a, b);
        assert!(a.contains("Cycle   3 count= 3"), "{a}");
    }

    #[test]
    fn run_needs_a_cycle_count() {
        let p = tmp_spec("runnc", "# c\nx .\nA x 2 1 0 .");
        let (code, err) = run_fail(&["run", p.to_str().unwrap()]);
        assert_eq!(code, 1);
        assert!(err.contains("no cycle count"), "{err}");
    }

    #[test]
    fn runtime_errors_exit_3() {
        let p = tmp_spec(
            "runerr",
            "# c\n= 9\nc s n .\nM c 0 n 1 1\nA n 4 c 1\nS s c 1 2 .",
        );
        let (code, err) = run_fail(&["run", p.to_str().unwrap()]);
        assert_eq!(code, 3);
        assert!(err.contains("selector s"), "{err}");
    }

    #[test]
    fn compile_emits_both_backends() {
        let p = tmp_spec("compile", COUNTER);
        let rust = run_ok(&["compile", p.to_str().unwrap()]);
        assert!(rust.contains("fn main()"), "{rust}");
        let pascal = run_ok(&["compile", p.to_str().unwrap(), "--backend", "pascal"]);
        assert!(pascal.contains("program simulator"), "{pascal}");
    }

    #[test]
    fn netlist_formats() {
        let p = tmp_spec("netlist", COUNTER);
        let report = run_ok(&["netlist", p.to_str().unwrap()]);
        assert!(report.contains("bill of materials"), "{report}");
        let dot = run_ok(&["netlist", p.to_str().unwrap(), "--format", "dot"]);
        assert!(dot.starts_with("digraph"), "{dot}");
        let wiring = run_ok(&["netlist", p.to_str().unwrap(), "--format", "wiring"]);
        assert!(wiring.contains("-> count.data"), "{wiring}");
    }

    #[test]
    fn spec_prints_bundled_and_generated() {
        let out = run_ok(&["spec", "counter"]);
        assert!(out.contains("M count"), "{out}");
        let out = run_ok(&["spec", "sieve"]);
        assert!(out.contains("S rom"), "{out}");
        let out = run_ok(&["spec", "tiny"]);
        assert!(out.contains("M mem"), "{out}");
    }

    #[test]
    fn figures_render() {
        let out = run_ok(&["fig", "3.1"]);
        assert!(out.contains("cat= 27"), "{out}");
        let out = run_ok(&["fig", "4.1"]);
        assert!(out.contains("dologic"), "{out}");
        assert!(out.contains("wrapping_add(3048i64)"), "{out}");
        let out = run_ok(&["fig", "4.2"]);
        assert!(out.contains("case ljbindex of"), "{out}");
        let out = run_ok(&["fig", "4.3"]);
        assert!(out.contains("case land(opnmemory, 3) of"), "{out}");
    }

    #[test]
    fn interactive_run_prompts_and_continues() {
        let p = tmp_spec(
            "inter",
            "# c\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .",
        );
        let (code, out, err) =
            run_with(&["run", p.to_str().unwrap(), "--interactive"], b"2\n5\n0\n");
        assert_eq!(code, 0, "{err}");
        assert!(out.starts_with("Number of cycles to trace\n"), "{out}");
        assert!(
            out.contains("Cycle   2 count= 2\nContinue to cycle (0 to quit)\n"),
            "{out}"
        );
        assert!(
            out.contains("Cycle   5 count= 5\nContinue to cycle (0 to quit)\n"),
            "{out}"
        );
        assert!(!out.contains("Cycle   6"), "{out}");
    }

    #[test]
    fn run_stats_prints_the_access_table() {
        let p = tmp_spec("stats", COUNTER);
        let out = run_ok(&["run", p.to_str().unwrap(), "--stats", "--no-trace"]);
        assert!(out.contains("simulation statistics: 4 cycles"), "{out}");
        assert!(out.contains("total memory accesses: 4"), "{out}");
        let out2 = run_ok(&[
            "run",
            p.to_str().unwrap(),
            "--stats",
            "--no-trace",
            "--engine",
            "interp",
        ]);
        assert_eq!(out, out2, "both engines count identically");
    }

    #[test]
    fn vcd_dump_is_well_formed() {
        let p = tmp_spec("vcd", COUNTER);
        let out = run_ok(&["vcd", p.to_str().unwrap()]);
        assert!(out.contains("$enddefinitions $end"), "{out}");
        assert!(out.contains("$var wire"), "{out}");
        assert!(out.contains("count"), "{out}");
        assert!(out.contains("#0"), "{out}");
    }

    #[test]
    fn usage_errors() {
        let (code, err) = run_fail(&[]);
        assert_eq!(code, 1);
        assert!(err.contains("usage:"), "{err}");
        let (code, _) = run_fail(&["bogus"]);
        assert_eq!(code, 1);
        let (code, _) = run_fail(&["check", "/nonexistent/file.asim"]);
        assert_eq!(code, 2);
    }

    #[test]
    fn cosim_verifies_a_file() {
        let p = tmp_spec("cosim", COUNTER);
        let out = run_ok(&["cosim", p.to_str().unwrap(), "--cycles", "64"]);
        assert!(out.contains("64 cycles verified, no divergence"), "{out}");
    }

    #[test]
    fn cosim_runs_a_named_scenario() {
        let out = run_ok(&["cosim", "--scenario", "classic/counter", "--cycles", "32"]);
        assert!(out.contains("classic/counter"), "{out}");
        assert!(out.contains("no divergence"), "{out}");
    }

    #[test]
    fn cosim_sweeps_the_corpus() {
        // Short horizon override keeps the in-process test quick; the full
        // 1000+-cycle sweep runs in CI and tests/equivalence.rs.
        let out = run_ok(&["cosim", "--cycles", "16", "--engines", "interp,vm,vm-noopt"]);
        assert!(out.contains("cosim corpus sweep"), "{out}");
        assert!(out.contains("stack/sieve"), "{out}");
        assert!(out.contains("0 diverged"), "{out}");
    }

    #[test]
    fn cosim_rejects_bad_engine_lists() {
        let p = tmp_spec("cosim-bad", COUNTER);
        let (code, err) = run_fail(&["cosim", p.to_str().unwrap(), "--engines", "interp"]);
        assert_eq!(code, 1);
        assert!(err.contains("at least two engines"), "{err}");
        let (code, err) = run_fail(&["cosim", p.to_str().unwrap(), "--engines", "interp,warp"]);
        assert_eq!(code, 1);
        assert!(err.contains("unknown engine"), "{err}");
    }

    #[test]
    fn cosim_halt_is_a_runtime_error_like_run() {
        // A spec whose engines unanimously crash verifies nothing past the
        // crash; exit 3 mirrors `asim2 run` on the same design.
        let p = tmp_spec(
            "cosim-halt",
            "# bad\nc s n .\nM c 0 n 1 1\nA n 4 c 1\nS s c 1 2 .",
        );
        let (code, out, err) = run_with(&["cosim", p.to_str().unwrap(), "--cycles", "50"], b"");
        assert_eq!(code, 3, "{err}");
        assert!(out.contains("2 cycles verified"), "{out}");
        assert!(err.contains("unanimous runtime halt"), "{err}");
        assert!(err.contains("selector"), "{err}");
    }

    #[test]
    fn cosim_corpus_override_beyond_registered_horizons() {
        // Regression: --cycles above a scenario's registered horizon used
        // to exhaust the io scenario's stimulus and fail the sweep.
        let out = run_ok(&["cosim", "--cycles", "1100", "--compare-every", "64"]);
        assert!(out.contains("19/19 agreed"), "{out}");
        let io_line = out.lines().find(|l| l.contains("io/accumulator")).unwrap();
        assert!(io_line.contains("1100 cycles  ok"), "{io_line}");
    }

    #[test]
    fn cosim_compare_modes_report_the_same_first_divergent_cycle() {
        // The vm-fault lane corrupts its trace bytes *and* its observed
        // state from cycle 40 on, so the trace lens and the VCD waveform
        // lens must pinpoint the identical first divergent cycle.
        for compare in ["trace", "vcd", "trace,vcd,cells", "digest", "all"] {
            let (code, out, err) = run_with(
                &[
                    "cosim",
                    "--scenario",
                    "classic/counter",
                    "--cycles",
                    "64",
                    "--engines",
                    "interp,vm-fault",
                    "--compare",
                    compare,
                ],
                b"",
            );
            assert_eq!(code, 3, "{compare}: {err}");
            assert!(out.contains("at cycle 40"), "{compare}: {out}");
        }
        let (code, err) = run_fail(&[
            "cosim",
            "--scenario",
            "classic/counter",
            "--compare",
            "warp",
        ]);
        assert_eq!(code, 1);
        assert!(err.contains("unknown comparator"), "{err}");
    }

    #[test]
    fn cosim_checkpoint_resume_is_byte_identical() {
        // Stop a lockstep case mid-run (phase 1 covers only part of the
        // horizon, leaving its checkpoint file behind, exactly like a
        // kill), then resume to the full horizon in a second invocation:
        // stdout must be byte-identical to one uninterrupted run.
        let ck =
            std::env::temp_dir().join(format!("asim-cli-lockstep-{}.ckpt", std::process::id()));
        let ck = ck.to_str().unwrap();
        let scenario = ["--scenario", "classic/counter"];
        let out = run_ok(&[
            "cosim",
            scenario[0],
            scenario[1],
            "--cycles",
            "300",
            "--checkpoint",
            ck,
            "--checkpoint-every",
            "128",
        ]);
        assert!(out.contains("300 cycles verified"), "{out}");
        let resumed = run_ok(&[
            "cosim",
            scenario[0],
            scenario[1],
            "--cycles",
            "1024",
            "--resume",
            ck,
        ]);
        let fresh = run_ok(&["cosim", scenario[0], scenario[1], "--cycles", "1024"]);
        assert_eq!(resumed, fresh, "resumed outcome is byte-identical");
        let _ = std::fs::remove_file(ck);
    }

    #[test]
    fn cosim_dump_divergence_writes_side_by_side_vcds() {
        let dir = std::env::temp_dir().join(format!("asim-cli-wavedump-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (code, out, err) = run_with(
            &[
                "cosim",
                "--scenario",
                "classic/counter",
                "--cycles",
                "64",
                "--engines",
                "interp,vm-fault",
                "--dump-divergence",
                dir.to_str().unwrap(),
            ],
            b"",
        );
        assert_eq!(code, 3, "{err}");
        assert!(out.contains("waveform window (cycles 9..41"), "{out}");
        for lane in ["interp", "vm-fault"] {
            let doc = std::fs::read_to_string(dir.join(format!("{lane}.vcd"))).unwrap();
            assert!(doc.contains("$enddefinitions $end"), "{lane}: {doc}");
        }
        assert_ne!(
            std::fs::read(dir.join("interp.vcd")).unwrap(),
            std::fs::read(dir.join("vm-fault.vcd")).unwrap(),
            "the windows show the disagreement"
        );
        // The flag needs a single scenario, like checkpointing.
        let (code, err) = run_fail(&["cosim", "--dump-divergence", "/tmp/x"]);
        assert_eq!(code, 1);
        assert!(err.contains("single scenario"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cosim_digest_export_and_check_round_trip() {
        let path = std::env::temp_dir().join(format!("asim-cli-digests-{}", std::process::id()));
        let scenario = ["--scenario", "classic/counter", "--cycles", "64"];
        let out = run_ok(&[
            "cosim",
            scenario[0],
            scenario[1],
            scenario[2],
            scenario[3],
            "--export-digests",
            path.to_str().unwrap(),
        ]);
        assert!(out.contains("64 cycles verified"), "{out}");

        // Another "machine" replays the digest stream and agrees…
        let out = run_ok(&[
            "cosim",
            scenario[0],
            scenario[1],
            scenario[2],
            scenario[3],
            "--check-digests",
            path.to_str().unwrap(),
        ]);
        assert!(out.contains("no divergence"), "{out}");

        // …while a corrupted lane is pinned to its trigger cycle by the
        // remote digests alone.
        let (code, out, err) = run_with(
            &[
                "cosim",
                scenario[0],
                scenario[1],
                scenario[2],
                scenario[3],
                "--engines",
                "interp,vm-fault",
                "--compare",
                "digest",
                "--check-digests",
                path.to_str().unwrap(),
            ],
            b"",
        );
        assert_eq!(code, 3, "{err}");
        assert!(out.contains("at cycle 40"), "{out}");
        assert!(out.contains("digest"), "{out}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cosim_checkpoint_flags_are_validated() {
        let (code, err) = run_fail(&["cosim", "--checkpoint", "/tmp/x.ckpt"]);
        assert_eq!(code, 1);
        assert!(err.contains("single scenario"), "{err}");
        let (code, err) = run_fail(&[
            "cosim",
            "--scenario",
            "classic/counter",
            "--checkpoint-every",
            "64",
        ]);
        assert_eq!(code, 1);
        assert!(err.contains("--checkpoint FILE"), "{err}");
    }

    #[test]
    fn fuzz_reports_a_clean_campaign() {
        let out = run_ok(&["fuzz", "--seed", "1", "--cases", "5", "--cycles", "16"]);
        assert!(out.contains("fuzz campaign: 5 cases from seed 1"), "{out}");
        assert!(out.contains("summary: 5/5 agreed, 0 diverged"), "{out}");
    }

    #[test]
    fn fuzz_is_deterministic() {
        let args = ["fuzz", "--seed", "9", "--cases", "4", "--cycles", "12"];
        assert_eq!(run_ok(&args), run_ok(&args));
    }

    fn campaign_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("asim-cli-campaign-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn campaign_run_is_deterministic_across_worker_counts() {
        let quick = |dir: &str, workers: &str| {
            let d = campaign_dir(dir);
            let out = run_ok(&[
                "campaign",
                "run",
                "--dir",
                d.to_str().unwrap(),
                "--cases",
                "6",
                "--seed",
                "3",
                "--cycles",
                "16",
                "--size",
                "8",
                "--workers",
                workers,
            ]);
            let _ = std::fs::remove_dir_all(&d);
            out
        };
        let single = quick("det1", "1");
        assert!(
            single.contains("summary: 6/6 agreed, 0 diverged"),
            "{single}"
        );
        let parallel = quick("det4", "4");
        assert_eq!(
            single, parallel,
            "stdout report is worker-count independent"
        );
    }

    #[test]
    fn campaign_case_checkpoint_matches_a_plain_run() {
        // --case-checkpoint must not change outcomes — it only adds the
        // ability to resume a killed case mid-run — and it cleans its
        // .ckpt files up once each case record is durable.
        let run_campaign = |name: &str, extra: &[&str]| {
            let d = campaign_dir(name);
            let mut args = vec![
                "campaign",
                "run",
                "--dir",
                d.to_str().unwrap(),
                "--cases",
                "4",
                "--seed",
                "5",
                "--cycles",
                "16",
                "--size",
                "8",
            ];
            args.extend_from_slice(extra);
            let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            let mut out = Vec::new();
            let mut err = Vec::new();
            let code = run_with_input(&args, &mut &b""[..], &mut out, &mut err);
            assert_eq!(code, 0, "{}", String::from_utf8_lossy(&err));
            (d, String::from_utf8(out).unwrap())
        };
        let (plain_dir, plain) = run_campaign("ckpt-plain", &[]);
        let (ckpt_dir, checkpointed) = run_campaign("ckpt-on", &["--case-checkpoint"]);
        assert_eq!(plain, checkpointed, "case checkpointing is outcome-neutral");
        let leftovers = std::fs::read_dir(ckpt_dir.join("cases"))
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "ckpt")
            })
            .count();
        assert_eq!(leftovers, 0, "completed cases leave no checkpoints");
        let _ = std::fs::remove_dir_all(&plain_dir);
        let _ = std::fs::remove_dir_all(&ckpt_dir);
    }

    #[test]
    fn campaign_interrupt_then_resume_completes() {
        let d = campaign_dir("resume");
        let dir = d.to_str().unwrap();
        let (code, out, err) = run_with(
            &[
                "campaign",
                "run",
                "--dir",
                dir,
                "--cases",
                "5",
                "--cycles",
                "16",
                "--size",
                "8",
                "--workers",
                "2",
                "--limit",
                "2",
            ],
            b"",
        );
        assert_eq!(code, 0, "{err}");
        assert!(out.contains("(2/5 cases done"), "{out}");
        let resumed = run_ok(&["campaign", "resume", "--dir", dir, "--workers", "3"]);
        assert!(resumed.contains("summary: 5/5 agreed"), "{resumed}");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn campaign_flight_dumps_sidecars_for_divergences() {
        let d = campaign_dir("flight");
        let dir = d.to_str().unwrap();
        let (code, out, err) = run_with(
            &[
                "campaign",
                "run",
                "--dir",
                dir,
                "--cases",
                "4",
                "--seed",
                "1",
                "--cycles",
                "48",
                "--size",
                "10",
                "--engines",
                "interp,vm-fault",
                "--flight",
                "--quiet",
            ],
            b"",
        );
        // The fault lane diverges, so the run exits 3 — with flight
        // sidecars published next to the diverging case records.
        assert_eq!(code, 3, "{out}\n{err}");
        let sidecars: Vec<_> = std::fs::read_dir(d.join("cases"))
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.to_str().unwrap().ends_with(".flight.jsonl"))
            .collect();
        assert!(!sidecars.is_empty(), "diverging cases dump flight logs");

        let flight = run_ok(&["metrics", "flight", sidecars[0].to_str().unwrap()]);
        assert!(flight.contains("flight recorder:"), "{flight}");
        assert!(flight.contains("trigger:"), "{flight}");
        assert!(flight.contains("diverged at cycle"), "{flight}");

        // The recorder cannot be combined with per-case checkpointing.
        let d2 = campaign_dir("flight-conflict");
        let (code, err) = run_fail(&[
            "campaign",
            "run",
            "--dir",
            d2.to_str().unwrap(),
            "--cases",
            "1",
            "--flight",
            "--case-checkpoint",
        ]);
        assert_eq!(code, 1, "{err}");
        assert!(err.contains("flight recorder"), "{err}");
        let _ = std::fs::remove_dir_all(&d);
        let _ = std::fs::remove_dir_all(&d2);
    }

    #[test]
    fn profile_ranks_components_and_is_deterministic() {
        let args = ["profile", "--scenario", "classic/counter", "--cycles", "64"];
        let out = run_ok(&args);
        assert!(out.contains("profile: classic/counter"), "{out}");
        assert!(out.contains("64 cycle(s)"), "{out}");
        assert!(out.contains("count"), "{out}");
        assert_eq!(out, run_ok(&args), "profile output is run-to-run stable");
        let top = run_ok(&["profile", "--scenario", "classic/counter", "--top", "1"]);
        assert!(top.contains("more component(s)"), "{top}");
    }

    #[test]
    fn profile_json_is_a_valid_versioned_document() {
        let out = run_ok(&[
            "profile",
            "--scenario",
            "classic/counter",
            "--cycles",
            "32",
            "--format",
            "json",
            "--engine",
            "vm",
        ]);
        let profile = rtl_core::Profile::parse(&out).unwrap();
        assert!(profile.total_events() > 0, "{out}");
        assert_eq!(out, profile.render(), "render/parse round-trips");
    }

    #[test]
    fn profile_usage_errors() {
        assert_eq!(run_fail(&["profile"]).0, 1);
        let (code, err) = run_fail(&["profile", "--scenario", "classic/warp"]);
        assert_eq!(code, 1);
        assert!(err.contains("unknown scenario"), "{err}");
        let (code, err) = run_fail(&[
            "profile",
            "--scenario",
            "classic/counter",
            "--format",
            "xml",
        ]);
        assert_eq!(code, 1);
        assert!(err.contains("unknown profile format"), "{err}");
    }

    #[test]
    fn campaign_profile_out_is_worker_and_resume_independent() {
        let base = [
            "--cases", "4", "--seed", "11", "--cycles", "16", "--size", "8",
        ];
        let run_profiled = |name: &str, workers: &str| {
            let d = campaign_dir(name);
            let prof = d.with_extension("profile.json");
            let mut args = vec!["campaign", "run", "--dir", d.to_str().unwrap()];
            args.extend_from_slice(&base);
            let prof_str = prof.to_str().unwrap().to_string();
            args.extend_from_slice(&["--workers", workers, "--profile-out", &prof_str]);
            run_ok(&args);
            let doc = std::fs::read_to_string(&prof).unwrap();
            let _ = std::fs::remove_dir_all(&d);
            let _ = std::fs::remove_file(&prof);
            doc
        };
        let single = run_profiled("prof1", "1");
        let parallel = run_profiled("prof4", "4");
        assert_eq!(single, parallel, "profile is worker-count independent");
        assert!(
            rtl_core::Profile::parse(&single).unwrap().total_events() > 0,
            "{single}"
        );

        // Interrupt at --limit, then resume with a different worker
        // count: the folded profile must still be byte-identical.
        let d = campaign_dir("prof-resume");
        let prof = d.with_extension("profile.json");
        let prof_str = prof.to_str().unwrap().to_string();
        let mut args = vec!["campaign", "run", "--dir", d.to_str().unwrap()];
        args.extend_from_slice(&base);
        // The interrupted leg profiles too — a case executed without the
        // tap has no sidecar, and the final fold would refuse it.
        args.extend_from_slice(&["--workers", "2", "--limit", "2", "--profile-out", &prof_str]);
        run_ok(&args);
        run_ok(&[
            "campaign",
            "resume",
            "--dir",
            d.to_str().unwrap(),
            "--workers",
            "3",
            "--profile-out",
            &prof_str,
        ]);
        let resumed = std::fs::read_to_string(&prof).unwrap();
        assert_eq!(single, resumed, "profile survives kill+resume unchanged");
        let _ = std::fs::remove_dir_all(&d);
        let _ = std::fs::remove_file(&prof);
    }

    #[test]
    fn campaign_profile_out_rejects_case_checkpoint() {
        let d = campaign_dir("prof-ckpt");
        let (code, err) = run_fail(&[
            "campaign",
            "run",
            "--dir",
            d.to_str().unwrap(),
            "--profile-out",
            "/tmp/never-written.json",
            "--case-checkpoint",
        ]);
        assert_eq!(code, 1);
        assert!(err.contains("per-case checkpointing"), "{err}");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn trace_export_golden_is_valid_monotonic_and_pair_matched() {
        // Golden contract for the Chrome trace export: the output parses
        // as JSON, its traceEvents carry non-decreasing ts, and every
        // "B" has a matching "E" per (name, tid).
        let log = std::env::temp_dir().join(format!("asim-cli-trace-{}.jsonl", std::process::id()));
        let recorder = rtl_obs::Recorder::to_file(&log).unwrap();
        {
            let _outer = recorder.span("campaign", "run");
            for _ in 0..3 {
                drop(recorder.span("campaign", "case"));
            }
            recorder.count("campaign", "cases_executed", 3);
            recorder.mark("campaign", "done", Some("all agreed"));
        }
        recorder.flush();
        let out = run_ok(&["metrics", "trace-export", log.to_str().unwrap()]);
        let doc = rtl_campaign::json::Json::parse(&out).unwrap();
        let events = doc.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        assert!(events.len() >= 9, "4 span pairs + counter + mark: {out}");
        let mut last_ts = 0;
        let mut open: std::collections::HashMap<(String, u64), u64> =
            std::collections::HashMap::new();
        for event in events {
            let ts = event.get("ts").and_then(|t| t.as_u64()).unwrap();
            assert!(ts >= last_ts, "ts must be non-decreasing: {out}");
            last_ts = ts;
            let ph = event.get("ph").and_then(|p| p.as_str()).unwrap();
            if matches!(ph, "B" | "E") {
                let key = (
                    event
                        .get("name")
                        .and_then(|n| n.as_str())
                        .unwrap()
                        .to_string(),
                    event.get("tid").and_then(|t| t.as_u64()).unwrap(),
                );
                let depth = open.entry(key.clone()).or_insert(0);
                if ph == "B" {
                    *depth += 1;
                } else {
                    assert!(*depth > 0, "E without B for {key:?}: {out}");
                    *depth -= 1;
                }
            }
        }
        assert!(open.values().all(|&d| d == 0), "unmatched B: {out}");
        // Deterministic: a second export is byte-identical.
        assert_eq!(
            out,
            run_ok(&["metrics", "trace-export", log.to_str().unwrap()])
        );
        let _ = std::fs::remove_file(&log);
    }

    #[test]
    fn campaign_fault_pipeline_finds_shrinks_and_replays() {
        let d = campaign_dir("fault");
        let dir = d.to_str().unwrap();
        // The vm-fault lane corrupts trace bytes from cycle 40: every case
        // diverges, is shrunk, and lands in the corpus.
        let (code, out, err) = run_with(
            &[
                "campaign",
                "run",
                "--dir",
                dir,
                "--cases",
                "2",
                "--seed",
                "3",
                "--cycles",
                "48",
                "--size",
                "8",
                "--engines",
                "interp,vm-fault",
                "--workers",
                "2",
            ],
            b"",
        );
        assert_eq!(code, 3, "{out}\n{err}");
        assert!(
            out.contains("DIVERGED at cycle 40 (trace) -> corpus seed-"),
            "{out}"
        );
        assert!(err.contains("campaign found 2 divergence(s)"), "{err}");
        assert!(
            d.join("corpus").join("seed-3.asim").is_file(),
            "corpus archived"
        );

        // Replaying the archived scenarios reproduces the divergence…
        let (code, out, err) = run_with(&["campaign", "replay", "--dir", dir], b"");
        assert_eq!(code, 3, "{out}\n{err}");
        assert!(out.contains("REPRODUCED at cycle 40 (trace)"), "{out}");

        // A bare `shrink --seed` probes the *campaign's* configuration
        // (engines interp,vm-fault from the manifest), not generic
        // defaults — so it reproduces and re-archives the divergence.
        let (code, out, err) = run_with(&["campaign", "shrink", "--dir", dir, "--seed", "3"], b"");
        assert_eq!(code, 3, "{out}\n{err}");
        assert!(out.contains("-> corpus seed-3"), "{out}");

        // …and is clean once the healthy lane replaces the faulty one.
        let (code, out, err) = run_with(
            &["campaign", "replay", "--dir", dir, "--engines", "interp,vm"],
            b"",
        );
        assert_eq!(code, 0, "{out}\n{err}");
        assert!(out.contains("bug no longer reproduces"), "{out}");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn campaign_shard_pipeline_is_bit_identical_to_a_single_run() {
        let base = campaign_dir("shard");
        std::fs::create_dir_all(&base).unwrap();
        let plan = base.join("plan.json");
        let plan = plan.to_str().unwrap();

        // The single-machine baseline.
        let single = base.join("single");
        let baseline = run_ok(&[
            "campaign",
            "run",
            "--dir",
            single.to_str().unwrap(),
            "--cases",
            "9",
            "--seed",
            "2",
            "--cycles",
            "16",
            "--size",
            "8",
        ]);

        // Plan + run each shard (self-contained directories) + merge.
        let out = run_ok(&[
            "campaign", "shard", "plan", "--plan", plan, "--cases", "9", "--seed", "2", "--cycles",
            "16", "--size", "8", "--shards", "3",
        ]);
        assert!(out.contains("3 shard(s)"), "{out}");
        assert!(out.contains("shard 2: cases 6..9"), "{out}");
        let mut shard_dirs = Vec::new();
        for i in 0..3 {
            let dir = base.join(format!("shard-{i}"));
            let out = run_ok(&[
                "campaign",
                "shard",
                "run",
                "--plan",
                plan,
                "--shard",
                &i.to_string(),
                "--dir",
                dir.to_str().unwrap(),
            ]);
            assert!(out.contains("3/3 agreed"), "{out}");
            shard_dirs.push(dir);
        }
        let merged = base.join("merged");
        let shards_arg = shard_dirs
            .iter()
            .map(|d| d.to_str().unwrap().to_string())
            .collect::<Vec<_>>()
            .join(",");
        let merged_out = run_ok(&[
            "campaign",
            "shard",
            "merge",
            "--plan",
            plan,
            "--out",
            merged.to_str().unwrap(),
            "--shards",
            &shards_arg,
        ]);
        assert_eq!(
            merged_out, baseline,
            "merge reports exactly what one machine would have"
        );
        assert_eq!(
            std::fs::read(single.join("campaign.json")).unwrap(),
            std::fs::read(merged.join("campaign.json")).unwrap(),
            "manifests are byte-identical"
        );
        for i in 0..9 {
            let name = format!("case-{i:06}.json");
            assert_eq!(
                std::fs::read(single.join("cases").join(&name)).unwrap(),
                std::fs::read(merged.join("cases").join(&name)).unwrap(),
                "{name} is byte-identical"
            );
        }

        // The merged directory is a first-class campaign: resume is a
        // clean no-op over it.
        let resumed = run_ok(&["campaign", "resume", "--dir", merged.to_str().unwrap()]);
        assert!(resumed.contains("summary: 9/9 agreed"), "{resumed}");
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn campaign_shard_usage_errors() {
        let (code, err) = run_fail(&["campaign", "shard"]);
        assert_eq!(code, 1);
        assert!(err.contains("plan|run|merge"), "{err}");
        let (code, err) = run_fail(&["campaign", "shard", "plan", "--cases", "10"]);
        assert_eq!(code, 1);
        assert!(err.contains("--shards"), "{err}");
        let (code, err) = run_fail(&["campaign", "shard", "run", "--plan", "/nonexistent.json"]);
        assert_eq!(code, 1);
        assert!(err.contains("--shard"), "{err}");
        // Flags outside the subcommand's set are rejected.
        let (code, err) = run_fail(&["campaign", "shard", "merge", "--cases", "5"]);
        assert_eq!(code, 1);
        assert!(err.contains("does not take --cases"), "{err}");
        // A missing plan file is a usage-level failure, not a crash.
        let (code, err) = run_fail(&[
            "campaign",
            "shard",
            "run",
            "--plan",
            "/nonexistent.json",
            "--shard",
            "0",
            "--dir",
            "/tmp/x",
        ]);
        assert_eq!(code, 1, "{err}");
        assert!(err.contains("no shard plan"), "{err}");
    }

    #[test]
    fn campaign_shrink_without_divergence_is_a_no_op() {
        let d = campaign_dir("shrink");
        let out = run_ok(&[
            "campaign",
            "shrink",
            "--dir",
            d.to_str().unwrap(),
            "--seed",
            "7",
            "--cycles",
            "16",
            "--size",
            "8",
        ]);
        assert!(out.contains("no divergence"), "{out}");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn campaign_usage_errors() {
        let (code, err) = run_fail(&["campaign"]);
        assert_eq!(code, 1);
        assert!(err.contains("run|resume|replay|shrink"), "{err}");
        let (code, err) = run_fail(&["campaign", "run"]);
        assert_eq!(code, 1);
        assert!(err.contains("--dir"), "{err}");
        let d = campaign_dir("usage");
        let (code, err) = run_fail(&[
            "campaign",
            "run",
            "--dir",
            d.to_str().unwrap(),
            "--engines",
            "interp,warp",
        ]);
        assert_eq!(code, 1);
        assert!(err.contains("unknown engine"), "{err}");
        let (code, err) = run_fail(&["campaign", "resume", "--dir", d.to_str().unwrap()]);
        assert_eq!(code, 1, "{err}");
        assert!(err.contains("holds no campaign"), "{err}");
        // Flags outside a subcommand's own set are rejected, not swallowed.
        let (code, err) = run_fail(&[
            "campaign",
            "resume",
            "--dir",
            d.to_str().unwrap(),
            "--cases",
            "200",
        ]);
        assert_eq!(code, 1, "{err}");
        assert!(err.contains("does not take --cases"), "{err}");
        let _ = std::fs::remove_dir_all(&d);
    }

    // A spec whose arm 2 is provably dead (eq output is one bit wide).
    const DEAD_ARM_SPEC: &str = "# demo\nc bit x .\nM c 0 c 1 2\nA bit 12 c 1\nS x bit 5 6 7 .\n";

    #[test]
    fn lint_clean_spec_exits_zero() {
        let p = tmp_spec("lintclean", COUNTER);
        let out = run_ok(&["lint", p.to_str().unwrap()]);
        assert!(
            out.contains("1 file(s) linted: 0 error(s), 0 warning(s)"),
            "{out}"
        );
    }

    #[test]
    fn lint_warning_passes_unless_denied() {
        let p = tmp_spec("lintwarn", DEAD_ARM_SPEC);
        let out = run_ok(&["lint", p.to_str().unwrap()]);
        assert!(out.contains("warning[dead-arm]"), "{out}");
        assert!(
            out.contains("1 file(s) linted: 0 error(s), 1 warning(s)"),
            "{out}"
        );
        let (code, err) = run_fail(&["lint", p.to_str().unwrap(), "--deny", "warnings"]);
        assert_eq!(code, 3, "{err}");
        assert!(err.contains("lint denied 1 finding(s)"), "{err}");
        // A waived code no longer denies.
        let out = run_ok(&[
            "lint",
            p.to_str().unwrap(),
            "--deny",
            "warnings",
            "--allow",
            "dead-arm",
        ]);
        assert!(out.contains("0 warning(s)"), "{out}");
    }

    #[test]
    fn lint_errors_always_deny() {
        let p = tmp_spec("linterr", "# t\nc .\nM c 0 ghost 1 1 .\n");
        let (code, err) = run_fail(&["lint", p.to_str().unwrap()]);
        assert_eq!(code, 3, "{err}");
    }

    #[test]
    fn lint_json_is_valid_and_deterministic() {
        let p = tmp_spec("lintjson", DEAD_ARM_SPEC);
        let a = run_ok(&["lint", p.to_str().unwrap(), "--format", "json"]);
        let b = run_ok(&["lint", p.to_str().unwrap(), "--format", "json"]);
        assert_eq!(a, b, "json output must be byte-identical across runs");
        let doc = rtl_campaign::json::Json::parse(&a).unwrap();
        assert_eq!(
            doc.get("format").and_then(|f| f.as_str()),
            Some(rtl_lint::JSON_FORMAT)
        );
        let files = doc.get("files").and_then(|f| f.as_arr()).unwrap();
        assert_eq!(files.len(), 1);
        let codes: Vec<&str> = files[0]
            .get("diagnostics")
            .and_then(|d| d.as_arr())
            .unwrap()
            .iter()
            .filter_map(|d| d.get("code").and_then(|c| c.as_str()))
            .collect();
        assert_eq!(codes, ["dead-arm"]);
    }

    #[test]
    fn lint_codes_lists_the_registry() {
        let out = run_ok(&["lint", "--codes"]);
        let listed: Vec<&str> = out.lines().collect();
        assert_eq!(listed, rtl_lint::all_codes());
    }

    #[test]
    fn lint_usage_errors() {
        let (code, err) = run_fail(&["lint"]);
        assert_eq!(code, 1);
        assert!(err.contains("at least one FILE"), "{err}");
        let p = tmp_spec("lintusage", COUNTER);
        let (code, err) = run_fail(&["lint", p.to_str().unwrap(), "--allow", "bogus-code"]);
        assert_eq!(code, 1);
        assert!(err.contains("unknown lint code"), "{err}");
        let (code, err) = run_fail(&["lint", p.to_str().unwrap(), "--deny", "everything"]);
        assert_eq!(code, 1);
        assert!(err.contains("--deny takes"), "{err}");
        let (code, err) = run_fail(&["lint", "/nonexistent/spec.asim"]);
        assert_eq!(code, 2, "{err}");
    }
}
