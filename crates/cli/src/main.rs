//! The `asim` binary: a thin wrapper over [`asim_cli::run`].

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let stderr = std::io::stderr();
    let code = asim_cli::run(&args, &mut stdout.lock(), &mut stderr.lock());
    std::process::exit(code);
}
