//! `asim2 fleet serve|work` — the live campaign control plane.
//!
//! `serve` owns one campaign directory and hands out leases over TCP;
//! `work` connects, executes leases through the standard campaign
//! runner, and uploads every artifact byte-verbatim. The controller's
//! finished directory — and its stdout report — are bit-identical to a
//! single-machine `asim2 campaign run` of the same configuration.

use super::{
    campaign_err, flag_value, load_err, metrics_recorder, parse_u64_flag, split_optional_file,
    usage_err, write_profile_out, CliError, ProgressReporter,
};
use rtl_campaign::json::Json;
use rtl_campaign::{CampaignConfig, CampaignDir, CaseRecord, Progress};
use rtl_fleet::{ControllerOptions, FleetError, FleetProgress, StatusClient, WorkerOptions};
use rtl_obs::Histogram;
use std::io::Write;
use std::time::Duration;

pub(crate) fn fleet_cmd(
    rest: &[&str],
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> Result<(), CliError> {
    let sub = rest
        .first()
        .copied()
        .ok_or_else(|| usage_err("fleet needs a subcommand (serve|work|status)"))?;
    let (extra, flags) = split_optional_file(
        &rest[1..],
        &[
            "--dir",
            "--bind",
            "--port-file",
            "--token",
            "--cases",
            "--seed",
            "--engines",
            "--cycles",
            "--size",
            "--compare-every",
            "--lease",
            "--lease-deadline",
            "--limit",
            "--metrics-out",
            "--profile-out",
            "--connect",
            "--name",
            "--workers",
            "--scratch",
            "--fingerprint",
            "--abandon-after",
            "--format",
        ],
    )?;
    if let Some(x) = extra {
        return Err(usage_err(format!("unexpected argument {x:?}")));
    }
    let allowed: &[&str] = match sub {
        "serve" => &[
            "--dir",
            "--bind",
            "--port-file",
            "--token",
            "--cases",
            "--seed",
            "--engines",
            "--cycles",
            "--size",
            "--compare-every",
            "--lint-oracle",
            "--lease",
            "--lease-deadline",
            "--limit",
            "--flight",
            "--metrics-out",
            "--profile-out",
            "--progress",
            "--quiet",
        ],
        "work" => &[
            "--connect",
            "--token",
            "--name",
            "--workers",
            "--scratch",
            "--fingerprint",
            "--abandon-after",
            "--quiet",
        ],
        "status" => &["--connect", "--token", "--watch", "--format"],
        other => return Err(usage_err(format!("unknown fleet subcommand {other:?}"))),
    };
    if let Some(bad) = flags.iter().find(|f| {
        let name = if f.starts_with("--progress=") {
            "--progress"
        } else if f.starts_with("--watch=") {
            "--watch"
        } else {
            **f
        };
        f.starts_with('-') && !allowed.contains(&name)
    }) {
        return Err(usage_err(format!(
            "fleet {sub} does not take {bad} (accepted: {})",
            allowed.join(" ")
        )));
    }
    let token = flag_value(&flags, "--token")?
        .ok_or_else(|| usage_err(format!("fleet {sub} needs --token T")))?
        .to_string();

    match sub {
        "serve" => serve(&flags, token, out, err),
        "work" => work(&flags, token, out, err),
        "status" => status(&flags, token, out, err),
        _ => unreachable!("validated above"),
    }
}

/// Maps a fleet-layer failure onto the exit-code conventions: campaign
/// problems keep their campaign mapping, every protocol refusal and
/// transport failure is a load-class error (2), and a deliberately
/// abandoned connection is a runtime error (3).
fn fleet_err(e: FleetError) -> CliError {
    match e {
        FleetError::Campaign(c) => campaign_err(c),
        FleetError::Abandoned => CliError {
            code: 3,
            message: format!("fleet: {e}"),
        },
        other => CliError {
            code: 2,
            message: format!("fleet: {other}"),
        },
    }
}

/// Fleet-side progress: the shared campaign reporter for accepted
/// records, plus worker lifecycle lines — all on stderr, so stdout stays
/// the deterministic report.
struct FleetReporter<'a> {
    inner: ProgressReporter<'a>,
    workers_seen: u32,
    /// Heartbeat-age and lease-duration histograms, captured when the
    /// campaign drains (both in microseconds).
    histograms: Option<(Histogram, Histogram)>,
}

impl FleetProgress for FleetReporter<'_> {
    fn record_accepted(&mut self, _worker: &str, record: &CaseRecord, done: u32, total: u32) {
        self.inner.case_done(record, done, total);
    }

    fn fleet_summary(&mut self, heartbeats: &Histogram, leases: &Histogram) {
        self.histograms = Some((heartbeats.clone(), leases.clone()));
    }

    fn worker_joined(&mut self, worker: &str) {
        self.workers_seen += 1;
        if self.inner.enabled {
            let _ = writeln!(self.inner.err, "worker {worker} joined");
        }
    }

    fn worker_left(&mut self, worker: &str) {
        if self.inner.enabled {
            let _ = writeln!(self.inner.err, "worker {worker} left");
        }
    }

    fn lease_expired(&mut self, worker: &str, start: u32, end: u32) {
        if self.inner.enabled {
            let _ = writeln!(
                self.inner.err,
                "lease {start}..{end} expired (worker {worker}) — cases back in the pool"
            );
        }
    }
}

fn serve(
    flags: &[&str],
    token: String,
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> Result<(), CliError> {
    let dir = CampaignDir::new(
        flag_value(flags, "--dir")?.ok_or_else(|| usage_err("fleet serve needs --dir DIR"))?,
    );
    let mut config = CampaignConfig::default();
    if let Some(list) = flag_value(flags, "--engines")? {
        config.engines = rtl_campaign::campaign_registry(None)
            .parse_list(list)
            .map_err(usage_err)?;
    }
    if let Some(seed) = parse_u64_flag(flags, "--seed")? {
        config.seed = seed;
    }
    if let Some(cases) = parse_u64_flag(flags, "--cases")? {
        config.cases = u32::try_from(cases).map_err(|_| usage_err("--cases is too large"))?;
    }
    if let Some(cycles) = parse_u64_flag(flags, "--cycles")? {
        config.generator.cycles = cycles;
    }
    if let Some(size) = parse_u64_flag(flags, "--size")? {
        config.generator.size = size as usize;
    }
    if let Some(stride) = parse_u64_flag(flags, "--compare-every")? {
        config.compare_every = stride.max(1);
    }
    config.lint_oracle = flags.contains(&"--lint-oracle");

    let mut options = ControllerOptions {
        token,
        ..ControllerOptions::default()
    };
    if let Some(lease) = parse_u64_flag(flags, "--lease")? {
        if lease == 0 {
            return Err(usage_err("--lease needs a positive case count"));
        }
        options.lease = u32::try_from(lease).map_err(|_| usage_err("--lease is too large"))?;
    }
    if let Some(ms) = parse_u64_flag(flags, "--lease-deadline")? {
        if ms == 0 {
            return Err(usage_err("--lease-deadline needs positive milliseconds"));
        }
        options.deadline = Duration::from_millis(ms);
    }
    if let Some(limit) = parse_u64_flag(flags, "--limit")? {
        options.limit = Some(u32::try_from(limit).map_err(|_| usage_err("--limit is too large"))?);
    }
    options.recorder = metrics_recorder(flags)?;
    let profile_out = flag_value(flags, "--profile-out")?;
    options.profile = profile_out.is_some();
    options.flight = flags.contains(&"--flight");

    let bind = flag_value(flags, "--bind")?.unwrap_or("127.0.0.1:0");
    let controller = rtl_fleet::Controller::bind(bind)
        .map_err(|e| load_err(format!("cannot bind {bind}: {e}")))?;
    let addr = controller
        .local_addr()
        .map_err(|e| load_err(format!("cannot read bound address: {e}")))?;
    // `--port-file` publishes the OS-assigned port for scripts (written
    // only once the socket accepts connections, so a reader can connect
    // immediately).
    if let Some(path) = flag_value(flags, "--port-file")? {
        std::fs::write(path, format!("{}\n", addr.port()))
            .map_err(|e| load_err(format!("cannot write port file {path}: {e}")))?;
    }

    let mut reporter = FleetReporter {
        inner: ProgressReporter::from_flags(err, flags)?,
        workers_seen: 0,
        histograms: None,
    };
    if reporter.inner.enabled {
        let _ = writeln!(
            reporter.inner.err,
            "fleet controller listening on {addr} (campaign {:016x})",
            config.fingerprint()
        );
    }
    let report = controller
        .serve(&dir, &config, &options, &mut reporter)
        .map_err(fleet_err)?;
    let workers_seen = reporter.workers_seen;
    let histograms = reporter.histograms.take();
    options.recorder.flush();
    write_profile_out(&dir, &report, profile_out)?;

    let _ = write!(out, "{report}");
    if !flags.contains(&"--quiet") {
        let secs = report.elapsed.as_secs_f64().max(1e-9);
        let _ = writeln!(
            err,
            "fleet throughput: {} cases from {} worker connection(s) in {:.2}s ({:.1} cases/s)",
            report.completed(),
            workers_seen,
            secs,
            f64::from(report.completed()) / secs,
        );
        if let Some((heartbeats, leases)) = &histograms {
            let _ = writeln!(err, "fleet heartbeat age: {}", render_histogram(heartbeats));
            let _ = writeln!(err, "fleet lease duration: {}", render_histogram(leases));
        }
    }
    if report.clean() {
        Ok(())
    } else if report.diverged() > 0 {
        Err(CliError {
            code: 3,
            message: format!("fleet campaign found {} divergence(s)", report.diverged()),
        })
    } else if !report.complete() {
        let _ = writeln!(
            err,
            "fleet campaign interrupted at --limit; serve the same --dir again to continue"
        );
        Ok(())
    } else {
        Err(CliError {
            code: 3,
            message: "fleet campaign hit runtime halts/errors (nothing verified past them)".into(),
        })
    }
}

fn work(
    flags: &[&str],
    token: String,
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> Result<(), CliError> {
    let addr = flag_value(flags, "--connect")?
        .ok_or_else(|| usage_err("fleet work needs --connect HOST:PORT"))?;
    let mut options = WorkerOptions {
        token,
        ..WorkerOptions::default()
    };
    if let Some(name) = flag_value(flags, "--name")? {
        options.name = name.to_string();
    }
    if let Some(workers) = parse_u64_flag(flags, "--workers")? {
        if workers == 0 {
            return Err(usage_err("--workers needs a positive count"));
        }
        options.threads = workers as usize;
    }
    options.scratch = match flag_value(flags, "--scratch")? {
        Some(path) => path.into(),
        // A per-name default keeps two workers on one host from
        // sharing (and fighting over) a scratch campaign.
        None => std::env::temp_dir().join(format!("asim2-fleet-{}", options.name)),
    };
    if let Some(hex) = flag_value(flags, "--fingerprint")? {
        let fp = u64::from_str_radix(hex, 16).map_err(|_| {
            usage_err(format!(
                "--fingerprint needs a hex fingerprint, got {hex:?}"
            ))
        })?;
        options.pin = Some(fp);
    }
    if let Some(n) = parse_u64_flag(flags, "--abandon-after")? {
        options.abandon_after =
            Some(u32::try_from(n).map_err(|_| usage_err("--abandon-after is too large"))?);
    }

    let report = rtl_fleet::work(addr, &options).map_err(fleet_err)?;
    let _ = writeln!(out, "{report}");
    if !flags.contains(&"--quiet") && report.diverged > 0 {
        let _ = writeln!(
            err,
            "{} of this worker's cases diverged; the controller's campaign directory has \
             the records and shrunk corpus entries",
            report.diverged
        );
    }
    Ok(())
}

/// Renders a wall-clock histogram as percentile milliseconds — log₂
/// bucket upper bounds, so the figures are coarse by design.
fn render_histogram(hist: &Histogram) -> String {
    if hist.count() == 0 {
        return "no samples".into();
    }
    let ms = |p: u8| {
        hist.percentile(p)
            .map_or_else(|| "-".into(), |us| format!("<={:.1}ms", us as f64 / 1000.0))
    };
    format!(
        "p50 {} p90 {} p99 {} ({} sample(s), log2 buckets)",
        ms(50),
        ms(90),
        ms(99),
        hist.count()
    )
}

fn status(
    flags: &[&str],
    token: String,
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> Result<(), CliError> {
    let addr = flag_value(flags, "--connect")?
        .ok_or_else(|| usage_err("fleet status needs --connect HOST:PORT"))?;
    let format = flag_value(flags, "--format")?.unwrap_or("text");
    if !matches!(format, "text" | "json") {
        return Err(usage_err(format!(
            "--format must be text or json, got {format:?}"
        )));
    }
    let watch = watch_period(flags)?;
    let mut client = StatusClient::connect(addr, &token).map_err(fleet_err)?;
    loop {
        match client.fetch().map_err(fleet_err)? {
            Some(body) => {
                if format == "json" {
                    let _ = write!(out, "{body}");
                } else {
                    let _ = write!(out, "{}", render_status(&body)?);
                }
            }
            None if watch.is_some() => {
                // The controller tore down between polls: the campaign
                // drained, which is the clean end of a watch.
                let _ = writeln!(err, "controller gone — campaign drained");
                return Ok(());
            }
            None => {
                return Err(load_err(
                    "fleet: controller closed the connection before answering",
                ))
            }
        }
        match watch {
            None => return Ok(()),
            Some(ms) => std::thread::sleep(Duration::from_millis(ms)),
        }
    }
}

/// Parses `--watch` / `--watch=MS` (the bare form polls once a second).
fn watch_period(flags: &[&str]) -> Result<Option<u64>, CliError> {
    for flag in flags {
        if *flag == "--watch" {
            return Ok(Some(1000));
        }
        if let Some(ms) = flag.strip_prefix("--watch=") {
            return ms
                .parse()
                .map(Some)
                .map_err(|_| usage_err(format!("--watch needs milliseconds, got {ms:?}")));
        }
    }
    Ok(None)
}

/// Renders an `asim2-fleet-status v1` document as human-readable lines.
fn render_status(body: &str) -> Result<String, CliError> {
    let doc = Json::parse(body)
        .map_err(|e| load_err(format!("fleet: malformed status document: {e}")))?;
    let bad = || load_err("fleet: status document is missing required fields");
    let field = |key: &str| doc.get(key).and_then(Json::as_u64).ok_or_else(bad);
    if doc.get("format").and_then(Json::as_str) != Some(rtl_fleet::STATUS_FORMAT) {
        return Err(load_err(format!(
            "fleet: expected a {} document",
            rtl_fleet::STATUS_FORMAT
        )));
    }
    let fingerprint = doc
        .get("fingerprint")
        .and_then(Json::as_str)
        .ok_or_else(bad)?;
    let (cases, done) = (field("cases")?, field("done")?);
    let mut text = format!(
        "fleet campaign {fingerprint}: {done}/{cases} case(s) done, {} pending, \
         {} dispatched, {} diverged\n",
        field("pending")?,
        field("dispatched")?,
        field("diverged")?
    );
    let secs = |ms: u64| format!("{:.1}s", ms as f64 / 1000.0);
    let eta = match doc.get("eta_ms") {
        Some(Json::Null) => "unknown".into(),
        Some(v) => v.as_u64().map(secs).ok_or_else(bad)?,
        None => return Err(bad()),
    };
    text.push_str(&format!(
        "elapsed {}, eta {eta}\n",
        secs(field("elapsed_ms")?)
    ));
    let arr = |key: &str| doc.get(key).and_then(Json::as_arr).ok_or_else(bad);
    for lease in arr("leases")? {
        let sub = |k: &str| lease.get(k).and_then(Json::as_u64).ok_or_else(bad);
        text.push_str(&format!(
            "lease {}..{} -> {}: {} outstanding, deadline in {}\n",
            sub("start")?,
            sub("end")?,
            lease.get("worker").and_then(Json::as_str).ok_or_else(bad)?,
            sub("outstanding")?,
            secs(sub("deadline_ms")?)
        ));
    }
    for worker in arr("workers")? {
        let sub = |k: &str| worker.get(k).and_then(Json::as_u64).ok_or_else(bad);
        text.push_str(&format!(
            "worker {}: heartbeat {} ago, {} case(s)\n",
            worker.get("name").and_then(Json::as_str).ok_or_else(bad)?,
            secs(sub("heartbeat_age_ms")?),
            sub("cases")?
        ));
    }
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::super::run_with_input;

    fn run_args(args: &[&str]) -> (i32, String, String) {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        let mut err = Vec::new();
        let code = run_with_input(&args, &mut &b""[..], &mut out, &mut err);
        (
            code,
            String::from_utf8(out).unwrap(),
            String::from_utf8(err).unwrap(),
        )
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("asim-cli-fleet-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_file(&dir);
        dir
    }

    /// Polls the controller's `--port-file` until it appears.
    fn wait_port(path: &std::path::Path) -> String {
        for _ in 0..500 {
            if let Ok(text) = std::fs::read_to_string(path) {
                let port = text.trim();
                if !port.is_empty() {
                    return format!("127.0.0.1:{port}");
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        panic!("controller never published its port to {}", path.display());
    }

    fn spawn_serve(args: Vec<String>) -> std::thread::JoinHandle<(i32, String, String)> {
        std::thread::spawn(move || {
            let mut out = Vec::new();
            let mut err = Vec::new();
            let code = run_with_input(&args, &mut &b""[..], &mut out, &mut err);
            (
                code,
                String::from_utf8(out).unwrap(),
                String::from_utf8(err).unwrap(),
            )
        })
    }

    #[test]
    fn fleet_serve_matches_campaign_run_byte_for_byte() {
        let fleet_dir = tmp("serve-dir");
        let port_file = tmp("serve-port");
        let config = [
            "--cases", "6", "--seed", "3", "--cycles", "16", "--size", "8",
        ];
        let mut serve_args = vec![
            "fleet".to_string(),
            "serve".to_string(),
            "--dir".into(),
            fleet_dir.to_str().unwrap().into(),
            "--token".into(),
            "hunter2".into(),
            "--port-file".into(),
            port_file.to_str().unwrap().into(),
            "--lease".into(),
            "2".into(),
            "--quiet".into(),
        ];
        serve_args.extend(config.iter().map(|s| s.to_string()));
        let serving = spawn_serve(serve_args);

        let addr = wait_port(&port_file);
        let workers: Vec<_> = ["w1", "w2"]
            .iter()
            .map(|name| {
                let scratch = tmp(&format!("serve-{name}"));
                let args: Vec<String> = vec![
                    "fleet".into(),
                    "work".into(),
                    "--connect".into(),
                    addr.clone(),
                    "--token".into(),
                    "hunter2".into(),
                    "--name".into(),
                    (*name).into(),
                    "--workers".into(),
                    "1".into(),
                    "--scratch".into(),
                    scratch.to_str().unwrap().into(),
                ];
                spawn_serve(args)
            })
            .collect();
        for worker in workers {
            let (code, out, err) = worker.join().unwrap();
            assert_eq!(code, 0, "{err}");
            assert!(out.contains("fleet worker w"), "{out}");
        }
        let (code, fleet_out, err) = serving.join().unwrap();
        assert_eq!(code, 0, "{err}");

        // The single-machine run of the same configuration: same stdout,
        // same manifest bytes.
        let plain_dir = tmp("serve-plain");
        let mut plain_args = vec![
            "campaign",
            "run",
            "--dir",
            plain_dir.to_str().unwrap(),
            "--quiet",
        ];
        plain_args.extend_from_slice(&config);
        let (code, plain_out, err) = run_args(&plain_args);
        assert_eq!(code, 0, "{err}");
        assert_eq!(
            fleet_out, plain_out,
            "fleet stdout equals campaign run stdout"
        );
        assert_eq!(
            std::fs::read(fleet_dir.join("campaign.json")).unwrap(),
            std::fs::read(plain_dir.join("campaign.json")).unwrap(),
            "manifests are byte-identical"
        );
    }

    #[test]
    fn fleet_status_answers_mid_campaign_and_histograms_render() {
        use rtl_campaign::json::Json;

        let fleet_dir = tmp("status-dir");
        let port_file = tmp("status-port");
        let serve_args: Vec<String> = [
            "fleet",
            "serve",
            "--dir",
            fleet_dir.to_str().unwrap(),
            "--token",
            "hunter2",
            "--port-file",
            port_file.to_str().unwrap(),
            "--cases",
            "4",
            "--cycles",
            "12",
            "--size",
            "8",
            "--lease",
            "2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let serving = spawn_serve(serve_args);
        let addr = wait_port(&port_file);

        // One-shot JSON status against the live (undrained) controller:
        // a valid versioned document.
        let (code, out, err) = run_args(&[
            "fleet",
            "status",
            "--connect",
            &addr,
            "--token",
            "hunter2",
            "--format",
            "json",
        ]);
        assert_eq!(code, 0, "{err}");
        let doc = Json::parse(&out).unwrap();
        assert_eq!(
            doc.get("format").and_then(Json::as_str),
            Some(rtl_fleet::STATUS_FORMAT),
            "{out}"
        );
        assert_eq!(doc.get("cases").and_then(Json::as_u64), Some(4), "{out}");
        assert_eq!(doc.get("done").and_then(Json::as_u64), Some(0), "{out}");

        // The text rendering of the same answer.
        let (code, out, err) =
            run_args(&["fleet", "status", "--connect", &addr, "--token", "hunter2"]);
        assert_eq!(code, 0, "{err}");
        assert!(out.contains("fleet campaign"), "{out}");
        assert!(out.contains("0/4 case(s) done"), "{out}");

        // A status observer is refused like any peer on a bad token.
        let (code, _, err) = run_args(&["fleet", "status", "--connect", &addr, "--token", "wrong"]);
        assert_eq!(code, 2, "{err}");
        assert!(err.contains("refused: bad-token"), "{err}");

        // Drain, then check the controller's wall-clock summary renders
        // the heartbeat-age and lease-duration histograms.
        let scratch = tmp("status-w");
        let (code, _, err) = run_args(&[
            "fleet",
            "work",
            "--connect",
            &addr,
            "--token",
            "hunter2",
            "--workers",
            "1",
            "--scratch",
            scratch.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{err}");
        let (code, _, serve_err) = serving.join().unwrap();
        assert_eq!(code, 0, "{serve_err}");
        assert!(serve_err.contains("fleet heartbeat age:"), "{serve_err}");
        assert!(serve_err.contains("fleet lease duration:"), "{serve_err}");
        assert!(
            serve_err.contains("log2 buckets") || serve_err.contains("no samples"),
            "{serve_err}"
        );
    }

    #[test]
    fn fleet_refusals_exit_2_with_a_named_reason() {
        let fleet_dir = tmp("refuse-dir");
        let port_file = tmp("refuse-port");
        let serve_args: Vec<String> = [
            "fleet",
            "serve",
            "--dir",
            fleet_dir.to_str().unwrap(),
            "--token",
            "right",
            "--port-file",
            port_file.to_str().unwrap(),
            "--cases",
            "2",
            "--cycles",
            "12",
            "--size",
            "8",
            "--quiet",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let serving = spawn_serve(serve_args);
        let addr = wait_port(&port_file);

        let scratch = tmp("refuse-w");
        let (code, _, err) = run_args(&[
            "fleet",
            "work",
            "--connect",
            &addr,
            "--token",
            "wrong",
            "--scratch",
            scratch.to_str().unwrap(),
        ]);
        assert_eq!(code, 2, "{err}");
        assert!(
            err.contains("fleet: refused: bad-token: shared token does not match the controller's"),
            "{err}"
        );

        // A drift-pinned worker is refused the same way.
        let (code, _, err) = run_args(&[
            "fleet",
            "work",
            "--connect",
            &addr,
            "--token",
            "right",
            "--fingerprint",
            "0000000000000000",
            "--scratch",
            scratch.to_str().unwrap(),
        ]);
        assert_eq!(code, 2, "{err}");
        assert!(err.contains("fleet: refused: fingerprint-drift"), "{err}");

        // Drain the campaign so the controller exits cleanly.
        let (code, _, err) = run_args(&[
            "fleet",
            "work",
            "--connect",
            &addr,
            "--token",
            "right",
            "--workers",
            "1",
            "--scratch",
            scratch.to_str().unwrap(),
        ]);
        assert_eq!(code, 0, "{err}");
        let (code, _, err) = serving.join().unwrap();
        assert_eq!(code, 0, "{err}");
    }

    #[test]
    fn fleet_usage_errors() {
        let (code, _, err) = run_args(&["fleet"]);
        assert_eq!(code, 1);
        assert!(err.contains("fleet needs a subcommand"), "{err}");
        let (code, _, err) = run_args(&["fleet", "serve", "--dir", "/tmp/x"]);
        assert_eq!(code, 1);
        assert!(err.contains("fleet serve needs --token"), "{err}");
        let (code, _, err) = run_args(&["fleet", "work", "--token", "t"]);
        assert_eq!(code, 1);
        assert!(err.contains("fleet work needs --connect"), "{err}");
        let (code, _, err) = run_args(&[
            "fleet",
            "work",
            "--connect",
            "x",
            "--token",
            "t",
            "--lease",
            "4",
        ]);
        assert_eq!(code, 1);
        assert!(err.contains("fleet work does not take --lease"), "{err}");
        let (code, _, err) = run_args(&[
            "fleet",
            "work",
            "--connect",
            "x",
            "--token",
            "t",
            "--fingerprint",
            "zz",
        ]);
        assert_eq!(code, 1);
        assert!(
            err.contains("--fingerprint needs a hex fingerprint"),
            "{err}"
        );
    }
}
