//! `asim2 metrics` — folding and checking `asim2-events v1` logs.
//!
//! `summarize FILE...` folds any number of logs into one
//! [`Summary`](rtl_obs::Summary) and prints it. With `--check`, each
//! positional argument is one *run* — either a single log file or a
//! comma-joined group of files (e.g. the per-shard logs of one
//! distributed campaign) — and the command exits 3 unless every run's
//! deterministic-counter section is byte-identical. Wall-clock spans,
//! gauges and marks never participate in the comparison.

use crate::{load_err, usage_err, CliError};
use rtl_obs::Summary;
use std::io::Write;

pub(crate) fn metrics_cmd(rest: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    let sub = rest
        .first()
        .copied()
        .ok_or_else(|| usage_err("metrics needs a subcommand (summarize)"))?;
    if sub != "summarize" {
        return Err(usage_err(format!(
            "unknown metrics subcommand {sub:?} (expected summarize)"
        )));
    }
    let mut check = false;
    let mut args: Vec<&str> = Vec::new();
    for a in &rest[1..] {
        match *a {
            "--check" => check = true,
            flag if flag.starts_with('-') => {
                return Err(usage_err(format!(
                    "metrics summarize does not take {flag} (accepted: --check)"
                )));
            }
            file => args.push(file),
        }
    }
    if args.is_empty() {
        return Err(usage_err("metrics summarize needs at least one FILE"));
    }
    if check {
        check_runs(&args, out)
    } else {
        let summary = fold_group(&args.join(","))?;
        let _ = write!(out, "{summary}");
        Ok(())
    }
}

/// Folds one run — a single path or a comma-joined group of paths.
fn fold_group(group: &str) -> Result<Summary, CliError> {
    let mut summary = Summary::new();
    for path in group.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        summary
            .fold_file(std::path::Path::new(path))
            .map_err(load_err)?;
    }
    if summary.files() == 0 {
        return Err(usage_err(format!("empty run group {group:?}")));
    }
    Ok(summary)
}

/// `--check`: every run's deterministic section must match the first's,
/// byte for byte.
fn check_runs(groups: &[&str], out: &mut dyn Write) -> Result<(), CliError> {
    if groups.len() < 2 {
        return Err(usage_err(
            "metrics summarize --check needs at least two runs to compare",
        ));
    }
    let mut baseline: Option<(String, &str)> = None;
    for group in groups {
        let section = fold_group(group)?.deterministic_section();
        match &baseline {
            None => baseline = Some((section, group)),
            Some((expected, first)) if *expected != section => {
                let diff = first_difference(expected, &section);
                return Err(CliError {
                    code: 3,
                    message: format!(
                        "deterministic counters differ between {first:?} and {group:?}:\n\
                         {diff}"
                    ),
                });
            }
            Some(_) => {}
        }
    }
    let (section, _) = baseline.expect("at least two runs checked");
    let _ = writeln!(
        out,
        "deterministic counters identical across {} runs",
        groups.len()
    );
    let _ = write!(out, "{section}");
    Ok(())
}

/// Renders the first line where two deterministic sections disagree.
fn first_difference(a: &str, b: &str) -> String {
    let mut left = a.lines();
    let mut right = b.lines();
    loop {
        match (left.next(), right.next()) {
            (Some(l), Some(r)) if l == r => continue,
            (Some(l), Some(r)) => return format!("  first run: {l}\n  this run:  {r}"),
            (Some(l), None) => return format!("  first run: {l}\n  this run:  <missing>"),
            (None, Some(r)) => return format!("  first run: <missing>\n  this run:  {r}"),
            (None, None) => return "  (sections identical?)".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl_obs::Recorder;

    fn write_log(name: &str, build: impl Fn(&Recorder)) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("asim-metrics-test-{}-{name}", std::process::id()));
        let (recorder, log) = Recorder::memory();
        build(&recorder);
        recorder.flush();
        std::fs::write(&path, log.text()).unwrap();
        path
    }

    fn run(args: &[&str]) -> (Result<(), i32>, String) {
        let mut out = Vec::new();
        let result = metrics_cmd(args, &mut out).map_err(|e| e.code);
        (result, String::from_utf8(out).unwrap())
    }

    #[test]
    fn summarize_folds_files_and_groups() {
        let a = write_log("fold-a", |r| r.count("campaign", "cases_executed", 3));
        let b = write_log("fold-b", |r| r.count("campaign", "cases_executed", 4));
        let args = format!("{},{}", a.display(), b.display());
        let (result, out) = run(&["summarize", &args]);
        assert!(result.is_ok());
        assert!(out.contains("campaign/cases_executed 7"), "{out}");
        let _ = std::fs::remove_file(a);
        let _ = std::fs::remove_file(b);
    }

    #[test]
    fn check_accepts_identical_and_rejects_different() {
        let a = write_log("check-a", |r| r.count("campaign", "divergences", 1));
        let b = write_log("check-b", |r| r.count("campaign", "divergences", 1));
        let c = write_log("check-c", |r| r.count("campaign", "divergences", 2));
        let a_str = a.display().to_string();
        let b_str = b.display().to_string();
        let c_str = c.display().to_string();
        let (result, out) = run(&["summarize", "--check", &a_str, &b_str]);
        assert!(result.is_ok(), "{out}");
        assert!(out.contains("identical across 2 runs"), "{out}");
        let (result, _) = run(&["summarize", "--check", &a_str, &c_str]);
        assert_eq!(result, Err(3));
        for p in [a, b, c] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn usage_errors() {
        assert_eq!(run(&[]).0, Err(1));
        assert_eq!(run(&["summarize"]).0, Err(1));
        assert_eq!(run(&["summarize", "--check", "one.jsonl"]).0, Err(1));
        assert_eq!(run(&["summarize", "--bogus", "x"]).0, Err(1));
        assert_eq!(run(&["frobnicate", "x"]).0, Err(1));
    }

    #[test]
    fn corrupt_logs_exit_2() {
        let path = std::env::temp_dir().join(format!(
            "asim-metrics-test-{}-corrupt.jsonl",
            std::process::id()
        ));
        std::fs::write(&path, "not json\n").unwrap();
        let path_str = path.display().to_string();
        assert_eq!(run(&["summarize", &path_str]).0, Err(2));
        let _ = std::fs::remove_file(path);
    }
}
