//! `asim2 metrics` — folding, checking and exporting `asim2-events v1`
//! logs.
//!
//! `summarize FILE...` folds any number of logs into one
//! [`Summary`](rtl_obs::Summary) and prints it. With `--check`, each
//! positional argument is one *run* — either a single log file or a
//! comma-joined group of files (e.g. the per-shard logs of one
//! distributed campaign) — and the command exits 3 unless every run's
//! deterministic-counter section is byte-identical. Wall-clock spans,
//! gauges and marks never participate in the comparison.
//!
//! `trace-export FILE [--out F]` converts one log into Chrome
//! trace-event JSON (viewable in Perfetto or `chrome://tracing`); see
//! [`rtl_obs::trace`] for the timeline layout.
//!
//! `-` anywhere a FILE is accepted reads the log from stdin (read once,
//! reused if `-` appears in several run groups).

use crate::{load_err, usage_err, CliError};
use rtl_obs::{Event, Summary};
use std::io::{BufRead, Write};

pub(crate) fn metrics_cmd(
    rest: &[&str],
    stdin: &mut dyn BufRead,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let sub = rest
        .first()
        .copied()
        .ok_or_else(|| usage_err("metrics needs a subcommand (summarize|trace-export|flight)"))?;
    match sub {
        "summarize" => summarize_cmd(&rest[1..], stdin, out),
        "trace-export" => trace_export_cmd(&rest[1..], stdin, out),
        "flight" => flight_cmd(&rest[1..], stdin, out),
        other => Err(usage_err(format!(
            "unknown metrics subcommand {other:?} (expected summarize, trace-export or flight)"
        ))),
    }
}

/// Stdin, read at most once no matter how many `-` arguments reference
/// it, so one piped log can participate in several run groups.
struct StdinLog<'a> {
    stdin: &'a mut dyn BufRead,
    text: Option<String>,
}

impl<'a> StdinLog<'a> {
    fn new(stdin: &'a mut dyn BufRead) -> StdinLog<'a> {
        StdinLog { stdin, text: None }
    }

    fn text(&mut self) -> Result<&str, CliError> {
        if self.text.is_none() {
            let mut buf = String::new();
            self.stdin
                .read_to_string(&mut buf)
                .map_err(|e| load_err(format!("cannot read stdin: {e}")))?;
            self.text = Some(buf);
        }
        Ok(self.text.as_deref().expect("just filled"))
    }
}

fn summarize_cmd(
    rest: &[&str],
    stdin: &mut dyn BufRead,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let mut check = false;
    // Positionals before any `--group` are each their own run; every
    // `--group` starts a fresh run collecting the FILEs after it — the
    // spelled-out form of the comma-joined group syntax, which shells
    // with glob expansion can actually produce.
    let mut runs: Vec<String> = Vec::new();
    let mut group: Option<Vec<&str>> = None;
    for a in rest {
        match *a {
            "--check" => check = true,
            "--group" => {
                if let Some(files) = group.replace(Vec::new()) {
                    if files.is_empty() {
                        return Err(usage_err("--group needs at least one FILE after it"));
                    }
                    runs.push(files.join(","));
                }
            }
            // "-" is stdin, not a flag.
            flag if flag.starts_with('-') && flag != "-" => {
                return Err(usage_err(format!(
                    "metrics summarize does not take {flag} (accepted: --check --group)"
                )));
            }
            file => match &mut group {
                Some(files) => files.push(file),
                None => runs.push(file.to_string()),
            },
        }
    }
    if let Some(files) = group.take() {
        if files.is_empty() {
            return Err(usage_err("--group needs at least one FILE after it"));
        }
        runs.push(files.join(","));
    }
    if runs.is_empty() {
        return Err(usage_err("metrics summarize needs at least one FILE"));
    }
    let mut piped = StdinLog::new(stdin);
    if check {
        let refs: Vec<&str> = runs.iter().map(String::as_str).collect();
        check_runs(&refs, &mut piped, out)
    } else {
        let summary = fold_group(&runs.join(","), &mut piped)?;
        let _ = write!(out, "{summary}");
        Ok(())
    }
}

/// Folds one run — a single path or a comma-joined group of paths, `-`
/// reading stdin.
fn fold_group(group: &str, piped: &mut StdinLog<'_>) -> Result<Summary, CliError> {
    let mut summary = Summary::new();
    for path in group.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        if path == "-" {
            summary
                .fold_text(piped.text()?, "stdin")
                .map_err(load_err)?;
        } else {
            summary
                .fold_file(std::path::Path::new(path))
                .map_err(load_err)?;
        }
    }
    if summary.files() == 0 {
        return Err(usage_err(format!("empty run group {group:?}")));
    }
    Ok(summary)
}

/// `--check`: every run's deterministic section must match the first's,
/// byte for byte.
fn check_runs(
    groups: &[&str],
    piped: &mut StdinLog<'_>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    if groups.len() < 2 {
        return Err(usage_err(
            "metrics summarize --check needs at least two runs to compare",
        ));
    }
    let mut baseline: Option<(String, &str)> = None;
    for group in groups {
        let section = fold_group(group, piped)?.deterministic_section();
        match &baseline {
            None => baseline = Some((section, group)),
            Some((expected, first)) if *expected != section => {
                let diff = first_difference(expected, &section);
                return Err(CliError {
                    code: 3,
                    message: format!(
                        "deterministic counters differ between {first:?} and {group:?}:\n\
                         {diff}"
                    ),
                });
            }
            Some(_) => {}
        }
    }
    let (section, _) = baseline.expect("at least two runs checked");
    let _ = writeln!(
        out,
        "deterministic counters identical across {} runs",
        groups.len()
    );
    let _ = write!(out, "{section}");
    Ok(())
}

/// Renders the first line where two deterministic sections disagree.
fn first_difference(a: &str, b: &str) -> String {
    let mut left = a.lines();
    let mut right = b.lines();
    loop {
        match (left.next(), right.next()) {
            (Some(l), Some(r)) if l == r => continue,
            (Some(l), Some(r)) => return format!("  first run: {l}\n  this run:  {r}"),
            (Some(l), None) => return format!("  first run: {l}\n  this run:  <missing>"),
            (None, Some(r)) => return format!("  first run: <missing>\n  this run:  {r}"),
            (None, None) => return "  (sections identical?)".into(),
        }
    }
}

/// `trace-export FILE... [--out F]` — event logs (or `-` for stdin) to
/// Chrome trace-event JSON. One FILE keeps the classic single-process
/// layout; several merge onto one timeline with a named track per log.
fn trace_export_cmd(
    rest: &[&str],
    stdin: &mut dyn BufRead,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let mut files: Vec<&str> = Vec::new();
    let mut out_path: Option<&str> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match *a {
            "--out" => {
                out_path = Some(
                    it.next()
                        .copied()
                        .ok_or_else(|| usage_err("--out needs a value"))?,
                );
            }
            flag if flag.starts_with('-') && flag != "-" => {
                return Err(usage_err(format!(
                    "metrics trace-export does not take {flag} (accepted: --out)"
                )));
            }
            positional => files.push(positional),
        }
    }
    if files.is_empty() {
        return Err(usage_err(
            "metrics trace-export needs at least one FILE (or -)",
        ));
    }
    let mut read_one = |file: &str| -> Result<(String, String), CliError> {
        if file == "-" {
            let mut piped = String::new();
            stdin
                .read_to_string(&mut piped)
                .map_err(|e| load_err(format!("cannot read stdin: {e}")))?;
            Ok(("stdin".to_string(), piped))
        } else {
            let read = std::fs::read_to_string(file)
                .map_err(|e| load_err(format!("cannot read {file}: {e}")))?;
            Ok((file.to_string(), read))
        }
    };
    let json = if files.len() == 1 {
        let (label, text) = read_one(files[0])?;
        rtl_obs::trace_from_text(&text, &label).map_err(load_err)?
    } else {
        if files.iter().filter(|f| **f == "-").count() > 1 {
            return Err(usage_err("`-` may appear at most once among the FILEs"));
        }
        let mut sources = Vec::new();
        for file in files {
            sources.push(read_one(file)?);
        }
        rtl_obs::trace_from_sources(&sources).map_err(load_err)?
    };
    match out_path {
        Some(path) => {
            std::fs::write(path, json).map_err(|e| load_err(format!("cannot write {path}: {e}")))?
        }
        None => {
            let _ = out.write_all(json.as_bytes());
        }
    }
    Ok(())
}

/// `flight FILE` — pretty-prints a `case-N.flight.jsonl` divergence
/// flight-recorder sidecar: the ring buffer of events leading up to the
/// trigger, then the trigger itself.
fn flight_cmd(rest: &[&str], stdin: &mut dyn BufRead, out: &mut dyn Write) -> Result<(), CliError> {
    let mut file: Option<&str> = None;
    for a in rest {
        match *a {
            flag if flag.starts_with('-') && flag != "-" => {
                return Err(usage_err(format!("metrics flight does not take {flag}")));
            }
            positional if file.is_none() => file = Some(positional),
            extra => return Err(usage_err(format!("unexpected argument {extra:?}"))),
        }
    }
    let file = file.ok_or_else(|| usage_err("metrics flight needs one FILE (or -)"))?;
    let text = if file == "-" {
        let mut piped = String::new();
        stdin
            .read_to_string(&mut piped)
            .map_err(|e| load_err(format!("cannot read stdin: {e}")))?;
        piped
    } else {
        std::fs::read_to_string(file).map_err(|e| load_err(format!("cannot read {file}: {e}")))?
    };
    let mut events = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        events.push(Event::parse(line).map_err(|e| load_err(format!("{file}: {e}")))?);
    }
    let recorded = events
        .iter()
        .filter(|e| !matches!(e, Event::Meta { .. }))
        .count();
    if recorded == 0 {
        return Err(load_err(format!("{file}: no events in the flight log")));
    }
    let _ = writeln!(out, "flight recorder: {recorded} event(s)");
    for event in events {
        match event {
            Event::Meta { .. } => {}
            Event::Counter { src, key, n } => {
                let _ = writeln!(out, "  counter {src}/{key} +{n}");
            }
            Event::Gauge { src, key, value } => {
                let _ = writeln!(out, "  gauge   {src}/{key} = {value}");
            }
            Event::Mark { src, key, detail } if src == "flight" && key == "trigger" => {
                let _ = writeln!(out, "trigger: {}", detail.unwrap_or_default());
            }
            Event::Mark { src, key, detail } => match detail {
                Some(detail) => {
                    let _ = writeln!(out, "  mark    {src}/{key}: {detail}");
                }
                None => {
                    let _ = writeln!(out, "  mark    {src}/{key}");
                }
            },
            Event::SpanEnter { src, key, id } => {
                let _ = writeln!(out, "  span    {src}/{key} #{id} enter");
            }
            Event::SpanExit {
                src,
                key,
                id,
                micros,
            } => {
                let _ = writeln!(out, "  span    {src}/{key} #{id} exit ({micros}us)");
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl_obs::Recorder;

    fn write_log(name: &str, build: impl Fn(&Recorder)) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("asim-metrics-test-{}-{name}", std::process::id()));
        let (recorder, log) = Recorder::memory();
        build(&recorder);
        recorder.flush();
        std::fs::write(&path, log.text()).unwrap();
        path
    }

    fn run_stdin(args: &[&str], stdin: &str) -> (Result<(), i32>, String) {
        let mut out = Vec::new();
        let mut input = stdin.as_bytes();
        let result = metrics_cmd(args, &mut input, &mut out).map_err(|e| e.code);
        (result, String::from_utf8(out).unwrap())
    }

    fn run(args: &[&str]) -> (Result<(), i32>, String) {
        run_stdin(args, "")
    }

    fn memory_log(build: impl Fn(&Recorder)) -> String {
        let (recorder, log) = Recorder::memory();
        build(&recorder);
        recorder.flush();
        log.text()
    }

    #[test]
    fn summarize_folds_files_and_groups() {
        let a = write_log("fold-a", |r| r.count("campaign", "cases_executed", 3));
        let b = write_log("fold-b", |r| r.count("campaign", "cases_executed", 4));
        let args = format!("{},{}", a.display(), b.display());
        let (result, out) = run(&["summarize", &args]);
        assert!(result.is_ok());
        assert!(out.contains("campaign/cases_executed 7"), "{out}");
        let _ = std::fs::remove_file(a);
        let _ = std::fs::remove_file(b);
    }

    #[test]
    fn summarize_reads_stdin() {
        let text = memory_log(|r| r.count("campaign", "cases_executed", 9));
        let (result, out) = run_stdin(&["summarize", "-"], &text);
        assert!(result.is_ok(), "{out}");
        assert!(out.contains("campaign/cases_executed 9"), "{out}");
    }

    #[test]
    fn check_compares_stdin_against_a_file() {
        let a = write_log("check-stdin", |r| r.count("campaign", "divergences", 1));
        let text = memory_log(|r| r.count("campaign", "divergences", 1));
        let a_str = a.display().to_string();
        let (result, out) = run_stdin(&["summarize", "--check", &a_str, "-"], &text);
        assert!(result.is_ok(), "{out}");
        assert!(out.contains("identical across 2 runs"), "{out}");
        let different = memory_log(|r| r.count("campaign", "divergences", 5));
        let (result, _) = run_stdin(&["summarize", "--check", &a_str, "-"], &different);
        assert_eq!(result, Err(3));
        let _ = std::fs::remove_file(a);
    }

    #[test]
    fn check_accepts_identical_and_rejects_different() {
        let a = write_log("check-a", |r| r.count("campaign", "divergences", 1));
        let b = write_log("check-b", |r| r.count("campaign", "divergences", 1));
        let c = write_log("check-c", |r| r.count("campaign", "divergences", 2));
        let a_str = a.display().to_string();
        let b_str = b.display().to_string();
        let c_str = c.display().to_string();
        let (result, out) = run(&["summarize", "--check", &a_str, &b_str]);
        assert!(result.is_ok(), "{out}");
        assert!(out.contains("identical across 2 runs"), "{out}");
        let (result, _) = run(&["summarize", "--check", &a_str, &c_str]);
        assert_eq!(result, Err(3));
        for p in [a, b, c] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn trace_export_writes_chrome_trace_json() {
        let text = memory_log(|r| {
            drop(r.span("campaign", "case"));
            r.mark("shard", "run", None);
        });
        let (result, out) = run_stdin(&["trace-export", "-"], &text);
        assert!(result.is_ok(), "{out}");
        assert!(out.starts_with("{\"traceEvents\":["), "{out}");
        assert!(out.contains("\"ph\":\"B\""), "{out}");
        assert!(out.contains("\"ph\":\"E\""), "{out}");
        assert!(out.contains("\"ph\":\"i\""), "{out}");
    }

    #[test]
    fn trace_export_to_a_file() {
        let log = write_log("trace-file", |r| drop(r.span("campaign", "case")));
        let out_path = std::env::temp_dir().join(format!(
            "asim-metrics-test-{}-trace.json",
            std::process::id()
        ));
        let log_str = log.display().to_string();
        let out_str = out_path.display().to_string();
        let (result, out) = run(&["trace-export", &log_str, "--out", &out_str]);
        assert!(result.is_ok(), "{out}");
        assert!(out.is_empty(), "{out}");
        let written = std::fs::read_to_string(&out_path).unwrap();
        assert!(written.contains("\"traceEvents\""), "{written}");
        let _ = std::fs::remove_file(log);
        let _ = std::fs::remove_file(out_path);
    }

    #[test]
    fn group_flag_equals_comma_syntax() {
        let a = write_log("group-a", |r| r.count("campaign", "cases_executed", 3));
        let b = write_log("group-b", |r| r.count("campaign", "cases_executed", 4));
        let c = write_log("group-c", |r| r.count("campaign", "cases_executed", 7));
        let (a_str, b_str, c_str) = (
            a.display().to_string(),
            b.display().to_string(),
            c.display().to_string(),
        );

        // `--group a b` is one folded run, same as the comma syntax —
        // but without comma-in-filename ambiguity.
        let comma = format!("{a_str},{b_str}");
        let (result, comma_out) = run(&["summarize", "--check", &comma, &c_str]);
        assert!(result.is_ok(), "{comma_out}");
        let (result, group_out) = run(&[
            "summarize",
            "--check",
            "--group",
            &a_str,
            &b_str,
            "--group",
            &c_str,
        ]);
        assert!(result.is_ok(), "{group_out}");
        assert_eq!(comma_out, group_out, "the two spellings fold identically");

        // Plain summarize accepts --group too.
        let (result, out) = run(&["summarize", "--group", &a_str, &b_str]);
        assert!(result.is_ok(), "{out}");
        assert!(out.contains("campaign/cases_executed 7"), "{out}");

        // A group that folds to a different total still fails the check.
        let (result, _) = run(&["summarize", "--check", "--group", &a_str, "--group", &c_str]);
        assert_eq!(result, Err(3));
        for p in [a, b, c] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn trace_export_merges_sources_onto_labelled_tracks() {
        let w1 = write_log("trace-w1", |r| {
            drop(r.span("campaign", "case"));
            r.mark("fleet", "lease", None);
        });
        let w2 = write_log("trace-w2", |r| drop(r.span("campaign", "case")));
        let (w1_str, w2_str) = (w1.display().to_string(), w2.display().to_string());
        let (result, out) = run(&["trace-export", &w1_str, &w2_str]);
        assert!(result.is_ok(), "{out}");
        // One Chrome trace, one named process track per source file.
        assert!(out.starts_with("{\"traceEvents\":["), "{out}");
        assert!(out.contains("process_name"), "{out}");
        assert!(out.contains(&w1_str) && out.contains(&w2_str), "{out}");
        let (result, again) = run(&["trace-export", &w1_str, &w2_str]);
        assert!(result.is_ok());
        assert_eq!(out, again, "merged trace is deterministic");
        let _ = std::fs::remove_file(w1);
        let _ = std::fs::remove_file(w2);
    }

    #[test]
    fn flight_pretty_prints_a_sidecar() {
        let text = memory_log(|r| {
            r.count("vm", "steps", 5);
            r.mark(
                "flight",
                "trigger",
                Some("case 3 (seed 9): diverged at cycle 40 (reg r2)"),
            );
        });
        let (result, out) = run_stdin(&["flight", "-"], &text);
        assert!(result.is_ok(), "{out}");
        assert!(out.contains("flight recorder: 2 event(s)"), "{out}");
        assert!(out.contains("counter vm/steps +5"), "{out}");
        assert!(
            out.contains("trigger: case 3 (seed 9): diverged at cycle 40 (reg r2)"),
            "{out}"
        );

        // An empty log is an error, not a silent no-op.
        let (result, _) = run_stdin(&["flight", "-"], "");
        assert_eq!(result, Err(2));
    }

    #[test]
    fn usage_errors() {
        assert_eq!(run(&[]).0, Err(1));
        assert_eq!(run(&["summarize"]).0, Err(1));
        assert_eq!(run(&["summarize", "--check", "one.jsonl"]).0, Err(1));
        assert_eq!(run(&["summarize", "--bogus", "x"]).0, Err(1));
        assert_eq!(run(&["frobnicate", "x"]).0, Err(1));
        assert_eq!(run(&["trace-export"]).0, Err(1));
        // Two FILEs is a multi-source export now; the missing files are
        // load errors, not a usage error.
        assert_eq!(run(&["trace-export", "a", "b"]).0, Err(2));
        assert_eq!(run(&["trace-export", "a", "--bogus"]).0, Err(1));
        assert_eq!(run(&["trace-export", "-", "-"]).0, Err(1));
        assert_eq!(run(&["summarize", "--group"]).0, Err(1));
        assert_eq!(run(&["summarize", "a.jsonl", "--group"]).0, Err(1));
        assert_eq!(run(&["flight"]).0, Err(1));
        assert_eq!(run(&["flight", "a", "b"]).0, Err(1));
        assert_eq!(run(&["flight", "--bogus", "a"]).0, Err(1));
    }

    #[test]
    fn corrupt_logs_exit_2() {
        let path = std::env::temp_dir().join(format!(
            "asim-metrics-test-{}-corrupt.jsonl",
            std::process::id()
        ));
        std::fs::write(&path, "not json\n").unwrap();
        let path_str = path.display().to_string();
        assert_eq!(run(&["summarize", &path_str]).0, Err(2));
        assert_eq!(run(&["trace-export", &path_str]).0, Err(2));
        let _ = std::fs::remove_file(path);
    }
}
