//! `asim2 metrics` — folding, checking and exporting `asim2-events v1`
//! logs.
//!
//! `summarize FILE...` folds any number of logs into one
//! [`Summary`](rtl_obs::Summary) and prints it. With `--check`, each
//! positional argument is one *run* — either a single log file or a
//! comma-joined group of files (e.g. the per-shard logs of one
//! distributed campaign) — and the command exits 3 unless every run's
//! deterministic-counter section is byte-identical. Wall-clock spans,
//! gauges and marks never participate in the comparison.
//!
//! `trace-export FILE [--out F]` converts one log into Chrome
//! trace-event JSON (viewable in Perfetto or `chrome://tracing`); see
//! [`rtl_obs::trace`] for the timeline layout.
//!
//! `-` anywhere a FILE is accepted reads the log from stdin (read once,
//! reused if `-` appears in several run groups).

use crate::{load_err, usage_err, CliError};
use rtl_obs::Summary;
use std::io::{BufRead, Write};

pub(crate) fn metrics_cmd(
    rest: &[&str],
    stdin: &mut dyn BufRead,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let sub = rest
        .first()
        .copied()
        .ok_or_else(|| usage_err("metrics needs a subcommand (summarize|trace-export)"))?;
    match sub {
        "summarize" => summarize_cmd(&rest[1..], stdin, out),
        "trace-export" => trace_export_cmd(&rest[1..], stdin, out),
        other => Err(usage_err(format!(
            "unknown metrics subcommand {other:?} (expected summarize or trace-export)"
        ))),
    }
}

/// Stdin, read at most once no matter how many `-` arguments reference
/// it, so one piped log can participate in several run groups.
struct StdinLog<'a> {
    stdin: &'a mut dyn BufRead,
    text: Option<String>,
}

impl<'a> StdinLog<'a> {
    fn new(stdin: &'a mut dyn BufRead) -> StdinLog<'a> {
        StdinLog { stdin, text: None }
    }

    fn text(&mut self) -> Result<&str, CliError> {
        if self.text.is_none() {
            let mut buf = String::new();
            self.stdin
                .read_to_string(&mut buf)
                .map_err(|e| load_err(format!("cannot read stdin: {e}")))?;
            self.text = Some(buf);
        }
        Ok(self.text.as_deref().expect("just filled"))
    }
}

fn summarize_cmd(
    rest: &[&str],
    stdin: &mut dyn BufRead,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let mut check = false;
    let mut args: Vec<&str> = Vec::new();
    for a in rest {
        match *a {
            "--check" => check = true,
            // "-" is stdin, not a flag.
            flag if flag.starts_with('-') && flag != "-" => {
                return Err(usage_err(format!(
                    "metrics summarize does not take {flag} (accepted: --check)"
                )));
            }
            file => args.push(file),
        }
    }
    if args.is_empty() {
        return Err(usage_err("metrics summarize needs at least one FILE"));
    }
    let mut piped = StdinLog::new(stdin);
    if check {
        check_runs(&args, &mut piped, out)
    } else {
        let summary = fold_group(&args.join(","), &mut piped)?;
        let _ = write!(out, "{summary}");
        Ok(())
    }
}

/// Folds one run — a single path or a comma-joined group of paths, `-`
/// reading stdin.
fn fold_group(group: &str, piped: &mut StdinLog<'_>) -> Result<Summary, CliError> {
    let mut summary = Summary::new();
    for path in group.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        if path == "-" {
            summary
                .fold_text(piped.text()?, "stdin")
                .map_err(load_err)?;
        } else {
            summary
                .fold_file(std::path::Path::new(path))
                .map_err(load_err)?;
        }
    }
    if summary.files() == 0 {
        return Err(usage_err(format!("empty run group {group:?}")));
    }
    Ok(summary)
}

/// `--check`: every run's deterministic section must match the first's,
/// byte for byte.
fn check_runs(
    groups: &[&str],
    piped: &mut StdinLog<'_>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    if groups.len() < 2 {
        return Err(usage_err(
            "metrics summarize --check needs at least two runs to compare",
        ));
    }
    let mut baseline: Option<(String, &str)> = None;
    for group in groups {
        let section = fold_group(group, piped)?.deterministic_section();
        match &baseline {
            None => baseline = Some((section, group)),
            Some((expected, first)) if *expected != section => {
                let diff = first_difference(expected, &section);
                return Err(CliError {
                    code: 3,
                    message: format!(
                        "deterministic counters differ between {first:?} and {group:?}:\n\
                         {diff}"
                    ),
                });
            }
            Some(_) => {}
        }
    }
    let (section, _) = baseline.expect("at least two runs checked");
    let _ = writeln!(
        out,
        "deterministic counters identical across {} runs",
        groups.len()
    );
    let _ = write!(out, "{section}");
    Ok(())
}

/// Renders the first line where two deterministic sections disagree.
fn first_difference(a: &str, b: &str) -> String {
    let mut left = a.lines();
    let mut right = b.lines();
    loop {
        match (left.next(), right.next()) {
            (Some(l), Some(r)) if l == r => continue,
            (Some(l), Some(r)) => return format!("  first run: {l}\n  this run:  {r}"),
            (Some(l), None) => return format!("  first run: {l}\n  this run:  <missing>"),
            (None, Some(r)) => return format!("  first run: <missing>\n  this run:  {r}"),
            (None, None) => return "  (sections identical?)".into(),
        }
    }
}

/// `trace-export FILE [--out F]` — one event log (or `-` for stdin) to
/// Chrome trace-event JSON.
fn trace_export_cmd(
    rest: &[&str],
    stdin: &mut dyn BufRead,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let mut file: Option<&str> = None;
    let mut out_path: Option<&str> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match *a {
            "--out" => {
                out_path = Some(
                    it.next()
                        .copied()
                        .ok_or_else(|| usage_err("--out needs a value"))?,
                );
            }
            flag if flag.starts_with('-') && flag != "-" => {
                return Err(usage_err(format!(
                    "metrics trace-export does not take {flag} (accepted: --out)"
                )));
            }
            positional if file.is_none() => file = Some(positional),
            extra => return Err(usage_err(format!("unexpected argument {extra:?}"))),
        }
    }
    let file = file.ok_or_else(|| usage_err("metrics trace-export needs one FILE (or -)"))?;
    let (text, label);
    if file == "-" {
        let mut piped = String::new();
        stdin
            .read_to_string(&mut piped)
            .map_err(|e| load_err(format!("cannot read stdin: {e}")))?;
        (text, label) = (piped, "stdin".to_string());
    } else {
        let read = std::fs::read_to_string(file)
            .map_err(|e| load_err(format!("cannot read {file}: {e}")))?;
        (text, label) = (read, file.to_string());
    }
    let json = rtl_obs::trace_from_text(&text, &label).map_err(load_err)?;
    match out_path {
        Some(path) => {
            std::fs::write(path, json).map_err(|e| load_err(format!("cannot write {path}: {e}")))?
        }
        None => {
            let _ = out.write_all(json.as_bytes());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl_obs::Recorder;

    fn write_log(name: &str, build: impl Fn(&Recorder)) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("asim-metrics-test-{}-{name}", std::process::id()));
        let (recorder, log) = Recorder::memory();
        build(&recorder);
        recorder.flush();
        std::fs::write(&path, log.text()).unwrap();
        path
    }

    fn run_stdin(args: &[&str], stdin: &str) -> (Result<(), i32>, String) {
        let mut out = Vec::new();
        let mut input = stdin.as_bytes();
        let result = metrics_cmd(args, &mut input, &mut out).map_err(|e| e.code);
        (result, String::from_utf8(out).unwrap())
    }

    fn run(args: &[&str]) -> (Result<(), i32>, String) {
        run_stdin(args, "")
    }

    fn memory_log(build: impl Fn(&Recorder)) -> String {
        let (recorder, log) = Recorder::memory();
        build(&recorder);
        recorder.flush();
        log.text()
    }

    #[test]
    fn summarize_folds_files_and_groups() {
        let a = write_log("fold-a", |r| r.count("campaign", "cases_executed", 3));
        let b = write_log("fold-b", |r| r.count("campaign", "cases_executed", 4));
        let args = format!("{},{}", a.display(), b.display());
        let (result, out) = run(&["summarize", &args]);
        assert!(result.is_ok());
        assert!(out.contains("campaign/cases_executed 7"), "{out}");
        let _ = std::fs::remove_file(a);
        let _ = std::fs::remove_file(b);
    }

    #[test]
    fn summarize_reads_stdin() {
        let text = memory_log(|r| r.count("campaign", "cases_executed", 9));
        let (result, out) = run_stdin(&["summarize", "-"], &text);
        assert!(result.is_ok(), "{out}");
        assert!(out.contains("campaign/cases_executed 9"), "{out}");
    }

    #[test]
    fn check_compares_stdin_against_a_file() {
        let a = write_log("check-stdin", |r| r.count("campaign", "divergences", 1));
        let text = memory_log(|r| r.count("campaign", "divergences", 1));
        let a_str = a.display().to_string();
        let (result, out) = run_stdin(&["summarize", "--check", &a_str, "-"], &text);
        assert!(result.is_ok(), "{out}");
        assert!(out.contains("identical across 2 runs"), "{out}");
        let different = memory_log(|r| r.count("campaign", "divergences", 5));
        let (result, _) = run_stdin(&["summarize", "--check", &a_str, "-"], &different);
        assert_eq!(result, Err(3));
        let _ = std::fs::remove_file(a);
    }

    #[test]
    fn check_accepts_identical_and_rejects_different() {
        let a = write_log("check-a", |r| r.count("campaign", "divergences", 1));
        let b = write_log("check-b", |r| r.count("campaign", "divergences", 1));
        let c = write_log("check-c", |r| r.count("campaign", "divergences", 2));
        let a_str = a.display().to_string();
        let b_str = b.display().to_string();
        let c_str = c.display().to_string();
        let (result, out) = run(&["summarize", "--check", &a_str, &b_str]);
        assert!(result.is_ok(), "{out}");
        assert!(out.contains("identical across 2 runs"), "{out}");
        let (result, _) = run(&["summarize", "--check", &a_str, &c_str]);
        assert_eq!(result, Err(3));
        for p in [a, b, c] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn trace_export_writes_chrome_trace_json() {
        let text = memory_log(|r| {
            drop(r.span("campaign", "case"));
            r.mark("shard", "run", None);
        });
        let (result, out) = run_stdin(&["trace-export", "-"], &text);
        assert!(result.is_ok(), "{out}");
        assert!(out.starts_with("{\"traceEvents\":["), "{out}");
        assert!(out.contains("\"ph\":\"B\""), "{out}");
        assert!(out.contains("\"ph\":\"E\""), "{out}");
        assert!(out.contains("\"ph\":\"i\""), "{out}");
    }

    #[test]
    fn trace_export_to_a_file() {
        let log = write_log("trace-file", |r| drop(r.span("campaign", "case")));
        let out_path = std::env::temp_dir().join(format!(
            "asim-metrics-test-{}-trace.json",
            std::process::id()
        ));
        let log_str = log.display().to_string();
        let out_str = out_path.display().to_string();
        let (result, out) = run(&["trace-export", &log_str, "--out", &out_str]);
        assert!(result.is_ok(), "{out}");
        assert!(out.is_empty(), "{out}");
        let written = std::fs::read_to_string(&out_path).unwrap();
        assert!(written.contains("\"traceEvents\""), "{written}");
        let _ = std::fs::remove_file(log);
        let _ = std::fs::remove_file(out_path);
    }

    #[test]
    fn usage_errors() {
        assert_eq!(run(&[]).0, Err(1));
        assert_eq!(run(&["summarize"]).0, Err(1));
        assert_eq!(run(&["summarize", "--check", "one.jsonl"]).0, Err(1));
        assert_eq!(run(&["summarize", "--bogus", "x"]).0, Err(1));
        assert_eq!(run(&["frobnicate", "x"]).0, Err(1));
        assert_eq!(run(&["trace-export"]).0, Err(1));
        assert_eq!(run(&["trace-export", "a", "b"]).0, Err(1));
        assert_eq!(run(&["trace-export", "a", "--bogus"]).0, Err(1));
    }

    #[test]
    fn corrupt_logs_exit_2() {
        let path = std::env::temp_dir().join(format!(
            "asim-metrics-test-{}-corrupt.jsonl",
            std::process::id()
        ));
        std::fs::write(&path, "not json\n").unwrap();
        let path_str = path.display().to_string();
        assert_eq!(run(&["summarize", &path_str]).0, Err(2));
        assert_eq!(run(&["trace-export", &path_str]).0, Err(2));
        let _ = std::fs::remove_file(path);
    }
}
