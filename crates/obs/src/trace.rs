//! Exporting an event stream as a Chrome trace-event timeline.
//!
//! `asim2-events v1` logs carry no wall-clock timestamps — only span
//! *durations* — which is what keeps them small and replay-friendly, but
//! means a timeline viewer has nothing to plot directly. This module
//! synthesizes a timeline: events are laid out on a virtual microsecond
//! clock in stream order, each completed span occupies its measured
//! duration, and each span gets its own `tid` row so overlapping spans
//! never collapse into one lane. The result is the [Chrome trace-event
//! JSON format](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
//! (the `traceEvents` array form), loadable in Perfetto or
//! `chrome://tracing`.
//!
//! The layout is a pure function of the event sequence: the same log
//! always exports byte-identical trace JSON.
//!
//! Mapping:
//!
//! - span enter/exit pairs → a `"B"`/`"E"` pair named `src/key`, the
//!   `"E"` placed `max(us, 1)` after the `"B"` so zero-length spans stay
//!   visible;
//! - spans left open at end of stream → a `"B"`/`"E"` pair closed at the
//!   end of the timeline (every `"B"` is always matched);
//! - marks → `"i"` (instant) events, the detail under `args`;
//! - gauges → `"C"` (counter) samples;
//! - deterministic counters → `"C"` samples of the *cumulative* total,
//!   so the monotone staircase is visible on the timeline;
//! - `meta` headers → nothing.

use std::collections::BTreeMap;

use crate::event::{Event, FORMAT};

/// One entry of the `traceEvents` array, pre-rendered field-by-field.
struct TraceEntry {
    ts: u64,
    /// Emission order, the tie-breaker keeping the sort stable.
    seq: usize,
    json: String,
}

/// Builds trace entries from events on a synthetic monotonic clock.
struct Layout {
    /// The Chrome-trace process this source's events land in; every
    /// source of a merged export gets its own pid so viewers render one
    /// track group per worker.
    pid: u64,
    clock: u64,
    entries: Vec<TraceEntry>,
    /// Open spans: `(src, key, id)` → `(begin ts, tid)`.
    open: BTreeMap<(String, String, u64), (u64, u64)>,
    /// Running totals backing the cumulative counter samples.
    totals: BTreeMap<(String, String), u64>,
}

impl Layout {
    fn new(pid: u64) -> Layout {
        Layout {
            pid,
            clock: 0,
            entries: Vec::new(),
            open: BTreeMap::new(),
            totals: BTreeMap::new(),
        }
    }

    fn push(&mut self, ts: u64, json: String) {
        let seq = self.entries.len();
        self.entries.push(TraceEntry { ts, seq, json });
    }

    /// Lays out one event; `tick` advances the clock so same-stream
    /// events never stack at one instant.
    fn fold(&mut self, event: &Event) {
        match event {
            Event::Meta { .. } => {}
            Event::Counter { src, key, n } => {
                let total = self.totals.entry((src.clone(), key.clone())).or_insert(0);
                *total += n;
                let json = counter_sample(src, key, self.clock, *total, self.pid);
                self.push(self.clock, json);
                self.clock += 1;
            }
            Event::Gauge { src, key, value } => {
                let json = counter_sample(src, key, self.clock, *value, self.pid);
                self.push(self.clock, json);
                self.clock += 1;
            }
            Event::Mark { src, key, detail } => {
                let mut json = format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{},\"pid\":{},\"tid\":0",
                    escape(&format!("{src}/{key}")),
                    self.clock,
                    self.pid
                );
                if let Some(detail) = detail {
                    json.push_str(&format!(",\"args\":{{\"detail\":\"{}\"}}", escape(detail)));
                }
                json.push('}');
                self.push(self.clock, json);
                self.clock += 1;
            }
            Event::SpanEnter { src, key, id } => {
                // One tid per span: overlapping spans of the same key
                // get their own rows instead of nesting incorrectly.
                let tid = *id;
                self.open
                    .insert((src.clone(), key.clone(), *id), (self.clock, tid));
                self.clock += 1;
            }
            Event::SpanExit {
                src,
                key,
                id,
                micros,
            } => {
                // An exit without a recorded enter (log truncated at the
                // front) begins at the current clock.
                let (begin, tid) = self
                    .open
                    .remove(&(src.clone(), key.clone(), *id))
                    .unwrap_or((self.clock, *id));
                let end = begin + (*micros).max(1);
                self.emit_span(src, key, begin, end, tid);
                self.clock = self.clock.max(end);
            }
        }
    }

    fn emit_span(&mut self, src: &str, key: &str, begin: u64, end: u64, tid: u64) {
        let name = escape(&format!("{src}/{key}"));
        let cat = escape(src);
        let pid = self.pid;
        self.push(
            begin,
            format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"B\",\"ts\":{begin},\"pid\":{pid},\"tid\":{tid}}}"
            ),
        );
        self.push(
            end,
            format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"E\",\"ts\":{end},\"pid\":{pid},\"tid\":{tid}}}"
            ),
        );
    }

    /// Closes every span still open (so each `"B"` has its matching
    /// `"E"`) and surrenders the laid-out entries.
    fn close(mut self) -> Vec<TraceEntry> {
        let open = std::mem::take(&mut self.open);
        let end_of_stream = self.clock.max(1);
        for ((src, key, _id), (begin, tid)) in open {
            let end = end_of_stream.max(begin + 1);
            self.emit_span(&src, &key, begin, end, tid);
        }
        self.entries
    }
}

/// Sorts and wraps laid-out entries as the final trace document.
fn render(mut entries: Vec<TraceEntry>) -> String {
    // Stable order: by timestamp, emission order breaking ties —
    // viewers require non-decreasing ts, and determinism requires a
    // total order.
    entries.sort_by_key(|e| (e.ts, e.seq));
    let mut out = String::from("{\"traceEvents\":[");
    for (i, entry) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  ");
        out.push_str(&entry.json);
    }
    if !entries.is_empty() {
        out.push('\n');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

fn counter_sample(src: &str, key: &str, ts: u64, value: u64, pid: u64) -> String {
    format!(
        "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{pid},\"args\":{{\"value\":{value}}}}}",
        escape(&format!("{src}/{key}"))
    )
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Exports a slice of already-parsed events as trace-event JSON.
pub fn trace_from_events(events: &[Event]) -> String {
    let mut layout = Layout::new(1);
    for event in events {
        layout.fold(event);
    }
    render(layout.close())
}

/// Parses a log into events, validating the v1 header exactly like
/// [`Summary::fold_text`](crate::Summary).
fn parse_log(text: &str, label: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    let mut saw_header = false;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = Event::parse(line).map_err(|e| format!("{label}:{}: {e}", lineno + 1))?;
        if !saw_header {
            match &event {
                Event::Meta { format } if format == FORMAT => saw_header = true,
                Event::Meta { format } => {
                    return Err(format!(
                        "{label}:{}: unsupported format {format:?} (expected {FORMAT:?})",
                        lineno + 1
                    ));
                }
                _ => {
                    return Err(format!(
                        "{label}:{}: first event must be the {FORMAT:?} meta header",
                        lineno + 1
                    ));
                }
            }
        }
        events.push(event);
    }
    if !saw_header {
        return Err(format!("{label}: empty event log (missing meta header)"));
    }
    Ok(events)
}

/// Parses an `asim2-events v1` JSONL log and exports it as trace-event
/// JSON. Validation matches [`Summary::fold_text`](crate::Summary):
/// the first line must be the v1 meta header and every line must parse.
///
/// # Errors
///
/// A message naming `label`, the line number and the violation.
pub fn trace_from_text(text: &str, label: &str) -> Result<String, String> {
    Ok(trace_from_events(&parse_log(text, label)?))
}

/// Merges several `asim2-events v1` logs — one per fleet worker, say —
/// into a single trace document. Each source gets its own Chrome-trace
/// process (`pid` = position + 1, a `process_name` metadata record
/// naming it after `label`), so viewers render one track group per
/// source; within a source the layout is identical to a single-source
/// export. Deterministic: a function of the source order and each
/// source's event order only.
///
/// # Errors
///
/// The first source that fails validation, as [`trace_from_text`].
pub fn trace_from_sources(sources: &[(String, String)]) -> Result<String, String> {
    let mut merged: Vec<TraceEntry> = Vec::new();
    for (i, (label, text)) in sources.iter().enumerate() {
        let events = parse_log(text, label)?;
        let pid = i as u64 + 1;
        let mut layout = Layout::new(pid);
        layout.push(
            0,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":{pid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(label)
            ),
        );
        for event in &events {
            layout.fold(event);
        }
        merged.extend(layout.close());
    }
    // Re-number the tie-breaker globally: per-source seq values overlap,
    // and the final sort needs a total order.
    for (seq, entry) in merged.iter_mut().enumerate() {
        entry.seq = seq;
    }
    Ok(render(merged))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, micros: u64) -> [Event; 2] {
        [
            Event::SpanEnter {
                src: "campaign".into(),
                key: "case".into(),
                id,
            },
            Event::SpanExit {
                src: "campaign".into(),
                key: "case".into(),
                id,
                micros,
            },
        ]
    }

    fn ts_values(json: &str) -> Vec<u64> {
        json.match_indices("\"ts\":")
            .map(|(i, _)| {
                json[i + 5..]
                    .chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
                    .parse()
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn spans_become_matched_pairs_with_monotonic_ts() {
        let [enter, exit] = span(1, 250);
        let [enter2, exit2] = span(2, 40);
        let json = trace_from_events(&[enter, enter2, exit2, exit]);
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
        let ts = ts_values(&json);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }

    #[test]
    fn zero_length_and_unclosed_spans_stay_matched() {
        let [enter, exit] = span(1, 0);
        let dangling = Event::SpanEnter {
            src: "campaign".into(),
            key: "run".into(),
            id: 9,
        };
        let json = trace_from_events(&[dangling, enter, exit]);
        assert_eq!(
            json.matches("\"ph\":\"B\"").count(),
            json.matches("\"ph\":\"E\"").count()
        );
        // The zero-length span still spans at least one microsecond.
        let ts = ts_values(&json);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }

    #[test]
    fn counters_accumulate_and_marks_become_instants() {
        let events = [
            Event::Counter {
                src: "campaign".into(),
                key: "cases".into(),
                n: 2,
            },
            Event::Counter {
                src: "campaign".into(),
                key: "cases".into(),
                n: 3,
            },
            Event::Mark {
                src: "shard".into(),
                key: "run".into(),
                detail: Some("shard \"0\"".into()),
            },
        ];
        let json = trace_from_events(&events);
        assert!(json.contains("\"value\":2"), "{json}");
        assert!(json.contains("\"value\":5"), "{json}");
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        assert!(json.contains("shard \\\"0\\\""), "{json}");
    }

    #[test]
    fn export_is_deterministic_and_validates_the_header() {
        let text = format!(
            "{}\n{}\n{}\n",
            Event::Meta {
                format: FORMAT.into()
            }
            .render(),
            span(1, 10)[0].render(),
            span(1, 10)[1].render(),
        );
        let a = trace_from_text(&text, "log").unwrap();
        let b = trace_from_text(&text, "log").unwrap();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"traceEvents\":["));
        let err = trace_from_text("", "empty").unwrap_err();
        assert!(err.contains("meta header"), "{err}");
        let headerless = format!("{}\n", span(1, 10)[0].render());
        assert!(trace_from_text(&headerless, "x").is_err());
    }

    fn log_with(events: &[Event]) -> String {
        let mut text = format!(
            "{}\n",
            Event::Meta {
                format: FORMAT.into()
            }
            .render()
        );
        for e in events {
            text.push_str(&e.render());
            text.push('\n');
        }
        text
    }

    #[test]
    fn multi_source_export_gives_each_source_its_own_named_process() {
        let [enter, exit] = span(1, 10);
        let w1 = log_with(&[enter.clone(), exit.clone()]);
        let w2 = log_with(&[Event::Counter {
            src: "campaign".into(),
            key: "cases".into(),
            n: 4,
        }]);
        let json = trace_from_sources(&[("w1".into(), w1), ("w2".into(), w2)]).unwrap();
        assert!(
            json.contains("{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"args\":{\"name\":\"w1\"}}"),
            "{json}"
        );
        assert!(
            json.contains("{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":2,\"args\":{\"name\":\"w2\"}}"),
            "{json}"
        );
        // The span stays in pid 1, the counter sample lands in pid 2.
        assert!(json.contains("\"ph\":\"B\",\"ts\":0,\"pid\":1"), "{json}");
        assert!(json.contains("\"ph\":\"C\",\"ts\":0,\"pid\":2"), "{json}");
        let ts = ts_values(&json);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }

    #[test]
    fn single_source_merge_matches_plain_export_modulo_metadata() {
        let [enter, exit] = span(3, 25);
        let text = log_with(&[enter, exit]);
        let plain = trace_from_text(&text, "w1").unwrap();
        let merged = trace_from_sources(&[("w1".into(), text)]).unwrap();
        // Dropping the one metadata line (and its separator) from the
        // merged export recovers the plain export byte-for-byte.
        let meta_line =
            "\n  {\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"args\":{\"name\":\"w1\"}},";
        assert_eq!(merged.replacen(meta_line, "", 1), plain);
    }

    #[test]
    fn multi_source_export_surfaces_the_failing_source() {
        let good = log_with(&[]);
        let err = trace_from_sources(&[("ok".into(), good), ("bad".into(), "junk\n".into())])
            .unwrap_err();
        assert!(err.starts_with("bad:1:"), "{err}");
    }
}
