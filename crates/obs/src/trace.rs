//! Exporting an event stream as a Chrome trace-event timeline.
//!
//! `asim2-events v1` logs carry no wall-clock timestamps — only span
//! *durations* — which is what keeps them small and replay-friendly, but
//! means a timeline viewer has nothing to plot directly. This module
//! synthesizes a timeline: events are laid out on a virtual microsecond
//! clock in stream order, each completed span occupies its measured
//! duration, and each span gets its own `tid` row so overlapping spans
//! never collapse into one lane. The result is the [Chrome trace-event
//! JSON format](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
//! (the `traceEvents` array form), loadable in Perfetto or
//! `chrome://tracing`.
//!
//! The layout is a pure function of the event sequence: the same log
//! always exports byte-identical trace JSON.
//!
//! Mapping:
//!
//! - span enter/exit pairs → a `"B"`/`"E"` pair named `src/key`, the
//!   `"E"` placed `max(us, 1)` after the `"B"` so zero-length spans stay
//!   visible;
//! - spans left open at end of stream → a `"B"`/`"E"` pair closed at the
//!   end of the timeline (every `"B"` is always matched);
//! - marks → `"i"` (instant) events, the detail under `args`;
//! - gauges → `"C"` (counter) samples;
//! - deterministic counters → `"C"` samples of the *cumulative* total,
//!   so the monotone staircase is visible on the timeline;
//! - `meta` headers → nothing.

use std::collections::BTreeMap;

use crate::event::{Event, FORMAT};

/// One entry of the `traceEvents` array, pre-rendered field-by-field.
struct TraceEntry {
    ts: u64,
    /// Emission order, the tie-breaker keeping the sort stable.
    seq: usize,
    json: String,
}

/// Builds trace entries from events on a synthetic monotonic clock.
#[derive(Default)]
struct Layout {
    clock: u64,
    entries: Vec<TraceEntry>,
    /// Open spans: `(src, key, id)` → `(begin ts, tid)`.
    open: BTreeMap<(String, String, u64), (u64, u64)>,
    /// Running totals backing the cumulative counter samples.
    totals: BTreeMap<(String, String), u64>,
}

impl Layout {
    fn push(&mut self, ts: u64, json: String) {
        let seq = self.entries.len();
        self.entries.push(TraceEntry { ts, seq, json });
    }

    /// Lays out one event; `tick` advances the clock so same-stream
    /// events never stack at one instant.
    fn fold(&mut self, event: &Event) {
        match event {
            Event::Meta { .. } => {}
            Event::Counter { src, key, n } => {
                let total = self.totals.entry((src.clone(), key.clone())).or_insert(0);
                *total += n;
                let json = counter_sample(src, key, self.clock, *total);
                self.push(self.clock, json);
                self.clock += 1;
            }
            Event::Gauge { src, key, value } => {
                let json = counter_sample(src, key, self.clock, *value);
                self.push(self.clock, json);
                self.clock += 1;
            }
            Event::Mark { src, key, detail } => {
                let mut json = format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{},\"pid\":1,\"tid\":0",
                    escape(&format!("{src}/{key}")),
                    self.clock
                );
                if let Some(detail) = detail {
                    json.push_str(&format!(",\"args\":{{\"detail\":\"{}\"}}", escape(detail)));
                }
                json.push('}');
                self.push(self.clock, json);
                self.clock += 1;
            }
            Event::SpanEnter { src, key, id } => {
                // One tid per span: overlapping spans of the same key
                // get their own rows instead of nesting incorrectly.
                let tid = *id;
                self.open
                    .insert((src.clone(), key.clone(), *id), (self.clock, tid));
                self.clock += 1;
            }
            Event::SpanExit {
                src,
                key,
                id,
                micros,
            } => {
                // An exit without a recorded enter (log truncated at the
                // front) begins at the current clock.
                let (begin, tid) = self
                    .open
                    .remove(&(src.clone(), key.clone(), *id))
                    .unwrap_or((self.clock, *id));
                let end = begin + (*micros).max(1);
                self.emit_span(src, key, begin, end, tid);
                self.clock = self.clock.max(end);
            }
        }
    }

    fn emit_span(&mut self, src: &str, key: &str, begin: u64, end: u64, tid: u64) {
        let name = escape(&format!("{src}/{key}"));
        let cat = escape(src);
        self.push(
            begin,
            format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"B\",\"ts\":{begin},\"pid\":1,\"tid\":{tid}}}"
            ),
        );
        self.push(
            end,
            format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"E\",\"ts\":{end},\"pid\":1,\"tid\":{tid}}}"
            ),
        );
    }

    fn finish(mut self) -> String {
        // Close every span still open so each "B" has its matching "E".
        let open = std::mem::take(&mut self.open);
        let end_of_stream = self.clock.max(1);
        for ((src, key, _id), (begin, tid)) in open {
            let end = end_of_stream.max(begin + 1);
            self.emit_span(&src, &key, begin, end, tid);
        }
        // Stable order: by timestamp, emission order breaking ties —
        // viewers require non-decreasing ts, and determinism requires a
        // total order.
        self.entries.sort_by_key(|e| (e.ts, e.seq));
        let mut out = String::from("{\"traceEvents\":[");
        for (i, entry) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  ");
            out.push_str(&entry.json);
        }
        if !self.entries.is_empty() {
            out.push('\n');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

fn counter_sample(src: &str, key: &str, ts: u64, value: u64) -> String {
    format!(
        "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":1,\"args\":{{\"value\":{value}}}}}",
        escape(&format!("{src}/{key}"))
    )
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Exports a slice of already-parsed events as trace-event JSON.
pub fn trace_from_events(events: &[Event]) -> String {
    let mut layout = Layout::default();
    for event in events {
        layout.fold(event);
    }
    layout.finish()
}

/// Parses an `asim2-events v1` JSONL log and exports it as trace-event
/// JSON. Validation matches [`Summary::fold_text`](crate::Summary):
/// the first line must be the v1 meta header and every line must parse.
///
/// # Errors
///
/// A message naming `label`, the line number and the violation.
pub fn trace_from_text(text: &str, label: &str) -> Result<String, String> {
    let mut events = Vec::new();
    let mut saw_header = false;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = Event::parse(line).map_err(|e| format!("{label}:{}: {e}", lineno + 1))?;
        if !saw_header {
            match &event {
                Event::Meta { format } if format == FORMAT => saw_header = true,
                Event::Meta { format } => {
                    return Err(format!(
                        "{label}:{}: unsupported format {format:?} (expected {FORMAT:?})",
                        lineno + 1
                    ));
                }
                _ => {
                    return Err(format!(
                        "{label}:{}: first event must be the {FORMAT:?} meta header",
                        lineno + 1
                    ));
                }
            }
        }
        events.push(event);
    }
    if !saw_header {
        return Err(format!("{label}: empty event log (missing meta header)"));
    }
    Ok(trace_from_events(&events))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, micros: u64) -> [Event; 2] {
        [
            Event::SpanEnter {
                src: "campaign".into(),
                key: "case".into(),
                id,
            },
            Event::SpanExit {
                src: "campaign".into(),
                key: "case".into(),
                id,
                micros,
            },
        ]
    }

    fn ts_values(json: &str) -> Vec<u64> {
        json.match_indices("\"ts\":")
            .map(|(i, _)| {
                json[i + 5..]
                    .chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
                    .parse()
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn spans_become_matched_pairs_with_monotonic_ts() {
        let [enter, exit] = span(1, 250);
        let [enter2, exit2] = span(2, 40);
        let json = trace_from_events(&[enter, enter2, exit2, exit]);
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
        let ts = ts_values(&json);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }

    #[test]
    fn zero_length_and_unclosed_spans_stay_matched() {
        let [enter, exit] = span(1, 0);
        let dangling = Event::SpanEnter {
            src: "campaign".into(),
            key: "run".into(),
            id: 9,
        };
        let json = trace_from_events(&[dangling, enter, exit]);
        assert_eq!(
            json.matches("\"ph\":\"B\"").count(),
            json.matches("\"ph\":\"E\"").count()
        );
        // The zero-length span still spans at least one microsecond.
        let ts = ts_values(&json);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }

    #[test]
    fn counters_accumulate_and_marks_become_instants() {
        let events = [
            Event::Counter {
                src: "campaign".into(),
                key: "cases".into(),
                n: 2,
            },
            Event::Counter {
                src: "campaign".into(),
                key: "cases".into(),
                n: 3,
            },
            Event::Mark {
                src: "shard".into(),
                key: "run".into(),
                detail: Some("shard \"0\"".into()),
            },
        ];
        let json = trace_from_events(&events);
        assert!(json.contains("\"value\":2"), "{json}");
        assert!(json.contains("\"value\":5"), "{json}");
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        assert!(json.contains("shard \\\"0\\\""), "{json}");
    }

    #[test]
    fn export_is_deterministic_and_validates_the_header() {
        let text = format!(
            "{}\n{}\n{}\n",
            Event::Meta {
                format: FORMAT.into()
            }
            .render(),
            span(1, 10)[0].render(),
            span(1, 10)[1].render(),
        );
        let a = trace_from_text(&text, "log").unwrap();
        let b = trace_from_text(&text, "log").unwrap();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"traceEvents\":["));
        let err = trace_from_text("", "empty").unwrap_err();
        assert!(err.contains("meta header"), "{err}");
        let headerless = format!("{}\n", span(1, 10)[0].render());
        assert!(trace_from_text(&headerless, "x").is_err());
    }
}
