//! # rtl-obs — deterministic instrumentation for the ASIM II stack
//!
//! Campaigns at a million-case scale are black boxes without telemetry,
//! but telemetry that perturbs the run (or that differs between two runs
//! of the same campaign) is worse than none. This crate is the seam the
//! rest of the workspace records through, built on two rules:
//!
//! 1. **Zero cost when off.** The [`Recorder`] handle is a cheap
//!    clone-able `Arc` that is a no-op by default: hot paths pay one
//!    branch. Recording never fails a run — sink I/O errors are
//!    swallowed, telemetry is strictly best-effort.
//! 2. **A strict determinism split.** Every event is either a
//!    *deterministic counter* (cases executed, cycles simulated,
//!    comparator invocations per lens, divergences, shrink probes,
//!    corpus entries, bin-cache hits, fleet dispatch under the `fleet/`
//!    source — `cases_dispatched`, `leases_granted`, `records_accepted`,
//!    `corpus_accepted`) whose folded totals are byte-identical for a
//!    given campaign configuration across runs, worker counts,
//!    kill+resume, and controller restarts — or *wall-clock* (span durations,
//!    gauges, marks), flagged non-deterministic and excluded from all
//!    bit-identity comparisons. [`Summary`] renders the two sections
//!    separately so the deterministic one doubles as a correctness gate
//!    (`asim2 metrics summarize --check`).
//!
//! The on-disk format is `asim2-events v1`: one JSON object per line,
//! hand-rolled like the rest of the workspace's on-disk formats (offline,
//! no serde), with a leading `meta` header line carrying the format
//! string. See [`event`] for the exact schema.
//!
//! ```
//! use rtl_obs::{Recorder, Summary};
//! let (recorder, log) = Recorder::memory();
//! recorder.count("campaign", "cases_executed", 2);
//! recorder.gauge("campaign", "workers", 4);
//! recorder.flush();
//! let mut summary = Summary::new();
//! summary.fold_text(&log.text(), "memory").unwrap();
//! assert!(summary
//!     .deterministic_section()
//!     .contains("campaign/cases_executed 2"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod recorder;
pub mod summary;
pub mod trace;

pub use event::{Class, Event, FORMAT};
pub use recorder::{FlightRing, MemoryLog, Recorder, Span};
pub use summary::{Histogram, Summary};
pub use trace::{trace_from_events, trace_from_sources, trace_from_text};
