//! The [`Recorder`] handle instrumented code records through.
//!
//! A `Recorder` is either disabled (the default — every call is one
//! branch and a return) or backed by a shared sink that event lines are
//! appended to. Clones share the sink, so one handle can be fanned out
//! across worker threads and lanes.
//!
//! Counter increments are *coalesced*: they accumulate in an in-memory
//! map and are written out as delta events on [`Recorder::flush`] (and on
//! drop of the last handle). Folding sums deltas, so flushing more than
//! once — e.g. a run that is killed and resumed — still folds to the
//! same deterministic totals. Gauges, marks and spans are written
//! immediately in arrival order, which is fine because they are
//! wall-clock class and never compared bit-for-bit.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{Event, FORMAT};

/// A cheap, clone-able telemetry handle. Disabled (no-op) by default.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
    /// Flight-recorder tap: when set, every counter increment is also
    /// pushed (uncoalesced, in call order) into the bounded ring.
    flight: Option<Arc<FlightRing>>,
}

/// A bounded ring buffer of the most recent deterministic counter
/// events — the divergence flight recorder's capture tap.
///
/// The ring holds [`Event`] values, not rendered lines, so a snapshot
/// can be re-rendered or re-tagged downstream. Pushes past the capacity
/// evict the oldest event. Only deterministic counters are captured
/// (wall-clock gauges/marks/spans would make the dump differ between
/// runs), so a snapshot of the ring is a pure function of the
/// instrumented code path — byte-identical across worker counts and
/// kill+resume for the same case.
pub struct FlightRing {
    cap: usize,
    events: Mutex<VecDeque<Event>>,
}

impl FlightRing {
    /// Default ring capacity: the last 256 events before the trigger.
    pub const DEFAULT_CAP: usize = 256;

    /// A ring holding at most `cap` events (at least 1).
    pub fn new(cap: usize) -> FlightRing {
        FlightRing {
            cap: cap.max(1),
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&self, event: Event) {
        if let Ok(mut events) = self.events.lock() {
            if events.len() == self.cap {
                events.pop_front();
            }
            events.push_back(event);
        }
    }

    /// The ring's current contents, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        match self.events.lock() {
            Ok(events) => events.iter().cloned().collect(),
            Err(_) => Vec::new(),
        }
    }
}

impl std::fmt::Debug for FlightRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRing")
            .field("cap", &self.cap)
            .finish()
    }
}

struct Inner {
    sink: Mutex<Box<dyn Write + Send>>,
    counters: Mutex<BTreeMap<(String, String), u64>>,
    next_span: AtomicU64,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// A `Recorder` is a run-time tap, not part of any configuration's
/// identity: two configurations that differ only in where (or whether)
/// they record are the same configuration. This lets options structs
/// that derive `Eq` carry a recorder without it entering comparisons or
/// fingerprints.
impl PartialEq for Recorder {
    fn eq(&self, _other: &Recorder) -> bool {
        true
    }
}

impl Eq for Recorder {}

impl Recorder {
    /// A disabled recorder: every call is a no-op.
    pub fn disabled() -> Recorder {
        Recorder::default()
    }

    /// Records to `path` as an `asim2-events v1` JSONL stream (the
    /// `meta` header line is written immediately).
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be created or the header cannot be
    /// written. After construction, recording is best-effort and I/O
    /// errors are swallowed.
    pub fn to_file(path: &Path) -> io::Result<Recorder> {
        let file = std::fs::File::create(path)?;
        Recorder::to_writer(Box::new(BufWriter::new(file)))
    }

    /// Records to an arbitrary sink. Writes the `meta` header line.
    ///
    /// # Errors
    ///
    /// Fails if the header line cannot be written.
    pub fn to_writer(mut sink: Box<dyn Write + Send>) -> io::Result<Recorder> {
        let header = Event::Meta {
            format: FORMAT.into(),
        };
        writeln!(sink, "{}", header.render())?;
        Ok(Recorder {
            inner: Some(Arc::new(Inner {
                sink: Mutex::new(sink),
                counters: Mutex::new(BTreeMap::new()),
                next_span: AtomicU64::new(1),
            })),
            flight: None,
        })
    }

    /// An enabled recorder writing to an in-memory buffer, plus a handle
    /// to read the buffer back — the testing workhorse.
    pub fn memory() -> (Recorder, MemoryLog) {
        let log = MemoryLog(Arc::new(Mutex::new(Vec::new())));
        let recorder =
            Recorder::to_writer(Box::new(log.clone())).expect("in-memory writes cannot fail");
        (recorder, log)
    }

    /// Whether this handle records anywhere — to a sink, a flight ring,
    /// or both. Instrumented code gates its emission on this.
    pub fn enabled(&self) -> bool {
        self.inner.is_some() || self.flight.is_some()
    }

    /// A clone of this handle with a flight-recorder ring attached:
    /// counter increments additionally land in `ring`, uncoalesced and
    /// in call order. The sink (if any) is shared with `self`.
    #[must_use]
    pub fn with_flight(&self, ring: Arc<FlightRing>) -> Recorder {
        Recorder {
            inner: self.inner.clone(),
            flight: Some(ring),
        }
    }

    /// Adds `n` to the deterministic counter `src/key`. Increments are
    /// coalesced until [`flush`](Recorder::flush). `n == 0` is a no-op.
    pub fn count(&self, src: &str, key: &str, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(ring) = &self.flight {
            ring.push(Event::Counter {
                src: src.into(),
                key: key.into(),
                n,
            });
        }
        let Some(inner) = &self.inner else { return };
        if let Ok(mut counters) = inner.counters.lock() {
            *counters.entry((src.into(), key.into())).or_insert(0) += n;
        }
    }

    /// Records the wall-clock gauge `src/key` at `value` (last wins).
    pub fn gauge(&self, src: &str, key: &str, value: u64) {
        let Some(inner) = &self.inner else { return };
        inner.write_line(&Event::Gauge {
            src: src.into(),
            key: key.into(),
            value,
        });
    }

    /// Records a one-shot wall-clock mark, optionally with free text.
    pub fn mark(&self, src: &str, key: &str, detail: Option<&str>) {
        let Some(inner) = &self.inner else { return };
        inner.write_line(&Event::Mark {
            src: src.into(),
            key: key.into(),
            detail: detail.map(str::to_owned),
        });
    }

    /// Opens a wall-clock span; the returned guard writes the exit event
    /// (with measured duration) when dropped.
    pub fn span(&self, src: &str, key: &str) -> Span {
        let Some(inner) = &self.inner else {
            return Span { live: None };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        inner.write_line(&Event::SpanEnter {
            src: src.into(),
            key: key.into(),
            id,
        });
        Span {
            live: Some(LiveSpan {
                inner: Arc::clone(inner),
                src: src.into(),
                key: key.into(),
                id,
                start: Instant::now(),
            }),
        }
    }

    /// Re-emits an already-built event verbatim, bypassing counter
    /// coalescing — the seam a relay (e.g. the fleet controller folding
    /// remote workers' logs) uses to forward wall-clock events it did
    /// not originate. `meta` headers are skipped: the sink wrote its own
    /// when it opened.
    pub fn forward(&self, event: &Event) {
        let Some(inner) = &self.inner else { return };
        if matches!(event, Event::Meta { .. }) {
            return;
        }
        inner.write_line(event);
    }

    /// Allocates a span id from this recorder's sequence without opening
    /// a span — for relays that rewrite forwarded span events so remote
    /// ids cannot collide with local ones. Returns 0 when disabled.
    pub fn span_id(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.next_span.fetch_add(1, Ordering::Relaxed),
            None => 0,
        }
    }

    /// Writes coalesced counter deltas to the sink and flushes it.
    ///
    /// Safe to call more than once: deltas written by successive flushes
    /// sum to the same totals when folded.
    pub fn flush(&self) {
        let Some(inner) = &self.inner else { return };
        inner.flush();
    }
}

impl Inner {
    /// Best-effort: an event that cannot be written is dropped.
    fn write_line(&self, event: &Event) {
        if let Ok(mut sink) = self.sink.lock() {
            let _ = writeln!(sink, "{}", event.render());
        }
    }

    fn flush(&self) {
        let drained: Vec<((String, String), u64)> = match self.counters.lock() {
            Ok(mut counters) => std::mem::take(&mut *counters).into_iter().collect(),
            Err(_) => return,
        };
        for ((src, key), n) in drained {
            self.write_line(&Event::Counter { src, key, n });
        }
        if let Ok(mut sink) = self.sink.lock() {
            let _ = sink.flush();
        }
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Guard for an open span; writes the exit event on drop.
#[derive(Debug)]
pub struct Span {
    live: Option<LiveSpan>,
}

struct LiveSpan {
    inner: Arc<Inner>,
    src: String,
    key: String,
    id: u64,
    start: Instant,
}

impl std::fmt::Debug for LiveSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveSpan")
            .field("src", &self.src)
            .field("key", &self.key)
            .field("id", &self.id)
            .finish()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        let micros = u64::try_from(live.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        live.inner.write_line(&Event::SpanExit {
            src: live.src.clone(),
            key: live.key.clone(),
            id: live.id,
            micros,
        });
    }
}

/// Read-back handle for [`Recorder::memory`] logs.
#[derive(Clone)]
pub struct MemoryLog(Arc<Mutex<Vec<u8>>>);

impl MemoryLog {
    /// The log contents so far, as UTF-8 text.
    pub fn text(&self) -> String {
        let buf = self.0.lock().expect("memory log poisoned");
        String::from_utf8_lossy(&buf).into_owned()
    }
}

impl std::fmt::Debug for MemoryLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryLog").finish()
    }
}

impl Write for MemoryLog {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0
            .lock()
            .expect("memory log poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn parse_lines(text: &str) -> Vec<Event> {
        text.lines().map(|l| Event::parse(l).unwrap()).collect()
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let recorder = Recorder::disabled();
        assert!(!recorder.enabled());
        recorder.count("s", "k", 1);
        recorder.gauge("s", "k", 1);
        recorder.mark("s", "k", None);
        drop(recorder.span("s", "k"));
        recorder.flush();
    }

    #[test]
    fn header_is_written_immediately() {
        let (_recorder, log) = Recorder::memory();
        assert_eq!(
            parse_lines(&log.text()),
            vec![Event::Meta {
                format: FORMAT.into()
            }]
        );
    }

    #[test]
    fn counters_coalesce_until_flush() {
        let (recorder, log) = Recorder::memory();
        recorder.count("campaign", "cases_executed", 1);
        recorder.count("campaign", "cases_executed", 2);
        recorder.count("campaign", "cases_executed", 0); // no-op
        assert_eq!(parse_lines(&log.text()).len(), 1, "only the header yet");
        recorder.flush();
        let events = parse_lines(&log.text());
        assert!(events.contains(&Event::Counter {
            src: "campaign".into(),
            key: "cases_executed".into(),
            n: 3
        }));
    }

    #[test]
    fn multiple_flushes_emit_deltas() {
        let (recorder, log) = Recorder::memory();
        recorder.count("s", "k", 1);
        recorder.flush();
        recorder.count("s", "k", 2);
        recorder.flush();
        recorder.flush(); // empty flush writes nothing
        let total: u64 = parse_lines(&log.text())
            .iter()
            .filter_map(|e| match e {
                Event::Counter { n, .. } => Some(*n),
                _ => None,
            })
            .sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn spans_pair_enter_and_exit_by_id() {
        let (recorder, log) = Recorder::memory();
        let outer = recorder.span("campaign", "run");
        drop(recorder.span("campaign", "case"));
        drop(outer);
        let events = parse_lines(&log.text());
        let enters: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                Event::SpanEnter { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        let exits: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                Event::SpanExit { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(enters.len(), 2);
        let mut sorted_exits = exits.clone();
        sorted_exits.sort_unstable();
        let mut sorted_enters = enters.clone();
        sorted_enters.sort_unstable();
        assert_eq!(sorted_enters, sorted_exits);
    }

    #[test]
    fn clones_share_one_stream() {
        let (recorder, log) = Recorder::memory();
        let clone = recorder.clone();
        recorder.count("s", "k", 1);
        clone.count("s", "k", 1);
        recorder.flush();
        let events = parse_lines(&log.text());
        assert!(events.contains(&Event::Counter {
            src: "s".into(),
            key: "k".into(),
            n: 2
        }));
    }

    #[test]
    fn drop_flushes_pending_counters() {
        let (recorder, log) = Recorder::memory();
        recorder.count("s", "k", 5);
        drop(recorder);
        let events = parse_lines(&log.text());
        assert!(events.contains(&Event::Counter {
            src: "s".into(),
            key: "k".into(),
            n: 5
        }));
    }

    #[test]
    fn recorders_never_differ_for_eq_purposes() {
        let (enabled, _log) = Recorder::memory();
        assert_eq!(enabled, Recorder::disabled());
    }

    #[test]
    fn flight_ring_captures_counters_uncoalesced_in_order() {
        let ring = Arc::new(FlightRing::new(8));
        let recorder = Recorder::disabled().with_flight(Arc::clone(&ring));
        assert!(recorder.enabled(), "a flight tap alone enables the handle");
        recorder.count("s", "a", 1);
        recorder.count("s", "a", 2);
        recorder.count("s", "b", 3);
        recorder.count("s", "b", 0); // no-op
        let counter = |key: &str, n: u64| Event::Counter {
            src: "s".into(),
            key: key.into(),
            n,
        };
        assert_eq!(
            ring.snapshot(),
            vec![counter("a", 1), counter("a", 2), counter("b", 3)]
        );
        // Wall-clock events never enter the ring.
        recorder.gauge("s", "g", 1);
        recorder.mark("s", "m", None);
        drop(recorder.span("s", "sp"));
        assert_eq!(ring.snapshot().len(), 3);
    }

    #[test]
    fn flight_ring_is_bounded_and_keeps_the_newest() {
        let ring = Arc::new(FlightRing::new(2));
        let recorder = Recorder::disabled().with_flight(Arc::clone(&ring));
        for i in 1..=5u64 {
            recorder.count("s", "k", i);
        }
        let kept: Vec<u64> = ring
            .snapshot()
            .iter()
            .filter_map(|e| match e {
                Event::Counter { n, .. } => Some(*n),
                _ => None,
            })
            .collect();
        assert_eq!(kept, vec![4, 5]);
    }

    #[test]
    fn flight_tap_composes_with_a_sink() {
        let (recorder, log) = Recorder::memory();
        let ring = Arc::new(FlightRing::new(4));
        let tapped = recorder.with_flight(Arc::clone(&ring));
        tapped.count("s", "k", 2);
        tapped.flush();
        assert_eq!(ring.snapshot().len(), 1);
        assert!(parse_lines(&log.text()).contains(&Event::Counter {
            src: "s".into(),
            key: "k".into(),
            n: 2
        }));
    }

    #[test]
    fn forward_writes_verbatim_and_skips_meta() {
        let (recorder, log) = Recorder::memory();
        recorder.forward(&Event::Meta {
            format: "bogus".into(),
        });
        recorder.forward(&Event::Gauge {
            src: "w1/fleet".into(),
            key: "workers".into(),
            value: 2,
        });
        let events = parse_lines(&log.text());
        assert_eq!(events.len(), 2, "header + forwarded gauge: {events:?}");
        assert_eq!(
            events[1],
            Event::Gauge {
                src: "w1/fleet".into(),
                key: "workers".into(),
                value: 2
            }
        );
        // Disabled handles drop forwards and allocate id 0.
        Recorder::disabled().forward(&Event::Mark {
            src: "s".into(),
            key: "k".into(),
            detail: None,
        });
        assert_eq!(Recorder::disabled().span_id(), 0);
        assert_ne!(recorder.span_id(), 0);
    }
}
