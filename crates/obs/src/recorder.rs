//! The [`Recorder`] handle instrumented code records through.
//!
//! A `Recorder` is either disabled (the default — every call is one
//! branch and a return) or backed by a shared sink that event lines are
//! appended to. Clones share the sink, so one handle can be fanned out
//! across worker threads and lanes.
//!
//! Counter increments are *coalesced*: they accumulate in an in-memory
//! map and are written out as delta events on [`Recorder::flush`] (and on
//! drop of the last handle). Folding sums deltas, so flushing more than
//! once — e.g. a run that is killed and resumed — still folds to the
//! same deterministic totals. Gauges, marks and spans are written
//! immediately in arrival order, which is fine because they are
//! wall-clock class and never compared bit-for-bit.

use std::collections::BTreeMap;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{Event, FORMAT};

/// A cheap, clone-able telemetry handle. Disabled (no-op) by default.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

struct Inner {
    sink: Mutex<Box<dyn Write + Send>>,
    counters: Mutex<BTreeMap<(String, String), u64>>,
    next_span: AtomicU64,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// A `Recorder` is a run-time tap, not part of any configuration's
/// identity: two configurations that differ only in where (or whether)
/// they record are the same configuration. This lets options structs
/// that derive `Eq` carry a recorder without it entering comparisons or
/// fingerprints.
impl PartialEq for Recorder {
    fn eq(&self, _other: &Recorder) -> bool {
        true
    }
}

impl Eq for Recorder {}

impl Recorder {
    /// A disabled recorder: every call is a no-op.
    pub fn disabled() -> Recorder {
        Recorder::default()
    }

    /// Records to `path` as an `asim2-events v1` JSONL stream (the
    /// `meta` header line is written immediately).
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be created or the header cannot be
    /// written. After construction, recording is best-effort and I/O
    /// errors are swallowed.
    pub fn to_file(path: &Path) -> io::Result<Recorder> {
        let file = std::fs::File::create(path)?;
        Recorder::to_writer(Box::new(BufWriter::new(file)))
    }

    /// Records to an arbitrary sink. Writes the `meta` header line.
    ///
    /// # Errors
    ///
    /// Fails if the header line cannot be written.
    pub fn to_writer(mut sink: Box<dyn Write + Send>) -> io::Result<Recorder> {
        let header = Event::Meta {
            format: FORMAT.into(),
        };
        writeln!(sink, "{}", header.render())?;
        Ok(Recorder {
            inner: Some(Arc::new(Inner {
                sink: Mutex::new(sink),
                counters: Mutex::new(BTreeMap::new()),
                next_span: AtomicU64::new(1),
            })),
        })
    }

    /// An enabled recorder writing to an in-memory buffer, plus a handle
    /// to read the buffer back — the testing workhorse.
    pub fn memory() -> (Recorder, MemoryLog) {
        let log = MemoryLog(Arc::new(Mutex::new(Vec::new())));
        let recorder =
            Recorder::to_writer(Box::new(log.clone())).expect("in-memory writes cannot fail");
        (recorder, log)
    }

    /// Whether this handle records anywhere.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `n` to the deterministic counter `src/key`. Increments are
    /// coalesced until [`flush`](Recorder::flush). `n == 0` is a no-op.
    pub fn count(&self, src: &str, key: &str, n: u64) {
        let Some(inner) = &self.inner else { return };
        if n == 0 {
            return;
        }
        if let Ok(mut counters) = inner.counters.lock() {
            *counters.entry((src.into(), key.into())).or_insert(0) += n;
        }
    }

    /// Records the wall-clock gauge `src/key` at `value` (last wins).
    pub fn gauge(&self, src: &str, key: &str, value: u64) {
        let Some(inner) = &self.inner else { return };
        inner.write_line(&Event::Gauge {
            src: src.into(),
            key: key.into(),
            value,
        });
    }

    /// Records a one-shot wall-clock mark, optionally with free text.
    pub fn mark(&self, src: &str, key: &str, detail: Option<&str>) {
        let Some(inner) = &self.inner else { return };
        inner.write_line(&Event::Mark {
            src: src.into(),
            key: key.into(),
            detail: detail.map(str::to_owned),
        });
    }

    /// Opens a wall-clock span; the returned guard writes the exit event
    /// (with measured duration) when dropped.
    pub fn span(&self, src: &str, key: &str) -> Span {
        let Some(inner) = &self.inner else {
            return Span { live: None };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        inner.write_line(&Event::SpanEnter {
            src: src.into(),
            key: key.into(),
            id,
        });
        Span {
            live: Some(LiveSpan {
                inner: Arc::clone(inner),
                src: src.into(),
                key: key.into(),
                id,
                start: Instant::now(),
            }),
        }
    }

    /// Writes coalesced counter deltas to the sink and flushes it.
    ///
    /// Safe to call more than once: deltas written by successive flushes
    /// sum to the same totals when folded.
    pub fn flush(&self) {
        let Some(inner) = &self.inner else { return };
        inner.flush();
    }
}

impl Inner {
    /// Best-effort: an event that cannot be written is dropped.
    fn write_line(&self, event: &Event) {
        if let Ok(mut sink) = self.sink.lock() {
            let _ = writeln!(sink, "{}", event.render());
        }
    }

    fn flush(&self) {
        let drained: Vec<((String, String), u64)> = match self.counters.lock() {
            Ok(mut counters) => std::mem::take(&mut *counters).into_iter().collect(),
            Err(_) => return,
        };
        for ((src, key), n) in drained {
            self.write_line(&Event::Counter { src, key, n });
        }
        if let Ok(mut sink) = self.sink.lock() {
            let _ = sink.flush();
        }
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Guard for an open span; writes the exit event on drop.
#[derive(Debug)]
pub struct Span {
    live: Option<LiveSpan>,
}

struct LiveSpan {
    inner: Arc<Inner>,
    src: String,
    key: String,
    id: u64,
    start: Instant,
}

impl std::fmt::Debug for LiveSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveSpan")
            .field("src", &self.src)
            .field("key", &self.key)
            .field("id", &self.id)
            .finish()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        let micros = u64::try_from(live.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        live.inner.write_line(&Event::SpanExit {
            src: live.src.clone(),
            key: live.key.clone(),
            id: live.id,
            micros,
        });
    }
}

/// Read-back handle for [`Recorder::memory`] logs.
#[derive(Clone)]
pub struct MemoryLog(Arc<Mutex<Vec<u8>>>);

impl MemoryLog {
    /// The log contents so far, as UTF-8 text.
    pub fn text(&self) -> String {
        let buf = self.0.lock().expect("memory log poisoned");
        String::from_utf8_lossy(&buf).into_owned()
    }
}

impl std::fmt::Debug for MemoryLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryLog").finish()
    }
}

impl Write for MemoryLog {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0
            .lock()
            .expect("memory log poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn parse_lines(text: &str) -> Vec<Event> {
        text.lines().map(|l| Event::parse(l).unwrap()).collect()
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let recorder = Recorder::disabled();
        assert!(!recorder.enabled());
        recorder.count("s", "k", 1);
        recorder.gauge("s", "k", 1);
        recorder.mark("s", "k", None);
        drop(recorder.span("s", "k"));
        recorder.flush();
    }

    #[test]
    fn header_is_written_immediately() {
        let (_recorder, log) = Recorder::memory();
        assert_eq!(
            parse_lines(&log.text()),
            vec![Event::Meta {
                format: FORMAT.into()
            }]
        );
    }

    #[test]
    fn counters_coalesce_until_flush() {
        let (recorder, log) = Recorder::memory();
        recorder.count("campaign", "cases_executed", 1);
        recorder.count("campaign", "cases_executed", 2);
        recorder.count("campaign", "cases_executed", 0); // no-op
        assert_eq!(parse_lines(&log.text()).len(), 1, "only the header yet");
        recorder.flush();
        let events = parse_lines(&log.text());
        assert!(events.contains(&Event::Counter {
            src: "campaign".into(),
            key: "cases_executed".into(),
            n: 3
        }));
    }

    #[test]
    fn multiple_flushes_emit_deltas() {
        let (recorder, log) = Recorder::memory();
        recorder.count("s", "k", 1);
        recorder.flush();
        recorder.count("s", "k", 2);
        recorder.flush();
        recorder.flush(); // empty flush writes nothing
        let total: u64 = parse_lines(&log.text())
            .iter()
            .filter_map(|e| match e {
                Event::Counter { n, .. } => Some(*n),
                _ => None,
            })
            .sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn spans_pair_enter_and_exit_by_id() {
        let (recorder, log) = Recorder::memory();
        let outer = recorder.span("campaign", "run");
        drop(recorder.span("campaign", "case"));
        drop(outer);
        let events = parse_lines(&log.text());
        let enters: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                Event::SpanEnter { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        let exits: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                Event::SpanExit { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(enters.len(), 2);
        let mut sorted_exits = exits.clone();
        sorted_exits.sort_unstable();
        let mut sorted_enters = enters.clone();
        sorted_enters.sort_unstable();
        assert_eq!(sorted_enters, sorted_exits);
    }

    #[test]
    fn clones_share_one_stream() {
        let (recorder, log) = Recorder::memory();
        let clone = recorder.clone();
        recorder.count("s", "k", 1);
        clone.count("s", "k", 1);
        recorder.flush();
        let events = parse_lines(&log.text());
        assert!(events.contains(&Event::Counter {
            src: "s".into(),
            key: "k".into(),
            n: 2
        }));
    }

    #[test]
    fn drop_flushes_pending_counters() {
        let (recorder, log) = Recorder::memory();
        recorder.count("s", "k", 5);
        drop(recorder);
        let events = parse_lines(&log.text());
        assert!(events.contains(&Event::Counter {
            src: "s".into(),
            key: "k".into(),
            n: 5
        }));
    }

    #[test]
    fn recorders_never_differ_for_eq_purposes() {
        let (enabled, _log) = Recorder::memory();
        assert_eq!(enabled, Recorder::disabled());
    }
}
