//! Folding event logs into a two-section summary.
//!
//! A [`Summary`] folds any number of `asim2-events v1` logs — e.g. one
//! per shard of a distributed campaign — and renders two sections:
//!
//! - the **deterministic** section: counter totals, sorted by
//!   `src/key`. For a given campaign configuration this text is
//!   byte-identical across runs, worker counts and kill+resume, which
//!   is the contract `asim2 metrics summarize --check` enforces by
//!   literal byte comparison;
//! - the **wall-clock** section: span, gauge and mark aggregates,
//!   explicitly flagged non-deterministic.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use crate::event::{Event, FORMAT};

#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct GaugeAgg {
    last: u64,
    observations: u64,
}

/// A log₂-bucketed latency histogram over microsecond samples.
///
/// Bucket `b` holds every sample whose bit length is `b` — bucket 0 is
/// exactly `0`, bucket 1 is `1`, bucket 2 is `2..=3`, and so on up to
/// bucket 64 (`2^63..`). Recording is a single increment, merging is a
/// bucket-wise sum, and both are order-independent: folding any
/// partition of a sample set — per-shard logs, arbitrary splits —
/// produces identical bucket counts, which keeps percentile estimates
/// stable across worker counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram { buckets: [0; 65] }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one microsecond sample.
    pub fn record(&mut self, micros: u64) {
        self.buckets[(64 - micros.leading_zeros()) as usize] += 1;
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The bucket counts, index = sample bit length.
    pub fn buckets(&self) -> &[u64; 65] {
        &self.buckets
    }

    /// An upper bound on the `p`-th percentile sample (`p` in `0..=100`):
    /// the inclusive upper edge of the first bucket whose cumulative
    /// count reaches `ceil(p/100 · total)`. `None` on an empty histogram.
    pub fn percentile(&self, p: u8) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = (total * u64::from(p)).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (bucket, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(match bucket {
                    0 => 0,
                    64 => u64::MAX,
                    b => (1u64 << b) - 1,
                });
            }
        }
        unreachable!("cumulative count reaches the total")
    }
}

#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct SpanAgg {
    completed: u64,
    open: u64,
    total_micros: u64,
    latency: Histogram,
}

/// Aggregated view of one or more event logs.
#[derive(Debug, Default, Clone)]
pub struct Summary {
    counters: BTreeMap<(String, String), u64>,
    gauges: BTreeMap<(String, String), GaugeAgg>,
    marks: BTreeMap<(String, String), u64>,
    spans: BTreeMap<(String, String), SpanAgg>,
    events: u64,
    files: u64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Summary {
        Summary::default()
    }

    /// Folds one event into the aggregates.
    pub fn fold_event(&mut self, event: &Event) {
        self.events += 1;
        match event {
            Event::Meta { .. } => {}
            Event::Counter { src, key, n } => {
                *self.counters.entry((src.clone(), key.clone())).or_insert(0) += n;
            }
            Event::Gauge { src, key, value } => {
                let agg = self.gauges.entry((src.clone(), key.clone())).or_default();
                agg.last = *value;
                agg.observations += 1;
            }
            Event::Mark { src, key, .. } => {
                *self.marks.entry((src.clone(), key.clone())).or_insert(0) += 1;
            }
            Event::SpanEnter { src, key, .. } => {
                self.spans
                    .entry((src.clone(), key.clone()))
                    .or_default()
                    .open += 1;
            }
            Event::SpanExit {
                src, key, micros, ..
            } => {
                let agg = self.spans.entry((src.clone(), key.clone())).or_default();
                agg.open = agg.open.saturating_sub(1);
                agg.completed += 1;
                agg.total_micros += micros;
                agg.latency.record(*micros);
            }
        }
    }

    /// Folds one event log given as text. `label` names the log in
    /// error messages (a path, or `"memory"` in tests).
    ///
    /// Validation is strict: the first line must be the v1 `meta`
    /// header, and every line must parse against the schema.
    ///
    /// # Errors
    ///
    /// A message naming the label, line number and violation.
    pub fn fold_text(&mut self, text: &str, label: &str) -> Result<(), String> {
        let mut saw_header = false;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let event = Event::parse(line).map_err(|e| format!("{label}:{}: {e}", lineno + 1))?;
            if !saw_header {
                match &event {
                    Event::Meta { format } if format == FORMAT => saw_header = true,
                    Event::Meta { format } => {
                        return Err(format!(
                            "{label}:{}: unsupported format {format:?} (expected {FORMAT:?})",
                            lineno + 1
                        ));
                    }
                    _ => {
                        return Err(format!(
                            "{label}:{}: first event must be the {FORMAT:?} meta header",
                            lineno + 1
                        ));
                    }
                }
            }
            self.fold_event(&event);
        }
        if !saw_header {
            return Err(format!("{label}: empty event log (missing meta header)"));
        }
        self.files += 1;
        Ok(())
    }

    /// Reads and folds one event log file.
    ///
    /// # Errors
    ///
    /// I/O failures and schema violations, with the path in the message.
    pub fn fold_file(&mut self, path: &Path) -> Result<(), String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        self.fold_text(&text, &path.display().to_string())
    }

    /// Total events folded so far (including headers).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Number of logs folded so far.
    pub fn files(&self) -> u64 {
        self.files
    }

    /// The folded total for one deterministic counter, if recorded.
    pub fn counter(&self, src: &str, key: &str) -> Option<u64> {
        self.counters.get(&(src.into(), key.into())).copied()
    }

    /// The latency histogram for one span key, if any span completed.
    pub fn span_latency(&self, src: &str, key: &str) -> Option<&Histogram> {
        self.spans
            .get(&(src.into(), key.into()))
            .map(|agg| &agg.latency)
            .filter(|h| h.count() > 0)
    }

    /// The deterministic section: counter totals, one `src/key total`
    /// line each, sorted. Byte-identical across runs of the same
    /// configuration — `--check` compares this text literally.
    pub fn deterministic_section(&self) -> String {
        let mut out = String::from("deterministic counters:\n");
        if self.counters.is_empty() {
            out.push_str("  (none)\n");
        }
        for ((src, key), total) in &self.counters {
            out.push_str(&format!("  {src}/{key} {total}\n"));
        }
        out
    }

    /// The wall-clock section: spans, gauges and marks, flagged
    /// non-deterministic.
    pub fn wall_clock_section(&self) -> String {
        let mut out = String::from("wall-clock (non-deterministic, excluded from --check):\n");
        if self.spans.is_empty() && self.gauges.is_empty() && self.marks.is_empty() {
            out.push_str("  (none)\n");
        }
        for ((src, key), agg) in &self.spans {
            out.push_str(&format!(
                "  span  {src}/{key}: {} completed, {:.1} ms total",
                agg.completed,
                agg.total_micros as f64 / 1000.0
            ));
            // Log₂-bucket upper bounds, so `≤` not `=`; still plenty to
            // spot a p99 an order of magnitude past the p50.
            if let Some(p50) = agg.latency.percentile(50) {
                let (p90, p99) = (
                    agg.latency.percentile(90).expect("non-empty"),
                    agg.latency.percentile(99).expect("non-empty"),
                );
                out.push_str(&format!(
                    ", p50<={:.1} ms, p90<={:.1} ms, p99<={:.1} ms",
                    p50 as f64 / 1000.0,
                    p90 as f64 / 1000.0,
                    p99 as f64 / 1000.0
                ));
            }
            if agg.open > 0 {
                out.push_str(&format!(", {} unclosed", agg.open));
            }
            out.push('\n');
        }
        for ((src, key), agg) in &self.gauges {
            out.push_str(&format!(
                "  gauge {src}/{key}: last {} ({} observation{})\n",
                agg.last,
                agg.observations,
                if agg.observations == 1 { "" } else { "s" }
            ));
        }
        for ((src, key), count) in &self.marks {
            out.push_str(&format!("  mark  {src}/{key}: {count}\n"));
        }
        out
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "metrics summary: {} event(s) from {} log(s)",
            self.events, self.files
        )?;
        f.write_str(&self.deterministic_section())?;
        f.write_str(&self.wall_clock_section())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn log_of(build: impl Fn(&Recorder)) -> String {
        let (recorder, log) = Recorder::memory();
        build(&recorder);
        recorder.flush();
        log.text()
    }

    #[test]
    fn counters_fold_across_files() {
        let a = log_of(|r| r.count("campaign", "cases_executed", 3));
        let b = log_of(|r| {
            r.count("campaign", "cases_executed", 4);
            r.count("session", "cycles", 100);
        });
        let mut summary = Summary::new();
        summary.fold_text(&a, "a").unwrap();
        summary.fold_text(&b, "b").unwrap();
        assert_eq!(summary.counter("campaign", "cases_executed"), Some(7));
        assert_eq!(summary.counter("session", "cycles"), Some(100));
        assert_eq!(summary.files(), 2);
        assert_eq!(
            summary.deterministic_section(),
            "deterministic counters:\n  campaign/cases_executed 7\n  session/cycles 100\n"
        );
    }

    #[test]
    fn wall_clock_stays_out_of_the_deterministic_section() {
        let text = log_of(|r| {
            r.gauge("campaign", "workers", 4);
            r.mark("shard", "run", Some("shard 0"));
            drop(r.span("campaign", "case"));
            r.count("campaign", "cases_executed", 1);
        });
        let mut summary = Summary::new();
        summary.fold_text(&text, "memory").unwrap();
        let det = summary.deterministic_section();
        assert!(!det.contains("workers"), "{det}");
        assert!(!det.contains("span"), "{det}");
        let wall = summary.wall_clock_section();
        assert!(wall.contains("non-deterministic"));
        assert!(wall.contains("gauge campaign/workers: last 4"));
        assert!(wall.contains("mark  shard/run: 1"));
        assert!(wall.contains("span  campaign/case: 1 completed"));
    }

    #[test]
    fn missing_header_is_rejected() {
        let mut summary = Summary::new();
        let err = summary
            .fold_text(
                "{\"v\":1,\"e\":\"counter\",\"src\":\"s\",\"key\":\"k\",\"n\":1}\n",
                "x",
            )
            .unwrap_err();
        assert!(err.contains("meta header"), "{err}");
        assert!(Summary::new().fold_text("", "x").is_err());
    }

    #[test]
    fn schema_violations_name_file_and_line() {
        let (recorder, log) = Recorder::memory();
        recorder.flush();
        let text = format!("{}garbage\n", log.text());
        let err = Summary::new().fold_text(&text, "shard0.jsonl").unwrap_err();
        assert!(err.starts_with("shard0.jsonl:2:"), "{err}");
    }

    #[test]
    fn empty_summary_renders_placeholders() {
        let rendered = Summary::new().to_string();
        assert!(rendered.contains("deterministic counters:\n  (none)"));
        assert!(rendered.contains("(none)"));
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::new();
        for micros in [0, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            h.record(micros);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.buckets()[0], 1); // 0
        assert_eq!(h.buckets()[1], 1); // 1
        assert_eq!(h.buckets()[2], 2); // 2, 3
        assert_eq!(h.buckets()[3], 2); // 4, 7
        assert_eq!(h.buckets()[4], 1); // 8
        assert_eq!(h.buckets()[10], 1); // 1023
        assert_eq!(h.buckets()[11], 1); // 1024
        assert_eq!(h.buckets()[64], 1); // u64::MAX
    }

    #[test]
    fn histogram_percentiles_are_bucket_upper_bounds() {
        assert_eq!(Histogram::new().percentile(50), None);
        let mut h = Histogram::new();
        for micros in 0..100 {
            h.record(micros);
        }
        // Ranks 50/90/99 land in buckets 6 (32..=63) and 7 (64..=127).
        assert_eq!(h.percentile(0), Some(0));
        assert_eq!(h.percentile(50), Some(63));
        assert_eq!(h.percentile(90), Some(127));
        assert_eq!(h.percentile(99), Some(127));
        assert_eq!(h.percentile(100), Some(127));
        let mut top = Histogram::new();
        top.record(u64::MAX);
        assert_eq!(top.percentile(100), Some(u64::MAX));
    }

    #[test]
    fn histogram_merge_matches_sequential_recording() {
        let samples: Vec<u64> = (0..200).map(|i| i * 37 % 5000).collect();
        let mut whole = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for (i, &s) in samples.iter().enumerate() {
            whole.record(s);
            if i % 2 == 0 {
                left.record(s);
            } else {
                right.record(s);
            }
        }
        let mut merged = Histogram::new();
        merged.merge(&left);
        merged.merge(&right);
        assert_eq!(merged, whole);
    }

    #[test]
    fn span_percentiles_render_in_the_wall_clock_section() {
        let text = log_of(|r| drop(r.span("campaign", "case")));
        let mut summary = Summary::new();
        summary.fold_text(&text, "memory").unwrap();
        let wall = summary.wall_clock_section();
        assert!(wall.contains("p50<="), "{wall}");
        assert!(wall.contains("p99<="), "{wall}");
        assert!(summary.span_latency("campaign", "case").is_some());
        assert!(summary.span_latency("campaign", "missing").is_none());
    }

    #[test]
    fn unclosed_spans_are_reported() {
        let (recorder, log) = Recorder::memory();
        let span = recorder.span("campaign", "run");
        recorder.flush();
        let mut summary = Summary::new();
        summary.fold_text(&log.text(), "memory").unwrap();
        assert!(summary.wall_clock_section().contains("1 unclosed"));
        drop(span);
    }
}
