//! The `asim2-events v1` event model and its JSONL encoding.
//!
//! One event is one flat JSON object on one line. Values are only ever
//! strings or unsigned integers, which keeps the hand-rolled
//! encoder/parser small and the schema strict — anything else on a line
//! is a validation error, which is exactly what the CI schema gate wants.
//!
//! ```text
//! {"v":1,"e":"meta","format":"asim2-events v1"}
//! {"v":1,"e":"counter","src":"campaign","key":"cases_executed","n":100}
//! {"v":1,"e":"gauge","src":"campaign","key":"workers","value":4}
//! {"v":1,"e":"mark","src":"shard","key":"run","detail":"shard 0"}
//! {"v":1,"e":"span","src":"campaign","key":"case","id":7,"phase":"enter"}
//! {"v":1,"e":"span","src":"campaign","key":"case","id":7,"phase":"exit","us":1523}
//! ```
//!
//! Every event carries a source component (`src`) and a static key
//! (`key`). Counters are the **deterministic** class; gauges, marks and
//! spans are **wall-clock** (see [`Class`]). The first line of a stream
//! is always the `meta` header pinning the format version.

/// The event-stream format line; bump on breaking changes.
pub const FORMAT: &str = "asim2-events v1";

/// The determinism class of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Byte-identical for a given configuration across runs, worker
    /// counts and kill+resume (folded totals, see
    /// [`Summary`](crate::Summary)).
    Deterministic,
    /// Timing- and scheduling-dependent; excluded from all bit-identity
    /// comparisons.
    WallClock,
}

/// One `asim2-events v1` event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// The stream header: first line of every event log.
    Meta {
        /// The format string (must equal [`FORMAT`]).
        format: String,
    },
    /// A monotonic counter increment — the deterministic class.
    Counter {
        /// Source component (`session`, `lockstep`, `campaign`, ...).
        src: String,
        /// Counter key (`cycles`, `cases_executed`, ...).
        key: String,
        /// Increment (coalesced increments sum; folding sums again).
        n: u64,
    },
    /// A point-in-time value (last write wins in summaries) — wall-clock.
    Gauge {
        /// Source component.
        src: String,
        /// Gauge key.
        key: String,
        /// The observed value.
        value: u64,
    },
    /// A one-shot annotation — wall-clock (a resumed run repeats marks).
    Mark {
        /// Source component.
        src: String,
        /// Mark key.
        key: String,
        /// Optional free-text payload.
        detail: Option<String>,
    },
    /// A span opening — wall-clock.
    SpanEnter {
        /// Source component.
        src: String,
        /// Span key.
        key: String,
        /// Stream-unique span id pairing enter with exit.
        id: u64,
    },
    /// A span closing, with its measured duration — wall-clock.
    SpanExit {
        /// Source component.
        src: String,
        /// Span key.
        key: String,
        /// Stream-unique span id pairing enter with exit.
        id: u64,
        /// Wall-clock duration in microseconds.
        micros: u64,
    },
}

impl Event {
    /// The event's determinism class ([`Meta`](Event::Meta) is
    /// wall-clock: it describes the stream, not the run).
    pub fn class(&self) -> Class {
        match self {
            Event::Counter { .. } => Class::Deterministic,
            _ => Class::WallClock,
        }
    }

    /// Encodes the event as one JSON line (no trailing newline).
    pub fn render(&self) -> String {
        let mut line = String::from("{\"v\":1,\"e\":");
        let field = |line: &mut String, name: &str, value: &FieldValue<'_>| {
            line.push_str(",\"");
            line.push_str(name);
            line.push_str("\":");
            match value {
                FieldValue::Str(s) => {
                    line.push('"');
                    escape_into(s, line);
                    line.push('"');
                }
                FieldValue::Num(n) => line.push_str(&n.to_string()),
            }
        };
        match self {
            Event::Meta { format } => {
                line.push_str("\"meta\"");
                field(&mut line, "format", &FieldValue::Str(format));
            }
            Event::Counter { src, key, n } => {
                line.push_str("\"counter\"");
                field(&mut line, "src", &FieldValue::Str(src));
                field(&mut line, "key", &FieldValue::Str(key));
                field(&mut line, "n", &FieldValue::Num(*n));
            }
            Event::Gauge { src, key, value } => {
                line.push_str("\"gauge\"");
                field(&mut line, "src", &FieldValue::Str(src));
                field(&mut line, "key", &FieldValue::Str(key));
                field(&mut line, "value", &FieldValue::Num(*value));
            }
            Event::Mark { src, key, detail } => {
                line.push_str("\"mark\"");
                field(&mut line, "src", &FieldValue::Str(src));
                field(&mut line, "key", &FieldValue::Str(key));
                if let Some(detail) = detail {
                    field(&mut line, "detail", &FieldValue::Str(detail));
                }
            }
            Event::SpanEnter { src, key, id } => {
                line.push_str("\"span\"");
                field(&mut line, "src", &FieldValue::Str(src));
                field(&mut line, "key", &FieldValue::Str(key));
                field(&mut line, "id", &FieldValue::Num(*id));
                field(&mut line, "phase", &FieldValue::Str("enter"));
            }
            Event::SpanExit {
                src,
                key,
                id,
                micros,
            } => {
                line.push_str("\"span\"");
                field(&mut line, "src", &FieldValue::Str(src));
                field(&mut line, "key", &FieldValue::Str(key));
                field(&mut line, "id", &FieldValue::Num(*id));
                field(&mut line, "phase", &FieldValue::Str("exit"));
                field(&mut line, "us", &FieldValue::Num(*micros));
            }
        }
        line.push('}');
        line
    }

    /// Parses and validates one JSONL line against the v1 schema.
    ///
    /// Strict by design: unknown event types, unknown fields, missing
    /// fields, nested values, floats and negative numbers are all
    /// errors — this parser *is* the schema validator CI runs.
    ///
    /// # Errors
    ///
    /// A message describing the first violation found.
    pub fn parse(line: &str) -> Result<Event, String> {
        let fields = parse_flat_object(line)?;
        let get = |name: &str| {
            fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field {name:?}"))
        };
        let text = |name: &str| match get(name)? {
            ParsedValue::Str(s) => Ok(s.clone()),
            ParsedValue::Num(_) => Err(format!("field {name:?} must be a string")),
        };
        let num = |name: &str| match get(name)? {
            ParsedValue::Num(n) => Ok(*n),
            ParsedValue::Str(_) => Err(format!("field {name:?} must be a number")),
        };
        if num("v")? != 1 {
            return Err("unsupported event version (expected v:1)".into());
        }
        let kind = text("e")?;
        let allowed: &[&str] = match kind.as_str() {
            "meta" => &["v", "e", "format"],
            "counter" => &["v", "e", "src", "key", "n"],
            "gauge" => &["v", "e", "src", "key", "value"],
            "mark" => &["v", "e", "src", "key", "detail"],
            "span" => &["v", "e", "src", "key", "id", "phase", "us"],
            other => return Err(format!("unknown event type {other:?}")),
        };
        for (name, _) in &fields {
            if !allowed.contains(&name.as_str()) {
                return Err(format!("unknown field {name:?} on a {kind:?} event"));
            }
        }
        let ident = |name: &str| {
            let value = text(name)?;
            if value.is_empty() {
                return Err(format!("field {name:?} must not be empty"));
            }
            Ok(value)
        };
        match kind.as_str() {
            "meta" => Ok(Event::Meta {
                format: text("format")?,
            }),
            "counter" => Ok(Event::Counter {
                src: ident("src")?,
                key: ident("key")?,
                n: num("n")?,
            }),
            "gauge" => Ok(Event::Gauge {
                src: ident("src")?,
                key: ident("key")?,
                value: num("value")?,
            }),
            "mark" => Ok(Event::Mark {
                src: ident("src")?,
                key: ident("key")?,
                detail: match fields.iter().find(|(k, _)| k == "detail") {
                    None => None,
                    Some(_) => Some(text("detail")?),
                },
            }),
            "span" => {
                let (src, key, id) = (ident("src")?, ident("key")?, num("id")?);
                match text("phase")?.as_str() {
                    "enter" => {
                        if fields.iter().any(|(k, _)| k == "us") {
                            return Err("span enter must not carry \"us\"".into());
                        }
                        Ok(Event::SpanEnter { src, key, id })
                    }
                    "exit" => Ok(Event::SpanExit {
                        src,
                        key,
                        id,
                        micros: num("us")?,
                    }),
                    other => Err(format!("unknown span phase {other:?}")),
                }
            }
            _ => unreachable!("kind validated above"),
        }
    }
}

enum FieldValue<'a> {
    Str(&'a str),
    Num(u64),
}

#[derive(Debug)]
enum ParsedValue {
    Str(String),
    Num(u64),
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Parses one flat JSON object: string keys, string or unsigned-integer
/// values, nothing nested. Duplicate keys are rejected.
fn parse_flat_object(line: &str) -> Result<Vec<(String, ParsedValue)>, String> {
    let mut chars = line.trim().chars().peekable();
    let mut fields: Vec<(String, ParsedValue)> = Vec::new();

    let expect =
        |chars: &mut std::iter::Peekable<std::str::Chars<'_>>, want: char| match chars.next() {
            Some(c) if c == want => Ok(()),
            Some(c) => Err(format!("expected {want:?}, found {c:?}")),
            None => Err(format!("expected {want:?}, found end of line")),
        };
    fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
        while chars.peek().is_some_and(|c| c.is_ascii_whitespace()) {
            chars.next();
        }
    }
    fn string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
        let mut out = String::new();
        loop {
            match chars.next() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(out),
                Some('\\') => match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('u') => {
                        let hex: String = chars.by_ref().take(4).collect();
                        if hex.len() != 4 {
                            return Err("truncated \\u escape".into());
                        }
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    skip_ws(&mut chars);
    expect(&mut chars, '{')?;
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            expect(&mut chars, '"')?;
            let key = string(&mut chars)?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate field {key:?}"));
            }
            skip_ws(&mut chars);
            expect(&mut chars, ':')?;
            skip_ws(&mut chars);
            let value = match chars.peek() {
                Some('"') => {
                    chars.next();
                    ParsedValue::Str(string(&mut chars)?)
                }
                Some(c) if c.is_ascii_digit() => {
                    let mut digits = String::new();
                    while chars.peek().is_some_and(char::is_ascii_digit) {
                        digits.push(chars.next().expect("peeked"));
                    }
                    if chars.peek().is_some_and(|c| matches!(c, '.' | 'e' | 'E')) {
                        return Err("floats are not part of the v1 schema".into());
                    }
                    ParsedValue::Num(
                        digits
                            .parse()
                            .map_err(|_| format!("number out of range: {digits}"))?,
                    )
                }
                other => {
                    return Err(format!(
                        "values must be strings or unsigned integers, found {other:?}"
                    ))
                }
            };
            fields.push((key, value));
            skip_ws(&mut chars);
            match chars.next() {
                Some(',') => continue,
                Some('}') => break,
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
    skip_ws(&mut chars);
    if let Some(c) = chars.next() {
        return Err(format!("trailing content after object: {c:?}"));
    }
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_event_round_trips() {
        let events = [
            Event::Meta {
                format: FORMAT.into(),
            },
            Event::Counter {
                src: "campaign".into(),
                key: "cases_executed".into(),
                n: u64::MAX,
            },
            Event::Gauge {
                src: "campaign".into(),
                key: "workers".into(),
                value: 4,
            },
            Event::Mark {
                src: "shard".into(),
                key: "run".into(),
                detail: None,
            },
            Event::Mark {
                src: "shard".into(),
                key: "run".into(),
                detail: Some("quoted \"text\"\nwith\tcontrol \u{1} bytes".into()),
            },
            Event::SpanEnter {
                src: "campaign".into(),
                key: "case".into(),
                id: 7,
            },
            Event::SpanExit {
                src: "campaign".into(),
                key: "case".into(),
                id: 7,
                micros: 1523,
            },
        ];
        for event in events {
            let line = event.render();
            assert_eq!(Event::parse(&line).unwrap(), event, "{line}");
        }
    }

    #[test]
    fn counters_are_the_deterministic_class() {
        let counter = Event::Counter {
            src: "s".into(),
            key: "k".into(),
            n: 1,
        };
        assert_eq!(counter.class(), Class::Deterministic);
        let gauge = Event::Gauge {
            src: "s".into(),
            key: "k".into(),
            value: 1,
        };
        assert_eq!(gauge.class(), Class::WallClock);
    }

    #[test]
    fn schema_violations_are_rejected() {
        let bad = [
            "not json at all",
            "{}",                                                       // no v/e
            r#"{"v":2,"e":"counter","src":"s","key":"k","n":1}"#,       // wrong version
            r#"{"v":1,"e":"tracepoint","src":"s","key":"k"}"#,          // unknown type
            r#"{"v":1,"e":"counter","src":"s","key":"k"}"#,             // missing n
            r#"{"v":1,"e":"counter","src":"s","key":"k","n":-1}"#,      // negative
            r#"{"v":1,"e":"counter","src":"s","key":"k","n":1.5}"#,     // float
            r#"{"v":1,"e":"counter","src":"s","key":"k","n":{}}"#,      // nested
            r#"{"v":1,"e":"counter","src":"","key":"k","n":1}"#,        // empty src
            r#"{"v":1,"e":"counter","src":"s","key":"k","n":1,"x":2}"#, // unknown field
            r#"{"v":1,"e":"counter","src":"s","key":"k","n":1,"n":2}"#, // duplicate
            r#"{"v":1,"e":"span","src":"s","key":"k","id":1,"phase":"enter","us":3}"#,
            r#"{"v":1,"e":"span","src":"s","key":"k","id":1,"phase":"open"}"#,
            r#"{"v":1,"e":"counter","src":"s","key":"k","n":1} extra"#,
        ];
        for line in bad {
            assert!(Event::parse(line).is_err(), "accepted: {line}");
        }
    }

    #[test]
    fn parser_accepts_whitespace_variants() {
        let line = r#" { "v" : 1 , "e" : "gauge" , "src" : "s" , "key" : "k" , "value" : 9 } "#;
        assert_eq!(
            Event::parse(line).unwrap(),
            Event::Gauge {
                src: "s".into(),
                key: "k".into(),
                value: 9
            }
        );
    }
}
