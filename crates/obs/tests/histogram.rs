//! Property tests for the latency [`Histogram`]: bucket counts are a
//! pure function of the sample *multiset*, independent of how the
//! samples are partitioned across logs — the invariant that makes
//! per-case latency percentiles stable across worker counts in
//! `metrics summarize`.

use proptest::prelude::*;
use rtl_obs::Histogram;

fn record_all(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    /// Any round-robin split of the samples across K "workers", each
    /// folding its own histogram, merges back to the bucket counts of
    /// recording the whole set sequentially — and the percentiles agree.
    #[test]
    fn round_robin_split_folds_to_identical_buckets(
        samples in proptest::collection::vec(0u64..2_000_000, 0..200),
        lanes in 1usize..8,
    ) {
        let whole = record_all(&samples);
        let mut parts = vec![Histogram::new(); lanes];
        for (i, &s) in samples.iter().enumerate() {
            parts[i % lanes].record(s);
        }
        let mut merged = Histogram::new();
        for part in &parts {
            merged.merge(part);
        }
        prop_assert_eq!(merged.buckets(), whole.buckets());
        prop_assert_eq!(merged.count(), samples.len() as u64);
        for p in [0u8, 50, 90, 99, 100] {
            prop_assert_eq!(merged.percentile(p), whole.percentile(p));
        }
    }

    /// A percentile is a true upper bound: at least `ceil(p/100·n)`
    /// samples are `<=` the reported value, and the reported value is
    /// never more than one bucket above the largest sample.
    #[test]
    fn percentile_is_an_upper_bound(
        samples in proptest::collection::vec(0u64..2_000_000, 1..200),
        p in 0u8..101,
    ) {
        let h = record_all(&samples);
        let bound = h.percentile(p).expect("non-empty");
        let rank = ((samples.len() as u64) * u64::from(p)).div_ceil(100).max(1);
        let covered = samples.iter().filter(|&&s| s <= bound).count() as u64;
        prop_assert!(covered >= rank, "p{p}: bound {bound} covers {covered} < rank {rank}");
        let max = *samples.iter().max().expect("non-empty");
        prop_assert!(
            bound <= max.saturating_mul(2).max(1),
            "p{p}: bound {bound} overshoots max {max}"
        );
    }
}
