//! Trace sinks — where a simulation's trace/output text goes.
//!
//! The engines themselves write to a raw byte stream; everything *driving*
//! an engine goes through [`TraceSink`], the typed replacement for the
//! `&mut dyn Write` that used to thread through every call site. A sink
//! receives the trace bytes as they are produced and, once per completed
//! cycle, a [`TraceSink::end_cycle`] callback with the post-step state —
//! the hook the VCD sink uses to sample waveforms.
//!
//! Bundled sinks:
//!
//! * [`NullSink`] — discards everything (throughput runs),
//! * [`BufferSink`] — captures into memory (tests, divergence windows),
//! * [`WriteSink`] — adapts any [`std::io::Write`] (stdout, files),
//! * [`TeeSink`] — duplicates into two sinks (capture *and* stream),
//! * [`VcdSink`](crate::vcd::VcdSink) — records a waveform per cycle.

use crate::design::Design;
use crate::state::SimState;
use std::io::{self, Write};

/// A destination for simulation trace/output text, with a per-cycle hook.
pub trait TraceSink {
    /// Receives a chunk of trace/output bytes.
    ///
    /// # Errors
    ///
    /// I/O failure of the underlying destination; the session surfaces it
    /// as [`StopReason::Error`](crate::session::StopReason).
    fn write_bytes(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Flushes buffered bytes to the underlying destination.
    ///
    /// # Errors
    ///
    /// I/O failure of the underlying destination.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Called by [`Session`](crate::session::Session) after every completed
    /// cycle with the design and post-step state. Sinks that only care
    /// about the byte stream ignore it.
    ///
    /// # Errors
    ///
    /// I/O failure of the underlying destination.
    fn end_cycle(&mut self, design: &Design, state: &SimState) -> io::Result<()> {
        let _ = (design, state);
        Ok(())
    }

    /// The bytes captured so far, when this sink (or one it wraps)
    /// buffers them. `None` for pass-through sinks.
    fn captured(&self) -> Option<&[u8]> {
        None
    }
}

/// Discards everything — the right sink for throughput experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn write_bytes(&mut self, _bytes: &[u8]) -> io::Result<()> {
        Ok(())
    }
}

/// Captures the trace into memory; [`TraceSink::captured`] returns it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BufferSink {
    bytes: Vec<u8>,
}

impl BufferSink {
    /// An empty capture buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The captured bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the sink, returning the captured bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// The captured bytes as (lossy) text.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.bytes).into_owned()
    }
}

impl TraceSink for BufferSink {
    fn write_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.bytes.extend_from_slice(bytes);
        Ok(())
    }

    fn captured(&self) -> Option<&[u8]> {
        Some(&self.bytes)
    }
}

/// Adapts any [`std::io::Write`] into a sink (stdout, a file, a pipe).
#[derive(Debug)]
pub struct WriteSink<W: Write>(W);

impl<W: Write> WriteSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        WriteSink(writer)
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.0
    }
}

impl<W: Write> TraceSink for WriteSink<W> {
    fn write_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.0.write_all(bytes)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

/// Duplicates every byte (and cycle hook) into two sinks — capture a run
/// while also streaming it, or record a VCD alongside the text trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TeeSink<A: TraceSink, B: TraceSink> {
    first: A,
    second: B,
}

impl<A: TraceSink, B: TraceSink> TeeSink<A, B> {
    /// Tees into `first` and `second`, in that order.
    pub fn new(first: A, second: B) -> Self {
        TeeSink { first, second }
    }

    /// The first sink.
    pub fn first(&self) -> &A {
        &self.first
    }

    /// The second sink.
    pub fn second(&self) -> &B {
        &self.second
    }

    /// Consumes the tee, returning both sinks.
    pub fn into_parts(self) -> (A, B) {
        (self.first, self.second)
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    fn write_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.first.write_bytes(bytes)?;
        self.second.write_bytes(bytes)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.first.flush()?;
        self.second.flush()
    }

    fn end_cycle(&mut self, design: &Design, state: &SimState) -> io::Result<()> {
        self.first.end_cycle(design, state)?;
        self.second.end_cycle(design, state)
    }

    fn captured(&self) -> Option<&[u8]> {
        self.first.captured().or_else(|| self.second.captured())
    }
}

/// Adapts a sink to the raw [`std::io::Write`] the [`Engine::step`]
/// contract uses — the one place the byte stream crosses back into `dyn
/// Write`, owned by the session layer.
///
/// [`Engine::step`]: crate::engine::Engine::step
pub(crate) struct SinkWriter<'a>(pub &'a mut dyn TraceSink);

impl Write for SinkWriter<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write_bytes(buf)?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_captures_bytes() {
        let mut s = BufferSink::new();
        s.write_bytes(b"abc").unwrap();
        s.write_bytes(b"def").unwrap();
        assert_eq!(s.bytes(), b"abcdef");
        assert_eq!(s.captured(), Some(&b"abcdef"[..]));
        assert_eq!(s.text(), "abcdef");
        assert_eq!(s.into_bytes(), b"abcdef");
    }

    #[test]
    fn null_discards() {
        let mut s = NullSink;
        s.write_bytes(b"anything").unwrap();
        assert_eq!(s.captured(), None);
    }

    #[test]
    fn write_sink_passes_through() {
        let mut s = WriteSink::new(Vec::new());
        s.write_bytes(b"xy").unwrap();
        s.flush().unwrap();
        assert_eq!(s.into_inner(), b"xy");
    }

    #[test]
    fn tee_duplicates_and_surfaces_capture() {
        let mut t = TeeSink::new(BufferSink::new(), WriteSink::new(Vec::new()));
        t.write_bytes(b"12").unwrap();
        assert_eq!(t.captured(), Some(&b"12"[..]));
        let (a, b) = t.into_parts();
        assert_eq!(a.bytes(), b"12");
        assert_eq!(b.into_inner(), b"12");
    }

    #[test]
    fn sink_writer_adapts_to_io_write() {
        let mut buf = BufferSink::new();
        {
            let mut w = SinkWriter(&mut buf);
            use std::io::Write as _;
            write!(w, "cycle {}", 7).unwrap();
        }
        assert_eq!(buf.text(), "cycle 7");
    }
}
