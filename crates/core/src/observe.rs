//! Observations as values: what a differential harness *sees* of a lane,
//! and the open contract for comparing it.
//!
//! The reproduction's central claim is observational equivalence: every
//! execution tier must be indistinguishable *at the trace level*. This
//! module makes "what is observed" and "what counts as equal" first-class
//! values instead of a loop hard-wired into one harness:
//!
//! * [`Observation`] — a cheap, comparable snapshot of one lane at a
//!   comparison point: cycle counter, per-component visible outputs
//!   (respecting [`Engine::observes_output`]), memory cells, the trace
//!   span produced since the last agreed point, and the lane's stop
//!   state. Fingerprintable with [`Fingerprint`]
//!   ([`Observation::fingerprint`]).
//! * [`Comparator`] — an open trait turning two observations into a
//!   [`DivergenceKind`] value (or agreement). Shipped lenses:
//!   [`TraceBytes`], [`CycleCounter`], [`Outputs`], [`Cells`],
//!   [`VcdDiff`] (width-masked waveform samples, built on the
//!   [`VcdSink`](crate::vcd::VcdSink) value format), [`Digest`]
//!   (observation fingerprints — 8 bytes per interval, the
//!   distributed-shard lens) and the [`All`] composite. Harnesses may
//!   implement their own (checksum lanes, sampled state, remote shards)
//!   without touching the lockstep driver.
//! * [`CompareMode`] — the value-level spec of a comparator set
//!   (`Clone`/`Eq`, parseable from `--compare trace,vcd,cells`), so
//!   configurations stay plain data.
//! * [`DivergenceKind`]/[`LaneReport`]/[`LaneStats`] — the report values
//!   comparators and harnesses produce.
//!
//! ```
//! use rtl_core::observe::{CompareMode, Observation};
//! use rtl_core::{Design, Engine};
//!
//! let design = Design::from_source(
//!     "# counter\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .",
//! ).unwrap();
//! # struct Idle<'d>(&'d Design, rtl_core::SimState);
//! # impl rtl_core::Engine for Idle<'_> {
//! #     fn design(&self) -> &Design { self.0 }
//! #     fn state(&self) -> &rtl_core::SimState { &self.1 }
//! #     fn restore(&mut self, s: &rtl_core::SimState) { self.1 = s.clone(); }
//! #     fn step(
//! #         &mut self,
//! #         _out: &mut dyn std::io::Write,
//! #         _input: &mut dyn rtl_core::InputSource,
//! #     ) -> Result<(), rtl_core::SimError> {
//! #         self.1.bump_cycle();
//! #         Ok(())
//! #     }
//! # }
//! # let a = Idle(&design, rtl_core::SimState::new(&design));
//! # let b = Idle(&design, rtl_core::SimState::new(&design));
//! // Two lanes at a comparison point: identical trace spans, identical
//! // state — every shipped comparator agrees, and so do fingerprints.
//! let left = Observation::new(&a as &dyn Engine, b"Cycle   0 count= 0\n", None);
//! let right = Observation::new(&b as &dyn Engine, b"Cycle   0 count= 0\n", None);
//! assert_eq!(left.fingerprint(), right.fingerprint());
//! let mut all = CompareMode::All.build();
//! assert!(all.compare(&left, &right).is_none(), "no divergence");
//! ```

use crate::design::Design;
use crate::engine::Engine;
use crate::error::SimError;
use crate::resolve::CompId;
use crate::session::{design_fingerprint, Fingerprint};
use crate::stats::SimStats;
use crate::word::Word;

/// One lane's observable face at a comparison point — see the [module
/// docs](self). Cheap to build (it borrows the engine's state and the
/// trace span; nothing is copied) and comparable as a value through the
/// accessors or [`fingerprint`](Observation::fingerprint).
#[derive(Clone, Copy)]
pub struct Observation<'a> {
    engine: &'a dyn Engine,
    trace: &'a [u8],
    error: Option<&'a SimError>,
}

impl<'a> Observation<'a> {
    /// Observes an engine: `trace` is the trace/output span produced
    /// since the last agreed comparison point, `error` the lane's sticky
    /// stop state (a runtime halt or harness error), if any.
    pub fn new(engine: &'a dyn Engine, trace: &'a [u8], error: Option<&'a SimError>) -> Self {
        Observation {
            engine,
            trace,
            error,
        }
    }

    /// The design under observation.
    pub fn design(&self) -> &'a Design {
        self.engine.design()
    }

    /// The lane's cycle counter.
    pub fn cycle(&self) -> Word {
        self.engine.state().cycle()
    }

    /// Component `id`'s visible output — `None` when this lane's engine
    /// does not maintain it (optimizing engines may elide provably
    /// unobservable latches; comparators skip those).
    pub fn output(&self, id: CompId) -> Option<Word> {
        self.engine
            .observes_output(id)
            .then(|| self.engine.state().output(id))
    }

    /// Memory `id`'s cells, in address order (empty for combinational
    /// components).
    pub fn cells(&self, id: CompId) -> &'a [Word] {
        self.engine.state().cells(id)
    }

    /// The trace/output bytes produced since the last agreed point.
    pub fn trace(&self) -> &'a [u8] {
        self.trace
    }

    /// The lane's stop state: a runtime error it raised, if any.
    pub fn error(&self) -> Option<&'a SimError> {
        self.error
    }

    /// Accumulated engine statistics, when the engine keeps them.
    pub fn stats(&self) -> Option<&'a SimStats> {
        self.engine.stats()
    }

    /// A stable [`Fingerprint`] over everything this observation exposes:
    /// cycle, observed outputs, memory cells, trace span and stop state.
    /// Two lanes at the same comparison point agree under every shipped
    /// comparator iff their fingerprints can agree (the fingerprint also
    /// folds in *which* components are observed).
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        fp.write_u64(self.cycle() as u64);
        for (id, _) in self.design().iter() {
            match self.output(id) {
                Some(v) => {
                    fp.write(&[1]);
                    fp.write_u64(v as u64);
                }
                None => fp.write(&[0]),
            }
        }
        for &id in self.design().memories() {
            for &cell in self.cells(id) {
                fp.write_u64(cell as u64);
            }
        }
        fp.write(self.trace);
        match self.error {
            Some(e) => fp.write_str(&e.to_string()),
            None => fp.write(&[0]),
        }
        fp.finish()
    }
}

impl std::fmt::Debug for Observation<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observation")
            .field("cycle", &self.cycle())
            .field("trace_len", &self.trace.len())
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

/// What diverged first between two lanes — the value a [`Comparator`]
/// produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DivergenceKind {
    /// Lanes raised different errors (or only some raised one).
    Error,
    /// Trace/output text differed.
    Trace,
    /// Cycle counters differed.
    CycleCounter,
    /// A component's visible output differed.
    Output {
        /// Component name.
        component: String,
    },
    /// A memory cell differed.
    Cells {
        /// Memory name.
        component: String,
        /// Cell address.
        addr: u32,
    },
    /// A component's width-masked VCD waveform sample differed (the
    /// [`VcdDiff`] lens).
    Vcd {
        /// Component name.
        component: String,
    },
    /// A stream lane's output (e.g. the generated-Rust subprocess stdout)
    /// differed from the trace the stepped lanes agreed on. The cycle is
    /// estimated from the last matching cycle header.
    Stream {
        /// The stream lane's registry name.
        lane: String,
    },
    /// Observation fingerprints differed (the [`Digest`] lens, or a
    /// remote digest-stream lane replayed across machines). The digest
    /// folds in every observable facet, so which one diverged is not
    /// recoverable — that is the price of comparing 8 bytes per interval
    /// instead of full values.
    Digest,
    /// A runtime observation contradicted a static-analyzer claim (the
    /// lint cross-validation oracle): a statically-dead selector arm
    /// fired, or a statically-undriven memory changed. A disagreement
    /// here is a bug in the analyzer or the simulator, not a lane
    /// mismatch — both lanes may agree perfectly.
    Oracle {
        /// Component the claim was about.
        component: String,
        /// The static claim that the runtime contradicted.
        claim: String,
    },
}

impl DivergenceKind {
    /// The diverging value as this lane observes it — the per-lane detail
    /// a [`LaneReport`] quotes. `None` for kinds without a single value
    /// (trace text, errors, stream output).
    pub fn lane_value(&self, observation: &Observation<'_>) -> Option<Word> {
        let design = observation.design();
        match self {
            DivergenceKind::Output { component } | DivergenceKind::Vcd { component } => {
                design.find(component).and_then(|id| observation.output(id))
            }
            DivergenceKind::Cells { component, addr } => design
                .find(component)
                .map(|id| observation.cells(id)[*addr as usize]),
            _ => None,
        }
    }
}

impl std::fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DivergenceKind::Error => f.write_str("runtime error mismatch"),
            DivergenceKind::Trace => f.write_str("trace text mismatch"),
            DivergenceKind::CycleCounter => f.write_str("cycle counter mismatch"),
            DivergenceKind::Output { component } => {
                write!(f, "output of component '{component}' differs")
            }
            DivergenceKind::Cells { component, addr } => {
                write!(f, "memory '{component}' cell {addr} differs")
            }
            DivergenceKind::Vcd { component } => {
                write!(f, "VCD waveform sample of component '{component}' differs")
            }
            DivergenceKind::Stream { lane } => {
                write!(
                    f,
                    "stream lane '{lane}' output differs from the agreed trace"
                )
            }
            DivergenceKind::Digest => f.write_str("observation digest mismatch"),
            DivergenceKind::Oracle { component, claim } => {
                write!(
                    f,
                    "runtime contradicts static analysis of '{component}': {claim}"
                )
            }
        }
    }
}

/// One engine's view at a divergence point — a value built from an
/// [`Observation`] (see [`LaneReport::from_observation`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneReport {
    /// Engine name (registry name, or the custom lane label).
    pub engine: String,
    /// The lane's cycle counter.
    pub cycle: Word,
    /// The diverging value in this lane (for output/cell/VCD kinds).
    pub value: Option<Word>,
    /// The lane's runtime error, if it raised one.
    pub error: Option<SimError>,
    /// The last few lines of the lane's trace text.
    pub trace_window: Vec<String>,
    /// The lane's accumulated simulation statistics, when its engine
    /// keeps them.
    pub stats: Option<SimStats>,
}

impl LaneReport {
    /// Builds the report value for one lane from its observation: the
    /// cycle, the kind-specific diverging value, the stop state, the
    /// statistics, and a trailing `window`-line quote of `trace_text`.
    pub fn from_observation(
        name: &str,
        kind: &DivergenceKind,
        observation: &Observation<'_>,
        trace_text: &[u8],
        window: usize,
    ) -> LaneReport {
        let text = String::from_utf8_lossy(trace_text);
        let lines: Vec<&str> = text.lines().collect();
        let start = lines.len().saturating_sub(window);
        LaneReport {
            engine: name.to_string(),
            cycle: observation.cycle(),
            value: kind.lane_value(observation),
            error: observation.error().cloned(),
            trace_window: lines[start..].iter().map(|s| s.to_string()).collect(),
            stats: observation.stats().cloned(),
        }
    }
}

/// One lane's accumulated [`SimStats`], carried by agreement outcomes and
/// campaign case records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneStats {
    /// Engine name (registry name, or the custom lane label).
    pub lane: String,
    /// The lane's statistics at the end of the run.
    pub stats: SimStats,
}

/// Compares two lanes' error states — divergent unless both raised the
/// identical error (or neither raised one). Harnesses run this before any
/// [`Comparator`]: comparing the values of a crashed lane is meaningless.
pub fn stop_state(
    reference: &Observation<'_>,
    candidate: &Observation<'_>,
) -> Option<DivergenceKind> {
    (reference.error() != candidate.error()).then_some(DivergenceKind::Error)
}

/// An observational lens: decides whether two lanes' observations are
/// equivalent, and *what* diverged when they are not. Open by design —
/// the lockstep harness drives any set of comparators, shipped or custom.
/// `compare` takes `&mut self` so lenses may keep caches (see
/// [`VcdDiff`]).
pub trait Comparator {
    /// A stable name for configuration listings and reports.
    fn name(&self) -> &str;

    /// `None` when `candidate` is observationally equivalent to
    /// `reference` under this lens; otherwise the first divergence found.
    fn compare(
        &mut self,
        reference: &Observation<'_>,
        candidate: &Observation<'_>,
    ) -> Option<DivergenceKind>;
}

/// Compares the trace/output byte spans produced since the last agreed
/// point — the strictest lens, and the paper's own equivalence notion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceBytes;

impl Comparator for TraceBytes {
    fn name(&self) -> &str {
        "trace"
    }

    fn compare(
        &mut self,
        reference: &Observation<'_>,
        candidate: &Observation<'_>,
    ) -> Option<DivergenceKind> {
        (reference.trace() != candidate.trace()).then_some(DivergenceKind::Trace)
    }
}

/// Compares the cycle counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleCounter;

impl Comparator for CycleCounter {
    fn name(&self) -> &str {
        "cycles"
    }

    fn compare(
        &mut self,
        reference: &Observation<'_>,
        candidate: &Observation<'_>,
    ) -> Option<DivergenceKind> {
        (reference.cycle() != candidate.cycle()).then_some(DivergenceKind::CycleCounter)
    }
}

/// Compares every visible component output both lanes maintain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Outputs;

impl Comparator for Outputs {
    fn name(&self) -> &str {
        "outputs"
    }

    fn compare(
        &mut self,
        reference: &Observation<'_>,
        candidate: &Observation<'_>,
    ) -> Option<DivergenceKind> {
        let design = reference.design();
        for (id, _) in design.iter() {
            if let (Some(a), Some(b)) = (reference.output(id), candidate.output(id)) {
                if a != b {
                    return Some(DivergenceKind::Output {
                        component: design.name(id).to_string(),
                    });
                }
            }
        }
        None
    }
}

/// Compares every memory cell, address by address.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cells;

impl Comparator for Cells {
    fn name(&self) -> &str {
        "cells"
    }

    fn compare(
        &mut self,
        reference: &Observation<'_>,
        candidate: &Observation<'_>,
    ) -> Option<DivergenceKind> {
        let design = reference.design();
        for &id in design.memories() {
            let (a, b) = (reference.cells(id), candidate.cells(id));
            debug_assert_eq!(a.len(), b.len(), "same design, same memory sizes");
            if let Some(addr) = a.iter().zip(b).position(|(x, y)| x != y) {
                return Some(DivergenceKind::Cells {
                    component: design.name(id).to_string(),
                    addr: addr as u32,
                });
            }
        }
        None
    }
}

/// Compares the lanes' waveforms the way a [`VcdSink`](crate::vcd::VcdSink)
/// records them: each observed output sampled at the cycle edge and
/// truncated to its inferred width ([`vcd::sample_bits`]) — the
/// "indistinguishable in the waveform viewer" lens. Optionally limited to
/// named signals, like [`VcdOptions::signals`](crate::vcd::VcdOptions).
///
/// [`vcd::sample_bits`]: crate::vcd::sample_bits
#[derive(Debug, Clone, Default)]
pub struct VcdDiff {
    signals: Vec<String>,
    /// Inferred widths, cached per design fingerprint (width inference is
    /// a fixpoint — far too expensive per comparison interval).
    widths: Option<(u64, Vec<u8>)>,
}

impl VcdDiff {
    /// A lens over every component.
    pub fn new() -> Self {
        Self::default()
    }

    /// A lens over the named signals only (empty = all components).
    pub fn with_signals(signals: Vec<String>) -> Self {
        VcdDiff {
            signals,
            widths: None,
        }
    }

    fn ensure_widths(&mut self, design: &Design) {
        let fp = design_fingerprint(design);
        if self.widths.as_ref().map(|(have, _)| *have) != Some(fp) {
            self.widths = Some((fp, crate::width::infer(design)));
        }
    }
}

impl Comparator for VcdDiff {
    fn name(&self) -> &str {
        "vcd"
    }

    fn compare(
        &mut self,
        reference: &Observation<'_>,
        candidate: &Observation<'_>,
    ) -> Option<DivergenceKind> {
        let design = reference.design();
        self.ensure_widths(design);
        // Borrow-friendly split: the cached widths slice and the signal
        // filter are disjoint fields.
        let VcdDiff { signals, widths } = self;
        let widths = &widths.as_ref().expect("filled above").1;
        for (id, comp) in design.iter() {
            if !signals.is_empty() && !signals.iter().any(|s| comp.name == s.as_str()) {
                continue;
            }
            if let (Some(a), Some(b)) = (reference.output(id), candidate.output(id)) {
                let width = widths[id.index()];
                if crate::vcd::sample_bits(a, width) != crate::vcd::sample_bits(b, width) {
                    return Some(DivergenceKind::Vcd {
                        component: design.name(id).to_string(),
                    });
                }
            }
        }
        None
    }
}

/// Compares the lanes' [`Observation::fingerprint`] digests — 8 bytes
/// per lane per interval, however large the design. This is the
/// distributed-shard lens: two machines can cross-check lanes by
/// exchanging digests instead of traces and memory images, and
/// [`Observation::fingerprint`] guarantees the digests can agree iff
/// every shipped value lens would. The trade-offs: a digest mismatch
/// ([`DivergenceKind::Digest`]) names the cycle but not the component,
/// and the fingerprint folds in *which* components a lane observes — so
/// this lens expects lanes with identical observation masks (an engine
/// that elides dead latches digests differently from one that does not,
/// even when every common value agrees). The value lenses skip
/// unobserved components instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Digest;

impl Comparator for Digest {
    fn name(&self) -> &str {
        "digest"
    }

    fn compare(
        &mut self,
        reference: &Observation<'_>,
        candidate: &Observation<'_>,
    ) -> Option<DivergenceKind> {
        (reference.fingerprint() != candidate.fingerprint()).then_some(DivergenceKind::Digest)
    }
}

/// The composite of the classic lockstep tuple, in severity order: trace
/// bytes, cycle counters, outputs, memory cells. The default comparator
/// set of the cosim harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct All;

impl Comparator for All {
    fn name(&self) -> &str {
        "all"
    }

    fn compare(
        &mut self,
        reference: &Observation<'_>,
        candidate: &Observation<'_>,
    ) -> Option<DivergenceKind> {
        TraceBytes
            .compare(reference, candidate)
            .or_else(|| CycleCounter.compare(reference, candidate))
            .or_else(|| Outputs.compare(reference, candidate))
            .or_else(|| Cells.compare(reference, candidate))
    }
}

/// The value-level spec of a comparator: plain data (`Copy`/`Eq`) so
/// harness configurations stay comparable and serializable, built into a
/// live [`Comparator`] with [`build`](CompareMode::build).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareMode {
    /// [`TraceBytes`].
    Trace,
    /// [`CycleCounter`].
    Cycles,
    /// [`Outputs`].
    Outputs,
    /// [`Cells`].
    Cells,
    /// [`VcdDiff`] over every component.
    Vcd,
    /// [`Digest`] — observation fingerprints, the distributed-shard lens.
    Digest,
    /// [`All`] — the classic trace/cycles/outputs/cells tuple.
    All,
}

impl CompareMode {
    /// Every mode, in listing order.
    pub const ALL: [CompareMode; 7] = [
        CompareMode::Trace,
        CompareMode::Cycles,
        CompareMode::Outputs,
        CompareMode::Cells,
        CompareMode::Vcd,
        CompareMode::Digest,
        CompareMode::All,
    ];

    /// The stable configuration name.
    pub fn name(self) -> &'static str {
        match self {
            CompareMode::Trace => "trace",
            CompareMode::Cycles => "cycles",
            CompareMode::Outputs => "outputs",
            CompareMode::Cells => "cells",
            CompareMode::Vcd => "vcd",
            CompareMode::Digest => "digest",
            CompareMode::All => "all",
        }
    }

    /// Parses one mode name.
    ///
    /// # Errors
    ///
    /// A message listing the known names.
    pub fn parse(name: &str) -> Result<CompareMode, String> {
        Self::ALL
            .into_iter()
            .find(|m| m.name() == name)
            .ok_or_else(|| {
                let known: Vec<&str> = Self::ALL.iter().map(|m| m.name()).collect();
                format!("unknown comparator {name:?} (known: {})", known.join(", "))
            })
    }

    /// Parses a comma-separated list (`"trace,vcd,cells"`), requiring at
    /// least one mode and rejecting duplicates.
    ///
    /// # Errors
    ///
    /// Unknown names, an empty list, or duplicates.
    pub fn parse_list(list: &str) -> Result<Vec<CompareMode>, String> {
        let modes: Vec<CompareMode> = list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(Self::parse)
            .collect::<Result<_, _>>()?;
        if modes.is_empty() {
            return Err("need at least one comparator (e.g. --compare trace,vcd)".into());
        }
        for (i, m) in modes.iter().enumerate() {
            if modes[..i].contains(m) {
                return Err(format!("duplicate comparator {:?}", m.name()));
            }
        }
        Ok(modes)
    }

    /// Builds the live comparator this mode names.
    pub fn build(self) -> Box<dyn Comparator> {
        match self {
            CompareMode::Trace => Box::new(TraceBytes),
            CompareMode::Cycles => Box::new(CycleCounter),
            CompareMode::Outputs => Box::new(Outputs),
            CompareMode::Cells => Box::new(Cells),
            CompareMode::Vcd => Box::new(VcdDiff::new()),
            CompareMode::Digest => Box::new(Digest),
            CompareMode::All => Box::new(All),
        }
    }
}

impl std::fmt::Display for CompareMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::InputSource;
    use crate::state::SimState;
    use std::io::Write;

    /// A stub engine over an arbitrary state, with a controllable
    /// observed-output mask.
    struct Stub<'d> {
        design: &'d Design,
        state: SimState,
        hidden: Vec<CompId>,
    }

    impl<'d> Stub<'d> {
        fn new(design: &'d Design) -> Self {
            Stub {
                design,
                state: SimState::new(design),
                hidden: Vec::new(),
            }
        }
    }

    impl Engine for Stub<'_> {
        fn design(&self) -> &Design {
            self.design
        }

        fn state(&self) -> &SimState {
            &self.state
        }

        fn restore(&mut self, snapshot: &SimState) {
            self.state = snapshot.clone();
        }

        fn observes_output(&self, id: CompId) -> bool {
            !self.hidden.contains(&id)
        }

        fn step(
            &mut self,
            _out: &mut dyn Write,
            _input: &mut dyn InputSource,
        ) -> Result<(), SimError> {
            self.state.bump_cycle();
            Ok(())
        }
    }

    const COUNTER: &str = "# c\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .";

    fn design() -> Design {
        Design::from_source(COUNTER).unwrap()
    }

    #[test]
    fn identical_lanes_agree_under_every_mode() {
        let d = design();
        let (a, b) = (Stub::new(&d), Stub::new(&d));
        let left = Observation::new(&a, b"span", None);
        let right = Observation::new(&b, b"span", None);
        assert!(stop_state(&left, &right).is_none());
        for mode in CompareMode::ALL {
            let mut c = mode.build();
            assert_eq!(c.name(), mode.name());
            assert!(c.compare(&left, &right).is_none(), "{mode}");
        }
        assert_eq!(left.fingerprint(), right.fingerprint());
    }

    #[test]
    fn each_lens_sees_its_own_divergence() {
        let d = design();
        let count = d.find("count").unwrap();
        let a = Stub::new(&d);
        let mut b = Stub::new(&d);
        b.state.set_output(count, 5);
        b.state.set_cell(count, 0, 5);

        let left = Observation::new(&a, b"x", None);
        let right = Observation::new(&b, b"y", None);
        assert_eq!(
            TraceBytes.compare(&left, &right),
            Some(DivergenceKind::Trace)
        );
        assert_eq!(
            Outputs.compare(&left, &right),
            Some(DivergenceKind::Output {
                component: "count".into()
            })
        );
        assert_eq!(
            Cells.compare(&left, &right),
            Some(DivergenceKind::Cells {
                component: "count".into(),
                addr: 0
            })
        );
        assert_eq!(
            VcdDiff::new().compare(&left, &right),
            Some(DivergenceKind::Vcd {
                component: "count".into()
            })
        );
        assert_eq!(
            Digest.compare(&left, &right),
            Some(DivergenceKind::Digest),
            "the digest folds in what every other lens sees"
        );
        // All reports the most severe lens first: the trace bytes.
        assert_eq!(All.compare(&left, &right), Some(DivergenceKind::Trace));
        assert_ne!(left.fingerprint(), right.fingerprint());

        // The diverging value is extractable per lane, as a value.
        let kind = DivergenceKind::Output {
            component: "count".into(),
        };
        assert_eq!(kind.lane_value(&left), Some(0));
        assert_eq!(kind.lane_value(&right), Some(5));
    }

    #[test]
    fn cycle_and_error_state_divergences() {
        let d = design();
        let a = Stub::new(&d);
        let mut b = Stub::new(&d);
        b.state.set_cycle(3);
        let left = Observation::new(&a, b"", None);
        let right = Observation::new(&b, b"", None);
        assert_eq!(
            CycleCounter.compare(&left, &right),
            Some(DivergenceKind::CycleCounter)
        );

        let e = SimError::InputExhausted { cycle: 3 };
        let crashed = Observation::new(&b, b"", Some(&e));
        assert_eq!(stop_state(&left, &crashed), Some(DivergenceKind::Error));
        assert!(
            stop_state(&crashed, &crashed).is_none(),
            "identical errors agree"
        );
    }

    #[test]
    fn elided_outputs_are_skipped_not_compared() {
        let d = design();
        let count = d.find("count").unwrap();
        let a = Stub::new(&d);
        let mut b = Stub::new(&d);
        b.state.set_output(count, 9);
        b.hidden.push(count);
        let left = Observation::new(&a, b"", None);
        let right = Observation::new(&b, b"", None);
        assert_eq!(right.output(count), None, "elided latch is unobserved");
        assert!(Outputs.compare(&left, &right).is_none());
        assert!(VcdDiff::new().compare(&left, &right).is_none());
        // But cells still compare (state storage is never elided).
        assert!(Cells.compare(&left, &right).is_none());
    }

    #[test]
    fn vcd_diff_masks_to_inferred_widths() {
        // A 1-bit selector output: values 0 and 2 truncate to the same
        // sample bit, so the waveform lens sees no difference while the
        // raw output lens does.
        let d = Design::from_source("# w\nbit x .\nS bit x 0 1\nA x 2 1 1 .").unwrap();
        let bit = d.find("bit").unwrap();
        let a = Stub::new(&d);
        let mut b = Stub::new(&d);
        b.state.set_output(bit, 2);
        let left = Observation::new(&a, b"", None);
        let right = Observation::new(&b, b"", None);
        let mut vcd = VcdDiff::new();
        assert!(vcd.compare(&left, &right).is_none(), "masked equal");
        assert!(Outputs.compare(&left, &right).is_some(), "raw differs");
        // Signal filters narrow the lens.
        let mut filtered = VcdDiff::with_signals(vec!["x".into()]);
        assert!(filtered.compare(&left, &right).is_none());
    }

    #[test]
    fn mode_list_parsing() {
        assert_eq!(
            CompareMode::parse_list("trace, vcd ,cells").unwrap(),
            vec![CompareMode::Trace, CompareMode::Vcd, CompareMode::Cells]
        );
        for m in CompareMode::ALL {
            assert_eq!(CompareMode::parse(m.name()).unwrap(), m);
        }
        assert!(CompareMode::parse_list("").is_err(), "empty list");
        assert!(
            CompareMode::parse_list("trace,trace").is_err(),
            "duplicates"
        );
        assert!(CompareMode::parse_list("warp").is_err(), "unknown");
    }
}
