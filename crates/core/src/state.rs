//! Simulation state shared by every engine.
//!
//! The state is deliberately engine-agnostic so that the interpreter, the
//! bytecode VM and (indirectly, via its printed trace) the generated code
//! can be compared cell-for-cell in differential tests.

use crate::design::{Design, RKind};
use crate::resolve::CompId;
use crate::word::Word;

/// The mutable state of a simulation run.
///
/// * `outputs[i]` — component `i`'s visible output: the current-cycle value
///   for ALUs/selectors, the output latch (`temp…` in the generated Pascal)
///   for memories.
/// * cells — the backing storage of every memory, flattened.
///
/// All components start at zero ("All components are initialized to zero
/// before simulation begins"), except memory cells with initializer lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimState {
    outputs: Vec<Word>,
    cells: Vec<Word>,
    cell_off: Vec<u32>,
    cell_len: Vec<u32>,
    cycle: Word,
}

impl SimState {
    /// Fresh state for a design: outputs zeroed, memories initialized.
    pub fn new(design: &Design) -> Self {
        let n = design.len();
        let mut cell_off = vec![0u32; n];
        let mut cell_len = vec![0u32; n];
        let mut cells = Vec::new();
        for (id, comp) in design.iter() {
            if let RKind::Memory(m) = &comp.kind {
                cell_off[id.index()] = cells.len() as u32;
                cell_len[id.index()] = m.size;
                cells.extend_from_slice(&m.init);
            }
        }
        SimState {
            outputs: vec![0; n],
            cells,
            cell_off,
            cell_len,
            cycle: 0,
        }
    }

    /// Current cycle number (starts at 0).
    pub fn cycle(&self) -> Word {
        self.cycle
    }

    /// Advances the cycle counter.
    pub fn bump_cycle(&mut self) {
        self.cycle += 1;
    }

    /// Sets the cycle counter — checkpoint restoration only; engines
    /// advance through [`bump_cycle`](SimState::bump_cycle).
    pub fn set_cycle(&mut self, cycle: Word) {
        self.cycle = cycle;
    }

    /// A component's visible output (combinational value or memory latch).
    #[inline]
    pub fn output(&self, id: CompId) -> Word {
        self.outputs[id.index()]
    }

    /// Sets a component's visible output.
    #[inline]
    pub fn set_output(&mut self, id: CompId, value: Word) {
        self.outputs[id.index()] = value;
    }

    /// The whole output array — the evaluation context for
    /// [`RExpr::eval`](crate::resolve::RExpr::eval).
    #[inline]
    pub fn outputs(&self) -> &[Word] {
        &self.outputs
    }

    /// The number of cells of memory `id` (0 for combinational components).
    #[inline]
    pub fn cell_count(&self, id: CompId) -> u32 {
        self.cell_len[id.index()]
    }

    /// Reads memory cell `addr` of component `id`.
    ///
    /// # Panics
    ///
    /// Panics when out of range; engines validate first and raise
    /// [`SimError::AddressOutOfRange`](crate::error::SimError) themselves.
    #[inline]
    pub fn cell(&self, id: CompId, addr: u32) -> Word {
        debug_assert!(addr < self.cell_len[id.index()]);
        self.cells[(self.cell_off[id.index()] + addr) as usize]
    }

    /// Writes memory cell `addr` of component `id`.
    ///
    /// # Panics
    ///
    /// Panics when out of range.
    #[inline]
    pub fn set_cell(&mut self, id: CompId, addr: u32, value: Word) {
        debug_assert!(addr < self.cell_len[id.index()]);
        self.cells[(self.cell_off[id.index()] + addr) as usize] = value;
    }

    /// All cells of memory `id`, in address order.
    pub fn cells(&self, id: CompId) -> &[Word] {
        let off = self.cell_off[id.index()] as usize;
        let len = self.cell_len[id.index()] as usize;
        &self.cells[off..off + len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design(src: &str) -> Design {
        Design::from_source(src).unwrap()
    }

    #[test]
    fn initialization() {
        let d = design("# s\na m n .\nA a 4 1 2\nM m 0 0 0 -3 7 8 9\nM n 0 0 0 2 .");
        let s = SimState::new(&d);
        let m = d.find("m").unwrap();
        let n = d.find("n").unwrap();
        let a = d.find("a").unwrap();
        assert_eq!(s.cells(m), [7, 8, 9]);
        assert_eq!(s.cells(n), [0, 0]);
        assert_eq!(s.output(a), 0);
        assert_eq!(
            s.output(m),
            0,
            "latches start at zero even when cells do not"
        );
        assert_eq!(s.cycle(), 0);
    }

    #[test]
    fn cell_access() {
        let d = design("# s\nm n .\nM m 0 0 0 3\nM n 0 0 0 2 .");
        let mut s = SimState::new(&d);
        let m = d.find("m").unwrap();
        let n = d.find("n").unwrap();
        s.set_cell(m, 2, 42);
        s.set_cell(n, 0, 7);
        assert_eq!(s.cell(m, 2), 42);
        assert_eq!(s.cell(n, 0), 7);
        assert_eq!(s.cells(m), [0, 0, 42], "memories do not alias");
        assert_eq!(s.cell_count(m), 3);
        assert_eq!(s.cell_count(n), 2);
    }

    #[test]
    fn states_compare_for_differential_tests() {
        let d = design("# s\nm .\nM m 0 0 0 2 .");
        let mut a = SimState::new(&d);
        let b = SimState::new(&d);
        assert_eq!(a, b);
        a.set_cell(d.find("m").unwrap(), 1, 5);
        assert_ne!(a, b);
    }
}
