//! Elaboration and simulation diagnostics.

use rtl_lang::{Span, Word};
use std::fmt;

/// Errors detected while elaborating a parsed [`Spec`](rtl_lang::Spec) into
/// a [`Design`](crate::design::Design).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElabError {
    /// An expression referenced a name with no component definition.
    /// Message matches the original: `Error. Component <x> not found.`
    ComponentNotFound {
        /// The missing name.
        name: String,
        /// The component whose expression referenced it.
        referrer: String,
        /// Location of the referencing expression.
        span: Span,
    },
    /// Two components share a name. The original compiler silently kept the
    /// first and generated broken Pascal; we diagnose (divergence D2-adjacent).
    DuplicateComponent {
        /// The duplicated name.
        name: String,
        /// Location of the second definition.
        span: Span,
    },
    /// A concatenation exceeded the 31-bit word.
    /// Message matches the original: `Error. Too many bits in <expr>.`
    TooManyBits {
        /// The expression text.
        expr: String,
        /// Location of the expression.
        span: Span,
    },
    /// ALUs and/or selectors form a combinational loop. Message follows the
    /// original `Error. Circular dependency with a and/or b.` but lists the
    /// whole cycle.
    CircularDependency {
        /// Names of the components on the cycle.
        members: Vec<String>,
    },
    /// A name was marked for tracing (`*`) but never defined; the original
    /// would emit malformed Pascal here, we refuse up front.
    TracedUndefined {
        /// The traced name.
        name: String,
        /// Location of the declaration.
        span: Span,
    },
    /// A memory declared more cells than the configured limit.
    TooManyCells {
        /// The memory name.
        name: String,
        /// The declared size.
        size: u32,
        /// The configured limit.
        limit: u32,
    },
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElabError::ComponentNotFound {
                name,
                referrer,
                span,
            } => write!(
                f,
                "Error. Component <{name}> not found. (referenced by {referrer}, {span})"
            ),
            ElabError::DuplicateComponent { name, span } => {
                write!(f, "Error. Component {name} defined twice. ({span})")
            }
            ElabError::TooManyBits { expr, span } => {
                write!(f, "Error. Too many bits in {expr}. ({span})")
            }
            ElabError::CircularDependency { members } => {
                write!(f, "Error. Circular dependency with ")?;
                for (i, m) in members.iter().enumerate() {
                    if i > 0 {
                        write!(f, " and/or ")?;
                    }
                    write!(f, "{m}")?;
                }
                write!(f, ".")
            }
            ElabError::TracedUndefined { name, span } => {
                write!(f, "Error. Traced name {name} has no definition. ({span})")
            }
            ElabError::TooManyCells { name, size, limit } => write!(
                f,
                "Error. Memory {name} declares {size} cells; the limit is {limit}."
            ),
        }
    }
}

impl std::error::Error for ElabError {}

/// Non-fatal findings reported by elaboration (the original `checkdcl`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Warning {
    /// A name in the declaration list has no component definition.
    DeclaredNotDefined(String),
    /// A component was defined but never declared in the name list.
    DefinedNotDeclared(String),
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Warning::DeclaredNotDefined(n) => {
                write!(f, "Warning: {n} declared but not defined.")
            }
            Warning::DefinedNotDeclared(n) => {
                write!(f, "Warning: {n} defined but not declared.")
            }
        }
    }
}

/// Runtime simulation failures. The original generated Pascal crashed with a
/// range-check error in these situations (Appendix A calls them "runtime
/// errors"); the library surfaces them as typed errors instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A selector index fell outside its case list.
    SelectorOutOfRange {
        /// Selector name.
        component: String,
        /// The index value.
        index: Word,
        /// Number of cases.
        cases: usize,
        /// Cycle at which it happened.
        cycle: Word,
    },
    /// A memory address fell outside `0..size`.
    AddressOutOfRange {
        /// Memory name.
        component: String,
        /// The address value.
        address: Word,
        /// Number of cells.
        size: u32,
        /// Cycle at which it happened.
        cycle: Word,
    },
    /// An ALU function expression evaluated outside `0..=13`.
    BadAluFunction {
        /// ALU name.
        component: String,
        /// The function value.
        funct: Word,
        /// Cycle at which it happened.
        cycle: Word,
    },
    /// A memory-mapped input was requested but the input source is empty.
    InputExhausted {
        /// Cycle at which it happened.
        cycle: Word,
    },
    /// Writing trace or output text failed.
    Io(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::SelectorOutOfRange {
                component,
                index,
                cases,
                cycle,
            } => write!(
                f,
                "selector {component} index {index} outside 0..{cases} at cycle {cycle}"
            ),
            SimError::AddressOutOfRange {
                component,
                address,
                size,
                cycle,
            } => write!(
                f,
                "memory {component} address {address} outside 0..{size} at cycle {cycle}"
            ),
            SimError::BadAluFunction {
                component,
                funct,
                cycle,
            } => write!(
                f,
                "alu {component} function {funct} outside 0..=13 at cycle {cycle}"
            ),
            SimError::InputExhausted { cycle } => {
                write!(f, "input exhausted at cycle {cycle}")
            }
            SimError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<std::io::Error> for SimError {
    fn from(e: std::io::Error) -> Self {
        SimError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_match_original_wording() {
        let e = ElabError::CircularDependency {
            members: vec!["alu".into(), "sel".into()],
        };
        assert_eq!(
            e.to_string(),
            "Error. Circular dependency with alu and/or sel."
        );

        let w = Warning::DeclaredNotDefined("ghost".into());
        assert_eq!(w.to_string(), "Warning: ghost declared but not defined.");
        let w = Warning::DefinedNotDeclared("extra".into());
        assert_eq!(w.to_string(), "Warning: extra defined but not declared.");
    }

    #[test]
    fn sim_errors_carry_context() {
        let e = SimError::SelectorOutOfRange {
            component: "mux".into(),
            index: 9,
            cases: 4,
            cycle: 17,
        };
        let s = e.to_string();
        assert!(
            s.contains("mux") && s.contains('9') && s.contains("17"),
            "{s}"
        );
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe");
        let e: SimError = io.into();
        assert!(matches!(e, SimError::Io(_)));
    }
}
