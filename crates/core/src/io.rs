//! The input side of memory-mapped I/O.
//!
//! A memory operation of 2 latches a word from the input device (`sinput`).
//! Address 0 reads a character (its code), address 1 reads an integer, any
//! other address prints a prompt and reads an integer. The *prompt and
//! output* side lives in [`trace`](crate::trace); this module abstracts
//! where input words come from so tests can script them.

use crate::error::SimError;
use crate::word::Word;
use std::collections::VecDeque;
use std::io::BufRead;

/// A source of input words for memory-mapped input operations.
pub trait InputSource {
    /// Reads one character and returns its code (address-0 input).
    ///
    /// # Errors
    ///
    /// [`SimError::InputExhausted`] when no input remains; the caller fills
    /// in the cycle number.
    fn read_char(&mut self) -> Result<Word, SimError>;

    /// Reads one integer (address-1 and prompted input).
    ///
    /// # Errors
    ///
    /// [`SimError::InputExhausted`] when no input remains.
    fn read_int(&mut self) -> Result<Word, SimError>;
}

/// An input source with nothing in it: every read fails. The right choice
/// for specifications that perform no input (most of them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoInput;

impl InputSource for NoInput {
    fn read_char(&mut self) -> Result<Word, SimError> {
        Err(SimError::InputExhausted { cycle: -1 })
    }

    fn read_int(&mut self) -> Result<Word, SimError> {
        Err(SimError::InputExhausted { cycle: -1 })
    }
}

/// A scripted queue of input words; both kinds of read pop the front.
///
/// ```
/// use rtl_core::io::{InputSource, ScriptedInput};
/// let mut s = ScriptedInput::new([65, 1000]);
/// assert_eq!(s.read_char().unwrap(), 65);
/// assert_eq!(s.read_int().unwrap(), 1000);
/// assert!(s.read_int().is_err());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScriptedInput {
    queue: VecDeque<Word>,
}

impl ScriptedInput {
    /// Creates a queue from any word sequence.
    pub fn new(words: impl IntoIterator<Item = Word>) -> Self {
        ScriptedInput {
            queue: words.into_iter().collect(),
        }
    }

    /// Words not yet consumed.
    pub fn remaining(&self) -> usize {
        self.queue.len()
    }
}

impl InputSource for ScriptedInput {
    fn read_char(&mut self) -> Result<Word, SimError> {
        self.queue
            .pop_front()
            .ok_or(SimError::InputExhausted { cycle: -1 })
    }

    fn read_int(&mut self) -> Result<Word, SimError> {
        self.queue
            .pop_front()
            .ok_or(SimError::InputExhausted { cycle: -1 })
    }
}

/// Reads input the way the generated programs do: characters are single
/// bytes, integers are whitespace-delimited decimal (optionally signed).
#[derive(Debug)]
pub struct ReaderInput<R> {
    reader: R,
}

impl<R: BufRead> ReaderInput<R> {
    /// Wraps a buffered reader.
    pub fn new(reader: R) -> Self {
        ReaderInput { reader }
    }

    fn next_byte(&mut self) -> Result<Option<u8>, SimError> {
        let buf = self.reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(None);
        }
        let b = buf[0];
        self.reader.consume(1);
        Ok(Some(b))
    }
}

impl<R: BufRead> InputSource for ReaderInput<R> {
    fn read_char(&mut self) -> Result<Word, SimError> {
        match self.next_byte()? {
            Some(b) => Ok(Word::from(b)),
            None => Err(SimError::InputExhausted { cycle: -1 }),
        }
    }

    fn read_int(&mut self) -> Result<Word, SimError> {
        // Skip leading whitespace.
        let mut b = loop {
            match self.next_byte()? {
                Some(b) if b.is_ascii_whitespace() => continue,
                Some(b) => break b,
                None => return Err(SimError::InputExhausted { cycle: -1 }),
            }
        };
        let negative = b == b'-';
        if negative {
            b = match self.next_byte()? {
                Some(b) => b,
                None => return Err(SimError::InputExhausted { cycle: -1 }),
            };
        }
        if !b.is_ascii_digit() {
            return Err(SimError::InputExhausted { cycle: -1 });
        }
        let mut value: Word = Word::from(b - b'0');
        loop {
            let buf = self.reader.fill_buf()?;
            match buf.first() {
                Some(&d) if d.is_ascii_digit() => {
                    value = value
                        .saturating_mul(10)
                        .saturating_add(Word::from(d - b'0'));
                    self.reader.consume(1);
                }
                _ => break,
            }
        }
        Ok(if negative { -value } else { value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_input_always_fails() {
        assert!(NoInput.read_char().is_err());
        assert!(NoInput.read_int().is_err());
    }

    #[test]
    fn scripted_pops_in_order() {
        let mut s = ScriptedInput::new([1, 2, 3]);
        assert_eq!(s.remaining(), 3);
        assert_eq!(s.read_int().unwrap(), 1);
        assert_eq!(s.read_char().unwrap(), 2);
        assert_eq!(s.read_int().unwrap(), 3);
        assert!(s.read_char().is_err());
    }

    #[test]
    fn reader_chars_are_bytes() {
        let mut r = ReaderInput::new(&b"AB"[..]);
        assert_eq!(r.read_char().unwrap(), 65);
        assert_eq!(r.read_char().unwrap(), 66);
        assert!(r.read_char().is_err());
    }

    #[test]
    fn reader_ints_skip_whitespace() {
        let mut r = ReaderInput::new(&b"  12\n-7 300x"[..]);
        assert_eq!(r.read_int().unwrap(), 12);
        assert_eq!(r.read_int().unwrap(), -7);
        assert_eq!(r.read_int().unwrap(), 300);
        assert!(r.read_int().is_err(), "x is not a digit");
    }

    #[test]
    fn reader_mixing_modes() {
        let mut r = ReaderInput::new(&b"A5"[..]);
        assert_eq!(r.read_char().unwrap(), 65);
        assert_eq!(r.read_int().unwrap(), 5);
    }
}
