//! Word arithmetic: the 31-bit value model of ASIM II.
//!
//! The generated simulators of the thesis used 32-bit Pascal integers with
//! a 31-bit mask (`mask = 2147483647`). ALU subtraction can produce
//! negative intermediates, which then flow through `land` with two's
//! complement semantics. We reproduce this exactly: values are carried in
//! [`Word`] (`i64`), and [`land`] truncates to 32-bit two's complement
//! before anding, just like Pascal's set-based `land` on a 32-bit integer.

pub use rtl_lang::{Word, WORD_MASK};

/// Bitwise AND with Pascal 32-bit integer semantics: both operands are
/// truncated to their low 32 bits (two's complement), anded, and
/// sign-extended back.
///
/// ```
/// use rtl_core::word::land;
/// assert_eq!(land(0b1100, 0b1010), 0b1000);
/// assert_eq!(land(-1, 0xFF), 0xFF); // two's complement: -1 is all ones
/// ```
#[inline]
pub fn land(a: Word, b: Word) -> Word {
    ((a as i32) & (b as i32)) as Word
}

/// The fourteen ALU functions of Appendix A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum AluFn {
    /// `0` — constant zero.
    Zero = 0,
    /// `1` — pass the right operand.
    Right = 1,
    /// `2` — pass the left operand.
    Left = 2,
    /// `3` — 31-bit complement of the left operand (`mask - left`).
    Not = 3,
    /// `4` — `left + right`.
    Add = 4,
    /// `5` — `left - right` (may go negative).
    Sub = 5,
    /// `6` — `left * 2^right`, computed by the original's iterated-doubling
    /// loop (masked to 31 bits each step; yields **0 when `right = 0`**, a
    /// quirk preserved for fidelity — see `DESIGN.md`).
    Shl = 6,
    /// `7` — `left * right`.
    Mul = 7,
    /// `8` — bitwise AND.
    And = 8,
    /// `9` — bitwise OR (`left + right - land(left, right)`).
    Or = 9,
    /// `10` — bitwise XOR (`left + right - 2*land(left, right)`).
    Xor = 10,
    /// `11` — unused; constant zero.
    Unused = 11,
    /// `12` — `1` if `left = right`, else `0`.
    Eq = 12,
    /// `13` — `1` if `left < right`, else `0`.
    Lt = 13,
}

impl AluFn {
    /// All functions in numeric order.
    pub const ALL: [AluFn; 14] = [
        AluFn::Zero,
        AluFn::Right,
        AluFn::Left,
        AluFn::Not,
        AluFn::Add,
        AluFn::Sub,
        AluFn::Shl,
        AluFn::Mul,
        AluFn::And,
        AluFn::Or,
        AluFn::Xor,
        AluFn::Unused,
        AluFn::Eq,
        AluFn::Lt,
    ];

    /// Decodes a function number; `None` outside `0..=13` (where the
    /// original's `case` statement would crash).
    pub fn from_word(w: Word) -> Option<AluFn> {
        if (0..=13).contains(&w) {
            Some(Self::ALL[w as usize])
        } else {
            None
        }
    }

    /// The function number.
    pub fn number(self) -> Word {
        self as Word
    }

    /// Human-readable name for documentation and netlists.
    pub fn name(self) -> &'static str {
        match self {
            AluFn::Zero => "zero",
            AluFn::Right => "right",
            AluFn::Left => "left",
            AluFn::Not => "not",
            AluFn::Add => "add",
            AluFn::Sub => "sub",
            AluFn::Shl => "shl",
            AluFn::Mul => "mul",
            AluFn::And => "and",
            AluFn::Or => "or",
            AluFn::Xor => "xor",
            AluFn::Unused => "unused",
            AluFn::Eq => "eq",
            AluFn::Lt => "lt",
        }
    }

    /// Applies the function to two operands.
    pub fn apply(self, left: Word, right: Word) -> Word {
        match self {
            AluFn::Zero | AluFn::Unused => 0,
            AluFn::Right => right,
            AluFn::Left => left,
            AluFn::Not => WORD_MASK - left,
            AluFn::Add => left.wrapping_add(right),
            AluFn::Sub => left.wrapping_sub(right),
            AluFn::Shl => {
                // Faithful to the generated `dologic`: value stays 0 when
                // the loop body never runs (right = 0 or left = 0).
                let mut left = left;
                let mut right = right;
                let mut value = 0;
                while right > 0 && left != 0 {
                    left = land(left.wrapping_add(left), WORD_MASK);
                    value = left;
                    right -= 1;
                }
                value
            }
            AluFn::Mul => left.wrapping_mul(right),
            AluFn::And => land(left, right),
            AluFn::Or => left.wrapping_add(right).wrapping_sub(land(left, right)),
            AluFn::Xor => left
                .wrapping_add(right)
                .wrapping_sub(land(left, right).wrapping_mul(2)),
            AluFn::Eq => Word::from(left == right),
            AluFn::Lt => Word::from(left < right),
        }
    }
}

impl std::fmt::Display for AluFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.number(), self.name())
    }
}

/// `dologic` of the generated simulators: applies function number `funct`.
/// Returns `None` when `funct` is outside `0..=13`.
///
/// ```
/// use rtl_core::word::dologic;
/// assert_eq!(dologic(4, 2, 3), Some(5));
/// assert_eq!(dologic(13, 2, 3), Some(1));
/// assert_eq!(dologic(14, 2, 3), None);
/// ```
#[inline]
pub fn dologic(funct: Word, left: Word, right: Word) -> Option<Word> {
    AluFn::from_word(funct).map(|f| f.apply(left, right))
}

/// The four memory operations selected by `op & 3` (Appendix A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// `0` — latch `cells[address]`.
    Read,
    /// `1` — store `data`, latch it too (write-through).
    Write,
    /// `2` — latch a word from the input device.
    Input,
    /// `3` — send `data` to the output device, latch it too.
    Output,
}

impl MemOp {
    /// Decodes `op & 3`.
    pub fn from_word(op: Word) -> MemOp {
        match land(op, 3) {
            0 => MemOp::Read,
            1 => MemOp::Write,
            2 => MemOp::Input,
            _ => MemOp::Output,
        }
    }

    /// The operation number (`0..=3`).
    pub fn number(self) -> Word {
        match self {
            MemOp::Read => 0,
            MemOp::Write => 1,
            MemOp::Input => 2,
            MemOp::Output => 3,
        }
    }
}

/// `true` if the operation word asks for a write-trace line this cycle:
/// `land(op, 5) = 5` (write/output op with the trace-writes bit set).
#[inline]
pub fn traces_write(op: Word) -> bool {
    land(op, 5) == 5
}

/// `true` if the operation word asks for a read-trace line this cycle:
/// `land(op, 9) = 8` (read/input op with the trace-reads bit set).
#[inline]
pub fn traces_read(op: Word) -> bool {
    land(op, 9) == 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn land_is_pascal_32_bit() {
        assert_eq!(land(0, 0), 0);
        assert_eq!(land(WORD_MASK, WORD_MASK), WORD_MASK);
        assert_eq!(land(-1, WORD_MASK), WORD_MASK);
        assert_eq!(land(-2, 0xFF), 0xFE);
        // Values beyond 32 bits truncate, matching Pascal integers.
        assert_eq!(land(1 << 33, -1), 0);
        assert_eq!(land((1 << 33) + 5, 0xF), 5);
    }

    #[test]
    fn appendix_a_function_table() {
        // The Appendix A table, row by row, on (left, right) = (12, 10).
        let l = 12;
        let r = 10;
        assert_eq!(dologic(0, l, r), Some(0));
        assert_eq!(dologic(1, l, r), Some(10));
        assert_eq!(dologic(2, l, r), Some(12));
        assert_eq!(dologic(3, l, r), Some(WORD_MASK - 12));
        assert_eq!(dologic(4, l, r), Some(22));
        assert_eq!(dologic(5, l, r), Some(2));
        assert_eq!(dologic(6, l, r), Some(12 << 10));
        assert_eq!(dologic(7, l, r), Some(120));
        assert_eq!(dologic(8, l, r), Some(8));
        assert_eq!(dologic(9, l, r), Some(14));
        assert_eq!(dologic(10, l, r), Some(6));
        assert_eq!(dologic(11, l, r), Some(0));
        assert_eq!(dologic(12, l, r), Some(0));
        assert_eq!(dologic(12, 7, 7), Some(1));
        assert_eq!(dologic(13, l, r), Some(0));
        assert_eq!(dologic(13, 9, 10), Some(1));
    }

    #[test]
    fn shift_quirks_preserved() {
        // right = 0 yields 0, not left — the dologic loop never runs.
        assert_eq!(AluFn::Shl.apply(5, 0), 0);
        assert_eq!(AluFn::Shl.apply(0, 3), 0);
        assert_eq!(AluFn::Shl.apply(1, 3), 8);
        // Shifts mask to 31 bits every step.
        assert_eq!(AluFn::Shl.apply(1, 31), 0);
        assert_eq!(AluFn::Shl.apply(3, 30), land(3 << 30, WORD_MASK));
    }

    #[test]
    fn or_xor_identities_on_bit_patterns() {
        for (a, b) in [(0, 0), (5, 3), (0xF0, 0x0F), (0xFF, 0x0F), (1234, 4321)] {
            assert_eq!(AluFn::Or.apply(a, b), a | b, "or {a} {b}");
            assert_eq!(AluFn::Xor.apply(a, b), a ^ b, "xor {a} {b}");
            assert_eq!(AluFn::And.apply(a, b), a & b, "and {a} {b}");
        }
    }

    #[test]
    fn subtraction_goes_negative() {
        assert_eq!(AluFn::Sub.apply(3, 5), -2);
        // The stack machine's `neg` ALU is `A neg %101 0 ram`.
        assert_eq!(dologic(0b101, 0, 7), Some(-7));
    }

    #[test]
    fn mem_op_decoding_ignores_trace_bits() {
        assert_eq!(MemOp::from_word(0), MemOp::Read);
        assert_eq!(MemOp::from_word(1), MemOp::Write);
        assert_eq!(MemOp::from_word(2), MemOp::Input);
        assert_eq!(MemOp::from_word(3), MemOp::Output);
        assert_eq!(MemOp::from_word(4), MemOp::Read);
        assert_eq!(MemOp::from_word(5), MemOp::Write);
        assert_eq!(MemOp::from_word(8 + 2), MemOp::Input);
        assert_eq!(MemOp::from_word(12 + 3), MemOp::Output);
    }

    #[test]
    fn trace_predicates() {
        assert!(traces_write(5));
        assert!(traces_write(7));
        assert!(traces_write(4 + 1));
        assert!(!traces_write(4), "trace-writes bit without a write op");
        assert!(!traces_write(1), "write op without the trace bit");
        assert!(traces_read(8));
        assert!(traces_read(8 + 2));
        assert!(!traces_read(8 + 1), "writes are not read-traced");
        assert!(!traces_read(2));
    }

    #[test]
    fn from_word_round_trips() {
        for f in AluFn::ALL {
            assert_eq!(AluFn::from_word(f.number()), Some(f));
        }
        assert_eq!(AluFn::from_word(-1), None);
        assert_eq!(AluFn::from_word(14), None);
    }
}
