//! The engine abstraction: anything that can step a design one cycle.
//!
//! [`Engine`] is deliberately *only* the stepping contract — combinational
//! phase, trace, memory capture/update, cycle increment, plus
//! snapshot/restore for checkpointing. Everything about *driving* an
//! engine (cycle bounds, sinks, stimulus, stop classification,
//! checkpoint files) lives in [`Session`](crate::session); both
//! `rtl-interp` and `rtl-compile`'s bytecode VM implement `Engine`, and
//! the differential harness drives N of them in lock step.

use crate::design::Design;
use crate::error::SimError;
use crate::io::InputSource;
use crate::resolve::CompId;
use crate::session::{Session, StopReason, Until};
use crate::state::SimState;
use crate::stats::SimStats;
use std::io::Write;

/// A cycle-stepped simulation engine over a [`Design`].
pub trait Engine {
    /// The design being simulated.
    fn design(&self) -> &Design;

    /// The current simulation state.
    fn state(&self) -> &SimState;

    /// A point-in-time copy of the architectural state (outputs, memory
    /// cells, cycle counter). Pair with [`restore`](Engine::restore) to
    /// checkpoint long runs or bisect a divergence window: the cosim
    /// harness compares engines at a coarse interval, then rewinds to the
    /// last agreeing checkpoint and replays cycle-by-cycle.
    fn snapshot(&self) -> SimState {
        self.state().clone()
    }

    /// Rewinds the engine to a snapshot previously taken over the *same
    /// design*. Engine-private caches (registers, scratch, interpretation
    /// tables) are rebuilt or reused; only the architectural state is
    /// restored. Accumulated statistics are left untouched.
    fn restore(&mut self, snapshot: &SimState);

    /// Whether this engine maintains component `id`'s visible output.
    ///
    /// Optimizing engines may elide provably-unobservable state — the VM's
    /// §5.4 latch elision leaves dead memory latches at their initial
    /// value. Differential harnesses must compare a component only when
    /// every engine under test observes it.
    fn observes_output(&self, id: CompId) -> bool {
        let _ = id;
        true
    }

    /// Accumulated simulation statistics (§1.4), when the engine keeps
    /// them. `None` for engines without counters.
    fn stats(&self) -> Option<&SimStats> {
        None
    }

    /// Executes one cycle per the contract documented on
    /// [`design`](crate::design) (combinational phase, trace, memory
    /// capture, memory update, cycle increment).
    ///
    /// # Errors
    ///
    /// Runtime errors per [`SimError`]; trace/output text goes to `out`,
    /// memory-mapped input comes from `input`. This is the one place raw
    /// `Write`/`InputSource` appear — drivers bind them once through a
    /// [`Session`](crate::session) instead of threading them.
    fn step(&mut self, out: &mut dyn Write, input: &mut dyn InputSource) -> Result<(), SimError>;
}

impl<E: Engine + ?Sized> Engine for &mut E {
    fn design(&self) -> &Design {
        (**self).design()
    }

    fn state(&self) -> &SimState {
        (**self).state()
    }

    fn snapshot(&self) -> SimState {
        (**self).snapshot()
    }

    fn restore(&mut self, snapshot: &SimState) {
        (**self).restore(snapshot);
    }

    fn observes_output(&self, id: CompId) -> bool {
        (**self).observes_output(id)
    }

    fn stats(&self) -> Option<&SimStats> {
        (**self).stats()
    }

    fn step(&mut self, out: &mut dyn Write, input: &mut dyn InputSource) -> Result<(), SimError> {
        (**self).step(out, input)
    }
}

impl<E: Engine + ?Sized> Engine for Box<E> {
    fn design(&self) -> &Design {
        (**self).design()
    }

    fn state(&self) -> &SimState {
        (**self).state()
    }

    fn snapshot(&self) -> SimState {
        (**self).snapshot()
    }

    fn restore(&mut self, snapshot: &SimState) {
        (**self).restore(snapshot);
    }

    fn observes_output(&self, id: CompId) -> bool {
        (**self).observes_output(id)
    }

    fn stats(&self) -> Option<&SimStats> {
        (**self).stats()
    }

    fn step(&mut self, out: &mut dyn Write, input: &mut dyn InputSource) -> Result<(), SimError> {
        (**self).step(out, input)
    }
}

/// Runs an engine for `iterations` cycles with no input, capturing the
/// trace/output text. Convenience for tests and examples; everything
/// larger should build a [`Session`] itself.
///
/// # Errors
///
/// Returns the text produced so far alongside the error.
pub fn run_captured<E: Engine>(
    engine: &mut E,
    iterations: u64,
) -> Result<String, (String, SimError)> {
    let mut session = Session::over(engine).capture().build();
    let outcome = session.run(Until::Cycles(iterations));
    let text = session.output_text();
    match outcome.stop {
        StopReason::CycleLimit => Ok(text),
        stop => Err((
            text,
            stop.into_error().expect("non-limit stops carry an error"),
        )),
    }
}
