//! The engine abstraction: anything that can step a design one cycle.
//!
//! Both `rtl-interp` (the ASIM-style interpreter) and `rtl-compile`'s
//! bytecode VM implement [`Engine`]; the differential test harness drives
//! two engines in lock step and compares states and output text.

use crate::design::Design;
use crate::error::SimError;
use crate::io::InputSource;
use crate::resolve::CompId;
use crate::state::SimState;
use crate::word::Word;
use std::io::Write;

/// A cycle-stepped simulation engine over a [`Design`].
pub trait Engine {
    /// The design being simulated.
    fn design(&self) -> &Design;

    /// The current simulation state.
    fn state(&self) -> &SimState;

    /// A point-in-time copy of the architectural state (outputs, memory
    /// cells, cycle counter). Pair with [`restore`](Engine::restore) to
    /// checkpoint long runs or bisect a divergence window: the cosim
    /// harness compares engines at a coarse interval, then rewinds to the
    /// last agreeing checkpoint and replays cycle-by-cycle.
    fn snapshot(&self) -> SimState {
        self.state().clone()
    }

    /// Rewinds the engine to a snapshot previously taken over the *same
    /// design*. Engine-private caches (registers, scratch, interpretation
    /// tables) are rebuilt or reused; only the architectural state is
    /// restored. Accumulated statistics are left untouched.
    fn restore(&mut self, snapshot: &SimState);

    /// Whether this engine maintains component `id`'s visible output.
    ///
    /// Optimizing engines may elide provably-unobservable state — the VM's
    /// §5.4 latch elision leaves dead memory latches at their initial
    /// value. Differential harnesses must compare a component only when
    /// every engine under test observes it.
    fn observes_output(&self, id: CompId) -> bool {
        let _ = id;
        true
    }

    /// Executes one cycle per the contract documented on
    /// [`design`](crate::design) (combinational phase, trace, memory
    /// capture, memory update, cycle increment).
    ///
    /// # Errors
    ///
    /// Runtime errors per [`SimError`]; trace/output text goes to `out`,
    /// memory-mapped input comes from `input`.
    fn step(&mut self, out: &mut dyn Write, input: &mut dyn InputSource) -> Result<(), SimError>;

    /// Runs `iterations` cycles.
    ///
    /// # Errors
    ///
    /// Stops at the first failing cycle.
    fn run(
        &mut self,
        iterations: u64,
        out: &mut dyn Write,
        input: &mut dyn InputSource,
    ) -> Result<(), SimError> {
        for _ in 0..iterations {
            self.step(out, input)?;
        }
        Ok(())
    }

    /// Runs until the cycle counter *exceeds* `last` — i.e. simulates
    /// cycles `0..=last`, the semantics of the specification's `= n` clause
    /// (the generated Pascal's `while cyclecount <= cycles`).
    ///
    /// # Errors
    ///
    /// Stops at the first failing cycle.
    fn run_to_cycle(
        &mut self,
        last: Word,
        out: &mut dyn Write,
        input: &mut dyn InputSource,
    ) -> Result<(), SimError> {
        while self.state().cycle() <= last {
            self.step(out, input)?;
        }
        Ok(())
    }

    /// Runs the cycle count requested by the specification's `= n` clause
    /// (n + 1 iterations), or zero cycles if the spec had none.
    ///
    /// # Errors
    ///
    /// Stops at the first failing cycle.
    fn run_spec(
        &mut self,
        out: &mut dyn Write,
        input: &mut dyn InputSource,
    ) -> Result<(), SimError> {
        match self.design().cycles() {
            Some(n) => self.run_to_cycle(n, out, input),
            None => Ok(()),
        }
    }
}

/// Runs an engine for `iterations` cycles with no input, capturing the
/// trace/output text. Convenience for tests and examples.
///
/// # Errors
///
/// Returns the text produced so far alongside the error.
pub fn run_captured<E: Engine>(
    engine: &mut E,
    iterations: u64,
) -> Result<String, (String, SimError)> {
    let mut out = Vec::new();
    let mut input = crate::io::NoInput;
    let result = engine.run(iterations, &mut out, &mut input);
    let text = String::from_utf8_lossy(&out).into_owned();
    match result {
        Ok(()) => Ok(text),
        Err(e) => Err((text, e)),
    }
}
