//! Output-width inference.
//!
//! The original compiler had a token-level `numberofbits` used to decide
//! whether a memory's operation expression could ever set the trace bits.
//! This module provides a proper monotone fixpoint inference over the
//! design: every component gets a width in `1..=31`, used by the hardware
//! netlister (to size flip-flops, adders and multiplexors like the
//! Appendix F parts list) and by code generators for trace-emission
//! decisions.

use crate::design::{Design, RKind};
use crate::word::{AluFn, Word};
use rtl_lang::Part;

/// Bits needed to represent a non-negative value (at least 1, capped at 31).
pub fn bits_needed(value: Word) -> u8 {
    if value <= 0 {
        1
    } else {
        (64 - value.leading_zeros()).min(31) as u8
    }
}

/// Infers output widths for every component, indexed by
/// [`CompId::index`](crate::resolve::CompId::index).
///
/// The inference is a monotone fixpoint: widths start at 1 and only grow,
/// so it terminates in at most `31 × n` rounds (bounded far lower in
/// practice).
///
/// ```
/// let d = rtl_core::Design::from_source(
///     "# w\nc n .\nM c 0 n 1 1\nA n 4 c 1 .",
/// ).unwrap();
/// let w = rtl_core::width::infer(&d);
/// // The counter feeds back through a +1 adder: both saturate at 31 bits.
/// assert_eq!(w[d.find("c").unwrap().index()], 31);
/// ```
pub fn infer(design: &Design) -> Vec<u8> {
    let n = design.len();
    let mut widths = vec![1u8; n];
    // Each round can only increase widths; cap rounds defensively.
    for _ in 0..(31 * n.max(1)) {
        let mut changed = false;
        for (id, comp) in design.iter() {
            let w = component_width(design, &comp.kind, &widths);
            if w > widths[id.index()] {
                widths[id.index()] = w;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    widths
}

fn component_width(design: &Design, kind: &RKind, widths: &[u8]) -> u8 {
    match kind {
        RKind::Alu(a) => {
            let lw = expr_width(design, &a.left.source, widths);
            let rw = expr_width(design, &a.right.source, widths);
            match a.funct.as_constant().and_then(AluFn::from_word) {
                Some(AluFn::Zero) | Some(AluFn::Unused) => 1,
                Some(AluFn::Right) => rw,
                Some(AluFn::Left) => lw,
                Some(AluFn::Not) => 31,
                Some(AluFn::Add) | Some(AluFn::Sub) => add_bit(lw.max(rw)),
                Some(AluFn::Shl) => 31,
                Some(AluFn::Mul) => (u32::from(lw) + u32::from(rw)).min(31) as u8,
                Some(AluFn::And) => lw.min(rw),
                Some(AluFn::Or) | Some(AluFn::Xor) => lw.max(rw),
                Some(AluFn::Eq) | Some(AluFn::Lt) => 1,
                None => 31, // dynamic function: anything is possible
            }
        }
        RKind::Selector(s) => s
            .cases
            .iter()
            .map(|c| expr_width(design, &c.source, widths))
            .max()
            .unwrap_or(1),
        RKind::Memory(m) => {
            let data = expr_width(design, &m.data.source, widths);
            let init = m.init.iter().copied().map(bits_needed).max().unwrap_or(1);
            data.max(init)
        }
    }
}

fn add_bit(w: u8) -> u8 {
    w.saturating_add(1).min(31)
}

/// Width of a concatenation expression given current component widths.
pub fn expr_width(design: &Design, expr: &rtl_lang::Expr, widths: &[u8]) -> u8 {
    let mut total: u32 = 0;
    for part in &expr.parts {
        total += match part {
            Part::Const { value, width: None } => u32::from(bits_needed(*value)),
            Part::Const { width: Some(w), .. } => u32::from(*w),
            Part::Bits { width, .. } => u32::from(*width),
            Part::Ref {
                name, from: None, ..
            } => design
                .find(name.as_str())
                .map(|id| u32::from(widths[id.index()]))
                .unwrap_or(31),
            Part::Ref {
                from: Some(f), to, ..
            } => u32::from(to.unwrap_or(*f)) - u32::from(*f) + 1,
        };
    }
    total.clamp(1, 31) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn widths_of(src: &str) -> (Design, Vec<u8>) {
        let d = Design::from_source(src).unwrap();
        let w = infer(&d);
        (d, w)
    }

    fn width(src: &str, name: &str) -> u8 {
        let (d, w) = widths_of(src);
        w[d.find(name).unwrap().index()]
    }

    #[test]
    fn bits_needed_basics() {
        assert_eq!(bits_needed(0), 1);
        assert_eq!(bits_needed(1), 1);
        assert_eq!(bits_needed(2), 2);
        assert_eq!(bits_needed(255), 8);
        assert_eq!(bits_needed(256), 9);
        assert_eq!(bits_needed(-5), 1);
        assert_eq!(bits_needed(i64::MAX), 31, "capped");
    }

    #[test]
    fn register_width_follows_its_data() {
        // 4-bit field written into a register.
        assert_eq!(width("# w\nr m .\nM r 0 m.0.3 1 1\nM m 0 0 0 4 .", "r"), 4);
    }

    #[test]
    fn comparator_is_one_bit() {
        assert_eq!(width("# w\nc m .\nA c 12 m m\nM m 0 0 0 4 .", "c"), 1);
    }

    #[test]
    fn selector_takes_max_case_width() {
        assert_eq!(
            width("# w\ns m .\nS s m.0 m.0.2 m.0.6\nM m 0 0 0 4 .", "s"),
            7
        );
    }

    #[test]
    fn init_values_widen_roms() {
        assert_eq!(width("# w\nm .\nM m 0 0 0 -3 1 900 2 .", "m"), 10);
    }

    #[test]
    fn feedback_saturates() {
        // A counter with no mask grows to the full word.
        assert_eq!(width("# w\nc n .\nM c 0 n 1 1\nA n 4 c 1 .", "c"), 31);
    }

    #[test]
    fn masked_feedback_stays_narrow() {
        // A counter masked to two bits stays at 3 (add produces carry bit).
        assert_eq!(width("# w\nc n .\nM c 0 n 1 1\nA n 4 c.0.1 1 .", "n"), 3);
    }

    #[test]
    fn dynamic_alu_function_is_full_width() {
        assert_eq!(width("# w\na m .\nA a m m m\nM m 0 0 0 2 .", "a"), 31);
    }
}
