//! Elaboration: turning a parsed [`Spec`] into a simulatable [`Design`].
//!
//! Elaboration resolves names, lowers expressions, computes the
//! combinational evaluation order, collects the trace list and performs the
//! original compiler's declaration checks (`checkdcl`).
//!
//! # Cycle semantics (the engine contract)
//!
//! Every engine in this repository — the ASIM-style interpreter, the
//! bytecode VM, and the generated Rust/Pascal programs — implements one
//! simulated cycle as:
//!
//! 1. **Combinational phase.** Evaluate every ALU and selector in
//!    [`Design::comb_order`]. References to ALUs/selectors read this
//!    cycle's freshly computed value; references to memories read the
//!    memory's *output latch* (the value latched at the end of the previous
//!    cycle — memories have a one-cycle delay, §4.3).
//! 2. **Trace phase.** Print `Cycle N` and the traced components' values in
//!    declaration-list order (memories show their latch).
//! 3. **Capture phase.** For every memory, evaluate its address and
//!    operation expressions against the current combinational values and
//!    *pre-update* latches.
//! 4. **Update phase.** For every memory in definition order, perform
//!    `op & 3`: read latches `cells[addr]`; write evaluates `data`, stores
//!    it and latches it (write-through); input latches a word from the
//!    input device; output evaluates `data`, sends it to the output device
//!    and latches it. **All `data` expressions read pre-update latches**
//!    (simultaneous update — divergence D1 in `DESIGN.md`). Write/read
//!    trace lines are emitted per memory when `op & 5 = 5` / `op & 9 = 8`.
//! 5. Increment the cycle counter.
//!
//! A specification's `= n` clause means "trace cycles `0 ..= n`", i.e.
//! `n + 1` iterations — the generated Pascal's `while cyclecount <= cycles`.

use crate::error::{ElabError, Warning};
use crate::graph::sort_combinational;
use crate::resolve::{resolve_expr, CompId, RExpr};
use crate::word::Word;
use rtl_lang::{ComponentKind, Ident, Spec};
use std::collections::HashMap;

/// The component limit of the original implementation (`maxcomponents`).
/// Informational only — this library does not enforce it (divergence D2).
pub const ORIGINAL_COMPONENT_LIMIT: usize = 500;

/// Elaboration options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElabOptions {
    /// Maximum number of cells a single memory may declare. Guards against
    /// accidentally allocating gigabytes from a typo'd specification.
    pub cell_limit: u32,
}

impl Default for ElabOptions {
    fn default() -> Self {
        ElabOptions {
            cell_limit: 1 << 24,
        }
    }
}

/// A resolved ALU.
#[derive(Debug, Clone, PartialEq)]
pub struct RAlu {
    /// Function-select expression.
    pub funct: RExpr,
    /// Left operand expression.
    pub left: RExpr,
    /// Right operand expression.
    pub right: RExpr,
}

/// A resolved selector.
#[derive(Debug, Clone, PartialEq)]
pub struct RSelector {
    /// Index expression.
    pub select: RExpr,
    /// Case value expressions.
    pub cases: Vec<RExpr>,
}

/// A resolved memory.
#[derive(Debug, Clone, PartialEq)]
pub struct RMemory {
    /// Address expression.
    pub addr: RExpr,
    /// Data expression.
    pub data: RExpr,
    /// Operation expression.
    pub opn: RExpr,
    /// Number of cells.
    pub size: u32,
    /// Initial cell values (zero-filled when the source had none).
    pub init: Vec<Word>,
}

/// A resolved component.
#[derive(Debug, Clone, PartialEq)]
pub enum RKind {
    /// ALU.
    Alu(RAlu),
    /// Selector.
    Selector(RSelector),
    /// Memory.
    Memory(RMemory),
}

impl RKind {
    /// `true` for memories.
    pub fn is_memory(&self) -> bool {
        matches!(self, RKind::Memory(_))
    }

    /// Every expression of the component, in source order.
    pub fn expressions(&self) -> Vec<&RExpr> {
        match self {
            RKind::Alu(a) => vec![&a.funct, &a.left, &a.right],
            RKind::Selector(s) => {
                let mut v = vec![&s.select];
                v.extend(s.cases.iter());
                v
            }
            RKind::Memory(m) => vec![&m.addr, &m.data, &m.opn],
        }
    }
}

/// A named, resolved component.
#[derive(Debug, Clone, PartialEq)]
pub struct CompData {
    /// The component name.
    pub name: Ident,
    /// Its resolved definition.
    pub kind: RKind,
}

/// A fully elaborated design, ready to simulate or compile.
#[derive(Debug, Clone)]
pub struct Design {
    spec: Spec,
    comps: Vec<CompData>,
    names: HashMap<String, CompId>,
    comb_order: Vec<CompId>,
    memories: Vec<CompId>,
    traced: Vec<CompId>,
    warnings: Vec<Warning>,
}

impl Design {
    /// Elaborates a parsed specification with default options.
    ///
    /// ```
    /// let spec = rtl_lang::parse(
    ///     "# counter\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .",
    /// ).unwrap();
    /// let design = rtl_core::Design::elaborate(&spec).unwrap();
    /// assert_eq!(design.len(), 2);
    /// assert_eq!(design.comb_order().len(), 1);
    /// assert_eq!(design.memories().len(), 1);
    /// ```
    ///
    /// # Errors
    ///
    /// See [`ElabError`] — unknown names, duplicate definitions, over-wide
    /// concatenations, combinational cycles, traced-but-undefined names.
    pub fn elaborate(spec: &Spec) -> Result<Design, ElabError> {
        Self::elaborate_with(spec, ElabOptions::default())
    }

    /// Elaborates with explicit options.
    ///
    /// # Errors
    ///
    /// As [`Design::elaborate`], plus [`ElabError::TooManyCells`] per the
    /// configured limit.
    pub fn elaborate_with(spec: &Spec, options: ElabOptions) -> Result<Design, ElabError> {
        // 1. Name table (first definition wins in the original's findname;
        // we reject duplicates outright).
        let mut names = HashMap::with_capacity(spec.components.len());
        for (i, c) in spec.components.iter().enumerate() {
            if names
                .insert(c.name.as_str().to_string(), CompId::new(i))
                .is_some()
            {
                return Err(ElabError::DuplicateComponent {
                    name: c.name.as_str().to_string(),
                    span: c.span,
                });
            }
        }

        // 2. Resolve expressions.
        let mut comps = Vec::with_capacity(spec.components.len());
        for c in &spec.components {
            let who = c.name.as_str();
            let r = |e| resolve_expr(e, &names, who);
            let kind = match &c.kind {
                ComponentKind::Alu(a) => RKind::Alu(RAlu {
                    funct: r(&a.funct)?,
                    left: r(&a.left)?,
                    right: r(&a.right)?,
                }),
                ComponentKind::Selector(s) => RKind::Selector(RSelector {
                    select: r(&s.select)?,
                    cases: s.cases.iter().map(r).collect::<Result<_, _>>()?,
                }),
                ComponentKind::Memory(m) => {
                    if m.size > options.cell_limit {
                        return Err(ElabError::TooManyCells {
                            name: who.to_string(),
                            size: m.size,
                            limit: options.cell_limit,
                        });
                    }
                    let init = match &m.init {
                        Some(v) => v.clone(),
                        None => vec![0; m.size as usize],
                    };
                    debug_assert_eq!(init.len(), m.size as usize);
                    RKind::Memory(RMemory {
                        addr: r(&m.addr)?,
                        data: r(&m.data)?,
                        opn: r(&m.opn)?,
                        size: m.size,
                        init,
                    })
                }
            };
            comps.push(CompData {
                name: c.name.clone(),
                kind,
            });
        }

        // 3. Memories in definition order.
        let memories: Vec<CompId> = comps
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind.is_memory())
            .map(|(i, _)| CompId::new(i))
            .collect();

        // 4. Combinational order.
        let comb_nodes: Vec<CompId> = comps
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.kind.is_memory())
            .map(|(i, _)| CompId::new(i))
            .collect();
        let node_of: HashMap<usize, usize> = comb_nodes
            .iter()
            .enumerate()
            .map(|(node, id)| (id.index(), node))
            .collect();
        let deps: Vec<Vec<usize>> = comb_nodes
            .iter()
            .map(|id| {
                let mut ds: Vec<usize> = comps[id.index()]
                    .kind
                    .expressions()
                    .iter()
                    .flat_map(|e| e.comps())
                    .filter_map(|c| node_of.get(&c.index()).copied())
                    .collect();
                ds.sort_unstable();
                ds.dedup();
                ds
            })
            .collect();
        let comb_names: Vec<String> = comb_nodes
            .iter()
            .map(|id| comps[id.index()].name.as_str().to_string())
            .collect();
        let comb_order = sort_combinational(&comb_nodes, &deps, &comb_names)?;

        // 5. Trace list and declaration warnings (checkdcl).
        let mut traced = Vec::new();
        let mut warnings = Vec::new();
        for d in &spec.declared {
            match names.get(d.name.as_str()) {
                Some(&id) => {
                    if d.traced {
                        traced.push(id);
                    }
                }
                None => {
                    if d.traced {
                        return Err(ElabError::TracedUndefined {
                            name: d.name.as_str().to_string(),
                            span: d.span,
                        });
                    }
                    warnings.push(Warning::DeclaredNotDefined(d.name.as_str().to_string()));
                }
            }
        }
        for c in &spec.components {
            if !spec.declared.iter().any(|d| d.name == c.name) {
                warnings.push(Warning::DefinedNotDeclared(c.name.as_str().to_string()));
            }
        }

        Ok(Design {
            spec: spec.clone(),
            comps,
            names,
            comb_order,
            memories,
            traced,
            warnings,
        })
    }

    /// Parses and elaborates in one step.
    ///
    /// # Errors
    ///
    /// Returns a [`LoadError`] wrapping either phase's failure.
    pub fn from_source(source: &str) -> Result<Design, LoadError> {
        let spec = rtl_lang::parse(source)?;
        Ok(Design::elaborate(&spec)?)
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.comps.len()
    }

    /// `true` if the design has no components.
    pub fn is_empty(&self) -> bool {
        self.comps.is_empty()
    }

    /// Iterates over all components with their ids, in definition order.
    pub fn iter(&self) -> impl Iterator<Item = (CompId, &CompData)> {
        self.comps
            .iter()
            .enumerate()
            .map(|(i, c)| (CompId::new(i), c))
    }

    /// The component with the given id.
    pub fn comp(&self, id: CompId) -> &CompData {
        &self.comps[id.index()]
    }

    /// The id of the component at a definition-order index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn id_at(&self, index: usize) -> CompId {
        assert!(
            index < self.comps.len(),
            "component index {index} out of range"
        );
        CompId::new(index)
    }

    /// The component's name.
    pub fn name(&self, id: CompId) -> &str {
        self.comps[id.index()].name.as_str()
    }

    /// Looks a component up by name.
    pub fn find(&self, name: &str) -> Option<CompId> {
        self.names.get(name).copied()
    }

    /// ALUs and selectors in evaluation order.
    pub fn comb_order(&self) -> &[CompId] {
        &self.comb_order
    }

    /// Memories in definition (update) order.
    pub fn memories(&self) -> &[CompId] {
        &self.memories
    }

    /// Components traced each cycle, in declaration-list order.
    pub fn traced(&self) -> &[CompId] {
        &self.traced
    }

    /// Warnings from the declaration check.
    pub fn warnings(&self) -> &[Warning] {
        &self.warnings
    }

    /// The `= n` cycle count from the specification, if present.
    pub fn cycles(&self) -> Option<Word> {
        self.spec.cycles
    }

    /// The specification's title comment line.
    pub fn title(&self) -> &str {
        &self.spec.title
    }

    /// The parsed specification this design was elaborated from.
    pub fn spec(&self) -> &Spec {
        &self.spec
    }

    /// Convenience: the resolved memory with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a memory.
    pub fn memory(&self, id: CompId) -> &RMemory {
        match &self.comps[id.index()].kind {
            RKind::Memory(m) => m,
            other => panic!("{} is not a memory: {other:?}", self.name(id)),
        }
    }

    /// Per-component shape metadata for a profiling
    /// [`LaneTally`](rtl_prof::LaneTally), in definition order — the
    /// shared index space every engine's tally uses, so profiles from
    /// different engines over the same design are directly comparable.
    pub fn profile_meta(&self) -> Vec<rtl_prof::CompMeta> {
        self.comps
            .iter()
            .map(|c| match &c.kind {
                RKind::Alu(_) => rtl_prof::CompMeta::comb(c.name.as_str()),
                RKind::Selector(s) => rtl_prof::CompMeta::selector(c.name.as_str(), s.cases.len()),
                RKind::Memory(m) => rtl_prof::CompMeta::memory(c.name.as_str(), m.size as usize),
            })
            .collect()
    }
}

/// Error from [`Design::from_source`]: either parsing or elaboration failed.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadError {
    /// The source did not parse.
    Parse(rtl_lang::ParseError),
    /// The parsed spec did not elaborate.
    Elab(ElabError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Parse(e) => e.fmt(f),
            LoadError::Elab(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<rtl_lang::ParseError> for LoadError {
    fn from(e: rtl_lang::ParseError) -> Self {
        LoadError::Parse(e)
    }
}

impl From<ElabError> for LoadError {
    fn from(e: ElabError) -> Self {
        LoadError::Elab(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design(src: &str) -> Design {
        Design::from_source(src).unwrap()
    }

    #[test]
    fn counter_elaborates() {
        let d = design("# c\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .");
        assert_eq!(d.len(), 2);
        assert_eq!(d.memories().len(), 1);
        assert_eq!(d.comb_order().len(), 1);
        assert_eq!(d.traced().len(), 1);
        assert_eq!(d.name(d.traced()[0]), "count");
        assert!(d.warnings().is_empty());
    }

    #[test]
    fn comb_order_respects_dependencies() {
        // `b` uses `a`, `a` uses memory `m` (no comb dependency).
        let d = design("# c\na b m .\nA b 4 a 1\nA a 2 m 0\nM m 0 b 1 1 .");
        let order: Vec<&str> = d.comb_order().iter().map(|&i| d.name(i)).collect();
        assert_eq!(order, ["a", "b"]);
    }

    #[test]
    fn circular_dependency_is_reported() {
        let err = Design::from_source("# c\na b .\nA a 4 b 1\nA b 4 a 1 .").unwrap_err();
        match err {
            LoadError::Elab(ElabError::CircularDependency { members }) => {
                assert_eq!(members, ["a", "b"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn memory_to_memory_reference_is_not_a_comb_edge() {
        // Two registers swapping contents — legal, no comb cycle.
        let d = design("# swap\na b .\nM a 0 b 1 1\nM b 0 a 1 1 .");
        assert!(d.comb_order().is_empty());
        assert_eq!(d.memories().len(), 2);
    }

    #[test]
    fn unknown_reference_is_an_error() {
        let err = Design::from_source("# c\nx .\nA x 4 ghost 1 .").unwrap_err();
        match err {
            LoadError::Elab(ElabError::ComponentNotFound { name, referrer, .. }) => {
                assert_eq!(name, "ghost");
                assert_eq!(referrer, "x");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn duplicate_definition_is_an_error() {
        let err = Design::from_source("# c\nx .\nA x 4 1 1\nA x 4 2 2 .").unwrap_err();
        assert!(matches!(
            err,
            LoadError::Elab(ElabError::DuplicateComponent { .. })
        ));
    }

    #[test]
    fn checkdcl_warnings() {
        let d = design("# c\nghost x .\nA x 4 1 1\nA extra 4 1 1 .");
        let texts: Vec<String> = d.warnings().iter().map(|w| w.to_string()).collect();
        assert_eq!(
            texts,
            [
                "Warning: ghost declared but not defined.",
                "Warning: extra defined but not declared."
            ]
        );
    }

    #[test]
    fn traced_undefined_is_an_error() {
        let err = Design::from_source("# c\nghost* .\n.").unwrap_err();
        assert!(matches!(
            err,
            LoadError::Elab(ElabError::TracedUndefined { .. })
        ));
    }

    #[test]
    fn memory_init_defaults_to_zero() {
        let d = design("# c\nm .\nM m 0 0 0 3 .");
        let m = d.memory(d.find("m").unwrap());
        assert_eq!(m.init, [0, 0, 0]);
    }

    #[test]
    fn memory_init_from_list() {
        let d = design("# c\nm .\nM m 0 0 0 -4 12 34 56 78 .");
        let m = d.memory(d.find("m").unwrap());
        assert_eq!(m.init, [12, 34, 56, 78]);
    }

    #[test]
    fn cell_limit_enforced() {
        let err = Design::elaborate_with(
            &rtl_lang::parse("# c\nm .\nM m 0 0 0 100 .").unwrap(),
            ElabOptions { cell_limit: 10 },
        )
        .unwrap_err();
        assert!(matches!(err, ElabError::TooManyCells { .. }));
    }

    #[test]
    fn self_reference_in_memory_data_is_legal() {
        // A register may shift itself: data references its own latch.
        let d = design("# c\nr .\nM r 0 r.0.3 1 1 .");
        assert_eq!(d.memories().len(), 1);
    }

    #[test]
    fn selector_cases_create_dependencies() {
        let d = design("# c\ns a .\nS s a.0 a 0\nA a 2 1 0 .");
        let order: Vec<&str> = d.comb_order().iter().map(|&i| d.name(i)).collect();
        assert_eq!(order, ["a", "s"]);
    }
}
