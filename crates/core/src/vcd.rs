//! Value Change Dump (VCD) waveform export.
//!
//! "This extra output is invaluable when the designer desires to view the
//! internal states of a microprocessor" (§1.4). The thesis printed trace
//! lines; four decades later the lingua franca for viewing internal state
//! is IEEE 1364 VCD, readable by GTKWave and every other waveform viewer.
//!
//! [`VcdSink`] is a [`TraceSink`]: attach it to a
//! [`Session`](crate::session) (alone, or teed with a text sink)
//! and it samples every component's output at each cycle edge —
//! combinational values change during their cycle, memory latches at the
//! edge, exactly like registers in any RTL waveform. [`dump`] is the
//! one-call convenience wrapper.

use crate::design::Design;
use crate::engine::Engine;
use crate::error::SimError;
use crate::session::{Session, Until};
use crate::sink::TraceSink;
use crate::state::SimState;
use crate::word::Word;
use std::io::{self, Write};

/// Options for the dump.
#[derive(Debug, Clone, Default)]
pub struct VcdOptions {
    /// Limit the dump to these component names (empty = all components).
    pub signals: Vec<String>,
}

/// A [`TraceSink`] that records a VCD waveform, one sample per cycle.
/// The design's own trace/output text is discarded — tee with a text sink
/// to keep both. The header is written at the first cycle edge; the
/// closing timestamp comes from [`finish`](VcdSink::finish) (or, when
/// driving through [`dump`], automatically).
#[derive(Debug)]
pub struct VcdSink<W: Write> {
    out: W,
    options: VcdOptions,
    run: Option<Run>,
}

#[derive(Debug)]
struct Run {
    ids: Vec<crate::CompId>,
    widths: Vec<u8>,
    previous: Vec<Option<Word>>,
    cycles: u64,
}

impl<W: Write> VcdSink<W> {
    /// A sink writing the VCD document to `out`.
    pub fn new(out: W, options: VcdOptions) -> Self {
        VcdSink {
            out,
            options,
            run: None,
        }
    }

    /// Cycles sampled so far.
    pub fn cycles(&self) -> u64 {
        self.run.as_ref().map_or(0, |r| r.cycles)
    }

    /// Writes the closing timestamp and returns the writer.
    ///
    /// # Errors
    ///
    /// I/O failure of the writer.
    pub fn finish(mut self) -> io::Result<W> {
        writeln!(self.out, "#{}", self.cycles())?;
        Ok(self.out)
    }

    /// Writes the document header for `design` now, if it has not been
    /// written yet. Called automatically at the first cycle edge; call it
    /// up front to keep a zero-cycle document well-formed (as [`dump`]
    /// does).
    ///
    /// # Errors
    ///
    /// I/O failure of the writer.
    pub fn ensure_header(&mut self, design: &Design) -> io::Result<()> {
        if self.run.is_some() {
            return Ok(());
        }
        let ids: Vec<crate::CompId> = design
            .iter()
            .filter(|(_, c)| {
                self.options.signals.is_empty()
                    || self.options.signals.iter().any(|s| c.name == s.as_str())
            })
            .map(|(id, _)| id)
            .collect();
        let widths = crate::width::infer(design);
        header(design, &ids, &widths, &mut self.out)?;
        self.run = Some(Run {
            previous: vec![None; ids.len()],
            ids,
            widths,
            cycles: 0,
        });
        Ok(())
    }
}

impl<W: Write> TraceSink for VcdSink<W> {
    fn write_bytes(&mut self, _bytes: &[u8]) -> io::Result<()> {
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    fn end_cycle(&mut self, design: &Design, state: &SimState) -> io::Result<()> {
        self.ensure_header(design)?;
        let run = self.run.as_mut().expect("initialized above");
        let mut stamped = false;
        for (slot, &id) in run.ids.iter().enumerate() {
            let value = state.output(id);
            if run.previous[slot] != Some(value) {
                if !stamped {
                    writeln!(self.out, "#{}", run.cycles)?;
                    stamped = true;
                }
                change(&mut self.out, value, run.widths[id.index()], slot)?;
                run.previous[slot] = Some(value);
            }
        }
        run.cycles += 1;
        Ok(())
    }
}

/// Runs `engine` for `cycles` cycles and returns the complete VCD
/// document. The design's trace/output text is discarded; build a
/// [`Session`] with a teed [`VcdSink`] to keep it.
///
/// # Errors
///
/// Simulation errors abort the dump; I/O errors surface as
/// [`SimError::Io`].
pub fn dump<'d>(
    engine: impl Engine + 'd,
    cycles: u64,
    options: &VcdOptions,
) -> Result<Vec<u8>, SimError> {
    let mut doc = Vec::new();
    {
        let mut sink = VcdSink::new(&mut doc, options.clone());
        // Header up front, so even a zero-cycle document is well-formed.
        sink.ensure_header(engine.design())?;
        let mut session = Session::over(engine).sink(sink).build();
        let outcome = session.run(Until::Cycles(cycles));
        if let Some(e) = outcome.stop.into_error() {
            return Err(e);
        }
    }
    writeln!(doc, "#{cycles}").map_err(SimError::from)?;
    Ok(doc)
}

fn header(
    design: &Design,
    ids: &[crate::CompId],
    widths: &[u8],
    out: &mut dyn Write,
) -> io::Result<()> {
    writeln!(out, "$version asim2 (ASIM II reproduction) $end")?;
    writeln!(out, "$comment {} $end", design.title().replace('#', ""))?;
    writeln!(out, "$timescale 1 ns $end")?;
    writeln!(out, "$scope module top $end")?;
    for (slot, &id) in ids.iter().enumerate() {
        writeln!(
            out,
            "$var wire {} {} {} $end",
            widths[id.index()],
            code(slot),
            design.name(id)
        )?;
    }
    writeln!(out, "$upscope $end")?;
    writeln!(out, "$enddefinitions $end")?;
    Ok(())
}

/// The bit pattern a VCD change line records for `value` at `width`:
/// two's-complement truncation to the declared width, like the land()
/// value model. Shared with the [`VcdDiff`](crate::observe::VcdDiff)
/// comparator so "equal waveforms" means exactly "equal VCD documents".
pub fn sample_bits(value: Word, width: u8) -> u64 {
    (value as u64) & (u64::MAX >> (64 - u32::from(width).max(1)))
}

fn change(out: &mut dyn Write, value: Word, width: u8, slot: usize) -> io::Result<()> {
    let bits = sample_bits(value, width);
    writeln!(
        out,
        "b{:0width$b} {}",
        bits,
        code(slot),
        width = width as usize
    )
}

/// VCD identifier codes: printable ASCII 33..=126, extended to two chars
/// beyond 94 signals.
fn code(slot: usize) -> String {
    const BASE: usize = 94;
    let mut s = String::new();
    let mut n = slot;
    loop {
        s.push((b'!' + (n % BASE) as u8) as char);
        n /= BASE;
        if n == 0 {
            break;
        }
        n -= 1;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // A minimal engine for testing lives in rtl-interp; here we exercise
    // the pure pieces and leave end-to-end dumping to the workspace tests.

    #[test]
    fn codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for slot in 0..500 {
            let c = code(slot);
            assert!(c.bytes().all(|b| (33..=126).contains(&b)), "{c:?}");
            assert!(seen.insert(c.clone()), "duplicate {c:?} at {slot}");
        }
        assert_eq!(code(0), "!");
        assert_eq!(code(93), "~");
        assert_eq!(code(94), "!!");
    }

    #[test]
    fn change_lines_mask_to_width() {
        let mut buf = Vec::new();
        change(&mut buf, -1, 4, 0).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "b1111 !\n");
        let mut buf = Vec::new();
        change(&mut buf, 5, 4, 1).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "b0101 \"\n");
    }

    #[test]
    fn zero_cycle_documents_are_well_formed() {
        let design =
            crate::Design::from_source("# c\ncount next .\nM count 0 next 1 1\nA next 4 count 1 .")
                .unwrap();
        let o = VcdOptions::default();
        assert!(o.signals.is_empty());
        let mut sink = VcdSink::new(Vec::new(), o);
        sink.ensure_header(&design).unwrap();
        sink.ensure_header(&design).unwrap();
        assert_eq!(sink.cycles(), 0);
        let doc = String::from_utf8(sink.finish().unwrap()).unwrap();
        assert_eq!(
            doc.matches("$enddefinitions $end").count(),
            1,
            "header written exactly once: {doc}"
        );
        assert!(doc.ends_with("#0\n"), "{doc}");
    }
}
