//! Value Change Dump (VCD) waveform export.
//!
//! "This extra output is invaluable when the designer desires to view the
//! internal states of a microprocessor" (§1.4). The thesis printed trace
//! lines; four decades later the lingua franca for viewing internal state
//! is IEEE 1364 VCD, readable by GTKWave and every other waveform viewer.
//! [`dump`] drives any [`Engine`] and records every component's output —
//! combinational values change during their cycle, memory latches change
//! at the cycle edge, exactly like registers in any RTL waveform.

use crate::design::Design;
use crate::engine::Engine;
use crate::error::SimError;
use crate::io::InputSource;
use crate::word::Word;
use std::io::{self, Write};

/// Options for the dump.
#[derive(Debug, Clone, Default)]
pub struct VcdOptions {
    /// Limit the dump to these component names (empty = all components).
    pub signals: Vec<String>,
}

/// Runs `engine` for `cycles` cycles, writing a VCD document to `out`.
/// Trace/output text the design produces goes to `sim_out`; memory-mapped
/// input comes from `input`.
///
/// # Errors
///
/// Simulation errors abort the dump (the document so far is flushed);
/// I/O errors surface as [`SimError::Io`].
///
/// ```
/// use rtl_core::{vcd, Design, NoInput};
/// use rtl_core::vcd::VcdOptions;
/// let design = Design::from_source(
///     "# counter\ncount next .\nM count 0 next 1 1\nA next 4 count 1 .",
/// ).unwrap();
/// // A VCD dump needs an engine; any Engine works. (Here: a no-op check
/// // that the signal header contains both components.)
/// ```
pub fn dump<E: Engine>(
    engine: &mut E,
    cycles: u64,
    options: &VcdOptions,
    out: &mut dyn Write,
    sim_out: &mut dyn Write,
    input: &mut dyn InputSource,
) -> Result<(), SimError> {
    let design = engine.design();
    let ids: Vec<crate::CompId> = design
        .iter()
        .filter(|(_, c)| {
            options.signals.is_empty() || options.signals.iter().any(|s| c.name == s.as_str())
        })
        .map(|(id, _)| id)
        .collect();
    let widths = crate::width::infer(design);

    header(design, &ids, &widths, out)?;

    let mut previous: Vec<Option<Word>> = vec![None; ids.len()];
    for cycle in 0..cycles {
        engine.step(sim_out, input)?;
        let mut stamped = false;
        for (slot, &id) in ids.iter().enumerate() {
            let value = engine.state().output(id);
            if previous[slot] != Some(value) {
                if !stamped {
                    writeln!(out, "#{cycle}").map_err(SimError::from)?;
                    stamped = true;
                }
                change(out, value, widths[id.index()], slot)?;
                previous[slot] = Some(value);
            }
        }
    }
    writeln!(out, "#{cycles}").map_err(SimError::from)?;
    Ok(())
}

fn header(
    design: &Design,
    ids: &[crate::CompId],
    widths: &[u8],
    out: &mut dyn Write,
) -> Result<(), SimError> {
    let w = |r: io::Result<()>| r.map_err(SimError::from);
    w(writeln!(out, "$version asim2 (ASIM II reproduction) $end"))?;
    w(writeln!(
        out,
        "$comment {} $end",
        design.title().replace('#', "")
    ))?;
    w(writeln!(out, "$timescale 1 ns $end"))?;
    w(writeln!(out, "$scope module top $end"))?;
    for (slot, &id) in ids.iter().enumerate() {
        w(writeln!(
            out,
            "$var wire {} {} {} $end",
            widths[id.index()],
            code(slot),
            design.name(id)
        ))?;
    }
    w(writeln!(out, "$upscope $end"))?;
    w(writeln!(out, "$enddefinitions $end"))?;
    Ok(())
}

fn change(out: &mut dyn Write, value: Word, width: u8, slot: usize) -> Result<(), SimError> {
    // Two's-complement truncation to the declared width, like the land()
    // value model.
    let bits = (value as u64) & (u64::MAX >> (64 - u32::from(width).max(1)));
    writeln!(
        out,
        "b{:0width$b} {}",
        bits,
        code(slot),
        width = width as usize
    )
    .map_err(SimError::from)
}

/// VCD identifier codes: printable ASCII 33..=126, extended to two chars
/// beyond 94 signals.
fn code(slot: usize) -> String {
    const BASE: usize = 94;
    let mut s = String::new();
    let mut n = slot;
    loop {
        s.push((b'!' + (n % BASE) as u8) as char);
        n /= BASE;
        if n == 0 {
            break;
        }
        n -= 1;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::NoInput;

    // A minimal engine for testing lives in rtl-interp; here we exercise
    // the pure pieces and leave end-to-end dumping to the workspace tests.

    #[test]
    fn codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for slot in 0..500 {
            let c = code(slot);
            assert!(c.bytes().all(|b| (33..=126).contains(&b)), "{c:?}");
            assert!(seen.insert(c.clone()), "duplicate {c:?} at {slot}");
        }
        assert_eq!(code(0), "!");
        assert_eq!(code(93), "~");
        assert_eq!(code(94), "!!");
    }

    #[test]
    fn change_lines_mask_to_width() {
        let mut buf = Vec::new();
        change(&mut buf, -1, 4, 0).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "b1111 !\n");
        let mut buf = Vec::new();
        change(&mut buf, 5, 4, 1).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "b0101 \"\n");
    }

    #[test]
    fn options_default_selects_everything() {
        let o = VcdOptions::default();
        assert!(o.signals.is_empty());
        let _ = NoInput; // silence unused-import pedantry in some configs
    }
}
