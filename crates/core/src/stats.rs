//! Simulation statistics.
//!
//! "The register transfer execution will typically produce statistics
//! about the actual simulation, such as execution cycles required, memory
//! accesses, and other related information. This extra output is
//! invaluable when the designer desires to view the internal states of a
//! microprocessor" (§1.4). Both engines maintain a [`SimStats`] and the
//! CLI prints it with `asim run --stats`.

use crate::design::Design;
use crate::resolve::CompId;
use std::fmt;

/// Per-memory access counters plus the cycle count.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Cycles executed.
    pub cycles: u64,
    /// Cell reads per component (indexed by `CompId::index`; zero for
    /// combinational components).
    pub reads: Vec<u64>,
    /// Cell writes per component.
    pub writes: Vec<u64>,
    /// Input-device reads per component.
    pub inputs: Vec<u64>,
    /// Output-device writes per component.
    pub outputs: Vec<u64>,
}

impl SimStats {
    /// Zeroed counters sized for a design.
    pub fn new(design: &Design) -> Self {
        let n = design.len();
        SimStats {
            cycles: 0,
            reads: vec![0; n],
            writes: vec![0; n],
            inputs: vec![0; n],
            outputs: vec![0; n],
        }
    }

    /// Records one memory operation of the given kind.
    #[inline]
    pub fn record(&mut self, id: CompId, op: crate::word::MemOp) {
        use crate::word::MemOp::*;
        let i = id.index();
        match op {
            Read => self.reads[i] += 1,
            Write => self.writes[i] += 1,
            Input => self.inputs[i] += 1,
            Output => self.outputs[i] += 1,
        }
    }

    /// Total memory accesses of all kinds.
    pub fn total_accesses(&self) -> u64 {
        self.reads.iter().sum::<u64>()
            + self.writes.iter().sum::<u64>()
            + self.inputs.iter().sum::<u64>()
            + self.outputs.iter().sum::<u64>()
    }

    /// Renders the report the CLI prints: one row per memory, plus totals.
    pub fn report(&self, design: &Design) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "simulation statistics: {} cycles", self.cycles);
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>10} {:>8} {:>8}",
            "memory", "reads", "writes", "inputs", "outputs"
        );
        for &id in design.memories() {
            let i = id.index();
            let _ = writeln!(
                out,
                "{:<12} {:>10} {:>10} {:>8} {:>8}",
                design.name(id),
                self.reads[i],
                self.writes[i],
                self.inputs[i],
                self.outputs[i],
            );
        }
        let _ = writeln!(out, "total memory accesses: {}", self.total_accesses());
        out
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles, {} memory accesses",
            self.cycles,
            self.total_accesses()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::MemOp;

    #[test]
    fn counters_accumulate() {
        let d = Design::from_source("# s\nm n .\nM m 0 0 0 2\nM n 0 0 1 2 .").unwrap();
        let mut s = SimStats::new(&d);
        let m = d.find("m").unwrap();
        let n = d.find("n").unwrap();
        s.record(m, MemOp::Read);
        s.record(m, MemOp::Read);
        s.record(n, MemOp::Write);
        s.record(n, MemOp::Output);
        s.cycles = 2;
        assert_eq!(s.reads[m.index()], 2);
        assert_eq!(s.writes[n.index()], 1);
        assert_eq!(s.total_accesses(), 4);
        let report = s.report(&d);
        assert!(report.contains("2 cycles"), "{report}");
        assert!(report.contains("total memory accesses: 4"), "{report}");
        assert_eq!(s.to_string(), "2 cycles, 4 memory accesses");
    }
}
