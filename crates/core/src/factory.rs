//! The open engine registry: named factories for every execution tier.
//!
//! The paper's central claim is that several execution strategies —
//! interpreter, bytecode VM, compiled code — implement one simulation
//! contract. This module expresses the *construction* side of that
//! contract: an [`EngineFactory`] turns a [`Design`] into a lane, either a
//! steppable in-process [`Engine`] or a black-box [`StreamEngine`] (e.g. a
//! generated simulator binary run as a subprocess, compared by its output
//! stream). An [`EngineRegistry`] holds factories under stable names and
//! is open: downstream crates register their tiers, external tools can
//! add subprocess lanes, and drivers look engines up by name.
//!
//! The built-in tiers live with their engines (`rtl-interp` registers
//! `interp`/`interp-faithful`, `rtl-compile` registers `vm`/`vm-noopt`
//! and the generated-Rust subprocess lane); `rtl-cosim` assembles the
//! default registry from them.

use crate::design::Design;
use crate::engine::Engine;
use crate::word::Word;

/// Construction options shared by every factory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineOptions {
    /// Emit cycle/trace text (differential harnesses compare it
    /// byte-for-byte when on).
    pub trace: bool,
    /// Execution-profile tap (disabled/no-op by default). Engines that
    /// support profiling attach a per-lane tally to it; the hook always
    /// compares equal, so two options differing only here configure the
    /// same simulation.
    pub profile: rtl_prof::ProfileHook,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            trace: true,
            profile: rtl_prof::ProfileHook::disabled(),
        }
    }
}

/// A black-box execution lane: runs a bounded simulation in one shot and
/// returns the raw trace/output bytes. The differential harness compares
/// the stream byte-for-byte against the stepped lanes' agreed output —
/// this is how a generated simulator binary (a subprocess with no
/// steppable state) joins a co-simulation.
pub trait StreamEngine {
    /// Runs cycles `0..cycles` with the scripted stimulus and returns
    /// everything the simulator wrote.
    ///
    /// # Errors
    ///
    /// A human-readable message (build failure, subprocess crash); stream
    /// lanes have no structured runtime-error channel.
    fn run_stream(&mut self, cycles: u64, stimulus: &[Word]) -> Result<Vec<u8>, String>;
}

/// One execution lane built by a factory.
pub enum EngineLane<'d> {
    /// A steppable in-process engine: joins per-cycle lockstep comparison
    /// and drives through [`Session`](crate::session::Session).
    Stepped(Box<dyn Engine + 'd>),
    /// A black-box stream runner, compared by its full output stream.
    Stream(Box<dyn StreamEngine + 'd>),
}

impl EngineLane<'_> {
    /// `true` for [`EngineLane::Stepped`].
    pub fn is_stepped(&self) -> bool {
        matches!(self, EngineLane::Stepped(_))
    }
}

impl std::fmt::Debug for EngineLane<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineLane::Stepped(_) => f.write_str("EngineLane::Stepped(..)"),
            EngineLane::Stream(_) => f.write_str("EngineLane::Stream(..)"),
        }
    }
}

/// A named constructor for one execution tier.
pub trait EngineFactory: Send + Sync {
    /// The stable registry name (`interp`, `vm`, `rust`, ...).
    fn name(&self) -> &str;

    /// One line for `--engines` listings.
    fn description(&self) -> &str {
        ""
    }

    /// `true` when [`build`](EngineFactory::build) returns a stepped,
    /// in-process lane (the default). Stream lanes return `false` so
    /// drivers that need per-cycle stepping can reject them up front.
    fn is_stepped(&self) -> bool {
        true
    }

    /// Builds the lane over a design.
    ///
    /// # Errors
    ///
    /// A human-readable message (e.g. a missing host toolchain for a
    /// subprocess lane).
    fn build<'d>(
        &self,
        design: &'d Design,
        options: &EngineOptions,
    ) -> Result<EngineLane<'d>, String>;
}

/// A set of [`EngineFactory`]s under unique names, in registration order.
#[derive(Default)]
pub struct EngineRegistry {
    factories: Vec<Box<dyn EngineFactory>>,
}

impl EngineRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a factory. Re-registering a name replaces the earlier factory
    /// (last registration wins), so embedders can shadow built-in tiers.
    pub fn register(&mut self, factory: Box<dyn EngineFactory>) {
        if let Some(slot) = self
            .factories
            .iter_mut()
            .find(|f| f.name() == factory.name())
        {
            *slot = factory;
        } else {
            self.factories.push(factory);
        }
    }

    /// Looks a factory up by name.
    pub fn get(&self, name: &str) -> Option<&dyn EngineFactory> {
        self.factories
            .iter()
            .find(|f| f.name() == name)
            .map(Box::as_ref)
    }

    /// All registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.factories.iter().map(|f| f.name()).collect()
    }

    /// Builds the named lane over a design.
    ///
    /// # Errors
    ///
    /// Unknown name (listing the known ones), or the factory's own build
    /// failure.
    pub fn build<'d>(
        &self,
        name: &str,
        design: &'d Design,
        options: &EngineOptions,
    ) -> Result<EngineLane<'d>, String> {
        match self.get(name) {
            Some(f) => f.build(design, options),
            None => Err(format!(
                "unknown engine {name:?} (known: {})",
                self.names().join(", ")
            )),
        }
    }

    /// Parses a comma-separated engine list (`"interp,vm,rust"`) against
    /// the registry, requiring at least two distinct names — a comparison
    /// against yourself proves nothing.
    ///
    /// # Errors
    ///
    /// Unknown names, fewer than two entries, or duplicates.
    pub fn parse_list(&self, list: &str) -> Result<Vec<String>, String> {
        let names: Vec<String> = list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|name| match self.get(name) {
                Some(f) => Ok(f.name().to_string()),
                None => Err(format!(
                    "unknown engine {name:?} (known: {})",
                    self.names().join(", ")
                )),
            })
            .collect::<Result<_, _>>()?;
        if names.len() < 2 {
            return Err("need at least two engines (e.g. --engines interp,vm)".into());
        }
        for (i, n) in names.iter().enumerate() {
            if names[..i].contains(n) {
                return Err(format!("duplicate engine {n:?}"));
            }
        }
        Ok(names)
    }
}

impl std::fmt::Debug for EngineRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::InputSource;
    use crate::state::SimState;

    /// A trivial engine over a design: bumps the cycle counter and nothing
    /// else. Enough to exercise the registry plumbing in-crate.
    struct IdleEngine<'d> {
        design: &'d Design,
        state: SimState,
    }

    impl Engine for IdleEngine<'_> {
        fn design(&self) -> &Design {
            self.design
        }

        fn state(&self) -> &SimState {
            &self.state
        }

        fn restore(&mut self, snapshot: &SimState) {
            self.state = snapshot.clone();
        }

        fn step(
            &mut self,
            _out: &mut dyn std::io::Write,
            _input: &mut dyn InputSource,
        ) -> Result<(), crate::error::SimError> {
            self.state.bump_cycle();
            Ok(())
        }
    }

    struct IdleFactory;

    impl EngineFactory for IdleFactory {
        fn name(&self) -> &str {
            "idle"
        }

        fn build<'d>(
            &self,
            design: &'d Design,
            _options: &EngineOptions,
        ) -> Result<EngineLane<'d>, String> {
            Ok(EngineLane::Stepped(Box::new(IdleEngine {
                design,
                state: SimState::new(design),
            })))
        }
    }

    struct BrokenFactory;

    impl EngineFactory for BrokenFactory {
        fn name(&self) -> &str {
            "broken"
        }

        fn is_stepped(&self) -> bool {
            false
        }

        fn build<'d>(
            &self,
            _design: &'d Design,
            _options: &EngineOptions,
        ) -> Result<EngineLane<'d>, String> {
            Err("toolchain missing".into())
        }
    }

    fn registry() -> EngineRegistry {
        let mut r = EngineRegistry::new();
        r.register(Box::new(IdleFactory));
        r.register(Box::new(BrokenFactory));
        r
    }

    #[test]
    fn lookup_build_and_errors() {
        let r = registry();
        assert_eq!(r.names(), ["idle", "broken"]);
        let design = Design::from_source("# d\nx .\nA x 2 1 0 .").unwrap();
        let lane = r.build("idle", &design, &EngineOptions::default()).unwrap();
        assert!(lane.is_stepped());
        assert!(r
            .build("broken", &design, &EngineOptions::default())
            .unwrap_err()
            .contains("toolchain"));
        assert!(r
            .build("ghost", &design, &EngineOptions::default())
            .unwrap_err()
            .contains("known: idle, broken"));
    }

    #[test]
    fn reregistration_replaces() {
        let mut r = registry();
        assert!(r.get("broken").is_some());
        struct Fixed;
        impl EngineFactory for Fixed {
            fn name(&self) -> &str {
                "broken"
            }
            fn description(&self) -> &str {
                "now fine"
            }
            fn build<'d>(
                &self,
                design: &'d Design,
                options: &EngineOptions,
            ) -> Result<EngineLane<'d>, String> {
                IdleFactory.build(design, options)
            }
        }
        r.register(Box::new(Fixed));
        assert_eq!(r.names(), ["idle", "broken"], "order preserved");
        assert_eq!(r.get("broken").unwrap().description(), "now fine");
    }

    #[test]
    fn list_parsing() {
        let r = registry();
        assert_eq!(r.parse_list("idle, broken").unwrap(), ["idle", "broken"]);
        assert!(r.parse_list("idle").is_err(), "one engine is no comparison");
        assert!(r.parse_list("idle,idle").is_err(), "duplicates rejected");
        assert!(r.parse_list("idle,warp").is_err());
    }
}
