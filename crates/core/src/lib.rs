//! # rtl-core — semantics and elaboration for ASIM II designs
//!
//! This crate gives the ASIM II language its meaning:
//!
//! * the 31-bit word model and the fourteen ALU functions
//!   ([`word`]),
//! * name resolution and bit-field lowering ([`resolve`]),
//! * dependency analysis with precise circular-dependency diagnosis
//!   ([`graph`]),
//! * elaboration of a parsed [`Spec`](rtl_lang::Spec) into a simulatable
//!   [`Design`] ([`design`] — the cycle-semantics contract is documented
//!   there),
//! * the engine-agnostic simulation state ([`state`]), trace text formats
//!   ([`trace`]), input abstraction ([`io`]) and the [`Engine`] trait that
//!   the interpreter and the compiled VM both implement,
//! * the driving layer: trace sinks ([`sink`]), the open engine registry
//!   ([`factory`]) and the [`Session`] API with structured stop reasons
//!   and on-disk checkpoints ([`session`]),
//! * the observation layer: [`Observation`] value snapshots and the open
//!   [`Comparator`] contract that differential harnesses plug into
//!   ([`observe`]),
//! * output-width inference for netlisting and codegen ([`width`]).
//!
//! ```
//! use rtl_core::Design;
//! let design = Design::from_source(
//!     "# a two component design\ncount* next .\n\
//!      M count 0 next 1 1\n\
//!      A next 4 count 1 .",
//! ).unwrap();
//! assert_eq!(design.comb_order().len(), 1);
//! assert_eq!(design.memories().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod design;
pub mod engine;
pub mod error;
pub mod factory;
pub mod graph;
pub mod io;
pub mod observe;
pub mod resolve;
pub mod session;
pub mod sink;
pub mod state;
pub mod stats;
pub mod trace;
pub mod vcd;
pub mod width;
pub mod word;

pub use design::{CompData, Design, ElabOptions, LoadError, RAlu, RKind, RMemory, RSelector};
pub use engine::{run_captured, Engine};
pub use error::{ElabError, SimError, Warning};
pub use factory::{EngineFactory, EngineLane, EngineOptions, EngineRegistry, StreamEngine};
pub use io::{InputSource, NoInput, ReaderInput, ScriptedInput};
pub use observe::{Comparator, CompareMode, DivergenceKind, LaneReport, LaneStats, Observation};
pub use resolve::{CompId, RExpr, RefMode, RefOp};
pub use rtl_obs::Recorder;
pub use rtl_prof::{CompMeta, LaneTally, Profile, ProfileHook};
pub use session::{
    design_fingerprint, read_checkpoint, write_checkpoint, Fingerprint, HaltKind, RunOutcome,
    Session, SessionBuilder, StopReason, Until,
};
pub use sink::{BufferSink, NullSink, TeeSink, TraceSink, WriteSink};
pub use state::SimState;
pub use stats::SimStats;
pub use word::{dologic, land, AluFn, MemOp, Word, WORD_MASK};
