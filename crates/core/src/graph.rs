//! Dependency analysis of combinational components.
//!
//! ALUs and selectors are evaluated in dependency order each cycle ("the
//! components are sorted in a dependency order" — §4.3). Memories are not
//! sorted: their outputs come from the previous cycle's latch. The original
//! used an `O(n³)` bubble pass; we use Kahn's algorithm with a deterministic
//! min-index tie-break, and Tarjan's SCC algorithm to *diagnose* circular
//! dependencies precisely instead of naming an arbitrary pair.

use crate::error::ElabError;
use crate::resolve::CompId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Topologically sorts the combinational components.
///
/// * `deps[i]` lists, for node `i`, the node indices it depends on (reads
///   from). Indices are positions in `nodes`.
/// * `nodes[i]` is the [`CompId`] of node `i`.
/// * `names[i]` is used for the circular-dependency diagnostic.
///
/// Returns component ids in evaluation order (dependencies first). Ties are
/// broken toward lower indices, so the order is stable across runs.
///
/// # Errors
///
/// [`ElabError::CircularDependency`] listing every component that sits on a
/// combinational cycle.
pub fn sort_combinational(
    nodes: &[CompId],
    deps: &[Vec<usize>],
    names: &[String],
) -> Result<Vec<CompId>, ElabError> {
    debug_assert_eq!(nodes.len(), deps.len());
    let n = nodes.len();

    // Forward edges: dep -> dependent.
    let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut in_degree = vec![0usize; n];
    for (i, ds) in deps.iter().enumerate() {
        for &d in ds {
            out_edges[d].push(i);
            in_degree[i] += 1;
        }
    }

    let mut ready: BinaryHeap<Reverse<usize>> = in_degree
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d == 0)
        .map(|(i, _)| Reverse(i))
        .collect();

    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    while let Some(Reverse(i)) = ready.pop() {
        placed[i] = true;
        order.push(nodes[i]);
        for &j in &out_edges[i] {
            in_degree[j] -= 1;
            if in_degree[j] == 0 {
                ready.push(Reverse(j));
            }
        }
    }

    if order.len() == n {
        return Ok(order);
    }

    // Some nodes never became ready: diagnose the actual cycles.
    let leftover: Vec<usize> = (0..n).filter(|&i| !placed[i]).collect();
    let mut members = cyclic_members(&leftover, deps);
    members.sort_unstable();
    let member_names = members.iter().map(|&i| names[i].clone()).collect();
    Err(ElabError::CircularDependency {
        members: member_names,
    })
}

/// Finds every node that belongs to a strongly connected component of size
/// greater than one, or that has a self-edge (Tarjan, iterative).
fn cyclic_members(nodes: &[usize], deps: &[Vec<usize>]) -> Vec<usize> {
    let n = deps.len();
    let in_scope: Vec<bool> = {
        let mut v = vec![false; n];
        for &i in nodes {
            v[i] = true;
        }
        v
    };

    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut counter = 0usize;
    let mut result = Vec::new();

    // Iterative Tarjan with an explicit work stack of (node, child cursor).
    for &start in nodes {
        if index[start] != usize::MAX {
            continue;
        }
        let mut work: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut cursor)) = work.last_mut() {
            if *cursor == 0 {
                index[v] = counter;
                low[v] = counter;
                counter += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            // Deps within the leftover subgraph are the edges.
            let children: Vec<usize> = deps[v].iter().copied().filter(|&c| in_scope[c]).collect();
            if *cursor < children.len() {
                let c = children[*cursor];
                *cursor += 1;
                if index[c] == usize::MAX {
                    work.push((c, 0));
                } else if on_stack[c] {
                    low[v] = low[v].min(index[c]);
                }
            } else {
                // v is finished: close its SCC if it is a root.
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    let self_loop = scc.len() == 1 && deps[v].contains(&v);
                    if scc.len() > 1 || self_loop {
                        result.extend(scc);
                    }
                }
                let finished = work.pop().expect("work stack underflow").0;
                if let Some(&mut (p, _)) = work.last_mut() {
                    low[p] = low[p].min(low[finished]);
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<CompId> {
        (0..n).map(CompId::new).collect()
    }

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("c{i}")).collect()
    }

    fn indices(order: &[CompId]) -> Vec<usize> {
        order.iter().map(|c| c.index()).collect()
    }

    #[test]
    fn already_ordered_stays_ordered() {
        let deps = vec![vec![], vec![0], vec![1]];
        let order = sort_combinational(&ids(3), &deps, &names(3)).unwrap();
        assert_eq!(indices(&order), [0, 1, 2]);
    }

    #[test]
    fn reversed_chain_is_fixed() {
        // 0 depends on 1 depends on 2.
        let deps = vec![vec![1], vec![2], vec![]];
        let order = sort_combinational(&ids(3), &deps, &names(3)).unwrap();
        assert_eq!(indices(&order), [2, 1, 0]);
    }

    #[test]
    fn independent_nodes_keep_declaration_order() {
        let deps = vec![vec![], vec![], vec![]];
        let order = sort_combinational(&ids(3), &deps, &names(3)).unwrap();
        assert_eq!(indices(&order), [0, 1, 2]);
    }

    #[test]
    fn diamond() {
        // 3 depends on 1 and 2; both depend on 0.
        let deps = vec![vec![], vec![0], vec![0], vec![1, 2]];
        let order = sort_combinational(&ids(4), &deps, &names(4)).unwrap();
        assert_eq!(indices(&order), [0, 1, 2, 3]);
    }

    #[test]
    fn two_cycle_is_diagnosed() {
        let deps = vec![vec![1], vec![0], vec![]];
        let err = sort_combinational(&ids(3), &deps, &names(3)).unwrap_err();
        match err {
            ElabError::CircularDependency { members } => {
                assert_eq!(members, ["c0", "c1"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn self_loop_is_diagnosed() {
        let deps = vec![vec![0]];
        let err = sort_combinational(&ids(1), &deps, &names(1)).unwrap_err();
        match err {
            ElabError::CircularDependency { members } => assert_eq!(members, ["c0"]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn downstream_of_cycle_is_not_blamed() {
        // 0 <-> 1 cycle; 2 depends on 1 but is not part of the cycle.
        let deps = vec![vec![1], vec![0], vec![1]];
        let err = sort_combinational(&ids(3), &deps, &names(3)).unwrap_err();
        match err {
            ElabError::CircularDependency { members } => {
                assert_eq!(members, ["c0", "c1"], "c2 merely depends on the cycle");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn two_disjoint_cycles_both_reported() {
        let deps = vec![vec![1], vec![0], vec![3], vec![2]];
        let err = sort_combinational(&ids(4), &deps, &names(4)).unwrap_err();
        match err {
            ElabError::CircularDependency { members } => {
                assert_eq!(members, ["c0", "c1", "c2", "c3"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_graph() {
        let order = sort_combinational(&[], &[], &[]).unwrap();
        assert!(order.is_empty());
    }

    #[test]
    fn duplicate_dep_edges_are_tolerated() {
        let deps = vec![vec![], vec![0, 0, 0]];
        let order = sort_combinational(&ids(2), &deps, &names(2)).unwrap();
        assert_eq!(indices(&order), [0, 1]);
    }
}
