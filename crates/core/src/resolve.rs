//! Resolved expressions: name references bound to component ids, bit
//! subfields lowered to mask/shift operations.
//!
//! A parsed [`rtl_lang::Expr`] is a list of concatenation parts. At
//! elaboration time each part becomes either a constant contribution
//! (folded into [`RExpr::const_total`]) or a [`RefOp`] that extracts a bit
//! field from another component's output and places it at the part's
//! position, exactly mirroring the arithmetic the original compiler
//! emitted (`land(x, bits) div 2^from * 2^pos`).

use crate::error::ElabError;
use crate::word::{land, Word};
use rtl_lang::{Expr, Part};
use std::collections::HashMap;

/// Identifies a component within a [`Design`](crate::design::Design); the
/// index follows definition order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CompId(u32);

impl CompId {
    pub(crate) fn new(index: usize) -> Self {
        CompId(index as u32)
    }

    /// The definition-order index of the component.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for CompId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// How a reference extracts bits from the target's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefMode {
    /// `(value & mask) >> rshift << lshift` — a `.from[.to]` subfield.
    Field {
        /// Mask covering bits `from..=to` in place.
        mask: Word,
        /// The subfield's low bit (`from`).
        rshift: u8,
        /// Position of the part in the concatenation.
        lshift: u8,
    },
    /// `value << lshift` — a bare reference (no masking; negative values
    /// pass through, as in the original).
    Raw {
        /// Position of the part in the concatenation.
        lshift: u8,
    },
}

/// One resolved reference inside an expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefOp {
    /// The referenced component.
    pub comp: CompId,
    /// Bit extraction and placement.
    pub mode: RefMode,
}

impl RefOp {
    /// Extracts and places this reference's contribution given the
    /// referenced component's current output value.
    #[inline]
    pub fn apply(&self, value: Word) -> Word {
        match self.mode {
            RefMode::Field {
                mask,
                rshift,
                lshift,
            } => ((land(value, mask)) >> rshift) << lshift,
            RefMode::Raw { lshift } => value.wrapping_shl(lshift as u32),
        }
    }
}

/// A resolved expression: a constant plus a sum of shifted bit fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RExpr {
    /// Sum of all constant parts, pre-shifted into position.
    pub const_total: Word,
    /// The reference parts.
    pub ops: Vec<RefOp>,
    /// Width of the concatenation in bits (31 when a full-width part is
    /// present).
    pub width: u8,
    /// The source expression (for diagnostics and code generation).
    pub source: Expr,
}

impl RExpr {
    /// `true` if the expression has no component references.
    pub fn is_constant(&self) -> bool {
        self.ops.is_empty()
    }

    /// The constant value, if [`RExpr::is_constant`].
    pub fn as_constant(&self) -> Option<Word> {
        self.is_constant().then_some(self.const_total)
    }

    /// Evaluates against `outputs`, the per-component output array
    /// (combinational values and memory latches alike).
    #[inline]
    pub fn eval(&self, outputs: &[Word]) -> Word {
        let mut total = self.const_total;
        for op in &self.ops {
            total = total.wrapping_add(op.apply(outputs[op.comp.index()]));
        }
        total
    }

    /// Iterates over the referenced component ids.
    pub fn comps(&self) -> impl Iterator<Item = CompId> + '_ {
        self.ops.iter().map(|o| o.comp)
    }
}

/// Resolves a parsed expression against the name table.
///
/// `referrer` names the component being elaborated (for diagnostics).
///
/// # Errors
///
/// * [`ElabError::ComponentNotFound`] for unknown names.
/// * [`ElabError::TooManyBits`] when the concatenation exceeds 31 bits —
///   including a full-width part that is not leftmost with nothing but
///   room behind it.
pub fn resolve_expr(
    expr: &Expr,
    names: &HashMap<String, CompId>,
    referrer: &str,
) -> Result<RExpr, ElabError> {
    let too_many = || ElabError::TooManyBits {
        expr: expr.to_string(),
        span: expr.span,
    };

    let mut const_total: Word = 0;
    let mut ops = Vec::new();
    let mut pos: u32 = 0; // `numbits` of the original

    for part in expr.parts.iter().rev() {
        match part {
            Part::Const { value, width } => match width {
                Some(w) => {
                    let w = u32::from(*w);
                    let mask = (1i64 << w) - 1;
                    const_total += (value & mask) << pos;
                    pos += w;
                }
                None => {
                    if pos > 30 {
                        return Err(too_many());
                    }
                    const_total += value << pos;
                    pos = 31;
                }
            },
            Part::Bits { value, width } => {
                const_total += value << pos.min(62);
                pos += u32::from(*width);
            }
            Part::Ref { name, from, to } => {
                let comp =
                    *names
                        .get(name.as_str())
                        .ok_or_else(|| ElabError::ComponentNotFound {
                            name: name.as_str().to_string(),
                            referrer: referrer.to_string(),
                            span: expr.span,
                        })?;
                match from {
                    Some(f) => {
                        let f = u32::from(*f);
                        let t = to.map(u32::from).unwrap_or(f);
                        debug_assert!(f <= t && t <= 30, "parser validated subfields");
                        let mask = (((1i64 << (t - f + 1)) - 1) << f) as Word;
                        ops.push(RefOp {
                            comp,
                            mode: RefMode::Field {
                                mask,
                                rshift: f as u8,
                                lshift: pos.min(62) as u8,
                            },
                        });
                        pos += t - f + 1;
                    }
                    None => {
                        if pos > 30 {
                            return Err(too_many());
                        }
                        ops.push(RefOp {
                            comp,
                            mode: RefMode::Raw { lshift: pos as u8 },
                        });
                        pos = 31;
                    }
                }
            }
        }
        if pos > 31 {
            return Err(too_many());
        }
    }

    Ok(RExpr {
        const_total,
        ops,
        width: pos.min(31) as u8,
        source: expr.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl_lang::{parse_expr, Span};

    fn names(list: &[&str]) -> HashMap<String, CompId> {
        list.iter()
            .enumerate()
            .map(|(i, n)| (n.to_string(), CompId::new(i)))
            .collect()
    }

    fn resolve(text: &str, tbl: &[&str]) -> Result<RExpr, ElabError> {
        let e = parse_expr(text, Span::default()).unwrap();
        resolve_expr(&e, &names(tbl), "test")
    }

    #[test]
    fn constant_folding() {
        let r = resolve("42", &[]).unwrap();
        assert_eq!(r.as_constant(), Some(42));
        assert_eq!(r.width, 31);

        // `1,rom.12,prog.0.3` from the thesis: constant 1 lands at bit 5.
        let r = resolve("1,rom.12,prog.0.3", &["rom", "prog"]).unwrap();
        assert_eq!(r.const_total, 32);
        assert_eq!(r.ops.len(), 2);
        assert_eq!(r.width, 31);
    }

    #[test]
    fn figure_3_1_semantics() {
        // `mem.3.4,#01,count.1`: with mem = 0b11000 (bits 3,4 set) and
        // count = 0b10 (bit 1 set) the result is 1 1 0 1 1 = 27.
        let r = resolve("mem.3.4,#01,count.1", &["mem", "count"]).unwrap();
        let outputs = [0b11000, 0b10];
        assert_eq!(r.eval(&outputs), 0b11011);
        assert_eq!(r.width, 5);
    }

    #[test]
    fn appendix_e_op_selector_index() {
        // `ir.0.3` compiles to `land(tempir, 15)` — mask 15, no shifts.
        let r = resolve("ir.0.3", &["ir"]).unwrap();
        assert_eq!(r.ops.len(), 1);
        assert_eq!(
            r.ops[0].mode,
            RefMode::Field {
                mask: 15,
                rshift: 0,
                lshift: 0
            }
        );
        assert_eq!(r.eval(&[0b10110]), 0b0110);
    }

    #[test]
    fn appendix_e_exit_alu_funct() {
        // `%110,rom.8` compiles to `land(rom, 256) div 256 + 12`.
        let r = resolve("%110,rom.8", &["rom"]).unwrap();
        assert_eq!(r.const_total, 12);
        assert_eq!(r.eval(&[0]), 12);
        assert_eq!(r.eval(&[256]), 13);
    }

    #[test]
    fn sized_constants_mask() {
        let r = resolve("255.4", &[]).unwrap();
        assert_eq!(r.as_constant(), Some(15));
        assert_eq!(r.width, 4);
        // Concatenation: `1.2,3.2` = 0b01_11.
        let r = resolve("1.2,3.2", &[]).unwrap();
        assert_eq!(r.as_constant(), Some(0b0111));
    }

    #[test]
    fn raw_refs_pass_negative_values() {
        let r = resolve("neg", &["neg"]).unwrap();
        assert_eq!(r.eval(&[-7]), -7);
    }

    #[test]
    fn raw_ref_in_mid_concat_shifts() {
        // `x,#01`: x fills bits 2.. — value multiplied by 4.
        let r = resolve("x,#01", &["x"]).unwrap();
        assert_eq!(r.eval(&[3]), 3 * 4 + 1);
    }

    #[test]
    fn unknown_name_is_reported_with_referrer() {
        let err = resolve("ghost.0", &[]).unwrap_err();
        match err {
            ElabError::ComponentNotFound { name, referrer, .. } => {
                assert_eq!(name, "ghost");
                assert_eq!(referrer, "test");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn too_many_bits() {
        // 32 one-bit fields over 31 bits.
        let text = (0..32).map(|_| "x.0").collect::<Vec<_>>().join(",");
        assert!(matches!(
            resolve(&text, &["x"]).unwrap_err(),
            ElabError::TooManyBits { .. }
        ));
        // Two full-width parts.
        assert!(matches!(
            resolve("x,y", &["x", "y"]).unwrap_err(),
            ElabError::TooManyBits { .. }
        ));
        // A full-width constant behind a full-width ref.
        assert!(matches!(
            resolve("5,x", &["x"]).unwrap_err(),
            ElabError::TooManyBits { .. }
        ));
        // Exactly 31 bits is fine.
        let text = (0..31).map(|_| "x.0").collect::<Vec<_>>().join(",");
        assert_eq!(resolve(&text, &["x"]).unwrap().width, 31);
    }

    #[test]
    fn eval_concatenates_left_to_right_msb_first() {
        // `a.0.1,b.0.1` → a in bits 2..3, b in bits 0..1.
        let r = resolve("a.0.1,b.0.1", &["a", "b"]).unwrap();
        assert_eq!(r.eval(&[0b10, 0b01]), 0b1001);
    }
}
