//! Trace and output formatting.
//!
//! Every engine — interpreter, VM, generated Rust, generated Pascal — must
//! produce byte-identical output for the same design and inputs; the
//! differential test suite depends on it. This module is therefore the
//! single source of truth for the text formats, mirroring the `write`
//! statements the original compiler emitted:
//!
//! * `Cycle ⟨count:3⟩ ⟨name⟩= ⟨value⟩ …` per cycle,
//! * ` Write to ⟨mem⟩ at ⟨addr⟩: ⟨value⟩` when `op & 5 = 5`,
//! * ` Read from ⟨mem⟩ at ⟨addr⟩: ⟨value⟩` when `op & 9 = 8`,
//! * output-device lines per the memory-mapped I/O rules of Appendix A.

use crate::word::Word;
use std::io::{self, Write};

/// Writes the start of a cycle line: `Cycle ⟨n:3⟩` (width-3, right aligned,
/// Pascal `cyclecount:3`).
///
/// # Errors
///
/// Propagates I/O errors from the sink.
pub fn cycle_header(out: &mut dyn Write, cycle: Word) -> io::Result<()> {
    write!(out, "Cycle {cycle:>3}")
}

/// Writes one traced value: ` ⟨name⟩= ⟨value⟩`.
///
/// # Errors
///
/// Propagates I/O errors from the sink.
pub fn traced_value(out: &mut dyn Write, name: &str, value: Word) -> io::Result<()> {
    write!(out, " {name}= {value}")
}

/// Ends the cycle line.
///
/// # Errors
///
/// Propagates I/O errors from the sink.
pub fn end_line(out: &mut dyn Write) -> io::Result<()> {
    out.write_all(b"\n")
}

/// Writes a memory write-trace line: ` Write to ⟨name⟩ at ⟨addr⟩: ⟨value⟩`.
///
/// # Errors
///
/// Propagates I/O errors from the sink.
pub fn mem_write(out: &mut dyn Write, name: &str, addr: Word, value: Word) -> io::Result<()> {
    writeln!(out, " Write to {name} at {addr}: {value}")
}

/// Writes a memory read-trace line: ` Read from ⟨name⟩ at ⟨addr⟩: ⟨value⟩`.
///
/// # Errors
///
/// Propagates I/O errors from the sink.
pub fn mem_read(out: &mut dyn Write, name: &str, addr: Word, value: Word) -> io::Result<()> {
    writeln!(out, " Read from {name} at {addr}: {value}")
}

/// Writes an output-device event (`soutput`): address 0 prints the value as
/// a character, address 1 as an integer, anything else as a tagged line.
///
/// # Errors
///
/// Propagates I/O errors from the sink.
pub fn output_event(out: &mut dyn Write, addr: Word, data: Word) -> io::Result<()> {
    match addr {
        0 => {
            let byte = (data & 0xFF) as u8;
            out.write_all(&[byte, b'\n'])
        }
        1 => writeln!(out, "{data}"),
        _ => writeln!(out, "Output to address {addr}: {data}"),
    }
}

/// Writes the prompt `sinput` prints before reading from a non-standard
/// address: `Input from address ⟨addr⟩: `.
///
/// # Errors
///
/// Propagates I/O errors from the sink.
pub fn input_prompt(out: &mut dyn Write, addr: Word) -> io::Result<()> {
    write!(out, "Input from address {addr}: ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capture(f: impl FnOnce(&mut dyn Write) -> io::Result<()>) -> String {
        let mut buf = Vec::new();
        f(&mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn cycle_line_format() {
        let s = capture(|w| {
            cycle_header(w, 7)?;
            traced_value(w, "pc", 12)?;
            traced_value(w, "ac", 900)?;
            end_line(w)
        });
        assert_eq!(s, "Cycle   7 pc= 12 ac= 900\n");
    }

    #[test]
    fn cycle_width_is_three_but_grows() {
        assert_eq!(capture(|w| cycle_header(w, 0)), "Cycle   0");
        assert_eq!(capture(|w| cycle_header(w, 99)), "Cycle  99");
        assert_eq!(capture(|w| cycle_header(w, 5545)), "Cycle 5545");
    }

    #[test]
    fn memory_trace_lines() {
        assert_eq!(
            capture(|w| mem_write(w, "ram", 5, 42)),
            " Write to ram at 5: 42\n"
        );
        assert_eq!(
            capture(|w| mem_read(w, "ram", 6, -1)),
            " Read from ram at 6: -1\n"
        );
    }

    #[test]
    fn output_events_per_address() {
        assert_eq!(capture(|w| output_event(w, 0, 65)), "A\n");
        assert_eq!(capture(|w| output_event(w, 1, 1234)), "1234\n");
        assert_eq!(
            capture(|w| output_event(w, 4096, 13)),
            "Output to address 4096: 13\n"
        );
    }

    #[test]
    fn char_output_masks_to_a_byte() {
        assert_eq!(capture(|w| output_event(w, 0, 65 + 256)), "A\n");
    }

    #[test]
    fn input_prompt_format() {
        assert_eq!(capture(|w| input_prompt(w, 9)), "Input from address 9: ");
    }
}
