//! The session layer — *driving* a simulation, as opposed to stepping it.
//!
//! [`Engine`] is the stepping contract every execution tier implements;
//! [`Session`] is the driving contract every tool uses. A session binds an
//! engine, a [`TraceSink`] and a stimulus ([`InputSource`]) once, then
//! [`runs`](Session::run) to a bound and reports how the run stopped as a
//! *value*: [`RunOutcome`] carries the executed cycle count and a
//! [`StopReason`] — the cycle limit, a structured design halt
//! ([`HaltKind`]), or a harness error — instead of a stringified error.
//!
//! Sessions also own checkpointing: [`Session::checkpoint`] serializes the
//! architectural state to a writer (a versioned, design-fingerprinted
//! format) and [`Session::resume`] restores it, so long runs can stop and
//! continue byte-identically.
//!
//! ```
//! use rtl_core::{Design, Session, Until};
//! use rtl_core::session::StopReason;
//!
//! let design = Design::from_source(
//!     "# counter\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .",
//! ).unwrap();
//! # struct Idle<'d>(&'d Design, rtl_core::SimState);
//! # impl rtl_core::Engine for Idle<'_> {
//! #     fn design(&self) -> &Design { self.0 }
//! #     fn state(&self) -> &rtl_core::SimState { &self.1 }
//! #     fn restore(&mut self, s: &rtl_core::SimState) { self.1 = s.clone(); }
//! #     fn step(
//! #         &mut self,
//! #         out: &mut dyn std::io::Write,
//! #         _input: &mut dyn rtl_core::InputSource,
//! #     ) -> Result<(), rtl_core::SimError> {
//! #         writeln!(out, "Cycle {}", self.1.cycle())?;
//! #         self.1.bump_cycle();
//! #         Ok(())
//! #     }
//! # }
//! # let engine = Idle(&design, rtl_core::SimState::new(&design));
//! let mut session = Session::over(engine).capture().build();
//! let outcome = session.run(Until::Cycles(3));
//! assert_eq!(outcome.cycles, 3);
//! assert_eq!(outcome.stop, StopReason::CycleLimit);
//! assert!(session.output_text().contains("Cycle 2"));
//! ```

use crate::design::Design;
use crate::engine::Engine;
use crate::error::SimError;
use crate::factory::{EngineLane, EngineOptions, EngineRegistry};
use crate::io::{InputSource, NoInput, ScriptedInput};
use crate::sink::{BufferSink, NullSink, SinkWriter, TraceSink};
use crate::state::SimState;
use crate::word::Word;
use rtl_obs::Recorder;
use std::io::{self, BufRead, Write};

/// How far [`Session::run`] should drive the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Until {
    /// Run `n` further cycles from wherever the session stands.
    Cycles(u64),
    /// Run until the cycle counter *exceeds* `last` — i.e. simulate cycles
    /// `0..=last`, the semantics of the specification's `= n` clause (the
    /// generated Pascal's `while cyclecount <= cycles`).
    Cycle(Word),
    /// The cycle bound requested by the specification's own `= n` clause;
    /// zero cycles if the spec has none.
    Spec,
}

/// Why a simulated design stopped before its cycle bound — the structured
/// classification of the runtime conditions the original Pascal crashed
/// on. This is a *value*, not a stringified error: harnesses match on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HaltKind {
    /// A selector index fell outside its case list.
    SelectorOutOfRange {
        /// Selector name.
        component: String,
        /// The index value.
        index: Word,
        /// Number of cases.
        cases: usize,
        /// Cycle at which it happened.
        cycle: Word,
    },
    /// A memory address fell outside `0..size`.
    AddressOutOfRange {
        /// Memory name.
        component: String,
        /// The address value.
        address: Word,
        /// Number of cells.
        size: u32,
        /// Cycle at which it happened.
        cycle: Word,
    },
    /// An ALU function expression evaluated outside `0..=13`.
    BadAluFunction {
        /// ALU name.
        component: String,
        /// The function value.
        funct: Word,
        /// Cycle at which it happened.
        cycle: Word,
    },
    /// A memory-mapped input was requested but the stimulus is exhausted.
    InputExhausted {
        /// Cycle at which it happened.
        cycle: Word,
    },
}

impl HaltKind {
    /// Classifies a runtime error as a design halt. `None` for harness
    /// errors ([`SimError::Io`]) — those are the driver's problem, not the
    /// design's.
    pub fn classify(error: &SimError) -> Option<HaltKind> {
        match error {
            SimError::SelectorOutOfRange {
                component,
                index,
                cases,
                cycle,
            } => Some(HaltKind::SelectorOutOfRange {
                component: component.clone(),
                index: *index,
                cases: *cases,
                cycle: *cycle,
            }),
            SimError::AddressOutOfRange {
                component,
                address,
                size,
                cycle,
            } => Some(HaltKind::AddressOutOfRange {
                component: component.clone(),
                address: *address,
                size: *size,
                cycle: *cycle,
            }),
            SimError::BadAluFunction {
                component,
                funct,
                cycle,
            } => Some(HaltKind::BadAluFunction {
                component: component.clone(),
                funct: *funct,
                cycle: *cycle,
            }),
            SimError::InputExhausted { cycle } => Some(HaltKind::InputExhausted { cycle: *cycle }),
            SimError::Io(_) => None,
        }
    }

    /// The cycle at which the design halted.
    pub fn cycle(&self) -> Word {
        match self {
            HaltKind::SelectorOutOfRange { cycle, .. }
            | HaltKind::AddressOutOfRange { cycle, .. }
            | HaltKind::BadAluFunction { cycle, .. }
            | HaltKind::InputExhausted { cycle } => *cycle,
        }
    }

    /// A stable machine-readable label for reports and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            HaltKind::SelectorOutOfRange { .. } => "selector-out-of-range",
            HaltKind::AddressOutOfRange { .. } => "address-out-of-range",
            HaltKind::BadAluFunction { .. } => "bad-alu-function",
            HaltKind::InputExhausted { .. } => "input-exhausted",
        }
    }

    /// The equivalent [`SimError`], for APIs that still speak errors.
    pub fn to_error(&self) -> SimError {
        match self.clone() {
            HaltKind::SelectorOutOfRange {
                component,
                index,
                cases,
                cycle,
            } => SimError::SelectorOutOfRange {
                component,
                index,
                cases,
                cycle,
            },
            HaltKind::AddressOutOfRange {
                component,
                address,
                size,
                cycle,
            } => SimError::AddressOutOfRange {
                component,
                address,
                size,
                cycle,
            },
            HaltKind::BadAluFunction {
                component,
                funct,
                cycle,
            } => SimError::BadAluFunction {
                component,
                funct,
                cycle,
            },
            HaltKind::InputExhausted { cycle } => SimError::InputExhausted { cycle },
        }
    }
}

impl std::fmt::Display for HaltKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.to_error().fmt(f)
    }
}

/// How a [`Session::run`] stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// The requested cycle bound was reached; nothing went wrong.
    CycleLimit,
    /// The simulated design stopped itself: a structured runtime halt.
    Halt(HaltKind),
    /// The harness failed (I/O while writing trace) — a problem *outside*
    /// the design.
    Error(SimError),
}

impl StopReason {
    /// Classifies a step error: design halts become [`StopReason::Halt`],
    /// harness failures [`StopReason::Error`].
    pub fn from_error(error: SimError) -> StopReason {
        match HaltKind::classify(&error) {
            Some(halt) => StopReason::Halt(halt),
            None => StopReason::Error(error),
        }
    }

    /// `true` for [`StopReason::CycleLimit`].
    pub fn is_cycle_limit(&self) -> bool {
        matches!(self, StopReason::CycleLimit)
    }

    /// The halt classification, when the design halted.
    pub fn halt(&self) -> Option<&HaltKind> {
        match self {
            StopReason::Halt(h) => Some(h),
            _ => None,
        }
    }

    /// Converts back to the error world: `None` for a clean cycle limit.
    pub fn into_error(self) -> Option<SimError> {
        match self {
            StopReason::CycleLimit => None,
            StopReason::Halt(h) => Some(h.to_error()),
            StopReason::Error(e) => Some(e),
        }
    }
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::CycleLimit => f.write_str("cycle limit reached"),
            StopReason::Halt(h) => write!(f, "design halted: {h}"),
            StopReason::Error(e) => write!(f, "harness error: {e}"),
        }
    }
}

/// The result of a [`Session::run`]: how many cycles executed and why the
/// run stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Cycles executed by this call (not the engine's lifetime total).
    pub cycles: u64,
    /// Why the run stopped.
    pub stop: StopReason,
}

impl RunOutcome {
    /// `true` when the run reached its cycle bound cleanly.
    pub fn completed(&self) -> bool {
        self.stop.is_cycle_limit()
    }

    /// The halt classification, when the design halted.
    pub fn halt(&self) -> Option<&HaltKind> {
        self.stop.halt()
    }

    /// The executed cycle count, or the halting/harness error.
    ///
    /// # Errors
    ///
    /// Any stop other than the cycle limit, as a [`SimError`].
    pub fn into_result(self) -> Result<u64, SimError> {
        match self.stop.into_error() {
            None => Ok(self.cycles),
            Some(e) => Err(e),
        }
    }
}

/// Builds a [`Session`]: binds an engine (directly or by registry name), a
/// [`TraceSink`] (null by default) and a stimulus ([`NoInput`] by
/// default).
pub struct SessionBuilder<'d> {
    design: Option<&'d Design>,
    engine: Option<Box<dyn Engine + 'd>>,
    sink: Box<dyn TraceSink + 'd>,
    stimulus: Box<dyn InputSource + 'd>,
    recorder: Recorder,
}

impl<'d> SessionBuilder<'d> {
    fn empty() -> Self {
        SessionBuilder {
            design: None,
            engine: None,
            sink: Box::new(NullSink),
            stimulus: Box::new(NoInput),
            recorder: Recorder::disabled(),
        }
    }

    /// Starts from a design; pick the engine with
    /// [`engine_named`](SessionBuilder::engine_named) or
    /// [`engine`](SessionBuilder::engine).
    pub fn new(design: &'d Design) -> Self {
        SessionBuilder {
            design: Some(design),
            ..Self::empty()
        }
    }

    /// Binds an already-constructed engine (also accepts `&mut E` and
    /// boxed engines via the blanket [`Engine`] impls).
    pub fn engine(mut self, engine: impl Engine + 'd) -> Self {
        self.engine = Some(Box::new(engine));
        self
    }

    /// Builds and binds a registry engine over the builder's design.
    ///
    /// # Errors
    ///
    /// Unknown name, factory build failure, or a stream lane (stream
    /// engines cannot be stepped by a session).
    ///
    /// # Panics
    ///
    /// Panics when the builder was not created with
    /// [`SessionBuilder::new`] (no design to build over).
    pub fn engine_named(
        mut self,
        registry: &EngineRegistry,
        name: &str,
        options: &EngineOptions,
    ) -> Result<Self, String> {
        let design = self
            .design
            .expect("engine_named needs SessionBuilder::new(design)");
        match registry.build(name, design, options)? {
            EngineLane::Stepped(engine) => {
                self.engine = Some(engine);
                Ok(self)
            }
            EngineLane::Stream(_) => Err(format!(
                "engine {name:?} is a stream lane; it cannot be stepped by a Session"
            )),
        }
    }

    /// Binds a trace sink (replaces the default [`NullSink`]).
    pub fn sink(mut self, sink: impl TraceSink + 'd) -> Self {
        self.sink = Box::new(sink);
        self
    }

    /// Captures the trace in memory ([`BufferSink`]); read it back with
    /// [`Session::output`].
    pub fn capture(self) -> Self {
        self.sink(BufferSink::new())
    }

    /// Binds a stimulus source (replaces the default [`NoInput`]).
    pub fn stimulus(mut self, stimulus: impl InputSource + 'd) -> Self {
        self.stimulus = Box::new(stimulus);
        self
    }

    /// Scripts the stimulus from a word sequence ([`ScriptedInput`]).
    pub fn scripted(self, words: impl IntoIterator<Item = Word>) -> Self {
        self.stimulus(ScriptedInput::new(words))
    }

    /// Binds a telemetry [`Recorder`] (disabled by default). The session
    /// counts executed cycles (`session/cycles`, deterministic) and spans
    /// file-backed checkpoint/resume; a disabled recorder keeps all of it
    /// a no-op.
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Finishes the session.
    ///
    /// # Panics
    ///
    /// Panics when no engine was bound — sessions drive engines, there is
    /// no default.
    pub fn build(self) -> Session<'d> {
        Session {
            engine: self
                .engine
                .expect("SessionBuilder needs an engine (engine() or engine_named())"),
            sink: self.sink,
            stimulus: self.stimulus,
            recorder: self.recorder,
        }
    }
}

/// A bound simulation run: one engine, one trace sink, one stimulus.
/// See the [module docs](self).
pub struct Session<'d> {
    engine: Box<dyn Engine + 'd>,
    sink: Box<dyn TraceSink + 'd>,
    stimulus: Box<dyn InputSource + 'd>,
    recorder: Recorder,
}

impl<'d> Session<'d> {
    /// A builder over a design (engine picked by registry name or bound
    /// directly).
    pub fn builder(design: &'d Design) -> SessionBuilder<'d> {
        SessionBuilder::new(design)
    }

    /// A builder over an already-constructed engine — the short path when
    /// you hold the engine (or a `&mut` borrow of it) yourself.
    pub fn over(engine: impl Engine + 'd) -> SessionBuilder<'d> {
        SessionBuilder::empty().engine(engine)
    }

    /// Executes one cycle.
    ///
    /// # Errors
    ///
    /// The raw step error; [`run`](Session::run) is the classified driver.
    pub fn step(&mut self) -> Result<(), SimError> {
        let mut writer = SinkWriter(&mut *self.sink);
        self.engine.step(&mut writer, &mut *self.stimulus)?;
        self.sink
            .end_cycle(self.engine.design(), self.engine.state())
            .map_err(SimError::from)
    }

    /// Drives the engine to a bound, classifying how the run stopped.
    pub fn run(&mut self, until: Until) -> RunOutcome {
        let mut executed = 0u64;
        let stop = loop {
            let keep_going = match until {
                Until::Cycles(n) => executed < n,
                Until::Cycle(last) => self.engine.state().cycle() <= last,
                Until::Spec => match self.engine.design().cycles() {
                    Some(last) => self.engine.state().cycle() <= last,
                    None => false,
                },
            };
            if !keep_going {
                break StopReason::CycleLimit;
            }
            match self.step() {
                Ok(()) => executed += 1,
                Err(e) => break StopReason::from_error(e),
            }
        };
        self.recorder.count("session", "cycles", executed);
        RunOutcome {
            cycles: executed,
            stop,
        }
    }

    /// The design under simulation.
    pub fn design(&self) -> &Design {
        self.engine.design()
    }

    /// The current cycle number.
    pub fn cycle(&self) -> Word {
        self.engine.state().cycle()
    }

    /// The current simulation state.
    pub fn state(&self) -> &SimState {
        self.engine.state()
    }

    /// The engine (for snapshots, stats, observability queries).
    pub fn engine(&self) -> &dyn Engine {
        &*self.engine
    }

    /// The engine, mutably (for restore).
    pub fn engine_mut(&mut self) -> &mut (dyn Engine + 'd) {
        &mut *self.engine
    }

    /// The stimulus source, mutably — interactive drivers read prompt
    /// answers from the same source that feeds memory-mapped input.
    pub fn stimulus_mut(&mut self) -> &mut (dyn InputSource + 'd) {
        &mut *self.stimulus
    }

    /// Replaces the stimulus source. Rewind/replay harnesses use this
    /// with [`resume`](Session::resume): restoring a checkpoint rolls the
    /// architectural state back, and the replayed scripted input must be
    /// re-supplied from the matching offset.
    pub fn set_stimulus(&mut self, stimulus: impl InputSource + 'd) {
        self.stimulus = Box::new(stimulus);
    }

    /// The trace sink, mutably — interactive drivers write their prompts
    /// to the same destination the trace goes to.
    pub fn sink_mut(&mut self) -> &mut (dyn TraceSink + 'd) {
        &mut *self.sink
    }

    /// The captured trace bytes, when the sink buffers (see
    /// [`SessionBuilder::capture`]); empty otherwise.
    pub fn output(&self) -> &[u8] {
        self.sink.captured().unwrap_or(&[])
    }

    /// The captured trace as (lossy) text.
    pub fn output_text(&self) -> String {
        String::from_utf8_lossy(self.output()).into_owned()
    }

    /// Flushes the sink.
    ///
    /// # Errors
    ///
    /// I/O failure of the sink's destination.
    pub fn flush(&mut self) -> Result<(), SimError> {
        self.sink.flush().map_err(SimError::from)
    }

    /// Serializes the architectural state (cycle counter, outputs, memory
    /// cells) to a writer, fingerprinted against the design. See
    /// [`write_checkpoint`].
    ///
    /// # Errors
    ///
    /// I/O failure of the writer.
    pub fn checkpoint(&self, out: &mut dyn Write) -> io::Result<()> {
        write_checkpoint(self.engine.design(), self.engine.state(), out)
    }

    /// [`checkpoint`](Session::checkpoint) to a file path.
    ///
    /// # Errors
    ///
    /// File creation or write failure.
    pub fn checkpoint_to(&self, path: impl AsRef<std::path::Path>) -> io::Result<()> {
        let _span = self.recorder.span("session", "checkpoint");
        let mut file = io::BufWriter::new(std::fs::File::create(path)?);
        self.checkpoint(&mut file)?;
        use std::io::Write as _;
        file.flush()
    }

    /// Restores the engine from a checkpoint previously written over the
    /// *same design*. The trace sink and stimulus are left untouched —
    /// resuming a run with scripted input is the caller's job (re-supply
    /// the stimulus from the right offset).
    ///
    /// # Errors
    ///
    /// I/O failure, a malformed document, or a design-fingerprint
    /// mismatch (all as [`io::Error`]).
    pub fn resume(&mut self, input: &mut dyn BufRead) -> io::Result<()> {
        let state = read_checkpoint(self.engine.design(), input)?;
        self.engine.restore(&state);
        Ok(())
    }

    /// [`resume`](Session::resume) from a file path.
    ///
    /// # Errors
    ///
    /// See [`Session::resume`].
    pub fn resume_from(&mut self, path: impl AsRef<std::path::Path>) -> io::Result<()> {
        let _span = self.recorder.span("session", "resume");
        let mut file = io::BufReader::new(std::fs::File::open(path)?);
        self.resume(&mut file)
    }
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("design", &self.engine.design().title())
            .field("cycle", &self.engine.state().cycle())
            .finish_non_exhaustive()
    }
}

const CHECKPOINT_MAGIC: &str = "asim2-checkpoint v1";

/// The streaming FNV-1a hasher behind every stable on-disk fingerprint:
/// design fingerprints in checkpoints, and campaign configuration/corpus
/// fingerprints downstream. Stable across platforms, runs and Rust
/// versions — unlike `std::hash`, which promises none of that.
///
/// ```
/// use rtl_core::session::Fingerprint;
/// let mut fp = Fingerprint::new();
/// fp.write(b"hello");
/// fp.write_u64(7);
/// assert_eq!(fp.finish(), {
///     let mut again = Fingerprint::new();
///     again.write(b"hello");
///     again.write_u64(7);
///     again.finish()
/// });
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint {
    hash: u64,
}

impl Fingerprint {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Fingerprint {
            hash: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// Feeds a length-delimited string (NUL separator, so `"a","bc"` and
    /// `"ab","c"` hash differently).
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(&[0]);
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.hash
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

/// A stable fingerprint of a design's architectural shape (component
/// names, order, memory sizes) — checkpoints refuse to load over a
/// different design.
pub fn design_fingerprint(design: &Design) -> u64 {
    let mut fp = Fingerprint::new();
    fp.write_u64(design.len() as u64);
    for (id, comp) in design.iter() {
        fp.write_str(comp.name.as_str());
        if comp.kind.is_memory() {
            fp.write(&design.memory(id).size.to_le_bytes());
        }
    }
    fp.finish()
}

/// Writes the versioned checkpoint document: magic line, design
/// fingerprint, cycle counter, component outputs (design order), memory
/// cells (memory order, address order).
///
/// # Errors
///
/// I/O failure of the writer.
pub fn write_checkpoint(design: &Design, state: &SimState, out: &mut dyn Write) -> io::Result<()> {
    writeln!(out, "{CHECKPOINT_MAGIC}")?;
    writeln!(out, "fingerprint {:016x}", design_fingerprint(design))?;
    writeln!(out, "cycle {}", state.cycle())?;
    write!(out, "outputs {}", design.len())?;
    for (id, _) in design.iter() {
        write!(out, " {}", state.output(id))?;
    }
    writeln!(out)?;
    let total: usize = design
        .memories()
        .iter()
        .map(|&id| state.cells(id).len())
        .sum();
    write!(out, "cells {total}")?;
    for &id in design.memories() {
        for &cell in state.cells(id) {
            write!(out, " {cell}")?;
        }
    }
    writeln!(out)
}

fn malformed(what: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.into())
}

/// Reads one line (without its terminator) from a checkpoint stream,
/// failing with a "truncated before `what`" error at EOF. Checkpoint
/// documents have a fixed line count, so parsers consume exactly their
/// own document and leave the reader positioned after it — harnesses
/// (cosim's lockstep checkpoint) embed several documents in one stream
/// and interleave their own header lines using this same reader.
///
/// # Errors
///
/// I/O failure, or EOF before a line could be read.
pub fn read_doc_line(input: &mut dyn BufRead, what: &str) -> io::Result<String> {
    let mut line = String::new();
    if input.read_line(&mut line)? == 0 {
        return Err(malformed(format!("checkpoint truncated before {what}")));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Reads a checkpoint document back into a [`SimState`] for `design`.
/// Consumes exactly the document's own lines: the reader is left
/// positioned right after it, so documents can be embedded in a larger
/// stream (the lockstep checkpoint format relies on this).
///
/// # Errors
///
/// I/O failure, malformed document, or fingerprint mismatch.
pub fn read_checkpoint(design: &Design, input: &mut dyn BufRead) -> io::Result<SimState> {
    let mut next = |what: &str| read_doc_line(input, what);

    if next("magic")? != CHECKPOINT_MAGIC {
        return Err(malformed("not an asim2 v1 checkpoint"));
    }
    let fp_line = next("fingerprint")?;
    let fp = fp_line
        .strip_prefix("fingerprint ")
        .and_then(|h| u64::from_str_radix(h.trim(), 16).ok())
        .ok_or_else(|| malformed("bad fingerprint line"))?;
    if fp != design_fingerprint(design) {
        return Err(malformed(
            "checkpoint was written over a different design (fingerprint mismatch)",
        ));
    }
    let cycle_line = next("cycle")?;
    let cycle: Word = cycle_line
        .strip_prefix("cycle ")
        .and_then(|c| c.trim().parse().ok())
        .ok_or_else(|| malformed("bad cycle line"))?;

    let parse_words = |line: &str, tag: &str, expect: usize| -> io::Result<Vec<Word>> {
        let rest = line
            .strip_prefix(tag)
            .ok_or_else(|| malformed(format!("expected {tag:?} line")))?;
        let mut it = rest.split_ascii_whitespace();
        let count: usize = it
            .next()
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| malformed(format!("bad {tag:?} count")))?;
        if count != expect {
            return Err(malformed(format!(
                "{tag:?} count {count} does not match the design's {expect}"
            )));
        }
        let words: Vec<Word> = it
            .map(str::parse)
            .collect::<Result<_, _>>()
            .map_err(|_| malformed(format!("non-numeric value in {tag:?} line")))?;
        if words.len() != expect {
            return Err(malformed(format!(
                "{tag:?} has {} values, expected {expect}",
                words.len()
            )));
        }
        Ok(words)
    };

    let outputs = parse_words(&next("outputs")?, "outputs", design.len())?;
    let mut state = SimState::new(design);
    let total: usize = design
        .memories()
        .iter()
        .map(|&id| state.cells(id).len())
        .sum();
    let cells = parse_words(&next("cells")?, "cells", total)?;
    state.set_cycle(cycle);
    for ((id, _), value) in design.iter().zip(outputs) {
        state.set_output(id, value);
    }
    let mut cursor = cells.into_iter();
    for &id in design.memories() {
        for addr in 0..state.cell_count(id) {
            state.set_cell(id, addr, cursor.next().expect("count checked above"));
        }
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design(src: &str) -> Design {
        Design::from_source(src).unwrap()
    }

    const COUNTER: &str = "# c\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .";

    #[test]
    fn stop_reason_classifies_errors() {
        let halt = StopReason::from_error(SimError::InputExhausted { cycle: 7 });
        assert_eq!(
            halt,
            StopReason::Halt(HaltKind::InputExhausted { cycle: 7 })
        );
        assert_eq!(halt.halt().unwrap().label(), "input-exhausted");
        assert_eq!(halt.halt().unwrap().cycle(), 7);

        let io = StopReason::from_error(SimError::Io("pipe".into()));
        assert!(matches!(io, StopReason::Error(SimError::Io(_))));
        assert!(!io.is_cycle_limit());
        assert!(StopReason::CycleLimit.into_error().is_none());
    }

    #[test]
    fn halt_kind_round_trips_through_sim_error() {
        let e = SimError::SelectorOutOfRange {
            component: "mux".into(),
            index: 9,
            cases: 4,
            cycle: 17,
        };
        let h = HaltKind::classify(&e).unwrap();
        assert_eq!(h.to_error(), e);
        assert_eq!(h.to_string(), e.to_string(), "display wording preserved");
        assert!(HaltKind::classify(&SimError::Io("x".into())).is_none());
    }

    #[test]
    fn checkpoint_round_trips() {
        let d = design(COUNTER);
        let mut state = SimState::new(&d);
        state.set_cycle(42);
        let count = d.find("count").unwrap();
        state.set_output(count, 41);
        state.set_cell(count, 0, 41);

        let mut doc = Vec::new();
        write_checkpoint(&d, &state, &mut doc).unwrap();
        let text = String::from_utf8(doc.clone()).unwrap();
        assert!(text.starts_with(CHECKPOINT_MAGIC), "{text}");
        assert!(text.contains("cycle 42"), "{text}");

        let restored = read_checkpoint(&d, &mut &doc[..]).unwrap();
        assert_eq!(restored, state);
    }

    #[test]
    fn checkpoint_rejects_other_designs_and_garbage() {
        let d = design(COUNTER);
        let other = design("# o\nx y .\nA x 2 1 0\nA y 2 2 0 .");
        let mut doc = Vec::new();
        write_checkpoint(&d, &SimState::new(&d), &mut doc).unwrap();
        let err = read_checkpoint(&other, &mut &doc[..]).unwrap_err();
        assert!(err.to_string().contains("fingerprint"), "{err}");
        assert!(read_checkpoint(&d, &mut &b"not a checkpoint"[..]).is_err());
        assert_ne!(design_fingerprint(&d), design_fingerprint(&other));
    }

    #[test]
    fn run_outcome_helpers() {
        let done = RunOutcome {
            cycles: 5,
            stop: StopReason::CycleLimit,
        };
        assert!(done.completed());
        assert_eq!(done.into_result().unwrap(), 5);

        let halted = RunOutcome {
            cycles: 2,
            stop: StopReason::Halt(HaltKind::InputExhausted { cycle: 2 }),
        };
        assert!(!halted.completed());
        assert!(halted.halt().is_some());
        assert!(matches!(
            halted.into_result(),
            Err(SimError::InputExhausted { cycle: 2 })
        ));
    }
}
