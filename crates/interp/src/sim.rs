//! The cycle interpreter.

use crate::lookup::{LookupMode, SymbolTable};
use crate::postfix::Program;
use rtl_core::{
    trace, AluFn, CompId, Design, Engine, InputSource, LaneTally, MemOp, ProfileHook, RKind,
    SimError, SimState, SimStats, Word,
};
use std::io::Write;

/// Interpreter configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterpOptions {
    /// Emit cycle/trace text (`true` matches the original simulators; turn
    /// off for throughput experiments).
    pub trace: bool,
    /// Operand lookup discipline (see [`LookupMode`]). `Indexed` by
    /// default; `SymbolTable` reproduces the 1986 per-reference cost for
    /// the Figure 5.1 "ASIM" row.
    pub lookup: LookupMode,
}

impl InterpOptions {
    /// Trace on, indexed lookups — the default.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trace off (throughput experiments).
    pub fn quiet() -> Self {
        InterpOptions {
            trace: false,
            ..Self::default()
        }
    }

    /// The faithful 1986 configuration: trace on, symbol-table lookups.
    pub fn faithful() -> Self {
        InterpOptions {
            trace: true,
            lookup: LookupMode::SymbolTable,
        }
    }
}

impl Default for InterpOptions {
    fn default() -> Self {
        InterpOptions {
            trace: true,
            lookup: LookupMode::Indexed,
        }
    }
}

#[derive(Debug, Clone)]
enum CombStep {
    Alu {
        id: CompId,
        funct: Program,
        left: Program,
        right: Program,
    },
    Selector {
        id: CompId,
        select: Program,
        cases: Vec<Program>,
    },
}

#[derive(Debug, Clone)]
struct MemPlan {
    id: CompId,
    addr: Program,
    data: Program,
    opn: Program,
    size: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct MemScratch {
    addr: Word,
    opn: Word,
    data: Word,
}

/// The ASIM-style table interpreter: reads the specification into postfix
/// tables once, then re-interprets them every cycle.
///
/// ```
/// use rtl_core::{Design, Engine, run_captured};
/// use rtl_interp::Interpreter;
/// let design = Design::from_source(
///     "# counter\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .",
/// ).unwrap();
/// let mut sim = Interpreter::new(&design);
/// let text = run_captured(&mut sim, 3).unwrap();
/// assert_eq!(text, "Cycle   0 count= 0\nCycle   1 count= 1\nCycle   2 count= 2\n");
/// ```
#[derive(Debug)]
pub struct Interpreter<'d> {
    design: &'d Design,
    state: SimState,
    comb: Vec<CombStep>,
    mems: Vec<MemPlan>,
    scratch: Vec<MemScratch>,
    stack: Vec<Word>,
    symbols: Option<SymbolTable>,
    stats: SimStats,
    options: InterpOptions,
    tally: Option<Box<LaneTally>>,
}

impl<'d> Interpreter<'d> {
    /// Builds the interpretation tables for a design (tracing enabled).
    pub fn new(design: &'d Design) -> Self {
        Self::with_options(design, InterpOptions::default())
    }

    /// Builds with explicit options.
    pub fn with_options(design: &'d Design, options: InterpOptions) -> Self {
        let comb = design
            .comb_order()
            .iter()
            .map(|&id| match &design.comp(id).kind {
                RKind::Alu(a) => CombStep::Alu {
                    id,
                    funct: Program::from_rexpr(&a.funct),
                    left: Program::from_rexpr(&a.left),
                    right: Program::from_rexpr(&a.right),
                },
                RKind::Selector(s) => CombStep::Selector {
                    id,
                    select: Program::from_rexpr(&s.select),
                    cases: s.cases.iter().map(Program::from_rexpr).collect(),
                },
                RKind::Memory(_) => unreachable!("memories are not combinational"),
            })
            .collect();
        let mems: Vec<MemPlan> = design
            .memories()
            .iter()
            .map(|&id| {
                let m = design.memory(id);
                MemPlan {
                    id,
                    addr: Program::from_rexpr(&m.addr),
                    data: Program::from_rexpr(&m.data),
                    opn: Program::from_rexpr(&m.opn),
                    size: m.size,
                }
            })
            .collect();
        let scratch = vec![MemScratch::default(); mems.len()];
        let symbols = match options.lookup {
            LookupMode::Indexed => None,
            LookupMode::SymbolTable => Some(SymbolTable::new(design)),
        };
        Interpreter {
            design,
            state: SimState::new(design),
            comb,
            mems,
            scratch,
            stack: Vec::with_capacity(16),
            symbols,
            stats: SimStats::new(design),
            options,
            tally: None,
        }
    }

    /// Attaches an execution-profile tap: when `hook` is collecting,
    /// every subsequent cycle tallies per-component evaluations, value
    /// changes, selector arms, ALU functions and memory-cell accesses
    /// (flushed into the hook when the interpreter drops). A disabled
    /// hook leaves the hot path untouched.
    pub fn attach_profile(&mut self, hook: &ProfileHook) {
        if hook.enabled() {
            self.tally = Some(Box::new(LaneTally::new(
                hook.clone(),
                self.design.profile_meta(),
            )));
        }
    }

    /// Accumulated simulation statistics (§1.4): cycle count and memory
    /// accesses per memory.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Total size of the interpretation tables in postfix operations —
    /// the interpreter analogue of the original's "Generate tables" phase
    /// output.
    pub fn table_size(&self) -> usize {
        let comb: usize = self
            .comb
            .iter()
            .map(|c| match c {
                CombStep::Alu {
                    funct, left, right, ..
                } => funct.len() + left.len() + right.len(),
                CombStep::Selector { select, cases, .. } => {
                    select.len() + cases.iter().map(Program::len).sum::<usize>()
                }
            })
            .sum();
        let mems: usize = self
            .mems
            .iter()
            .map(|m| m.addr.len() + m.data.len() + m.opn.len())
            .sum();
        comb + mems
    }

    /// Resets all state to cycle 0 / initial values, clearing statistics.
    pub fn reset(&mut self) {
        self.state = SimState::new(self.design);
        self.stats = SimStats::new(self.design);
    }
}

impl Engine for Interpreter<'_> {
    fn design(&self) -> &Design {
        self.design
    }

    fn state(&self) -> &SimState {
        &self.state
    }

    fn restore(&mut self, snapshot: &SimState) {
        self.state = snapshot.clone();
    }

    fn stats(&self) -> Option<&SimStats> {
        Some(&self.stats)
    }

    fn step(&mut self, out: &mut dyn Write, input: &mut dyn InputSource) -> Result<(), SimError> {
        let cycle = self.state.cycle();

        // 1. Combinational phase, in dependency order.
        for step in &self.comb {
            match step {
                CombStep::Alu {
                    id,
                    funct,
                    left,
                    right,
                } => {
                    let f =
                        funct.eval(self.state.outputs(), &mut self.stack, self.symbols.as_ref());
                    let l = left.eval(self.state.outputs(), &mut self.stack, self.symbols.as_ref());
                    let r =
                        right.eval(self.state.outputs(), &mut self.stack, self.symbols.as_ref());
                    let fun = AluFn::from_word(f).ok_or_else(|| SimError::BadAluFunction {
                        component: self.design.name(*id).to_string(),
                        funct: f,
                        cycle,
                    })?;
                    let value = fun.apply(l, r);
                    if let Some(t) = self.tally.as_deref_mut() {
                        t.eval(id.index());
                        t.op(id.index(), fun.number() as usize);
                        if self.state.output(*id) != value {
                            t.change(id.index());
                        }
                    }
                    self.state.set_output(*id, value);
                }
                CombStep::Selector { id, select, cases } => {
                    let idx =
                        select.eval(self.state.outputs(), &mut self.stack, self.symbols.as_ref());
                    let arm = usize::try_from(idx)
                        .ok()
                        .filter(|&i| i < cases.len())
                        .ok_or_else(|| SimError::SelectorOutOfRange {
                            component: self.design.name(*id).to_string(),
                            index: idx,
                            cases: cases.len(),
                            cycle,
                        })?;
                    let v = cases[arm].eval(
                        self.state.outputs(),
                        &mut self.stack,
                        self.symbols.as_ref(),
                    );
                    if let Some(t) = self.tally.as_deref_mut() {
                        t.eval(id.index());
                        t.arm(id.index(), arm);
                        if self.state.output(*id) != v {
                            t.change(id.index());
                        }
                    }
                    self.state.set_output(*id, v);
                }
            }
        }

        // 2. Trace phase.
        if self.options.trace {
            trace::cycle_header(out, cycle)?;
            for &id in self.design.traced() {
                trace::traced_value(out, self.design.name(id), self.state.output(id))?;
            }
            trace::end_line(out)?;
        }

        // 3. Capture phase: evaluate every memory's address, operation and
        // data against pre-update latches (simultaneous-update semantics).
        for (plan, scratch) in self.mems.iter().zip(self.scratch.iter_mut()) {
            let symbols = self.symbols.as_ref();
            scratch.addr = plan
                .addr
                .eval(self.state.outputs(), &mut self.stack, symbols);
            scratch.opn = plan
                .opn
                .eval(self.state.outputs(), &mut self.stack, symbols);
            scratch.data = plan
                .data
                .eval(self.state.outputs(), &mut self.stack, symbols);
        }

        // 4. Update phase, in definition order.
        for (plan, scratch) in self.mems.iter().zip(self.scratch.iter()) {
            let name = self.design.name(plan.id);
            let addr = scratch.addr;
            let opn = scratch.opn;
            let op = MemOp::from_word(opn);
            self.stats.record(plan.id, op);
            let latch = match op {
                MemOp::Read => {
                    let a = cell_index(name, addr, plan.size, cycle)?;
                    self.state.cell(plan.id, a)
                }
                MemOp::Write => {
                    let a = cell_index(name, addr, plan.size, cycle)?;
                    self.state.set_cell(plan.id, a, scratch.data);
                    scratch.data
                }
                MemOp::Input => {
                    let value = match addr {
                        0 => input.read_char(),
                        1 => input.read_int(),
                        _ => {
                            trace::input_prompt(out, addr)?;
                            input.read_int()
                        }
                    };
                    value.map_err(|e| match e {
                        SimError::InputExhausted { .. } => SimError::InputExhausted { cycle },
                        other => other,
                    })?
                }
                MemOp::Output => {
                    trace::output_event(out, addr, scratch.data)?;
                    scratch.data
                }
            };
            if let Some(t) = self.tally.as_deref_mut() {
                let ci = plan.id.index();
                t.eval(ci);
                // Read/write addresses were validated by `cell_index`
                // above, so the cast is in range.
                match op {
                    MemOp::Read => t.read(ci, addr as usize),
                    MemOp::Write => t.write(ci, addr as usize),
                    MemOp::Input => t.input(ci),
                    MemOp::Output => t.output(ci),
                }
                if self.state.output(plan.id) != latch {
                    t.change(ci);
                }
            }
            self.state.set_output(plan.id, latch);
            if self.options.trace {
                if rtl_core::word::traces_write(opn) {
                    trace::mem_write(out, name, addr, latch)?;
                }
                if rtl_core::word::traces_read(opn) {
                    trace::mem_read(out, name, addr, latch)?;
                }
            }
        }

        // 5. Next cycle.
        self.stats.cycles += 1;
        self.state.bump_cycle();
        Ok(())
    }
}

fn cell_index(name: &str, addr: Word, size: u32, cycle: Word) -> Result<u32, SimError> {
    if (0..Word::from(size)).contains(&addr) {
        Ok(addr as u32)
    } else {
        Err(SimError::AddressOutOfRange {
            component: name.to_string(),
            address: addr,
            size,
            cycle,
        })
    }
}
