//! # rtl-interp — ASIM, the table-driven interpreter
//!
//! The thesis's baseline simulator: "ASIM reads the specification into
//! tables, and produces a simulation run by interpreting the symbols in the
//! table" (§3.1). This crate reproduces that architecture faithfully —
//! expressions become postfix ("polish string") tables evaluated with an
//! operand stack, re-dispatched on every cycle with no specialization.
//! The optimizing counterpart is `rtl-compile` (ASIM II); Figure 5.1's
//! experiment is precisely the gap between the two.
//!
//! ```
//! use rtl_core::{Design, Engine, run_captured};
//! use rtl_interp::Interpreter;
//!
//! let design = Design::from_source(
//!     "# shifter\nr one next .\nM r 0 next 1 1\nA next 6 one r\nM one 0 0 0 -1 1 .",
//! ).unwrap_or_else(|e| panic!("{e}"));
//! let mut sim = Interpreter::new(&design);
//! assert!(run_captured(&mut sim, 4).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod factory;
pub mod lookup;
pub mod postfix;
pub mod sim;

pub use factory::InterpFactory;
pub use lookup::{LookupMode, SymbolTable};
pub use postfix::{Op, Program};
pub use sim::{InterpOptions, Interpreter};

#[cfg(test)]
mod tests {
    use super::*;
    use rtl_core::{run_captured, Design, Engine, Session, SimError, Until};

    fn design(src: &str) -> Design {
        Design::from_source(src).unwrap_or_else(|e| panic!("{e}"))
    }

    fn run(src: &str, cycles: u64) -> String {
        let d = design(src);
        let mut sim = Interpreter::new(&d);
        run_captured(&mut sim, cycles).unwrap_or_else(|(text, e)| panic!("{e}\n{text}"))
    }

    #[test]
    fn counter_counts() {
        let out = run(
            "# c\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .",
            4,
        );
        assert_eq!(
            out,
            "Cycle   0 count= 0\nCycle   1 count= 1\nCycle   2 count= 2\nCycle   3 count= 3\n"
        );
    }

    #[test]
    fn memory_one_cycle_delay() {
        // reg2 follows reg1 one cycle behind; reg1 follows the counter.
        let out = run(
            "# delay\nc* r1* r2* n .\nM c 0 n 1 1\nA n 4 c 1\nM r1 0 c 1 1\nM r2 0 r1 1 1 .",
            4,
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[2], "Cycle   2 c= 2 r1= 1 r2= 0");
        assert_eq!(lines[3], "Cycle   3 c= 3 r1= 2 r2= 1");
    }

    #[test]
    fn rom_read_with_address_from_counter() {
        // ROM contents walk out one cycle late (read latency).
        let out = run(
            "# rom\nc* rom* n .\nM c 0 n 1 1\nA n 4 c 1\nM rom c 0 0 -4 10 20 30 40 .",
            4,
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "Cycle   0 c= 0 rom= 0");
        assert_eq!(lines[1], "Cycle   1 c= 1 rom= 10");
        assert_eq!(lines[2], "Cycle   2 c= 2 rom= 20");
        assert_eq!(lines[3], "Cycle   3 c= 3 rom= 30");
    }

    #[test]
    fn selector_multiplexes() {
        let out = run(
            "# mux\nc* s* n .\nM c 0 n 1 1\nA n 4 c 1\nS s c.0.1 10 20 30 40 .",
            4,
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "Cycle   0 c= 0 s= 10");
        assert_eq!(lines[3], "Cycle   3 c= 3 s= 40");
    }

    #[test]
    fn selector_out_of_range_is_a_runtime_error() {
        let d = design("# bad\nc s n .\nM c 0 n 1 1\nA n 4 c 1\nS s c 10 20 .");
        let mut sim = Interpreter::new(&d);
        let err = run_captured(&mut sim, 5).unwrap_err().1;
        match err {
            SimError::SelectorOutOfRange {
                component,
                index,
                cases,
                cycle,
            } => {
                assert_eq!(component, "s");
                assert_eq!(index, 2);
                assert_eq!(cases, 2);
                assert_eq!(cycle, 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn memory_address_out_of_range() {
        let d = design("# bad\nc m n .\nM c 0 n 1 1\nA n 4 c 1\nM m c 0 0 2 .");
        let mut sim = Interpreter::new(&d);
        let err = run_captured(&mut sim, 5).unwrap_err().1;
        assert!(matches!(
            err,
            SimError::AddressOutOfRange { address: 2, .. }
        ));
    }

    #[test]
    fn bad_alu_function_is_a_runtime_error() {
        let d = design("# bad\na .\nA a 14 0 0 .");
        let mut sim = Interpreter::new(&d);
        let err = run_captured(&mut sim, 1).unwrap_err().1;
        assert!(matches!(err, SimError::BadAluFunction { funct: 14, .. }));
    }

    #[test]
    fn write_through_latch() {
        // A register written every cycle exposes the written value on its
        // latch the *next* cycle.
        let out = run("# wt\nr* n c .\nM c 0 n 1 1\nA n 4 c 1\nM r 0 n 1 1 .", 3);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "Cycle   0 r= 0");
        assert_eq!(
            lines[1], "Cycle   1 r= 1",
            "write-through: n was 1 at cycle 0"
        );
        assert_eq!(lines[2], "Cycle   2 r= 2");
    }

    #[test]
    fn memory_mapped_output() {
        // Write the counter to output address 1 every cycle (op 3).
        let out = run("# out\nc n o .\nM c 0 n 1 1\nA n 4 c 1\nM o 1 c 3 1 .", 3);
        assert_eq!(out, "Cycle   0\n0\nCycle   1\n1\nCycle   2\n2\n");
    }

    #[test]
    fn memory_mapped_char_output() {
        let out = run("# out\no .\nM o 0 65 3 1 .", 1);
        assert_eq!(out, "Cycle   0\nA\n");
    }

    #[test]
    fn tagged_output_address() {
        let out = run("# out\no .\nM o 4096 9 3 1 .", 1);
        assert_eq!(out, "Cycle   0\nOutput to address 4096: 9\n");
    }

    #[test]
    fn memory_mapped_input() {
        let d = design("# in\ni* .\nM i 1 0 2 1 .");
        let mut session = Session::over(Interpreter::new(&d))
            .capture()
            .scripted([7, 8])
            .build();
        assert!(session.run(Until::Cycles(2)).completed());
        // The latch shows the input one cycle later.
        assert_eq!(session.output_text(), "Cycle   0 i= 0\nCycle   1 i= 7\n");
    }

    #[test]
    fn input_exhaustion_reports_cycle() {
        let d = design("# in\ni .\nM i 1 0 2 1 .");
        let mut sim = Interpreter::new(&d);
        let err = run_captured(&mut sim, 3).unwrap_err().1;
        assert!(matches!(err, SimError::InputExhausted { cycle: 0 }));
    }

    #[test]
    fn input_prompt_for_odd_addresses() {
        let d = design("# in\ni .\nM i 9 0 2 1 .");
        let mut session = Session::over(Interpreter::new(&d))
            .capture()
            .scripted([5])
            .build();
        assert!(session.run(Until::Cycles(1)).completed());
        assert_eq!(session.output_text(), "Cycle   0\nInput from address 9: ");
    }

    #[test]
    fn trace_write_and_read_lines() {
        // op 5 = write + trace writes. Address constant 0.
        let out = run("# tw\nm c n .\nM c 0 n 1 1\nA n 4 c 1\nM m 0 c 5 1 .", 2);
        assert_eq!(
            out,
            "Cycle   0\n Write to m at 0: 0\nCycle   1\n Write to m at 0: 1\n"
        );
        // op 8 = read + trace reads.
        let out = run("# tr\nm .\nM m 0 0 8 -2 7 9 .", 2);
        assert_eq!(
            out,
            "Cycle   0\n Read from m at 0: 7\nCycle   1\n Read from m at 0: 7\n"
        );
    }

    #[test]
    fn simultaneous_swap_of_loaded_registers() {
        // Preload the latches via reads at cycle 0, then swap. With
        // declaration-order updates `b` would read `a`'s fresh value; the
        // simultaneous semantics (divergence D1) swap cleanly.
        let src = "# swap2\na* b* sel cyc0 .\n\
                   S sel cyc0.0 0 1\n\
                   M cyc0 0 1 1 1\n\
                   M a 0 b sel -1 10\n\
                   M b 0 a sel -1 20 .";
        let out = run(src, 4);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "Cycle   0 a= 0 b= 0");
        assert_eq!(lines[1], "Cycle   1 a= 10 b= 20", "reads landed");
        assert_eq!(lines[2], "Cycle   2 a= 20 b= 10", "simultaneous swap");
        assert_eq!(lines[3], "Cycle   3 a= 10 b= 20", "and again");
    }

    #[test]
    fn table_size_is_reported() {
        let d = design("# c\ncount next .\nM count 0 next 1 1\nA next 4 count 1 .");
        let sim = Interpreter::new(&d);
        assert!(sim.table_size() > 0);
    }

    #[test]
    fn reset_restores_initial_state() {
        let d = design("# c\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .");
        let mut sim = Interpreter::new(&d);
        run_captured(&mut sim, 3).unwrap();
        assert_eq!(sim.state().cycle(), 3);
        sim.reset();
        assert_eq!(sim.state().cycle(), 0);
        let out = run_captured(&mut sim, 1).unwrap();
        assert_eq!(out, "Cycle   0 count= 0\n");
    }

    #[test]
    fn trace_can_be_disabled() {
        let d =
            design("# c\ncount* next o .\nM count 0 next 1 1\nA next 4 count 1\nM o 1 count 3 1 .");
        let mut sim = Interpreter::with_options(&d, InterpOptions::quiet());
        let text = run_captured(&mut sim, 2).unwrap();
        // Output events still appear; trace lines do not.
        assert_eq!(text, "0\n1\n");
    }

    #[test]
    fn symbol_table_lookup_is_equivalent_to_indexed() {
        // The 1986 findname discipline changes cost, never values.
        for src in [
            "# c\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .",
            "# mux\nc* s* n .\nM c 0 n 1 1\nA n 4 c 1\nS s c.0.1 10 20 30 40 .",
            "# tw\nm c n .\nM c 0 n 1 1\nA n 4 c 1\nM m 0 c 5 1 .",
        ] {
            let d = design(src);
            let mut fast = Interpreter::new(&d);
            let mut faithful = Interpreter::with_options(&d, InterpOptions::faithful());
            let a = run_captured(&mut fast, 6).unwrap();
            let b = run_captured(&mut faithful, 6).unwrap();
            assert_eq!(a, b, "{src}");
            assert_eq!(fast.state(), faithful.state());
        }
    }

    #[test]
    fn until_spec_uses_inclusive_cycle_count() {
        let d = design("# c\n= 3\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .");
        let mut session = Session::over(Interpreter::new(&d)).capture().build();
        assert!(session.run(Until::Spec).completed());
        assert_eq!(
            session.output_text().lines().count(),
            4,
            "= 3 means cycles 0..=3"
        );
    }
}
