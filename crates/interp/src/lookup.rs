//! Operand lookup disciplines.
//!
//! How much work a table interpreter does per operand reference is *the*
//! variable behind Figure 5.1. The published ASIM II source (Appendix C)
//! resolves component references by walking a linked component list and
//! comparing names (`findname`); ASIM, sharing its table design, paid a
//! comparable per-symbol cost on every cycle. A straight Rust port of that
//! discipline is [`LookupMode::SymbolTable`]. [`LookupMode::Indexed`] is
//! the modernized interpreter — references pre-resolved to dense indices
//! at load time — and is the default. The Figure 5.1 harness reports both
//! (see `EXPERIMENTS.md`).

/// How the interpreter resolves a component reference each time an
/// expression reads it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LookupMode {
    /// References were resolved to dense indices when the tables were
    /// built; a read is one array access. (Modern practice.)
    #[default]
    Indexed,
    /// References are resolved on every read by scanning the component
    /// name table front-to-back and comparing names — the `findname`
    /// discipline of the published source. (1986 practice; the ASIM row
    /// of Figure 5.1.)
    SymbolTable,
}

/// The symbol table for [`LookupMode::SymbolTable`]: names in definition
/// order, scanned linearly like the original's linked `comptable`.
#[derive(Debug, Clone)]
pub struct SymbolTable {
    names: Vec<String>,
}

impl SymbolTable {
    /// Builds the table from a design's components, in definition order.
    pub fn new(design: &rtl_core::Design) -> Self {
        SymbolTable {
            names: design
                .iter()
                .map(|(_, c)| c.name.as_str().to_string())
                .collect(),
        }
    }

    /// Resolves `name` by linear scan, exactly like `findname`: the first
    /// matching entry wins.
    ///
    /// # Panics
    ///
    /// Panics if the name is absent — impossible for tables built from an
    /// elaborated design.
    #[inline]
    pub fn find(&self, name: &str) -> usize {
        self.names
            .iter()
            .position(|n| n == name)
            .expect("symbol present in an elaborated design")
    }

    /// The name stored for a component index.
    #[inline]
    pub fn name(&self, index: usize) -> &str {
        &self.names[index]
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when the design had no components.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_scans_in_definition_order() {
        let d = rtl_core::Design::from_source("# s\na b c .\nA a 2 1 0\nA b 2 2 0\nA c 2 3 0 .")
            .unwrap();
        let t = SymbolTable::new(&d);
        assert_eq!(t.len(), 3);
        assert_eq!(t.find("a"), 0);
        assert_eq!(t.find("c"), 2);
        assert_eq!(t.name(1), "b");
    }

    #[test]
    fn default_mode_is_indexed() {
        assert_eq!(LookupMode::default(), LookupMode::Indexed);
    }
}
