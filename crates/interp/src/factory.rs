//! [`EngineFactory`] registrations for the interpreter tiers.

use crate::sim::{InterpOptions, Interpreter};
use rtl_core::{Design, EngineFactory, EngineLane, EngineOptions};

/// Builds [`Interpreter`] lanes: `interp` (indexed lookups) and
/// `interp-faithful` (the 1986 symbol-table configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterpFactory {
    faithful: bool,
}

impl InterpFactory {
    /// The default tier: indexed operand lookups (`interp`).
    pub fn indexed() -> Self {
        InterpFactory { faithful: false }
    }

    /// The faithful 1986 tier: symbol-table lookups (`interp-faithful`) —
    /// slower, same values.
    pub fn faithful() -> Self {
        InterpFactory { faithful: true }
    }
}

impl EngineFactory for InterpFactory {
    fn name(&self) -> &str {
        if self.faithful {
            "interp-faithful"
        } else {
            "interp"
        }
    }

    fn description(&self) -> &str {
        if self.faithful {
            "ASIM table interpreter, 1986 symbol-table lookups"
        } else {
            "ASIM table interpreter, indexed lookups"
        }
    }

    fn build<'d>(
        &self,
        design: &'d Design,
        options: &EngineOptions,
    ) -> Result<EngineLane<'d>, String> {
        let base = if self.faithful {
            InterpOptions::faithful()
        } else {
            InterpOptions::default()
        };
        let mut sim = Interpreter::with_options(
            design,
            InterpOptions {
                trace: options.trace,
                ..base
            },
        );
        sim.attach_profile(&options.profile);
        Ok(EngineLane::Stepped(Box::new(sim)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl_core::{Session, Until};

    #[test]
    fn both_tiers_build_and_step() {
        let design =
            Design::from_source("# c\ncount* next .\nM count 0 next 1 1\nA next 4 count 1 .")
                .unwrap();
        for factory in [InterpFactory::indexed(), InterpFactory::faithful()] {
            let lane = factory.build(&design, &EngineOptions::default()).unwrap();
            let EngineLane::Stepped(engine) = lane else {
                panic!("interpreter lanes are stepped");
            };
            let mut session = Session::over(engine).capture().build();
            assert!(session.run(Until::Cycles(2)).completed(), "{factory:?}");
            assert!(session.output_text().contains("count= 1"));
        }
        assert_eq!(InterpFactory::indexed().name(), "interp");
        assert_eq!(InterpFactory::faithful().name(), "interp-faithful");
    }
}
