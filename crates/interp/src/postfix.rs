//! Postfix ("polish string") programs — the interpreter's table format.
//!
//! ASIM, the predecessor this crate reproduces, "reads the specification
//! into tables, and produces a simulation run by interpreting the symbols
//! in the table" (§3.1); CDL, its ancestor, translated descriptions into "a
//! set of tables and a polish string program" (§2.1.1). We follow that
//! design: every expression becomes a flat postfix program evaluated with
//! an operand stack, re-dispatched on every cycle — deliberately *not*
//! specialized, because this engine is the paper's interpreted baseline.

use crate::lookup::SymbolTable;
use rtl_core::{land, CompId, RExpr, RefMode, Word};

/// One postfix operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Push a constant.
    Const(Word),
    /// Push a component's current output (combinational value or latch).
    Load(CompId),
    /// Pop, extract a bit field (`(v & mask) >> rshift << lshift`), push.
    Field {
        /// In-place mask of the subfield.
        mask: Word,
        /// Subfield low bit.
        rshift: u8,
        /// Concatenation position.
        lshift: u8,
    },
    /// Pop, shift left (bare reference placed mid-concatenation), push.
    Shift {
        /// Concatenation position.
        lshift: u8,
    },
    /// Pop `n` values, push their (wrapping) sum.
    Sum(u16),
}

/// A compiled postfix program; evaluation leaves exactly one value.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    ops: Vec<Op>,
}

impl Program {
    /// Translates a resolved expression into postfix form.
    pub fn from_rexpr(expr: &RExpr) -> Program {
        let mut ops = Vec::with_capacity(expr.ops.len() * 2 + 2);
        for r in &expr.ops {
            ops.push(Op::Load(r.comp));
            match r.mode {
                RefMode::Field {
                    mask,
                    rshift,
                    lshift,
                } => {
                    ops.push(Op::Field {
                        mask,
                        rshift,
                        lshift,
                    });
                }
                RefMode::Raw { lshift } => {
                    if lshift != 0 {
                        ops.push(Op::Shift { lshift });
                    }
                }
            }
        }
        let terms = expr.ops.len() + usize::from(expr.const_total != 0 || expr.ops.is_empty());
        if expr.const_total != 0 || expr.ops.is_empty() {
            ops.push(Op::Const(expr.const_total));
        }
        if terms > 1 {
            ops.push(Op::Sum(terms as u16));
        }
        Program { ops }
    }

    /// Number of operations (table size; reported by `asim check -v`).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the program is empty (never the case for real expressions).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Evaluates against the output array using `stack` as scratch space.
    /// With `symbols: Some(table)` every load re-resolves its reference by
    /// scanning the name table (the 1986 `findname` discipline — see
    /// [`LookupMode`](crate::lookup::LookupMode)); with `None` loads use
    /// their pre-resolved indices.
    ///
    /// # Panics
    ///
    /// Panics on malformed programs (cannot happen for programs built by
    /// [`Program::from_rexpr`]).
    #[inline]
    pub fn eval(
        &self,
        outputs: &[Word],
        stack: &mut Vec<Word>,
        symbols: Option<&SymbolTable>,
    ) -> Word {
        stack.clear();
        for op in &self.ops {
            match *op {
                Op::Const(c) => stack.push(c),
                Op::Load(id) => {
                    let index = match symbols {
                        None => id.index(),
                        Some(table) => table.find(table.name(id.index())),
                    };
                    stack.push(outputs[index]);
                }
                Op::Field {
                    mask,
                    rshift,
                    lshift,
                } => {
                    let v = stack.pop().expect("operand for field");
                    stack.push((land(v, mask) >> rshift) << lshift);
                }
                Op::Shift { lshift } => {
                    let v = stack.pop().expect("operand for shift");
                    stack.push(v.wrapping_shl(u32::from(lshift)));
                }
                Op::Sum(n) => {
                    let mut total: Word = 0;
                    for _ in 0..n {
                        total = total.wrapping_add(stack.pop().expect("operand for sum"));
                    }
                    stack.push(total);
                }
            }
        }
        stack.pop().expect("program result")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl_core::resolve::resolve_expr;
    use rtl_lang::{parse_expr, Span};
    use std::collections::HashMap;

    fn compile(text: &str, names: &[&str]) -> Program {
        let table: HashMap<String, CompId> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.to_string(), crate::postfix::tests::id(i)))
            .collect();
        let e = parse_expr(text, Span::default()).unwrap();
        let r = resolve_expr(&e, &table, "test").unwrap();
        Program::from_rexpr(&r)
    }

    // CompId has a crate-private constructor in rtl-core; go through a
    // design-free back door for tests: build ids by index via a dummy design.
    pub(crate) fn id(index: usize) -> CompId {
        // Build a design with enough components and pull ids from it.
        let mut names = String::new();
        let mut comps = String::new();
        for i in 0..=index {
            names.push_str(&format!("c{i} "));
            comps.push_str(&format!("A c{i} 0 0 0\n"));
        }
        let src = format!("# ids\n{names}.\n{comps}.");
        let d = rtl_core::Design::from_source(&src).unwrap();
        d.find(&format!("c{index}")).unwrap()
    }

    fn eval(p: &Program, outputs: &[Word]) -> Word {
        let mut stack = Vec::new();
        p.eval(outputs, &mut stack, None)
    }

    #[test]
    fn constant_program() {
        let p = compile("42", &[]);
        assert_eq!(eval(&p, &[]), 42);
        let p = compile("0", &[]);
        assert_eq!(eval(&p, &[]), 0);
    }

    #[test]
    fn field_extraction() {
        let p = compile("ir.0.3", &["ir"]);
        assert_eq!(eval(&p, &[0b10110]), 0b0110);
    }

    #[test]
    fn concatenation_matches_rexpr_eval() {
        let p = compile("mem.3.4,#01,count.1", &["mem", "count"]);
        assert_eq!(eval(&p, &[0b11000, 0b10]), 0b11011);
    }

    #[test]
    fn raw_negative_passthrough() {
        let p = compile("neg", &["neg"]);
        assert_eq!(eval(&p, &[-9]), -9);
    }

    #[test]
    fn mid_concat_raw_shift() {
        let p = compile("x,#01", &["x"]);
        assert_eq!(eval(&p, &[3]), 13);
    }
}
