//! Property tests: lint findings are a function of the *specification*,
//! not of incidental formatting or run order. Pretty-printing a spec and
//! re-linting it must yield the same codes in the same order, and both
//! renderers must be byte-deterministic run to run.

use proptest::prelude::*;
use rtl_lint::lint_source;
use rtl_machines::synth;

proptest! {
    /// Pretty-print round-trip preserves the finding codes and their
    /// deterministic order (spans may move, codes may not).
    #[test]
    fn pretty_roundtrip_keeps_codes(seed in 0u64..500, size in 1usize..30) {
        let source = rtl_lang::pretty(&synth::random_spec(seed, size));
        let first = lint_source(&source);
        let spec = rtl_lang::parse(&source).expect("synth specs parse");
        let again = lint_source(&rtl_lang::pretty(&spec));
        let codes = |r: &rtl_lint::Report| -> Vec<String> {
            r.diagnostics().iter().map(|d| d.code.to_string()).collect()
        };
        prop_assert_eq!(codes(&first), codes(&again));
    }

    /// Both renderers are byte-identical across repeated runs — the CI
    /// determinism gate relies on this.
    #[test]
    fn rendering_is_deterministic(seed in 0u64..500) {
        let source = rtl_lang::pretty(&synth::random_spec(seed, 12));
        let a = lint_source(&source);
        let b = lint_source(&source);
        prop_assert_eq!(a.render_text("spec"), b.render_text("spec"));
        prop_assert_eq!(a.render_json("spec", 0), b.render_json("spec", 0));
    }
}
