//! Every registry scenario must lint clean: the lint tier sits in front
//! of CI's cosim smokes, so a finding here is either a real spec bug or
//! an unsound pass.

use rtl_lint::lint_source;

#[test]
fn all_registry_scenarios_lint_clean() {
    let names = rtl_machines::scenarios::names();
    assert!(names.len() >= 19, "registry shrank: {}", names.len());
    for name in names {
        let scenario = rtl_machines::scenarios::by_name(&name).unwrap();
        let report = lint_source(&scenario.source);
        assert!(
            report.is_clean(),
            "{}:\n{}",
            scenario.name,
            report.render_text(&scenario.name)
        );
    }
}
