//! One minimal trigger specification per lint code: each test pins the
//! exact finding set, so a pass that starts over- or under-reporting
//! fails here with the offending rendered report.

use rtl_lint::lint_source;

/// Lints `source` and returns the sorted list of finding codes.
fn codes(source: &str) -> Vec<String> {
    let report = lint_source(source);
    let mut codes: Vec<String> = report
        .diagnostics()
        .iter()
        .map(|d| d.code.to_string())
        .collect();
    codes.sort();
    codes
}

#[track_caller]
fn expect(source: &str, expected: &[&str]) {
    let got = codes(source);
    assert_eq!(
        got,
        expected,
        "\n{}",
        lint_source(source).render_text("spec")
    );
}

#[test]
fn parse_error() {
    expect("# t\nc .\nQ c 0\n.", &["parse-error"]);
}

#[test]
fn multi_driver() {
    expect(
        "# t\nc a .\nM c 0 a 1 1\nA a 4 c 1\nA a 4 c 2 .\n",
        &["multi-driver"],
    );
}

#[test]
fn unknown_name() {
    expect("# t\nc .\nM c 0 ghost 1 1 .\n", &["unknown-name"]);
}

#[test]
fn comb_cycle() {
    expect(
        "# t\nc a b .\nM c 0 a 1 1\nA a 4 b 1\nA b 4 a 1 .\n",
        &["comb-cycle"],
    );
}

#[test]
fn traced_undefined() {
    expect("# t\nc* z* .\nM c 0 1 1 1 .\n", &["traced-undefined"]);
}

#[test]
fn too_many_bits() {
    expect(
        "# t\nc x .\nM c 0 x 1 1\nA x 4 1.16,1.16 1 .\n",
        &["too-many-bits"],
    );
}

#[test]
fn too_many_cells() {
    expect("# t\nc* .\nM c 0 1 1 99999999 .\n", &["too-many-cells"]);
}

#[test]
fn sel_const_oob() {
    // The constant select also proves every arm dead.
    expect(
        "# t\nc s .\nM c 0 s 1 1\nS s 5 c 1 .\n",
        &["dead-arm", "dead-arm", "sel-const-oob"],
    );
}

#[test]
fn addr_oob() {
    expect(
        "# t\nc* m .\nM c 0 m.0.1 1 1\nM m 9 0 0 -4 5 6 7 8 .\n",
        &["addr-oob"],
    );
}

#[test]
fn declared_not_defined() {
    expect("# t\nc* q .\nM c 0 1 1 1 .\n", &["declared-not-defined"]);
}

#[test]
fn defined_not_declared() {
    expect(
        "# t\nc .\nM c 0 x 1 1\nA x 4 c 1 .\n",
        &["defined-not-declared"],
    );
}

#[test]
fn const_truncated() {
    expect(
        "# t\nc* x .\nM c 0 x 1 1\nA x 4 9.2 1 .\n",
        &["const-truncated"],
    );
}

#[test]
fn dead_arm() {
    // `bit` is an eq comparator, so the select never exceeds 1: arm 2 of
    // the selector is unreachable.
    expect(
        "# demo\nc bit x .\nM c 0 c 1 2\nA bit 12 c 1\nS x bit 5 6 7 .\n",
        &["dead-arm"],
    );
}

#[test]
fn dup_arm() {
    expect(
        "# t\nc s .\nM c 0 s.0.0 1 1\nS s c.0.0 1 1 .\n",
        &["dup-arm"],
    );
}

#[test]
fn field_oob() {
    expect(
        "# t\nc e x .\nM c 0 x.0.0 1 1\nA e 12 c 1\nA x 4 e.2.3 1 .\n",
        &["field-oob"],
    );
}

#[test]
fn undriven_read() {
    expect(
        "# t\nc* m .\nM c 0 m 1 1\nM m 0 0 0 1 .\n",
        &["undriven-read"],
    );
}

#[test]
fn unused_write() {
    expect(
        "# t\nc* u .\nM c 0 c.0.3 1 1\nM u 0 1 1 1 .\n",
        &["unused-write"],
    );
}

#[test]
fn trace_undriven() {
    expect(
        "# t\nc* m* .\nM c 0 1 1 1\nM m 0 0 0 1 .\n",
        &["trace-undriven"],
    );
}

#[test]
fn every_code_has_a_golden_test() {
    // The triggers above cover exactly the advertised code list; a new
    // pass must land with its golden spec.
    let covered = [
        "parse-error",
        "multi-driver",
        "unknown-name",
        "comb-cycle",
        "traced-undefined",
        "too-many-bits",
        "too-many-cells",
        "sel-const-oob",
        "addr-oob",
        "declared-not-defined",
        "defined-not-declared",
        "const-truncated",
        "dead-arm",
        "dup-arm",
        "field-oob",
        "undriven-read",
        "unused-write",
        "trace-undriven",
    ];
    let mut covered: Vec<&str> = covered.to_vec();
    covered.sort_unstable();
    assert_eq!(covered, rtl_lint::all_codes());
}
