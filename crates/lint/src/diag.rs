//! Span-carrying diagnostics and their renderers.
//!
//! A [`Diagnostic`] is one finding: a stable code, a severity, the source
//! span it anchors to, a message, and optional notes pointing at related
//! locations. A [`Report`] is the sorted, deduplicated set of findings for
//! one specification; its ordering is deterministic (span, then code, then
//! message), so two lint runs over the same source render byte-identical
//! output in both the text and JSON formats.

use rtl_lang::Span;
use std::fmt::Write as _;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but runnable; denied only under `--deny warnings`.
    Warning,
    /// Ill-formed or guaranteed to fail at runtime; always denied.
    Error,
}

impl Severity {
    /// The lowercase label used in renderers (`warning` / `error`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable kebab-case code (`dead-arm`, `multi-driver`, ...); also the
    /// `lint/<code>` counter key in campaign telemetry.
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Source location the finding anchors to.
    pub span: Span,
    /// One-line description of the finding.
    pub message: String,
    /// Related locations or context, one line each.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A new diagnostic with no notes.
    pub fn new(
        code: &'static str,
        severity: Severity,
        span: Span,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            span,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Adds a note line (builder style).
    #[must_use]
    pub fn note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// The deterministic ordering key: span start, span end, code, message.
    fn key(&self) -> (u32, u32, u32, u32, &'static str, &str) {
        (
            self.span.start.line,
            self.span.start.col,
            self.span.end.line,
            self.span.end.col,
            self.code,
            &self.message,
        )
    }
}

/// The findings for one linted specification, in deterministic order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Builds a report: sorts by (span, code, message) and drops exact
    /// duplicates, making rendering deterministic.
    pub fn new(mut diagnostics: Vec<Diagnostic>) -> Report {
        diagnostics.sort_by(|a, b| a.key().cmp(&b.key()));
        diagnostics.dedup();
        Report { diagnostics }
    }

    /// The findings, sorted.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// `true` when there are no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count_of(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count_of(Severity::Warning)
    }

    fn count_of(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Drops findings whose code is in `allowed` (the CLI `--allow CODE`
    /// escape hatch).
    #[must_use]
    pub fn allow(&self, allowed: &[&str]) -> Report {
        Report {
            diagnostics: self
                .diagnostics
                .iter()
                .filter(|d| !allowed.contains(&d.code))
                .cloned()
                .collect(),
        }
    }

    /// Per-code finding counts, sorted by code — the shape fed into the
    /// deterministic `lint/<code>` campaign counters.
    pub fn counts(&self) -> Vec<(&'static str, u64)> {
        let mut counts: Vec<(&'static str, u64)> = Vec::new();
        for d in &self.diagnostics {
            match counts.iter_mut().find(|(code, _)| *code == d.code) {
                Some((_, n)) => *n += 1,
                None => counts.push((d.code, 1)),
            }
        }
        counts.sort_by_key(|&(code, _)| code);
        counts
    }

    /// Renders the findings as `file:line:col: severity[code]: message`
    /// lines with indented notes — the `asim2 lint` text format.
    pub fn render_text(&self, file: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(
                out,
                "{file}:{}:{}: {}[{}]: {}",
                d.span.start.line, d.span.start.col, d.severity, d.code, d.message
            );
            for note in &d.notes {
                let _ = writeln!(out, "    note: {note}");
            }
        }
        out
    }

    /// Renders one file entry as a JSON object (hand-rolled, no serde —
    /// the repo-wide discipline). Fields: `file`, `errors`, `warnings`,
    /// `diagnostics` with per-finding `code`/`severity`/`line`/`col`/
    /// `end_line`/`end_col`/`message`/`notes`.
    pub fn render_json(&self, file: &str, indent: usize) -> String {
        let pad = "  ".repeat(indent);
        let inner = "  ".repeat(indent + 1);
        let mut out = String::new();
        let _ = writeln!(out, "{pad}{{");
        let _ = writeln!(out, "{inner}\"file\": {},", json_string(file));
        let _ = writeln!(out, "{inner}\"errors\": {},", self.errors());
        let _ = writeln!(out, "{inner}\"warnings\": {},", self.warnings());
        if self.diagnostics.is_empty() {
            let _ = writeln!(out, "{inner}\"diagnostics\": []");
        } else {
            let _ = writeln!(out, "{inner}\"diagnostics\": [");
            for (i, d) in self.diagnostics.iter().enumerate() {
                let comma = if i + 1 < self.diagnostics.len() {
                    ","
                } else {
                    ""
                };
                let _ = writeln!(out, "{inner}  {{");
                let _ = writeln!(out, "{inner}    \"code\": {},", json_string(d.code));
                let _ = writeln!(
                    out,
                    "{inner}    \"severity\": {},",
                    json_string(d.severity.label())
                );
                let _ = writeln!(out, "{inner}    \"line\": {},", d.span.start.line);
                let _ = writeln!(out, "{inner}    \"col\": {},", d.span.start.col);
                let _ = writeln!(out, "{inner}    \"end_line\": {},", d.span.end.line);
                let _ = writeln!(out, "{inner}    \"end_col\": {},", d.span.end.col);
                let _ = writeln!(out, "{inner}    \"message\": {},", json_string(&d.message));
                if d.notes.is_empty() {
                    let _ = writeln!(out, "{inner}    \"notes\": []");
                } else {
                    let _ = writeln!(out, "{inner}    \"notes\": [");
                    for (j, note) in d.notes.iter().enumerate() {
                        let comma = if j + 1 < d.notes.len() { "," } else { "" };
                        let _ = writeln!(out, "{inner}      {}{comma}", json_string(note));
                    }
                    let _ = writeln!(out, "{inner}    ]");
                }
                let _ = writeln!(out, "{inner}  }}{comma}");
            }
            let _ = writeln!(out, "{inner}]");
        }
        let _ = write!(out, "{pad}}}");
        out
    }
}

/// The JSON document format line for `asim2 lint --format json`.
pub const JSON_FORMAT: &str = "asim2-lint v1";

/// Renders the full `asim2 lint --format json` document over any number
/// of (file, report) pairs. The document is deterministic: same inputs,
/// byte-identical output.
pub fn render_json_document(files: &[(&str, &Report)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"format\": {},", json_string(JSON_FORMAT));
    if files.is_empty() {
        out.push_str("  \"files\": []\n");
    } else {
        out.push_str("  \"files\": [\n");
        for (i, (file, report)) in files.iter().enumerate() {
            let comma = if i + 1 < files.len() { "," } else { "" };
            let _ = writeln!(out, "{}{comma}", report.render_json(file, 2));
        }
        out.push_str("  ]\n");
    }
    out.push_str("}\n");
    out
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl_lang::{Pos, Span};

    fn span(line: u32, col: u32) -> Span {
        Span::point(Pos::new(line, col))
    }

    #[test]
    fn reports_sort_and_dedup() {
        let d1 = Diagnostic::new("b-code", Severity::Warning, span(2, 1), "later");
        let d2 = Diagnostic::new("a-code", Severity::Error, span(1, 5), "earlier");
        let report = Report::new(vec![d1.clone(), d2.clone(), d1.clone()]);
        assert_eq!(report.diagnostics(), &[d2, d1]);
        assert_eq!(report.errors(), 1);
        assert_eq!(report.warnings(), 1);
    }

    #[test]
    fn same_position_orders_by_code() {
        let d1 = Diagnostic::new("zz", Severity::Warning, span(1, 1), "m");
        let d2 = Diagnostic::new("aa", Severity::Warning, span(1, 1), "m");
        let report = Report::new(vec![d1.clone(), d2.clone()]);
        assert_eq!(report.diagnostics(), &[d2, d1]);
    }

    #[test]
    fn counts_fold_by_code() {
        let report = Report::new(vec![
            Diagnostic::new("dead-arm", Severity::Warning, span(1, 1), "a"),
            Diagnostic::new("dead-arm", Severity::Warning, span(2, 1), "b"),
            Diagnostic::new("addr-oob", Severity::Error, span(3, 1), "c"),
        ]);
        assert_eq!(report.counts(), vec![("addr-oob", 1), ("dead-arm", 2)]);
    }

    #[test]
    fn allow_filters_by_code() {
        let report = Report::new(vec![
            Diagnostic::new("dead-arm", Severity::Warning, span(1, 1), "a"),
            Diagnostic::new("addr-oob", Severity::Error, span(2, 1), "b"),
        ]);
        let filtered = report.allow(&["dead-arm"]);
        assert_eq!(filtered.diagnostics().len(), 1);
        assert_eq!(filtered.diagnostics()[0].code, "addr-oob");
    }

    #[test]
    fn text_rendering_carries_notes() {
        let report = Report::new(vec![Diagnostic::new(
            "multi-driver",
            Severity::Error,
            span(3, 1),
            "component x defined twice",
        )
        .note("first defined at line 2, col 1")]);
        let text = report.render_text("spec.asim");
        assert_eq!(
            text,
            "spec.asim:3:1: error[multi-driver]: component x defined twice\n    \
             note: first defined at line 2, col 1\n"
        );
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_document_shape_is_stable() {
        let report = Report::new(vec![Diagnostic::new(
            "dead-arm",
            Severity::Warning,
            span(4, 2),
            "arm 3 can never fire",
        )]);
        let doc = render_json_document(&[("a.asim", &report)]);
        assert!(doc.contains("\"format\": \"asim2-lint v1\""), "{doc}");
        assert!(doc.contains("\"code\": \"dead-arm\""), "{doc}");
        let again = render_json_document(&[("a.asim", &report)]);
        assert_eq!(doc, again, "byte-identical across renders");
    }
}
