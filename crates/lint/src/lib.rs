//! `rtl-lint` — static semantic analysis of ASIM II specifications.
//!
//! Every spec the system touches (shipped machine specs, registry
//! scenarios, fuzz-generated designs in million-case campaigns) was
//! previously validated only by *running* it. This crate is the static
//! tier in front of execution:
//!
//! * [`Diagnostic`]/[`Report`] — span-carrying findings with
//!   deterministic ordering and text + hand-rolled JSON renderers
//!   (`asim2 lint`, format [`JSON_FORMAT`]).
//! * [`LintPass`] — an open trait with ~10 shipped passes
//!   ([`default_passes`]): multi-driver races, combinational cycles with
//!   the full path, width truncation and constant overflow, dead and
//!   duplicate selector arms, constant out-of-range selects and
//!   addresses, undriven-read/unused-write/trace-undriven memory usage.
//! * [`lint_source`]/[`lint_spec`] — the pipeline: parse, run spec-level
//!   passes, elaborate, run design-level passes, and promote elaboration
//!   errors the passes did not already explain into coded diagnostics.
//! * [`StaticClaims`]/[`OracleComparator`] — dynamic cross-validation:
//!   the analyzer's sound claims (dead arms, undriven cells) checked
//!   against the running simulator through the cosim `Comparator` seam.
//!   A disagreement is a bug in the analyzer or the simulator, and the
//!   differential harness finds which.
//!
//! ```
//! let report = rtl_lint::lint_source(
//!     "# demo\nc bit x .\nM c 0 c 1 2\nA bit 12 c 1\nS x bit 5 6 7 .\n",
//! );
//! let codes: Vec<&str> =
//!     report.diagnostics().iter().map(|d| d.code).collect();
//! // bit = (c == 1) is 0 or 1, so arm 2 of selector x can never fire.
//! assert_eq!(codes, ["dead-arm"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod oracle;
pub mod passes;

pub use diag::{render_json_document, Diagnostic, Report, Severity, JSON_FORMAT};
pub use oracle::{OracleComparator, StaticClaims};
pub use passes::{default_passes, DeadArmReason, LintContext, LintPass};

use rtl_core::{Design, ElabError};
use rtl_lang::{Span, Spec};

/// Lints source text: parse errors become a single `parse-error`
/// diagnostic; otherwise the full [`lint_spec`] pipeline runs.
pub fn lint_source(source: &str) -> Report {
    match rtl_lang::parse(source) {
        Ok(spec) => lint_spec(&spec),
        Err(e) => Report::new(vec![Diagnostic::new(
            "parse-error",
            Severity::Error,
            e.span,
            e.kind.to_string(),
        )]),
    }
}

/// Lints a parsed spec: runs every shipped pass (spec-level passes
/// always; design-level passes when elaboration succeeds), then promotes
/// an elaboration error into a coded diagnostic if no pass already
/// reported an error for it.
pub fn lint_spec(spec: &Spec) -> Report {
    let mut out = Vec::new();
    let elaborated = Design::elaborate(spec);
    let widths = match &elaborated {
        Ok(design) => rtl_core::width::infer(design),
        Err(_) => Vec::new(),
    };
    let cx = LintContext {
        spec,
        design: elaborated.as_ref().ok(),
        widths: &widths,
    };
    for pass in default_passes() {
        pass.run(&cx, &mut out);
    }
    if let Err(e) = &elaborated {
        // The spec-level passes re-derive most elaboration errors with
        // richer detail; promote only when none of them fired, so the
        // load failure is never silent (TooManyCells is the one variant
        // no pass covers).
        if !out.iter().any(|d| d.severity == Severity::Error) {
            out.push(promote(spec, e));
        }
    }
    Report::new(out)
}

/// Maps an [`ElabError`] onto the lint code space, recovering a span from
/// the spec for the variants that do not carry one.
fn promote(spec: &Spec, error: &ElabError) -> Diagnostic {
    let at = |name: &str| {
        spec.components
            .iter()
            .find(|c| c.name.as_str() == name)
            .map_or_else(Span::default, |c| c.span)
    };
    match error {
        ElabError::ComponentNotFound { span, .. } => {
            Diagnostic::new("unknown-name", Severity::Error, *span, error.to_string())
        }
        ElabError::DuplicateComponent { span, .. } => {
            Diagnostic::new("multi-driver", Severity::Error, *span, error.to_string())
        }
        ElabError::TooManyBits { span, .. } => {
            Diagnostic::new("too-many-bits", Severity::Error, *span, error.to_string())
        }
        ElabError::CircularDependency { members } => Diagnostic::new(
            "comb-cycle",
            Severity::Error,
            members.first().map_or_else(Span::default, |m| at(m)),
            error.to_string(),
        ),
        ElabError::TracedUndefined { span, .. } => Diagnostic::new(
            "traced-undefined",
            Severity::Error,
            *span,
            error.to_string(),
        ),
        ElabError::TooManyCells { name, .. } => Diagnostic::new(
            "too-many-cells",
            Severity::Error,
            at(name),
            error.to_string(),
        ),
    }
}

/// Every diagnostic code the shipped passes and the pipeline can emit,
/// sorted — the vocabulary for `--allow`, documentation, and the
/// `lint/<code>` campaign counters.
pub fn all_codes() -> Vec<&'static str> {
    let mut codes = vec!["parse-error", "too-many-cells"];
    for pass in default_passes() {
        codes.extend_from_slice(pass.codes());
    }
    codes.sort_unstable();
    codes.dedup();
    codes
}
