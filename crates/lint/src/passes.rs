//! The open [`LintPass`] trait and the shipped pass set.
//!
//! Passes split into two tiers. *Spec passes* read only the parsed
//! [`Spec`], so they run even when elaboration fails — they are also the
//! richer diagnosis of most elaboration errors (all unknown names instead
//! of the first, the full combinational cycle path instead of the member
//! list). *Design passes* additionally see the elaborated
//! [`Design`] and its inferred output widths
//! ([`rtl_core::width::infer`]), which is what makes value-range
//! reasoning (dead selector arms, constant address checks, memory usage)
//! possible.
//!
//! Every claim a pass makes that the dynamic oracle cross-validates
//! (`dead-arm`, `undriven-read`) is *sound*: dead arms are only derived
//! from fully-masked select expressions (a concatenation of sized parts
//! is always in `[0, 2^total)`) or constant selects, never from the
//! heuristic width fixpoint, which over-narrows signed intermediates.

use crate::diag::{Diagnostic, Severity};
use rtl_core::width::bits_needed;
use rtl_core::word::land;
use rtl_core::{AluFn, Design, RKind, Word};
use rtl_lang::{Component, ComponentKind, Expr, Part, Spec};
use std::collections::{HashMap, HashSet};

/// Everything a pass may look at.
pub struct LintContext<'a> {
    /// The parsed specification.
    pub spec: &'a Spec,
    /// The elaborated design; `None` when elaboration failed (design
    /// passes must no-op then).
    pub design: Option<&'a Design>,
    /// Inferred output widths by [`rtl_core::resolve::CompId::index`];
    /// empty when `design` is `None`.
    pub widths: &'a [u8],
}

/// One analysis over a specification. Implementations push any findings
/// into `out`; ordering is restored by [`Report::new`](crate::Report).
pub trait LintPass {
    /// Short identifier for the pass (used in docs and debugging).
    fn name(&self) -> &'static str;
    /// The diagnostic codes this pass can emit.
    fn codes(&self) -> &'static [&'static str];
    /// Runs the analysis.
    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>);
}

/// The shipped pass set, in a fixed order.
pub fn default_passes() -> Vec<Box<dyn LintPass>> {
    vec![
        Box::new(MultiDriver),
        Box::new(UnknownName),
        Box::new(CombCycle),
        Box::new(DeclCheck),
        Box::new(ExprTooWide),
        Box::new(ConstTruncated),
        Box::new(FieldOob),
        Box::new(DeadArm),
        Box::new(ConstOob),
        Box::new(MemoryUsage),
    ]
}

/// `multi-driver`: two definitions drive the same named net. The original
/// compiler silently kept the first and generated broken Pascal; here both
/// write-write racing definitions are reported with their spans.
pub struct MultiDriver;

impl LintPass for MultiDriver {
    fn name(&self) -> &'static str {
        "multi-driver"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["multi-driver"]
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let mut first: HashMap<&str, &Component> = HashMap::new();
        for c in &cx.spec.components {
            match first.get(c.name.as_str()) {
                Some(original) => out.push(
                    Diagnostic::new(
                        "multi-driver",
                        Severity::Error,
                        c.span,
                        format!(
                            "component {} is defined twice: two drivers race on one net",
                            c.name
                        ),
                    )
                    .note(format!("first defined at {}", original.span)),
                ),
                None => {
                    first.insert(c.name.as_str(), c);
                }
            }
        }
    }
}

/// `unknown-name`: an expression references a name with no component
/// definition. Unlike elaboration (which stops at the first), every
/// unknown reference is reported.
pub struct UnknownName;

impl LintPass for UnknownName {
    fn name(&self) -> &'static str {
        "unknown-name"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["unknown-name"]
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let defined: HashSet<&str> = cx.spec.components.iter().map(|c| c.name.as_str()).collect();
        for c in &cx.spec.components {
            for expr in c.kind.expressions() {
                let mut seen: HashSet<&str> = HashSet::new();
                for name in expr.references() {
                    if !defined.contains(name.as_str()) && seen.insert(name.as_str()) {
                        out.push(Diagnostic::new(
                            "unknown-name",
                            Severity::Error,
                            expr.span,
                            format!("component {} references undefined name {}", c.name, name),
                        ));
                    }
                }
            }
        }
    }
}

/// `comb-cycle`: ALUs and selectors form a combinational loop. The
/// diagnostic carries the full cycle path (elaboration's
/// `CircularDependency` only lists the member set).
pub struct CombCycle;

impl LintPass for CombCycle {
    fn name(&self) -> &'static str {
        "comb-cycle"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["comb-cycle"]
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        // Combinational nodes and their comb-to-comb edges, in source order.
        let index: HashMap<&str, usize> = cx
            .spec
            .components
            .iter()
            .enumerate()
            .filter(|(_, c)| !matches!(c.kind, ComponentKind::Memory(_)))
            .map(|(i, c)| (c.name.as_str(), i))
            .collect();
        let n = cx.spec.components.len();
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, c) in cx.spec.components.iter().enumerate() {
            if matches!(c.kind, ComponentKind::Memory(_)) {
                continue;
            }
            for expr in c.kind.expressions() {
                for name in expr.references() {
                    if let Some(&j) = index.get(name.as_str()) {
                        if !edges[i].contains(&j) {
                            edges[i].push(j);
                        }
                    }
                }
            }
        }

        // Iterative DFS; a back edge to a gray node closes a cycle. Members
        // of a reported cycle turn black so each loop is reported once.
        let mut color = vec![0u8; n]; // 0 white, 1 gray, 2 black
        for start in 0..n {
            if color[start] != 0 || !index.contains_key(cx.spec.components[start].name.as_str()) {
                continue;
            }
            let mut path: Vec<usize> = vec![start];
            let mut next_edge: Vec<usize> = vec![0];
            color[start] = 1;
            while let Some(&node) = path.last() {
                let e = *next_edge.last().expect("parallel to path");
                if e >= edges[node].len() {
                    color[node] = 2;
                    path.pop();
                    next_edge.pop();
                    continue;
                }
                *next_edge.last_mut().expect("parallel to path") += 1;
                let target = edges[node][e];
                match color[target] {
                    0 => {
                        color[target] = 1;
                        path.push(target);
                        next_edge.push(0);
                    }
                    1 => {
                        let from = path
                            .iter()
                            .position(|&p| p == target)
                            .expect("gray nodes are on the path");
                        let cycle = &path[from..];
                        let names: Vec<&str> = cycle
                            .iter()
                            .map(|&i| cx.spec.components[i].name.as_str())
                            .collect();
                        let anchor = &cx.spec.components[cycle[0]];
                        let mut diag = Diagnostic::new(
                            "comb-cycle",
                            Severity::Error,
                            anchor.span,
                            format!(
                                "combinational cycle: {} -> {}",
                                names.join(" -> "),
                                names[0]
                            ),
                        );
                        for &i in cycle {
                            let c = &cx.spec.components[i];
                            diag =
                                diag.note(format!("cycle member {} defined at {}", c.name, c.span));
                        }
                        out.push(diag);
                        // Retire the whole loop; keep scanning the rest.
                        for &i in cycle {
                            color[i] = 2;
                        }
                        let keep = path.len() - cycle.len();
                        path.truncate(keep);
                        next_edge.truncate(keep);
                    }
                    _ => {}
                }
            }
        }
    }
}

/// `traced-undefined` / `declared-not-defined` / `defined-not-declared`:
/// the declaration list and the definitions must agree. A traced name
/// without a definition is an error (the original emitted malformed
/// Pascal); the other two mismatches mirror elaboration's warnings, with
/// spans attached.
pub struct DeclCheck;

impl LintPass for DeclCheck {
    fn name(&self) -> &'static str {
        "decl-check"
    }

    fn codes(&self) -> &'static [&'static str] {
        &[
            "traced-undefined",
            "declared-not-defined",
            "defined-not-declared",
        ]
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let defined: HashSet<&str> = cx.spec.components.iter().map(|c| c.name.as_str()).collect();
        let declared: HashSet<&str> = cx.spec.declared.iter().map(|d| d.name.as_str()).collect();
        for d in &cx.spec.declared {
            if defined.contains(d.name.as_str()) {
                continue;
            }
            if d.traced {
                out.push(Diagnostic::new(
                    "traced-undefined",
                    Severity::Error,
                    d.span,
                    format!("traced name {} is never defined", d.name),
                ));
            } else {
                out.push(Diagnostic::new(
                    "declared-not-defined",
                    Severity::Warning,
                    d.span,
                    format!("{} declared but not defined", d.name),
                ));
            }
        }
        for c in &cx.spec.components {
            if !declared.contains(c.name.as_str()) {
                out.push(Diagnostic::new(
                    "defined-not-declared",
                    Severity::Warning,
                    c.span,
                    format!("{} defined but not declared", c.name),
                ));
            }
        }
    }
}

/// `too-many-bits`: a concatenation exceeds the 31-bit word. Replicates
/// the resolver's position walk (rightmost part first; an unsized part
/// fills the word, so nothing may sit to its left) without needing names
/// to resolve.
pub struct ExprTooWide;

impl LintPass for ExprTooWide {
    fn name(&self) -> &'static str {
        "expr-too-wide"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["too-many-bits"]
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for c in &cx.spec.components {
            for expr in c.kind.expressions() {
                let mut pos: u32 = 0;
                let mut over = false;
                for part in expr.parts.iter().rev() {
                    match part.width() {
                        Some(w) => pos += u32::from(w),
                        None if pos > 30 => over = true,
                        None => pos = 31,
                    }
                    if pos > 31 {
                        over = true;
                    }
                    if over {
                        break;
                    }
                }
                if over {
                    out.push(Diagnostic::new(
                        "too-many-bits",
                        Severity::Error,
                        expr.span,
                        format!("expression {expr} exceeds the 31-bit word"),
                    ));
                }
            }
        }
    }
}

/// `const-truncated`: a sized constant `V.w` whose value does not fit in
/// `w` bits — the resolver silently keeps the low bits, which is almost
/// always a typo in the constant or the width.
pub struct ConstTruncated;

impl LintPass for ConstTruncated {
    fn name(&self) -> &'static str {
        "const-truncated"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["const-truncated"]
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for c in &cx.spec.components {
            for expr in c.kind.expressions() {
                for part in &expr.parts {
                    if let Part::Const {
                        value,
                        width: Some(w),
                    } = part
                    {
                        if bits_needed(*value) > *w {
                            let kept = value & ((1i64 << *w) - 1);
                            out.push(Diagnostic::new(
                                "const-truncated",
                                Severity::Warning,
                                expr.span,
                                format!(
                                    "constant {value} does not fit in {w} bit(s): \
                                     high bits are dropped, keeping {kept}"
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
}

/// Constant-folds an expression whose parts are all constants, using the
/// resolver's masking and placement rules.
fn const_value(expr: &Expr) -> Option<Word> {
    let mut total: Word = 0;
    let mut pos: u32 = 0;
    for part in expr.parts.iter().rev() {
        match part {
            Part::Const { value, width } => match width {
                Some(w) => {
                    let mask = (1i64 << u32::from(*w)) - 1;
                    total += (value & mask) << pos;
                    pos += u32::from(*w);
                }
                None => {
                    if pos > 30 {
                        return None;
                    }
                    total += value << pos;
                    pos = 31;
                }
            },
            Part::Bits { value, width } => {
                total += value << pos.min(62);
                pos += u32::from(*width);
            }
            Part::Ref { .. } => return None,
        }
        if pos > 31 {
            return None;
        }
    }
    Some(total)
}

/// Provable upper bounds on component outputs: `bounds[name] = w` means
/// the value is always in `[0, 2^w)`. Only constructions that cannot go
/// negative or exceed the bound qualify: comparison/zero ALUs, selectors
/// whose cases are all bounded (a fixpoint, so selector-of-selector
/// chains resolve), and ROMs (constant-read memories, whose latch only
/// ever holds an init value or the initial 0). The heuristic
/// [`rtl_core::width::infer`] fixpoint is deliberately *not* used here:
/// its widths over-narrow signed intermediates (`Sub` can go negative),
/// and these bounds back claims the dynamic oracle treats as sound.
fn exact_bounds(spec: &Spec) -> HashMap<&str, u8> {
    let mut bounds: HashMap<&str, u8> = HashMap::new();
    loop {
        let mut changed = false;
        for c in &spec.components {
            if bounds.contains_key(c.name.as_str()) {
                continue;
            }
            let bound = match &c.kind {
                ComponentKind::Alu(a) => match const_value(&a.funct).and_then(AluFn::from_word) {
                    Some(AluFn::Zero) | Some(AluFn::Unused) | Some(AluFn::Eq) | Some(AluFn::Lt) => {
                        Some(1)
                    }
                    _ => None,
                },
                ComponentKind::Selector(s) => s
                    .cases
                    .iter()
                    .map(|case| expr_bound(case, &bounds))
                    .collect::<Option<Vec<u8>>>()
                    .and_then(|widths| widths.into_iter().max()),
                ComponentKind::Memory(m) => {
                    let read_only = const_value(&m.opn).is_some_and(|op| land(op, 3) == 0);
                    match (&m.init, read_only) {
                        (Some(init), true) => Some(
                            init.iter()
                                .copied()
                                .map(bits_needed)
                                .max()
                                .unwrap_or(1)
                                .max(1),
                        ),
                        (None, true) => Some(1), // all cells hold 0
                        _ => None,
                    }
                }
            };
            if let Some(w) = bound.filter(|&w| w < 31) {
                bounds.insert(c.name.as_str(), w);
                changed = true;
            }
        }
        if !changed {
            return bounds;
        }
    }
}

/// `Some(b)` when an expression's value is provably in `[0, 2^b)`.
/// Sized parts are masked before placement, so they contribute their
/// width; the resolver only permits one unsized part and only leftmost,
/// where a constant contributes its magnitude and a bare reference its
/// exact component bound (if one is known).
fn expr_bound(expr: &Expr, bounds: &HashMap<&str, u8>) -> Option<u8> {
    if let Some(value) = const_value(expr) {
        return Some(bits_needed(value));
    }
    let mut total: u32 = 0;
    for (i, part) in expr.parts.iter().enumerate() {
        match part.width() {
            Some(w) => total += u32::from(w),
            None if i > 0 => return None,
            None => match part {
                Part::Const { value, .. } => total += u32::from(bits_needed(*value)),
                Part::Ref { name, .. } => total += u32::from(*bounds.get(name.as_str())?),
                Part::Bits { .. } => unreachable!("bit strings are always sized"),
            },
        }
    }
    u8::try_from(total.max(1)).ok().filter(|&b| b < 31)
}

/// `field-oob`: a subfield read entirely above a provable value bound —
/// `x.5.8` when `x` is a 1-bit comparator always reads 0. Only exact
/// bounds (see `exact_bounds`) are used, so the finding is sound even
/// for designs with signed intermediates.
pub struct FieldOob;

impl LintPass for FieldOob {
    fn name(&self) -> &'static str {
        "field-oob"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["field-oob"]
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let bounds = exact_bounds(cx.spec);
        for c in &cx.spec.components {
            for expr in c.kind.expressions() {
                for part in &expr.parts {
                    let Part::Ref {
                        name,
                        from: Some(f),
                        to,
                    } = part
                    else {
                        continue;
                    };
                    let Some(&bound) = bounds.get(name.as_str()) else {
                        continue;
                    };
                    if *f >= bound {
                        let t = to.unwrap_or(*f);
                        out.push(Diagnostic::new(
                            "field-oob",
                            Severity::Warning,
                            expr.span,
                            format!(
                                "bits {f}..{t} of {name} are always 0: \
                                 {name} never exceeds {bound} bit(s)"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// A selector arm the analyzer can prove unreachable, plus why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeadArmReason {
    /// The select expression's value is provably in `[0, 2^bits)` (see
    /// `exact_bounds`), so indices `2^bits..` can never occur.
    Masked {
        /// The provable bound, in bits, on the select expression.
        bits: u8,
    },
    /// The select expression is the constant `value`; every other arm is
    /// dead.
    Constant {
        /// The constant select value.
        value: Word,
    },
}

/// Statically-dead arms of one selector: the component name, the design
/// index, the dead arm indices (sorted), and the reasoning. Shared
/// between the [`DeadArm`] pass and the dynamic oracle so both trust the
/// same claim.
pub fn dead_arms(design: &Design) -> Vec<(usize, Vec<usize>, DeadArmReason)> {
    let bounds = exact_bounds(design.spec());
    let mut claims = Vec::new();
    for (id, comp) in design.iter() {
        let RKind::Selector(s) = &comp.kind else {
            continue;
        };
        let arms = s.cases.len();
        let claim = if let Some(value) = s.select.as_constant() {
            let live = usize::try_from(value).ok();
            let dead: Vec<usize> = (0..arms).filter(|&i| Some(i) != live).collect();
            Some((dead, DeadArmReason::Constant { value }))
        } else if let Some(bits) = expr_bound(&s.select.source, &bounds) {
            let max = (1usize << bits) - 1;
            let dead: Vec<usize> = (max + 1..arms).collect();
            Some((dead, DeadArmReason::Masked { bits }))
        } else {
            None
        };
        if let Some((dead, reason)) = claim.filter(|(dead, _)| !dead.is_empty()) {
            claims.push((id.index(), dead, reason));
        }
    }
    claims
}

/// `dead-arm` / `dup-arm`: unreachable and degenerate selector arms.
/// `dead-arm` findings are exactly the claims the dynamic oracle
/// cross-validates at runtime.
pub struct DeadArm;

impl LintPass for DeadArm {
    fn name(&self) -> &'static str {
        "dead-arm"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["dead-arm", "dup-arm"]
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(design) = cx.design else { return };
        for (index, dead, reason) in dead_arms(design) {
            let id = design.id_at(index);
            let name = design.name(id);
            let Some(ast) = find_component(cx.spec, name) else {
                continue;
            };
            let ComponentKind::Selector(s) = &ast.kind else {
                continue;
            };
            for arm in dead {
                let span = s.cases.get(arm).map_or(ast.span, |case| case.span);
                let why = match &reason {
                    DeadArmReason::Masked { bits } => format!(
                        "the select value fits in {bits} bit(s), so the index \
                         never exceeds {}",
                        (1u32 << bits) - 1
                    ),
                    DeadArmReason::Constant { value } => {
                        format!("the select expression is the constant {value}")
                    }
                };
                out.push(Diagnostic::new(
                    "dead-arm",
                    Severity::Warning,
                    span,
                    format!("arm {arm} of selector {name} can never fire: {why}"),
                ));
            }
        }
        // Degenerate selectors: every arm identical, the select is noise.
        for c in &cx.spec.components {
            let ComponentKind::Selector(s) = &c.kind else {
                continue;
            };
            if s.cases.len() >= 2 && s.cases.iter().all(|case| case.parts == s.cases[0].parts) {
                out.push(Diagnostic::new(
                    "dup-arm",
                    Severity::Warning,
                    c.span,
                    format!(
                        "all {} arms of selector {} are identical: the select \
                         expression has no effect",
                        s.cases.len(),
                        c.name
                    ),
                ));
            }
        }
    }
}

/// `sel-const-oob` / `addr-oob`: constant expressions that guarantee a
/// runtime halt — a constant select outside the arm list, or a constant
/// cell address outside a memory that is constantly read or written
/// (input/output operations use the address as a device number, not a
/// cell index, so they are exempt).
pub struct ConstOob;

impl LintPass for ConstOob {
    fn name(&self) -> &'static str {
        "const-oob"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["sel-const-oob", "addr-oob"]
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(design) = cx.design else { return };
        for (id, comp) in design.iter() {
            let name = design.name(id);
            let Some(ast) = find_component(cx.spec, name) else {
                continue;
            };
            match &comp.kind {
                RKind::Selector(s) => {
                    let arms = s.cases.len();
                    if let Some(value) = s.select.as_constant() {
                        let in_range = usize::try_from(value).is_ok_and(|v| v < arms);
                        if !in_range {
                            let span = match &ast.kind {
                                ComponentKind::Selector(sel) => sel.select.span,
                                _ => ast.span,
                            };
                            out.push(Diagnostic::new(
                                "sel-const-oob",
                                Severity::Error,
                                span,
                                format!(
                                    "selector {name} always evaluates select index {value}, \
                                     outside its {arms} arm(s): the simulation halts"
                                ),
                            ));
                        }
                    }
                }
                RKind::Memory(m) => {
                    let cell_op = m
                        .opn
                        .as_constant()
                        .is_some_and(|op| matches!(land(op, 3), 0 | 1));
                    if !cell_op {
                        continue;
                    }
                    if let Some(addr) = m.addr.as_constant() {
                        let in_range = (0..Word::from(m.size)).contains(&addr);
                        if !in_range {
                            let span = match &ast.kind {
                                ComponentKind::Memory(mem) => mem.addr.span,
                                _ => ast.span,
                            };
                            out.push(Diagnostic::new(
                                "addr-oob",
                                Severity::Error,
                                span,
                                format!(
                                    "memory {name} always addresses cell {addr}, outside \
                                     its {} cell(s): the simulation halts",
                                    m.size
                                ),
                            ));
                        }
                    }
                }
                RKind::Alu(_) => {}
            }
        }
    }
}

/// The memories a static analyzer can prove are never written: constant
/// read operations never store, so the cells keep their init values
/// forever. Returns `(design index, expected cells padded to size)` —
/// also the oracle's second claim set.
pub fn undriven_memories(design: &Design) -> Vec<(usize, Vec<Word>)> {
    let mut claims = Vec::new();
    for &id in design.memories() {
        let m = design.memory(id);
        if m.opn.as_constant().is_some_and(|op| land(op, 3) == 0) {
            let mut cells = m.init.clone();
            cells.resize(m.size as usize, 0);
            claims.push((id.index(), cells));
        }
    }
    claims
}

/// `undriven-read` / `unused-write` / `trace-undriven`: memory usage
/// analysis over the reference graph.
pub struct MemoryUsage;

impl LintPass for MemoryUsage {
    fn name(&self) -> &'static str {
        "memory-usage"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["undriven-read", "unused-write", "trace-undriven"]
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(design) = cx.design else { return };
        // Who reads whom: references from *other* components' expressions.
        let mut referenced = vec![false; design.len()];
        for (id, comp) in design.iter() {
            for expr in comp.kind.expressions() {
                for target in expr.comps() {
                    if target != id {
                        referenced[target.index()] = true;
                    }
                }
            }
        }
        for &id in design.memories() {
            let m = design.memory(id);
            let name = design.name(id);
            let Some(op) = m.opn.as_constant() else {
                continue; // dynamic operation: anything can happen
            };
            let traced = design.traced().contains(&id);
            let zero_cells = m.init.iter().all(|&v| v == 0);
            let span = find_component(cx.spec, name).map_or_else(Default::default, |c| c.span);
            match land(op, 3) {
                0 => {
                    // Never written: every read latches an init value.
                    if zero_cells && referenced[id.index()] {
                        out.push(Diagnostic::new(
                            "undriven-read",
                            Severity::Warning,
                            span,
                            format!(
                                "memory {name} is read but never written and all its \
                                 cells are 0: every reference sees constant 0"
                            ),
                        ));
                    }
                    if zero_cells && traced {
                        let tspan = cx
                            .spec
                            .declared
                            .iter()
                            .find(|d| d.name.as_str() == name)
                            .map_or(span, |d| d.span);
                        out.push(Diagnostic::new(
                            "trace-undriven",
                            Severity::Warning,
                            tspan,
                            format!(
                                "{name} is traced every cycle but is never written and \
                                 holds only zeros: the trace column is constant"
                            ),
                        ));
                    }
                }
                1 | 2 => {
                    let emits = rtl_core::word::traces_write(op) || rtl_core::word::traces_read(op);
                    if !referenced[id.index()] && !traced && !emits {
                        let what = if land(op, 3) == 1 {
                            "written"
                        } else {
                            "read from input"
                        };
                        out.push(Diagnostic::new(
                            "unused-write",
                            Severity::Warning,
                            span,
                            format!(
                                "memory {name} is {what} every cycle but its value is \
                                 never referenced, traced, or output"
                            ),
                        ));
                    }
                }
                _ => {} // output ops are used by definition
            }
        }
    }
}

fn find_component<'a>(spec: &'a Spec, name: &str) -> Option<&'a Component> {
    spec.components.iter().find(|c| c.name.as_str() == name)
}
