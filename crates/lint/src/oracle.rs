//! Dynamic cross-validation of static claims against the running
//! simulator.
//!
//! The lint passes make two kinds of *sound* claims about a design:
//! selector arms that can never fire ([`dead_arms`]) and memories whose
//! cells can never change ([`undriven_memories`]). Soundness means a
//! contradiction at runtime is not a style problem — it is a bug in the
//! analyzer or in the simulator, and the differential harness is exactly
//! the tool that finds which. [`OracleComparator`] plugs those claims
//! into the cosim [`Comparator`] seam: at every comparison point it
//! checks the undriven cells against the observed state and recomputes
//! the next combinational phase from the observed memory latches to
//! check every claimed-dead arm, raising [`DivergenceKind::Oracle`] on
//! disagreement.
//!
//! The recompute mirrors the interpreter's step semantics bit for bit:
//! components evaluate in combinational order over the latched outputs,
//! ALU functions apply [`AluFn::apply`] unmasked, selectors index with
//! `usize::try_from`. An observation at cycle `c` exposes the
//! end-of-cycle memory latches, which are precisely the inputs to cycle
//! `c + 1`'s combinational phase — so the oracle checks the select
//! indices the very next cycle would produce. Because the claims hold
//! for *all* input values, checking a cycle that may never execute can
//! never contradict a correct analyzer.

use crate::passes::{dead_arms, undriven_memories};
use rtl_core::observe::{Comparator, DivergenceKind, Observation};
use rtl_core::{AluFn, Design, RKind, Recorder, Word};

/// The sound claims the static analyzer makes about one design — the
/// contract the [`OracleComparator`] enforces at runtime. Fields are
/// public so tests can inject deliberately-wrong claims and prove the
/// oracle catches a broken analyzer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StaticClaims {
    /// Per selector (by design index): arm indices that can never fire,
    /// sorted ascending.
    pub dead_arms: Vec<(usize, Vec<usize>)>,
    /// Per memory (by design index): the cell image the memory must hold
    /// forever (its init values padded with zeros to its size), because
    /// a constant-read operation never stores.
    pub undriven: Vec<(usize, Vec<Word>)>,
}

impl StaticClaims {
    /// Extracts every claim the shipped passes can prove about `design`.
    pub fn of(design: &Design) -> StaticClaims {
        StaticClaims {
            dead_arms: dead_arms(design)
                .into_iter()
                .map(|(index, dead, _)| (index, dead))
                .collect(),
            undriven: undriven_memories(design),
        }
    }

    /// `true` when there is nothing to cross-validate.
    pub fn is_empty(&self) -> bool {
        self.dead_arms.is_empty() && self.undriven.is_empty()
    }
}

/// A [`Comparator`] that checks [`StaticClaims`] against each runtime
/// observation instead of comparing two lanes — the reference lane alone
/// carries all the evidence, so candidate observations are ignored, and
/// the repeated comparisons at one cycle (one per candidate lane) bump
/// the counters only once. Emits `lint/oracle_checks` and
/// `lint/oracle_contradictions` counters when given an enabled
/// [`Recorder`].
pub struct OracleComparator {
    claims: StaticClaims,
    recorder: Recorder,
    last_cycle: Option<Word>,
}

impl OracleComparator {
    /// Builds the oracle for one design's claims. `recorder` may be
    /// [`Recorder::disabled`].
    pub fn new(claims: StaticClaims, recorder: Recorder) -> OracleComparator {
        OracleComparator {
            claims,
            recorder,
            last_cycle: None,
        }
    }

    /// The claims under validation.
    pub fn claims(&self) -> &StaticClaims {
        &self.claims
    }

    fn check(&self, reference: &Observation<'_>) -> Option<DivergenceKind> {
        let design = reference.design();
        for (index, expected) in &self.claims.undriven {
            let id = design.id_at(*index);
            let cells = reference.cells(id);
            if cells != expected.as_slice() {
                let addr = cells
                    .iter()
                    .zip(expected)
                    .position(|(have, want)| have != want)
                    .unwrap_or(expected.len().min(cells.len()));
                return Some(DivergenceKind::Oracle {
                    component: design.name(id).to_string(),
                    claim: format!(
                        "statically-undriven memory changed at cell {addr} \
                         (cycle {})",
                        reference.cycle()
                    ),
                });
            }
        }
        if self.claims.dead_arms.is_empty() {
            return None;
        }
        self.check_dead_arms(reference)
    }

    /// Recomputes the next cycle's combinational phase from the observed
    /// memory latches and checks each select index against the dead-arm
    /// claims. Bails without a verdict when the observation is partial
    /// (an elided output) or the recompute itself would halt — the
    /// ordinary lenses own those outcomes.
    fn check_dead_arms(&self, reference: &Observation<'_>) -> Option<DivergenceKind> {
        let design = reference.design();
        let mut outputs = vec![0; design.len()];
        for &id in design.memories() {
            outputs[id.index()] = reference.output(id)?;
        }
        for &id in design.comb_order() {
            let value = match &design.comp(id).kind {
                RKind::Alu(a) => {
                    let fun = AluFn::from_word(a.funct.eval(&outputs))?;
                    fun.apply(a.left.eval(&outputs), a.right.eval(&outputs))
                }
                RKind::Selector(s) => {
                    let raw = s.select.eval(&outputs);
                    let idx = usize::try_from(raw).ok();
                    if let Some((_, dead)) = self
                        .claims
                        .dead_arms
                        .iter()
                        .find(|(index, _)| *index == id.index())
                    {
                        if idx.is_some_and(|i| dead.contains(&i)) {
                            return Some(DivergenceKind::Oracle {
                                component: design.name(id).to_string(),
                                claim: format!(
                                    "statically-dead arm {raw} fires on cycle {}",
                                    reference.cycle() + 1
                                ),
                            });
                        }
                    }
                    idx.and_then(|i| s.cases.get(i))?.eval(&outputs)
                }
                RKind::Memory(_) => continue,
            };
            outputs[id.index()] = value;
        }
        None
    }
}

impl Comparator for OracleComparator {
    fn name(&self) -> &str {
        "lint-oracle"
    }

    fn compare(
        &mut self,
        reference: &Observation<'_>,
        _candidate: &Observation<'_>,
    ) -> Option<DivergenceKind> {
        // The harness calls every comparator once per candidate lane
        // against the same reference, and re-runs the comparison when it
        // builds a divergence report — so the verdict must be computed
        // every time (stateless in the observation), and only the
        // *counters* dedupe by cycle.
        let fresh = self.last_cycle != Some(reference.cycle());
        self.last_cycle = Some(reference.cycle());
        if fresh {
            self.recorder.count("lint", "oracle_checks", 1);
        }
        let verdict = self.check(reference);
        if fresh && verdict.is_some() {
            self.recorder.count("lint", "oracle_contradictions", 1);
        }
        verdict
    }
}
