//! # rtl-machines — reference machines for the ASIM II reproduction
//!
//! The thesis demonstrates ASIM II on two machines: the **Itty Bitty Stack
//! Machine** running the Sieve of Eratosthenes (Appendix D, the Figure 5.1
//! benchmark) and a **tiny 10-bit computer** (Appendix F, the hardware-
//! construction example). This crate builds both, each at two levels —
//! an instruction-set simulator that serves as an independent oracle, and
//! a micro-coded RTL implementation expressed in the ASIM II language —
//! plus the supporting cast:
//!
//! * [`builder`] — a programmatic [`Spec`](rtl_lang::Spec) builder,
//! * [`stack`] — ISA, assembler, ISS, microcode and RTL for the stack
//!   machine; workloads in [`stack::programs`] (sieve, Fibonacci, GCD),
//! * [`tiny`] — the 10-bit machine with its division demo,
//! * [`classic`] — small bundled specifications (counter, GCD datapath,
//!   traffic light, and the completed fragments of Figures 3.1/4.1–4.3),
//! * [`synth`] — synthetic chains for scaling benchmarks and seeded random
//!   designs for differential property tests,
//! * [`scenarios`] — the named scenario registry: every design above
//!   packaged as a replayable workload for the cosim harness.
//!
//! ```
//! // Assemble the sieve, build its RTL model, and check the first primes.
//! let w = rtl_machines::stack::sieve_workload(5);
//! assert_eq!(w.primes, vec![3, 5, 7, 11]);
//! let spec = rtl_machines::stack::rtl::spec(&w.program, Some(w.cycles));
//! assert!(rtl_core::Design::elaborate(&spec).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod classic;
pub mod scenarios;
pub mod stack;
pub mod synth;
pub mod tiny;

pub use builder::SpecBuilder;
pub use scenarios::Scenario;
