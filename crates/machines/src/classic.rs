//! Small classic specifications, shipped as `.asim` text.
//!
//! These serve three purposes: runnable examples, CLI demo inputs, and the
//! textual artifacts behind the thesis's Figures 3.1 and 4.1–4.3 (each
//! figure's fragment completed into a self-contained specification).

use rtl_core::Design;

/// A four-bit wrap-around counter.
pub const COUNTER: &str = include_str!("../specs/counter.asim");

/// A GCD datapath by repeated subtraction (gcd(36, 24) = 12), with a
/// boot register that loads the initial operands on cycle 0.
pub const GCD: &str = include_str!("../specs/gcd.asim");

/// A traffic-light controller (green 4 cycles, yellow 1, red 3).
pub const TRAFFIC: &str = include_str!("../specs/traffic.asim");

/// Figure 4.1's two ALUs (generic function vs. constant `add`).
pub const FIG4_1: &str = include_str!("../specs/fig4_1.asim");

/// Figure 4.2's four-way selector.
pub const FIG4_2: &str = include_str!("../specs/fig4_2.asim");

/// Figure 4.3's initialized memory with a dynamic, traced operation.
pub const FIG4_3: &str = include_str!("../specs/fig4_3.asim");

/// Figure 3.1's bit concatenation `mem.3.4,#01,count.1`.
pub const FIG3_1: &str = include_str!("../specs/fig3_1.asim");

/// All bundled specifications as `(name, source)` pairs.
pub const ALL: &[(&str, &str)] = &[
    ("counter", COUNTER),
    ("gcd", GCD),
    ("traffic", TRAFFIC),
    ("fig3_1", FIG3_1),
    ("fig4_1", FIG4_1),
    ("fig4_2", FIG4_2),
    ("fig4_3", FIG4_3),
];

/// Looks a bundled specification up by name.
pub fn source(name: &str) -> Option<&'static str> {
    ALL.iter().find(|(n, _)| *n == name).map(|(_, s)| *s)
}

/// Parses and elaborates a bundled specification.
///
/// # Panics
///
/// Panics if the bundled text is invalid — covered by tests, so it cannot
/// happen in a released build.
pub fn design(name: &str) -> Design {
    let src = source(name).unwrap_or_else(|| panic!("no bundled spec named {name:?}"));
    Design::from_source(src).unwrap_or_else(|e| panic!("bundled spec {name}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl_core::{run_captured, Session, Until};
    use rtl_interp::Interpreter;

    fn spec_text(d: &rtl_core::Design) -> String {
        let mut session = Session::over(Interpreter::new(d)).capture().build();
        assert!(session.run(Until::Spec).completed());
        session.output_text()
    }

    #[test]
    fn all_bundled_specs_elaborate_without_warnings() {
        for (name, _) in ALL {
            let d = design(name);
            assert!(d.warnings().is_empty(), "{name}: {:?}", d.warnings());
            assert!(d.cycles().is_some(), "{name} sets a cycle count");
        }
    }

    #[test]
    fn counter_wraps_at_sixteen() {
        let d = design("counter");
        let mut sim = Interpreter::new(&d);
        let out = run_captured(&mut sim, 18).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[15], "Cycle  15 count= 15");
        assert_eq!(lines[16], "Cycle  16 count= 0", "wraps to zero");
        assert_eq!(lines[17], "Cycle  17 count= 1");
    }

    #[test]
    fn gcd_converges_to_twelve() {
        let d = design("gcd");
        let text = spec_text(&d);
        let last = text.lines().last().unwrap();
        assert!(last.ends_with("x= 12 y= 12"), "{last}");
        // And it stays converged.
        assert!(text.contains("x= 12 y= 12"));
    }

    #[test]
    fn traffic_cycles_through_lights() {
        let d = design("traffic");
        let mut sim = Interpreter::new(&d);
        let out = run_captured(&mut sim, 16).unwrap();
        // Green (1) for t=0..3, yellow (2) at t=4, red (4) for t=5..7.
        assert!(out.contains("t= 0 light= 1"), "{out}");
        assert!(out.contains("t= 4 light= 2"), "{out}");
        assert!(out.contains("t= 5 light= 4"), "{out}");
        assert!(out.contains("t= 7 light= 4"), "{out}");
        // Second period repeats.
        assert!(out.contains("t= 0 light= 1"), "{out}");
    }

    #[test]
    fn fig3_1_concatenation_value() {
        // mem = 24 = 0b11000 (bits 3,4 set), count = 2 (bit 1 set):
        // mem.3.4,#01,count.1 = 0b11 0b01 0b1 = 27. The memories latch
        // their cells after the first read, so the value appears at cycle 1.
        let d = design("fig3_1");
        let text = spec_text(&d);
        assert!(text.lines().nth(1).unwrap().contains("cat= 27"), "{text}");
    }

    #[test]
    fn fig4_1_both_alus_compute_3148() {
        let d = design("fig4_1");
        let text = spec_text(&d);
        // left = 100 once latched; both the generic and the inlined ALU
        // produce 100 + 3048.
        assert!(text.contains("alu= 3148 add= 3148"), "{text}");
    }

    #[test]
    fn fig4_2_selector_walks_values() {
        let d = design("fig4_2");
        let text = spec_text(&d);
        for v in [
            "selector= 10",
            "selector= 20",
            "selector= 30",
            "selector= 40",
        ] {
            assert!(text.contains(v), "{v} missing in {text}");
        }
    }

    #[test]
    fn fig4_3_memory_traces_reads_and_writes() {
        let d = design("fig4_3");
        let text = spec_text(&d);
        assert!(text.contains(" Read from memory at "), "{text}");
        assert!(text.contains(" Write to memory at "), "{text}");
        // The initializer values are visible through reads.
        assert!(
            text.contains("memory= 12") || text.contains(": 12"),
            "{text}"
        );
    }
}
