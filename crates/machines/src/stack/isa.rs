//! The Itty Bitty Stack Machine instruction set.
//!
//! A re-derivation of the thesis's Appendix D stack machine (the original
//! listing is OCR-damaged; see `DESIGN.md`): a micro-coded, RAM-stack
//! machine whose instruction words carry a 4-bit opcode and a 13-bit
//! operand. `ST` to an address with bit 12 set leaves the RAM array and
//! goes to the memory-mapped output device, exactly like the original's
//! `addr.~n` I/O select bit.

use rtl_core::Word;

/// Bit position of the I/O select in addresses (the thesis's `~n 12`).
pub const IO_BIT: Word = 1 << 12;

/// RAM size in words.
pub const RAM_WORDS: usize = 4096;

/// First RAM slot of the stack region (slots below are a guard band for
/// speculative top-of-stack reads at empty stack).
pub const STACK_BASE: Word = 16;

/// The sixteen opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Op {
    /// No operation.
    Nop = 0,
    /// Push the 13-bit operand.
    Ldc = 1,
    /// Pop an address, push `ram[addr]`.
    Ld = 2,
    /// Pop an address, pop a value, store (or output when the address has
    /// [`IO_BIT`] set).
    St = 3,
    /// Duplicate the top of stack.
    Dup = 4,
    /// Swap the top two elements.
    Swap = 5,
    /// Pop two, push `next + top`.
    Add = 6,
    /// Pop two, push `next - top`.
    Sub = 7,
    /// Pop two, push `next * top`.
    Mul = 8,
    /// Pop two, push `land(next, top)`.
    And = 9,
    /// Pop two, push `1` if `next = top` else `0`.
    Eq = 10,
    /// Pop two, push `1` if `next < top` else `0`.
    Lt = 11,
    /// Negate the top of stack (`0 - top`).
    Neg = 12,
    /// Pop a value; branch to the operand when it is zero.
    Bz = 13,
    /// Branch to the operand unconditionally.
    Br = 14,
    /// Freeze the machine.
    Halt = 15,
}

impl Op {
    /// All opcodes in numeric order.
    pub const ALL: [Op; 16] = [
        Op::Nop,
        Op::Ldc,
        Op::Ld,
        Op::St,
        Op::Dup,
        Op::Swap,
        Op::Add,
        Op::Sub,
        Op::Mul,
        Op::And,
        Op::Eq,
        Op::Lt,
        Op::Neg,
        Op::Bz,
        Op::Br,
        Op::Halt,
    ];

    /// Decodes the low four bits of an instruction word.
    pub fn from_word(w: Word) -> Op {
        Self::ALL[(w & 0xF) as usize]
    }

    /// The opcode number.
    pub fn number(self) -> Word {
        self as Word
    }

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op::Nop => "nop",
            Op::Ldc => "ldc",
            Op::Ld => "ld",
            Op::St => "st",
            Op::Dup => "dup",
            Op::Swap => "swap",
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Mul => "mul",
            Op::And => "and",
            Op::Eq => "eq",
            Op::Lt => "lt",
            Op::Neg => "neg",
            Op::Bz => "bz",
            Op::Br => "br",
            Op::Halt => "halt",
        }
    }

    /// Looks an opcode up by mnemonic.
    pub fn from_mnemonic(m: &str) -> Option<Op> {
        Op::ALL.iter().copied().find(|o| o.mnemonic() == m)
    }

    /// `true` if the opcode takes an operand (`ldc`, `bz`, `br`).
    pub fn takes_operand(self) -> bool {
        matches!(self, Op::Ldc | Op::Bz | Op::Br)
    }

    /// `true` for the six binary arithmetic/comparison operators.
    pub fn is_binop(self) -> bool {
        matches!(
            self,
            Op::Add | Op::Sub | Op::Mul | Op::And | Op::Eq | Op::Lt
        )
    }

    /// The dologic function number a binary operator maps to on the
    /// micro-coded datapath.
    pub fn alu_fn(self) -> Option<Word> {
        match self {
            Op::Add => Some(4),
            Op::Sub => Some(5),
            Op::Mul => Some(7),
            Op::And => Some(8),
            Op::Eq => Some(12),
            Op::Lt => Some(13),
            _ => None,
        }
    }

    /// Cycles the micro-coded implementation spends on this opcode
    /// (fetch included). Used by the instruction-set simulator to predict
    /// RTL cycle counts and by the "levels" benchmark.
    pub fn cycles(self) -> u64 {
        match self {
            Op::Nop | Op::Ldc | Op::Dup | Op::Neg | Op::Bz | Op::Br => 2,
            Op::Ld | Op::St => 3,
            Op::Swap => 4,
            Op::Halt => 2,
            _ if self.is_binop() => 3,
            _ => unreachable!(),
        }
    }
}

/// One decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instr {
    /// The opcode.
    pub op: Op,
    /// The 13-bit operand (0 when unused).
    pub operand: Word,
}

impl Instr {
    /// Builds an instruction, masking the operand to 13 bits.
    pub fn new(op: Op, operand: Word) -> Instr {
        Instr {
            op,
            operand: operand & 0x1FFF,
        }
    }

    /// Encodes to an instruction word: `op | operand << 4`.
    pub fn encode(self) -> Word {
        self.op.number() | (self.operand << 4)
    }

    /// Decodes an instruction word.
    pub fn decode(w: Word) -> Instr {
        Instr {
            op: Op::from_word(w),
            operand: (w >> 4) & 0x1FFF,
        }
    }
}

impl std::fmt::Display for Instr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.op.takes_operand() {
            write!(f, "{} {}", self.op.mnemonic(), self.operand)
        } else {
            f.write_str(self.op.mnemonic())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for op in Op::ALL {
            for operand in [0, 1, 20, 4095, 4097, 0x1FFF] {
                let i = Instr::new(op, operand);
                assert_eq!(Instr::decode(i.encode()), i, "{op:?} {operand}");
            }
        }
    }

    #[test]
    fn operand_is_masked_to_13_bits() {
        assert_eq!(Instr::new(Op::Ldc, 0x2FFF).operand, 0x0FFF);
    }

    #[test]
    fn mnemonics_round_trip() {
        for op in Op::ALL {
            assert_eq!(Op::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(Op::from_mnemonic("bogus"), None);
    }

    #[test]
    fn binop_alu_functions() {
        for op in Op::ALL {
            assert_eq!(op.alu_fn().is_some(), op.is_binop(), "{op:?}");
        }
        assert_eq!(Op::Sub.alu_fn(), Some(5));
    }

    #[test]
    fn display_format() {
        assert_eq!(Instr::new(Op::Ldc, 7).to_string(), "ldc 7");
        assert_eq!(Instr::new(Op::Add, 0).to_string(), "add");
    }
}
