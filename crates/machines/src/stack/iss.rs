//! The instruction-set simulator (ISS) for the stack machine.
//!
//! This is the "instruction set level" of §2.2.4: it executes the ISA
//! directly, with no notion of micro-states or buses, and therefore runs
//! far faster than the RTL model — the thesis's argument for designing the
//! instruction set at ISP level before descending to RTL. The test suite
//! uses it as the independent oracle the RTL implementation must match.

use super::isa::{Instr, Op, IO_BIT, RAM_WORDS};
use rtl_core::{land, Word};

/// An output event: `(device address, value)` — what `soutput` would see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputEvent {
    /// Device address (the low 12 bits of the store address).
    pub addr: Word,
    /// The value written.
    pub data: Word,
}

/// Why the ISS stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stop {
    /// Executed a `halt`.
    Halted,
    /// Hit the step limit while still running.
    StepLimit,
    /// The program counter left the program.
    PcOutOfRange,
    /// A pop on an empty stack.
    StackUnderflow,
}

/// The ISS state and statistics.
#[derive(Debug, Clone)]
pub struct Iss {
    program: Vec<Instr>,
    /// Data/stack RAM (the RTL model's 4096-word array).
    pub ram: Vec<Word>,
    stack: Vec<Word>,
    pc: Word,
    /// Output events in order.
    pub outputs: Vec<OutputEvent>,
    /// Instructions executed.
    pub instructions: u64,
    /// Micro-cycles the RTL implementation would need (per-opcode table).
    pub predicted_cycles: u64,
}

impl Iss {
    /// Loads a program.
    pub fn new(program: Vec<Instr>) -> Self {
        Iss {
            program,
            ram: vec![0; RAM_WORDS],
            stack: Vec::new(),
            pc: 0,
            outputs: Vec::new(),
            instructions: 0,
            predicted_cycles: 0,
        }
    }

    /// Current stack depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Current program counter.
    pub fn pc(&self) -> Word {
        self.pc
    }

    /// Runs until halt or `max_steps` instructions.
    pub fn run(&mut self, max_steps: u64) -> Stop {
        for _ in 0..max_steps {
            match self.step() {
                None => {}
                Some(stop) => return stop,
            }
        }
        Stop::StepLimit
    }

    /// Executes one instruction; `Some` when the machine stops.
    pub fn step(&mut self) -> Option<Stop> {
        let Ok(pc) = usize::try_from(self.pc) else {
            return Some(Stop::PcOutOfRange);
        };
        let Some(&instr) = self.program.get(pc) else {
            return Some(Stop::PcOutOfRange);
        };
        self.instructions += 1;
        self.predicted_cycles += instr.op.cycles();
        let mut next = self.pc + 1;

        macro_rules! pop {
            () => {
                match self.stack.pop() {
                    Some(v) => v,
                    None => return Some(Stop::StackUnderflow),
                }
            };
        }

        match instr.op {
            Op::Nop => {}
            Op::Ldc => self.stack.push(instr.operand),
            Op::Ld => {
                let addr = pop!();
                self.stack.push(self.ram[(addr & 0xFFF) as usize]);
            }
            Op::St => {
                let addr = pop!();
                let value = pop!();
                if land(addr, IO_BIT) != 0 {
                    // The RTL's RAM primitive performs an *output* operation
                    // (op 3) here — the cell array is untouched.
                    self.outputs.push(OutputEvent {
                        addr: addr & 0xFFF,
                        data: value,
                    });
                } else {
                    self.ram[(addr & 0xFFF) as usize] = value;
                }
            }
            Op::Dup => {
                let top = pop!();
                self.stack.push(top);
                self.stack.push(top);
            }
            Op::Swap => {
                let a = pop!();
                let b = pop!();
                self.stack.push(a);
                self.stack.push(b);
            }
            Op::Add | Op::Sub | Op::Mul | Op::And | Op::Eq | Op::Lt => {
                let top = pop!();
                let nos = pop!();
                let f = rtl_core::AluFn::from_word(instr.op.alu_fn().expect("binop"))
                    .expect("valid fn");
                self.stack.push(f.apply(nos, top));
            }
            Op::Neg => {
                let top = pop!();
                self.stack.push(0 - top);
            }
            Op::Bz => {
                let cond = pop!();
                if cond == 0 {
                    next = instr.operand;
                }
            }
            Op::Br => next = instr.operand,
            Op::Halt => return Some(Stop::Halted),
        }
        self.pc = next;
        None
    }

    /// The output stream rendered exactly as the RTL simulation's
    /// `soutput` renders it (integer lines for device address 1, etc.).
    pub fn rendered_output(&self) -> String {
        let mut out = Vec::new();
        for e in &self.outputs {
            rtl_core::trace::output_event(&mut out, e.addr, e.data).expect("vec write");
        }
        String::from_utf8(out).expect("trace output is utf-8")
    }

    /// Just the output values (ignoring device addresses).
    pub fn output_values(&self) -> Vec<Word> {
        self.outputs.iter().map(|e| e.data).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::asm::assemble;
    use super::*;

    fn run(src: &str) -> Iss {
        let mut iss = Iss::new(assemble(src).unwrap());
        assert_eq!(iss.run(1_000_000), Stop::Halted, "program must halt");
        iss
    }

    #[test]
    fn arithmetic_and_output() {
        let iss = run(".def out 4097\nldc 21\nldc 21\nadd\nldc out\nst\nhalt");
        assert_eq!(iss.output_values(), [42]);
        assert_eq!(iss.depth(), 0);
        assert_eq!(iss.rendered_output(), "42\n");
    }

    #[test]
    fn memory_round_trip() {
        let iss = run(".def cell 1024\nldc 99\nldc cell\nst\nldc cell\nld\nldc 4097\nst\nhalt");
        assert_eq!(iss.output_values(), [99]);
        assert_eq!(iss.ram[1024], 99);
    }

    #[test]
    fn branches_and_loop() {
        // Sum 1..=5, print 15.
        let iss = run(".def acc 1024\n.def i 1025\n.def out 4097\n\
             loop: ldc i\n ld\n ldc 5\n eq\n bz body\n br done\n\
             body: ldc i\n ld\n ldc 1\n add\n dup\n ldc i\n st\n\
             ldc acc\n ld\n add\n ldc acc\n st\n br loop\n\
             done: ldc acc\n ld\n ldc out\n st\n halt");
        assert_eq!(iss.output_values(), [15]);
    }

    #[test]
    fn stack_ops() {
        let iss = run(".def out 4097\nldc 1\nldc 2\nswap\nsub\nldc out\nst\nhalt");
        // swap: 2 1 → sub: 2 - 1 = 1.
        assert_eq!(iss.output_values(), [1]);

        let iss = run(".def out 4097\nldc 7\ndup\nmul\nldc out\nst\nhalt");
        assert_eq!(iss.output_values(), [49]);

        let iss = run(".def out 4097\nldc 5\nneg\nldc out\nst\nhalt");
        assert_eq!(iss.output_values(), [-5]);
    }

    #[test]
    fn comparisons() {
        let iss = run(
            ".def out 4097\nldc 3\nldc 5\nlt\nldc out\nst\nldc 5\nldc 3\nlt\nldc out\nst\nhalt",
        );
        assert_eq!(iss.output_values(), [1, 0]);
    }

    #[test]
    fn stop_conditions() {
        let mut iss = Iss::new(assemble("nop").unwrap());
        assert_eq!(iss.run(10), Stop::PcOutOfRange, "ran off the end");

        let mut iss = Iss::new(assemble("add\nhalt").unwrap());
        assert_eq!(iss.run(10), Stop::StackUnderflow);

        let mut iss = Iss::new(assemble("top: br top").unwrap());
        assert_eq!(iss.run(10), Stop::StepLimit);
    }

    #[test]
    fn statistics_accumulate() {
        let iss = run("ldc 1\nldc 2\nadd\nldc 1024\nst\nhalt");
        assert_eq!(iss.instructions, 6);
        // ldc(2)*3 + add(3) + st(3) + halt(2) = 6+3+3+2 = 14.
        assert_eq!(iss.predicted_cycles, 14);
    }
}
