//! Workload programs for the stack machine.
//!
//! The headline workload is the **Sieve of Eratosthenes** — "the popular
//! Sieve of Eratosthenes ... has been implemented as a series of stack
//! commands and is simulated using this simulator specification" (§4.1).
//! Each generator returns assembly text for
//! [`assemble`](crate::stack::asm::assemble), and a matching `*_expected` reference
//! implementation the tests verify both simulation levels against.

use rtl_core::Word;

/// RAM addresses used by the programs (all above the stack region).
pub mod layout {
    /// Loop index `i`.
    pub const I: i64 = 1024;
    /// Current prime.
    pub const PRIME: i64 = 1025;
    /// Multiple-marking cursor `k`.
    pub const K: i64 = 1026;
    /// Scratch accumulator.
    pub const ACC: i64 = 1027;
    /// Base of the sieve flag array.
    pub const FLAGS: i64 = 1100;
    /// Base of the sort array.
    pub const ARR: i64 = 1200;
    /// Memory-mapped integer output (device address 1).
    pub const OUT: i64 = 4097;
    /// Memory-mapped character output (device address 0).
    pub const OUT_CHAR: i64 = 4096;
}

/// The sieve program: finds the odd primes `2i + 3` for `i < size` and
/// writes each to the integer output device. This is the thesis's
/// benchmark workload (its flags-over-odd-numbers formulation, where
/// `prime = i + i + 3`).
pub fn sieve(size: Word) -> String {
    assert!((1..=1000).contains(&size), "sieve size out of range");
    format!(
        "\
; Sieve of Eratosthenes on the Itty Bitty Stack Machine
.def I {i}
.def PRIME {prime}
.def K {k}
.def FLAGS {flags}
.def SIZE {size}
.def OUT {out}

        ldc 0
        ldc I
        st              ; i := 0
init:   ldc I
        ld
        ldc SIZE
        lt
        bz scan0        ; while i < SIZE
        ldc 1
        ldc FLAGS
        ldc I
        ld
        add
        st              ; flags[i] := true
        ldc I
        ld
        ldc 1
        add
        ldc I
        st              ; i := i + 1
        br init
scan0:  ldc 0
        ldc I
        st              ; i := 0
scan:   ldc I
        ld
        ldc SIZE
        lt
        bz done         ; while i < SIZE
        ldc FLAGS
        ldc I
        ld
        add
        ld              ; flags[i]
        bz next         ; composite
        ldc I
        ld
        dup
        add
        ldc 3
        add             ; prime := i + i + 3
        dup
        ldc PRIME
        st
        ldc OUT
        st              ; output prime
        ldc I
        ld
        ldc PRIME
        ld
        add
        ldc K
        st              ; k := i + prime
mark:   ldc K
        ld
        ldc SIZE
        lt
        bz next         ; while k < SIZE
        ldc 0
        ldc FLAGS
        ldc K
        ld
        add
        st              ; flags[k] := false
        ldc K
        ld
        ldc PRIME
        ld
        add
        ldc K
        st              ; k := k + prime
        br mark
next:   ldc I
        ld
        ldc 1
        add
        ldc I
        st              ; i := i + 1
        br scan
done:   halt
",
        i = layout::I,
        prime = layout::PRIME,
        k = layout::K,
        flags = layout::FLAGS,
        out = layout::OUT,
        size = size,
    )
}

/// Reference results for [`sieve`]: the primes it prints, in order.
pub fn sieve_expected(size: Word) -> Vec<Word> {
    let size = size as usize;
    let mut flags = vec![true; size];
    let mut primes = Vec::new();
    for i in 0..size {
        if flags[i] {
            let prime = (2 * i + 3) as Word;
            primes.push(prime);
            let mut k = i + prime as usize;
            while k < size {
                flags[k] = false;
                k += prime as usize;
            }
        }
    }
    primes
}

/// Prints the first `n` Fibonacci numbers (1, 1, 2, 3, 5, ...).
pub fn fibonacci(n: Word) -> String {
    assert!((1..=40).contains(&n), "fibonacci length out of range");
    format!(
        "\
; Fibonacci on the Itty Bitty Stack Machine
.def A {a}
.def B {b}
.def N {nvar}
.def OUT {out}

        ldc 0
        ldc A
        st              ; a := 0
        ldc 1
        ldc B
        st              ; b := 1
        ldc {n}
        ldc N
        st              ; n := count
loop:   ldc N
        ld
        bz done
        ldc B
        ld
        ldc OUT
        st              ; print b
        ldc A
        ld
        ldc B
        ld
        add             ; t := a + b
        ldc B
        ld
        ldc A
        st              ; a := b
        ldc B
        st              ; b := t
        ldc N
        ld
        ldc 1
        sub
        ldc N
        st              ; n := n - 1
        br loop
done:   halt
",
        a = layout::I,
        b = layout::PRIME,
        nvar = layout::K,
        out = layout::OUT,
        n = n,
    )
}

/// Reference results for [`fibonacci`].
pub fn fibonacci_expected(n: Word) -> Vec<Word> {
    let mut out = Vec::new();
    let (mut a, mut b) = (0i64, 1i64);
    for _ in 0..n {
        out.push(b);
        let t = a + b;
        a = b;
        b = t;
    }
    out
}

/// Computes `gcd(a, b)` by repeated subtraction and prints it.
pub fn gcd(a: Word, b: Word) -> String {
    assert!(a > 0 && b > 0, "gcd needs positive inputs");
    format!(
        "\
; GCD by subtraction on the Itty Bitty Stack Machine
.def A {va}
.def B {vb}
.def OUT {out}

        ldc {a}
        ldc A
        st
        ldc {b}
        ldc B
        st
loop:   ldc A
        ld
        ldc B
        ld
        eq
        bz cont         ; not equal: keep going
        br done
cont:   ldc A
        ld
        ldc B
        ld
        lt
        bz agtb         ; a >= b (and not equal): a := a - b
        ldc B
        ld
        ldc A
        ld
        sub
        ldc B
        st              ; b := b - a
        br loop
agtb:   ldc A
        ld
        ldc B
        ld
        sub
        ldc A
        st              ; a := a - b
        br loop
done:   ldc A
        ld
        ldc OUT
        st
        halt
",
        va = layout::I,
        vb = layout::PRIME,
        out = layout::OUT,
        a = a,
        b = b,
    )
}

/// Bubble-sorts `values` in RAM and prints them ascending — the
/// load/store/swap stress workload (every addressing form, nested loops).
pub fn bubble_sort(values: &[Word]) -> String {
    assert!((2..=64).contains(&values.len()), "sort size out of range");
    assert!(
        values.iter().all(|v| (0..4096).contains(v)),
        "values fit the data path"
    );
    let n = values.len() as Word;
    let mut stores = String::new();
    for (k, v) in values.iter().enumerate() {
        stores.push_str(&format!(
            "        ldc {v}\n        ldc {addr}\n        st\n",
            addr = layout::ARR + k as Word
        ));
    }
    format!(
        "\
; Bubble sort on the Itty Bitty Stack Machine
.def I {i}
.def J {j}
.def ARR {arr}
.def N {n}
.def OUT {out}

{stores}        ldc {nm1}
        ldc I
        st              ; i := N-1
outer:  ldc I
        ld
        bz print        ; i = 0: sorted
        ldc 0
        ldc J
        st              ; j := 0
inner:  ldc J
        ld
        ldc I
        ld
        lt
        bz outerdec     ; j >= i: pass done
        ldc ARR
        ldc J
        ld
        add
        ld              ; a[j]
        ldc ARR
        ldc J
        ld
        add
        ldc 1
        add
        ld              ; a[j+1]
        lt              ; in order?
        bz doswap
        br nextj
doswap: ldc ARR
        ldc J
        ld
        add
        ld              ; a[j]
        ldc ARR
        ldc J
        ld
        add
        ldc 1
        add
        ld              ; a[j+1]
        swap            ; [a_j1 a_j]
        ldc ARR
        ldc J
        ld
        add
        ldc 1
        add
        st              ; a[j+1] := a[j]
        ldc ARR
        ldc J
        ld
        add
        st              ; a[j] := old a[j+1]
nextj:  ldc J
        ld
        ldc 1
        add
        ldc J
        st
        br inner
outerdec: ldc I
        ld
        ldc 1
        sub
        ldc I
        st
        br outer
print:  ldc 0
        ldc J
        st
ploop:  ldc J
        ld
        ldc N
        lt
        bz done
        ldc ARR
        ldc J
        ld
        add
        ld
        ldc OUT
        st
        ldc J
        ld
        ldc 1
        add
        ldc J
        st
        br ploop
done:   halt
",
        i = layout::I,
        j = layout::K,
        arr = layout::ARR,
        n = n,
        nm1 = n - 1,
        out = layout::OUT,
        stores = stores,
    )
}

/// Reference for [`bubble_sort`].
pub fn bubble_sort_expected(values: &[Word]) -> Vec<Word> {
    let mut v = values.to_vec();
    v.sort_unstable();
    v
}

/// Reference for [`gcd`].
pub fn gcd_expected(mut a: Word, mut b: Word) -> Word {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::super::asm::assemble;
    use super::super::iss::{Iss, Stop};
    use super::*;

    fn run_iss(src: &str) -> Iss {
        let mut iss = Iss::new(assemble(src).unwrap_or_else(|e| panic!("{e}")));
        assert_eq!(iss.run(5_000_000), Stop::Halted);
        assert_eq!(iss.depth(), 0, "programs leave a balanced stack");
        iss
    }

    #[test]
    fn sieve_prints_odd_primes() {
        let iss = run_iss(&sieve(20));
        assert_eq!(iss.output_values(), sieve_expected(20));
        assert_eq!(
            sieve_expected(20),
            [3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41]
        );
    }

    #[test]
    fn sieve_sizes_agree_with_reference() {
        for size in [1, 2, 5, 50, 100] {
            let iss = run_iss(&sieve(size));
            assert_eq!(iss.output_values(), sieve_expected(size), "size {size}");
        }
    }

    #[test]
    fn sieve_expected_really_are_primes() {
        for p in sieve_expected(200) {
            assert!(p >= 3);
            for d in 2..p {
                assert!(p % d != 0, "{p} divisible by {d}");
            }
        }
    }

    #[test]
    fn fibonacci_program() {
        let iss = run_iss(&fibonacci(10));
        assert_eq!(iss.output_values(), [1, 1, 2, 3, 5, 8, 13, 21, 34, 55]);
        assert_eq!(iss.output_values(), fibonacci_expected(10));
    }

    #[test]
    fn gcd_program() {
        for (a, b) in [(36, 24), (7, 13), (100, 75), (5, 5), (1, 9)] {
            let iss = run_iss(&gcd(a, b));
            assert_eq!(iss.output_values(), [gcd_expected(a, b)], "gcd({a},{b})");
        }
    }

    #[test]
    fn bubble_sort_sorts() {
        for values in [
            vec![5, 3, 8, 1],
            vec![9, 9, 1, 0, 4, 4, 7],
            vec![2, 1],
            (0..16).rev().collect::<Vec<_>>(),
        ] {
            let iss = run_iss(&bubble_sort(&values));
            assert_eq!(
                iss.output_values(),
                bubble_sort_expected(&values),
                "{values:?}"
            );
        }
    }

    #[test]
    fn sieve_cycle_count_is_thesis_scale() {
        // The thesis ran its sieve for 5545 cycles; ours lands in the same
        // order of magnitude for a comparable sieve size.
        let iss = run_iss(&sieve(20));
        assert!(
            (1_000..20_000).contains(&iss.predicted_cycles),
            "predicted {} cycles",
            iss.predicted_cycles
        );
    }
}
