//! The register-transfer level implementation of the stack machine.
//!
//! This generates the ASIM II specification for the micro-coded datapath —
//! the reproduction's analogue of the thesis's Appendix D "Itty Bitty
//! Stack Machine Simulator Specification". The structure mirrors the
//! original closely: a state register, a control ROM indexed by
//! state-and-opcode (the `rom` selector), an `ir` register that "remembers
//! the value of prog at fetch time", a generic ALU driven by a microcode
//! function field, and a 4096-word RAM whose operation word carries the
//! I/O select bit (`addr.~n, rom.~w` in the original).

use super::isa::Instr;
use super::ucode;
use crate::builder::SpecBuilder;
use rtl_lang::{Spec, Word};

/// Builds the specification for a program.
///
/// `cycles` becomes the `= n` clause (run cycles `0..=n`); pass the ISS's
/// `predicted_cycles` to run exactly to completion.
pub fn spec(program: &[Instr], cycles: Option<Word>) -> Spec {
    spec_with_trace(program, cycles, &[])
}

/// Builds the specification with chosen components traced (`*`).
pub fn spec_with_trace(program: &[Instr], cycles: Option<Word>, traced: &[&str]) -> Spec {
    assert!(
        !program.is_empty(),
        "the program ROM needs at least one word"
    );
    let mut b = SpecBuilder::new("Itty Bitty Stack Machine (asim2 reproduction of Appendix D)");
    if let Some(n) = cycles {
        b.cycles(n);
    }
    for t in traced {
        b.trace(t);
    }

    // --- Registers and memories (update order matters for nothing here,
    // but we keep the thesis's style: state first, program ROM last).
    b.memory("state", "0", "rom.0.2", "1", 1);
    b.memory("pc", "0", "newpc", "1", 1);
    b.memory("sp", "0", "newsp", "1", 1);
    b.memory("a", "0", "ram", "rom.7", 1);
    b.memory("ir", "0", "prog", "rom.20", 1);

    // --- Decode: in Exec the opcode comes straight from the program ROM
    // latch ("prog must be used ... because ir won't be valid until the
    // cycle following the fetch"); later states use the saved ir.
    b.alu("stis1", "12", "state", "1");
    b.selector("curop", "stis1", ["ir.0.3", "prog.0.3"]);
    let rom_words: Vec<String> = ucode::rom().iter().map(|w| w.to_string()).collect();
    b.selector("rom", "state.0.2,curop.0.3", rom_words);

    // --- Program counter.
    b.alu("pcp1", "4", "pc", "1");
    b.alu("tz", "12", "ram", "0");
    b.selector("bztgt", "tz", ["pcp1", "prog.4.16"]);
    b.selector("newpc", "rom.3.4", ["pc", "pcp1", "prog.4.16", "bztgt"]);

    // --- Stack pointer (element count; slot = STACK_BASE + index).
    b.alu("spp1", "4", "sp", "1");
    b.alu("spdec", "5", "sp", "1");
    b.alu("spdec2", "5", "sp", "2");
    b.selector("newsp", "rom.5.6", ["sp", "spp1", "spdec", "spdec2"]);

    // --- RAM address/data muxes and the ALU.
    b.alu("slottop", "4", "sp", "15");
    b.alu("slotnos", "4", "sp", "14");
    b.alu("slotfree", "4", "sp", "16");
    b.selector(
        "addrsel",
        "rom.8.10",
        ["slottop", "slotnos", "slotfree", "ram", "a"],
    );
    b.alu("io", "8", "addrsel.12", "rom.13");
    b.selector("aleft", "rom.18", ["ram", "0"]);
    b.selector("aright", "rom.19", ["a", "ram"]);
    b.alu("alu", "rom.14.17", "aleft", "aright");
    b.selector("wdata", "rom.11.12", ["alu", "prog.4.16", "ram", "a"]);

    // --- Program ROM and the stack/data RAM with memory-mapped output.
    let words: Vec<Word> = program.iter().map(|i| i.encode()).collect();
    b.memory_init("prog", "pc", "0", "0", words);
    b.memory("ram", "addrsel.0.11", "wdata", "io.0,rom.13", 4096);

    b.build()
}

/// The specification rendered as canonical source text.
pub fn spec_source(program: &[Instr], cycles: Option<Word>) -> String {
    rtl_lang::pretty(&spec(program, cycles))
}

#[cfg(test)]
mod tests {
    use super::super::asm::assemble;
    use super::super::iss::{Iss, Stop};
    use super::*;
    use rtl_core::{Design, Session, Until};
    use rtl_interp::{InterpOptions, Interpreter};

    /// Runs a program on both levels and insists the output streams match.
    fn cross_check(asm_src: &str) -> (Iss, String) {
        let program = assemble(asm_src).unwrap_or_else(|e| panic!("{e}"));
        let mut iss = Iss::new(program.clone());
        assert_eq!(iss.run(2_000_000), Stop::Halted, "ISS must halt");

        let spec = spec(&program, Some(iss.predicted_cycles as Word));
        let design = Design::elaborate(&spec).unwrap_or_else(|e| panic!("{e}"));
        let mut session = Session::over(Interpreter::with_options(&design, InterpOptions::quiet()))
            .capture()
            .build();
        session
            .run(Until::Spec)
            .into_result()
            .unwrap_or_else(|e| panic!("RTL failed: {e}"));
        let rtl_output = session.output_text();
        assert_eq!(rtl_output, iss.rendered_output(), "RTL vs ISS output");
        (iss, rtl_output)
    }

    #[test]
    fn push_add_output() {
        let (_, out) = cross_check(".def OUT 4097\nldc 20\nldc 22\nadd\nldc OUT\nst\nhalt");
        assert_eq!(out, "42\n");
    }

    #[test]
    fn every_opcode_once() {
        // nop, ldc, ld, st, dup, swap, add, sub, mul, and, eq, lt, neg,
        // bz (both ways), br, halt.
        let src = "\
.def V 1024
.def OUT 4097
    nop
    ldc 6
    ldc V
    st              ; V := 6
    ldc V
    ld              ; [6]
    ldc 2
    swap            ; [2 6]
    sub             ; [2-6] = -4
    neg             ; [4]
    dup             ; [4 4]
    mul             ; [16]
    ldc 3
    and             ; [0]
    bz taken
    ldc 999
    ldc OUT
    st
taken:
    ldc 5
    ldc 5
    eq              ; [1]
    ldc OUT
    st              ; print 1
    ldc 3
    ldc 7
    lt              ; [1]
    ldc OUT
    st              ; print 1
    br fin
    ldc 888
    ldc OUT
    st
fin:
    halt";
        let (_, out) = cross_check(src);
        assert_eq!(out, "1\n1\n");
    }

    #[test]
    fn ram_addresses_and_char_output() {
        // Store through computed addresses; char output at device 0 (4096).
        let (_, out) =
            cross_check(".def OUT0 4096\nldc 72\nldc OUT0\nst\nldc 105\nldc OUT0\nst\nhalt");
        assert_eq!(out, "H\ni\n");
    }

    #[test]
    fn deep_stack_swap_chain() {
        let (_iss, out) = cross_check(
            ".def OUT 4097\nldc 1\nldc 2\nldc 3\nldc 4\nswap\nadd\nadd\nadd\nldc OUT\nst\nhalt",
        );
        // 4,3 swapped → 3+4=7 → +2=9 → +1=10.
        assert_eq!(out, "10\n");
    }

    #[test]
    fn spec_elaborates_with_no_warnings() {
        let program = assemble("halt").unwrap();
        let spec = spec(&program, Some(10));
        let design = Design::elaborate(&spec).unwrap();
        assert!(design.warnings().is_empty());
        assert_eq!(design.memories().len(), 7);
    }

    #[test]
    fn spec_text_round_trips() {
        let program = assemble("ldc 1\nhalt").unwrap();
        let text = spec_source(&program, Some(5));
        let spec2 = rtl_lang::parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert!(rtl_core::Design::elaborate(&spec2).is_ok());
    }

    #[test]
    fn halt_freezes_the_machine() {
        let program = assemble("ldc 9\nldc 4097\nst\nhalt").unwrap();
        let mut iss = Iss::new(program.clone());
        iss.run(1000);
        // Run the RTL far longer than needed: output must not repeat.
        let spec = spec(&program, Some(1000));
        let design = Design::elaborate(&spec).unwrap();
        let mut session = Session::over(Interpreter::with_options(&design, InterpOptions::quiet()))
            .capture()
            .build();
        assert!(session.run(Until::Spec).completed());
        assert_eq!(session.output_text(), "9\n");
    }
}
