//! A small two-pass assembler for the stack machine.
//!
//! Syntax: one instruction per line; `;` starts a comment; `label:` defines
//! a label (alone or before an instruction); operands are decimal numbers,
//! label names, or `name = value` constants defined with `.def`. The
//! thesis hand-assembled its sieve (Appendix D's program ROM comments show
//! the original mnemonics); this assembler replaces that step.

use super::isa::{Instr, Op};
use rtl_core::Word;
use std::collections::HashMap;
use std::fmt;

/// Assembly errors, with 1-based line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// Assembles source text into instruction words.
///
/// ```
/// use rtl_machines::stack::asm::assemble;
/// let prog = assemble("
///     .def out 4097
///     start:
///         ldc 21      ; the answer, doubled
///         ldc 21
///         add
///         ldc out
///         st          ; print 42
///         halt
/// ").unwrap();
/// assert_eq!(prog.len(), 6);
/// ```
///
/// # Errors
///
/// Unknown mnemonics, missing/extra operands, duplicate or undefined
/// labels, and out-of-range operands are reported with their line.
pub fn assemble(source: &str) -> Result<Vec<Instr>, AsmError> {
    let err = |line: usize, message: String| AsmError { line, message };

    // Pass 1: strip comments, resolve label addresses and `.def` constants.
    #[derive(Debug)]
    struct Line<'a> {
        number: usize,
        op: &'a str,
        operand: Option<&'a str>,
    }

    let mut symbols: HashMap<String, Word> = HashMap::new();
    let mut lines: Vec<Line> = Vec::new();
    let mut pc: Word = 0;

    for (idx, raw) in source.lines().enumerate() {
        let number = idx + 1;
        let mut text = raw;
        if let Some(pos) = text.find(';') {
            text = &text[..pos];
        }
        let mut text = text.trim();
        if text.is_empty() {
            continue;
        }

        // `.def name value`
        if let Some(rest) = text.strip_prefix(".def") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| err(number, ".def needs a name".into()))?;
            let value = parts
                .next()
                .ok_or_else(|| err(number, ".def needs a value".into()))?;
            if parts.next().is_some() {
                return Err(err(number, ".def takes exactly two arguments".into()));
            }
            let value: Word = value
                .parse()
                .map_err(|_| err(number, format!("bad .def value {value:?}")))?;
            if symbols.insert(name.to_string(), value).is_some() {
                return Err(err(number, format!("symbol {name} defined twice")));
            }
            continue;
        }

        // Leading labels (possibly several).
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.split_whitespace().count() != 1 {
                return Err(err(number, format!("bad label {label:?}")));
            }
            if symbols.insert(label.to_string(), pc).is_some() {
                return Err(err(number, format!("symbol {label} defined twice")));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }

        let mut parts = text.split_whitespace();
        let op = parts.next().expect("non-empty text");
        let operand = parts.next();
        if parts.next().is_some() {
            return Err(err(number, format!("trailing junk after {op}")));
        }
        lines.push(Line {
            number,
            op,
            operand,
        });
        pc += 1;
    }

    // Pass 2: encode.
    let mut program = Vec::with_capacity(lines.len());
    for l in lines {
        let op = Op::from_mnemonic(l.op)
            .ok_or_else(|| err(l.number, format!("unknown mnemonic {:?}", l.op)))?;
        let operand = match (op.takes_operand(), l.operand) {
            (false, None) => 0,
            (false, Some(extra)) => {
                return Err(err(
                    l.number,
                    format!("{} takes no operand, got {extra:?}", op.mnemonic()),
                ));
            }
            (true, None) => {
                return Err(err(l.number, format!("{} needs an operand", op.mnemonic())));
            }
            (true, Some(text)) => match text.parse::<Word>() {
                Ok(v) => v,
                Err(_) => *symbols
                    .get(text)
                    .ok_or_else(|| err(l.number, format!("undefined symbol {text:?}")))?,
            },
        };
        if !(0..=0x1FFF).contains(&operand) {
            return Err(err(l.number, format!("operand {operand} outside 0..=8191")));
        }
        program.push(Instr::new(op, operand));
    }
    Ok(program)
}

/// Renders a program as a listing with addresses (for docs and the CLI).
pub fn listing(program: &[Instr]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (addr, i) in program.iter().enumerate() {
        let _ = writeln!(out, "{addr:4}: {i}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_branches() {
        let p = assemble(
            "start: ldc 0\nloop: ldc 1\n add\n dup\n ldc 5\n lt\n bz done\n br loop\ndone: halt",
        )
        .unwrap();
        assert_eq!(p[6], Instr::new(Op::Bz, 8));
        assert_eq!(p[7], Instr::new(Op::Br, 1));
        assert_eq!(p[8].op, Op::Halt);
    }

    #[test]
    fn defs_resolve() {
        let p = assemble(".def x 1024\nldc x\nhalt").unwrap();
        assert_eq!(p[0], Instr::new(Op::Ldc, 1024));
    }

    #[test]
    fn label_alone_on_a_line() {
        let p = assemble("top:\n  br top").unwrap();
        assert_eq!(p[0], Instr::new(Op::Br, 0));
    }

    #[test]
    fn forward_references_work() {
        let p = assemble("br end\nnop\nend: halt").unwrap();
        assert_eq!(p[0], Instr::new(Op::Br, 2));
    }

    #[test]
    fn errors_carry_line_numbers() {
        for (src, needle) in [
            ("bogus", "unknown mnemonic"),
            ("ldc", "needs an operand"),
            ("add 3", "takes no operand"),
            ("ldc nowhere", "undefined symbol"),
            ("a: nop\na: nop", "defined twice"),
            (".def x 1\n.def x 2", "defined twice"),
            ("ldc 9999", "outside"),
            ("add junk extra", "trailing junk"),
        ] {
            let e = assemble(src).unwrap_err();
            assert!(e.message.contains(needle), "{src:?} gave {e}");
        }
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let p = assemble("; nothing\n\n  halt ; stop\n").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn listing_shows_addresses() {
        let p = assemble("ldc 7\nhalt").unwrap();
        let l = listing(&p);
        assert!(l.contains("0: ldc 7"));
        assert!(l.contains("1: halt"));
    }
}
