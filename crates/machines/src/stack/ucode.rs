//! The stack machine's microcode.
//!
//! The thesis's machine drove its datapath from a "decode rom" and a "parm
//! rom" indexed by state and opcode (Appendix D). We do the same with a
//! single 128-word control ROM addressed by `state*16 + opcode`, generated
//! here from a typed table so that every field is named and testable
//! instead of hand-packed hex.

use super::isa::Op;
use rtl_core::Word;

/// Micro-states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum State {
    /// Issue the instruction fetch and the speculative top-of-stack read.
    Fetch = 0,
    /// Decode and execute (single-cycle ops finish here).
    Exec = 1,
    /// Finish a binary operator (NOS is in the RAM latch).
    Binop = 2,
    /// Finish `ld` (the loaded value is in the RAM latch).
    LdFin = 3,
    /// Finish `st` (the value is in the RAM latch, the address in `a`).
    StFin = 4,
    /// Halted: loop forever.
    Halt = 5,
    /// First half of `swap`: write NOS over the top slot.
    Swap1 = 6,
    /// Second half of `swap`: write the saved top over the NOS slot.
    Swap2 = 7,
}

/// Program-counter control field values.
pub mod pc_ctl {
    /// Hold.
    pub const HOLD: i64 = 0;
    /// `pc + 1`.
    pub const INC: i64 = 1;
    /// Load the instruction operand.
    pub const LOAD: i64 = 2;
    /// `if top = 0 then operand else pc + 1` (the `bz` mux).
    pub const BZ: i64 = 3;
}

/// Stack-pointer control field values.
pub mod sp_ctl {
    /// Hold.
    pub const HOLD: i64 = 0;
    /// Push one.
    pub const INC: i64 = 1;
    /// Pop one.
    pub const DEC: i64 = 2;
    /// Pop two.
    pub const DEC2: i64 = 3;
}

/// RAM address-mux field values.
pub mod addr_sel {
    /// Slot of the top of stack (`sp + 15`).
    pub const TOP: i64 = 0;
    /// Slot of the next-on-stack (`sp + 14`).
    pub const NOS: i64 = 1;
    /// First free slot (`sp + 16`).
    pub const FREE: i64 = 2;
    /// The RAM latch itself (`ld` uses the popped value as an address).
    pub const T: i64 = 3;
    /// The `a` register (`st` uses the saved address).
    pub const A: i64 = 4;
}

/// RAM data-mux field values.
pub mod data_sel {
    /// The ALU output.
    pub const ALU: i64 = 0;
    /// The instruction operand.
    pub const OPERAND: i64 = 1;
    /// The RAM latch (pass-through).
    pub const T: i64 = 2;
    /// The `a` register.
    pub const A: i64 = 3;
}

/// One decoded control word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ctrl {
    /// Next micro-state.
    pub next: State,
    /// PC control ([`pc_ctl`]).
    pub pc: Word,
    /// SP control ([`sp_ctl`]).
    pub sp: Word,
    /// Latch the RAM output into `a`.
    pub a_wr: bool,
    /// RAM address mux ([`addr_sel`]).
    pub addr: Word,
    /// RAM data mux ([`data_sel`]).
    pub data: Word,
    /// RAM write enable.
    pub ram_wr: bool,
    /// ALU function (dologic number).
    pub alu_fn: Word,
    /// ALU left operand: `false` = RAM latch, `true` = constant 0.
    pub alu_left_zero: bool,
    /// ALU right operand: `false` = `a`, `true` = RAM latch.
    pub alu_right_ram: bool,
    /// Latch the fetched instruction into `ir`.
    pub ir_wr: bool,
}

impl Ctrl {
    /// The idle fetch word: read the top-of-stack slot, go to `Exec`.
    pub fn fetch() -> Ctrl {
        Ctrl {
            next: State::Exec,
            pc: pc_ctl::HOLD,
            sp: sp_ctl::HOLD,
            a_wr: false,
            addr: addr_sel::TOP,
            data: data_sel::ALU,
            ram_wr: false,
            alu_fn: 0,
            alu_left_zero: false,
            alu_right_ram: false,
            ir_wr: false,
        }
    }

    fn base(next: State) -> Ctrl {
        Ctrl {
            next,
            ..Ctrl::fetch()
        }
    }

    /// Packs the word into the control-ROM bit layout.
    pub fn encode(self) -> Word {
        (self.next as Word)
            | (self.pc << 3)
            | (self.sp << 5)
            | (Word::from(self.a_wr) << 7)
            | (self.addr << 8)
            | (self.data << 11)
            | (Word::from(self.ram_wr) << 13)
            | (self.alu_fn << 14)
            | (Word::from(self.alu_left_zero) << 18)
            | (Word::from(self.alu_right_ram) << 19)
            | (Word::from(self.ir_wr) << 20)
    }
}

/// Bit positions of the control fields, shared with the RTL generator.
pub mod bits {
    /// `next_state` low bit / width 3 → rom.0.2.
    pub const NEXT: (u8, u8) = (0, 2);
    /// `pc_ctl` → rom.3.4.
    pub const PC: (u8, u8) = (3, 4);
    /// `sp_ctl` → rom.5.6.
    pub const SP: (u8, u8) = (5, 6);
    /// `a_wr` → rom.7.
    pub const A_WR: u8 = 7;
    /// `addr_sel` → rom.8.10.
    pub const ADDR: (u8, u8) = (8, 10);
    /// `data_sel` → rom.11.12.
    pub const DATA: (u8, u8) = (11, 12);
    /// `ram_wr` → rom.13.
    pub const RAM_WR: u8 = 13;
    /// `alu_fn` → rom.14.17.
    pub const ALU_FN: (u8, u8) = (14, 17);
    /// `alu_left` → rom.18.
    pub const ALU_LEFT: u8 = 18;
    /// `alu_right` → rom.19.
    pub const ALU_RIGHT: u8 = 19;
    /// `ir_wr` → rom.20.
    pub const IR_WR: u8 = 20;
}

/// The control word for a `(state, opcode)` pair.
pub fn control(state: State, op: Op) -> Ctrl {
    use State::*;
    match state {
        Fetch => Ctrl::fetch(),
        Exec => exec_word(op),
        Binop => {
            let mut c = Ctrl::base(Fetch);
            c.sp = sp_ctl::DEC;
            c.addr = addr_sel::NOS;
            c.data = data_sel::ALU;
            c.ram_wr = true;
            // left = RAM latch (NOS), right = a (saved top).
            c.alu_fn = op.alu_fn().unwrap_or(0);
            c
        }
        LdFin => {
            let mut c = Ctrl::base(Fetch);
            c.addr = addr_sel::TOP;
            c.data = data_sel::T;
            c.ram_wr = true;
            c
        }
        StFin => {
            let mut c = Ctrl::base(Fetch);
            c.sp = sp_ctl::DEC2;
            c.addr = addr_sel::A;
            c.data = data_sel::T;
            c.ram_wr = true;
            c
        }
        Halt => Ctrl::base(Halt),
        Swap1 => {
            let mut c = Ctrl::base(Swap2);
            c.addr = addr_sel::TOP;
            c.data = data_sel::T;
            c.ram_wr = true;
            c
        }
        Swap2 => {
            let mut c = Ctrl::base(Fetch);
            c.addr = addr_sel::NOS;
            c.data = data_sel::A;
            c.ram_wr = true;
            c
        }
    }
}

fn exec_word(op: Op) -> Ctrl {
    use State::*;
    let mut c = Ctrl::base(Fetch);
    c.pc = pc_ctl::INC;
    c.ir_wr = true;
    match op {
        Op::Nop => {}
        Op::Ldc => {
            c.sp = sp_ctl::INC;
            c.addr = addr_sel::FREE;
            c.data = data_sel::OPERAND;
            c.ram_wr = true;
        }
        Op::Ld => {
            c.next = LdFin;
            c.addr = addr_sel::T;
        }
        Op::St => {
            c.next = StFin;
            c.a_wr = true;
            c.addr = addr_sel::NOS;
        }
        Op::Dup => {
            c.sp = sp_ctl::INC;
            c.addr = addr_sel::FREE;
            c.data = data_sel::T;
            c.ram_wr = true;
        }
        Op::Swap => {
            c.next = Swap1;
            c.a_wr = true;
            c.addr = addr_sel::NOS;
        }
        Op::Add | Op::Sub | Op::Mul | Op::And | Op::Eq | Op::Lt => {
            c.next = Binop;
            c.a_wr = true;
            c.addr = addr_sel::NOS;
        }
        Op::Neg => {
            c.addr = addr_sel::TOP;
            c.data = data_sel::ALU;
            c.ram_wr = true;
            c.alu_fn = 5; // 0 - top
            c.alu_left_zero = true;
            c.alu_right_ram = true;
        }
        Op::Bz => {
            c.pc = pc_ctl::BZ;
            c.sp = sp_ctl::DEC;
        }
        Op::Br => {
            c.pc = pc_ctl::LOAD;
        }
        Op::Halt => {
            c.next = Halt;
            c.pc = pc_ctl::HOLD;
        }
    }
    c
}

/// The full 128-word control ROM, indexed by `state*16 + opcode`.
pub fn rom() -> Vec<Word> {
    let states = [
        State::Fetch,
        State::Exec,
        State::Binop,
        State::LdFin,
        State::StFin,
        State::Halt,
        State::Swap1,
        State::Swap2,
    ];
    let mut words = Vec::with_capacity(128);
    for state in states {
        for op in Op::ALL {
            words.push(control(state, op).encode());
        }
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rom_is_128_words_within_31_bits() {
        let rom = rom();
        assert_eq!(rom.len(), 128);
        for (i, w) in rom.iter().enumerate() {
            assert!((0..=rtl_core::WORD_MASK).contains(w), "entry {i} = {w}");
        }
    }

    #[test]
    fn fetch_row_is_uniform() {
        let rom = rom();
        for op in 1..16 {
            assert_eq!(rom[0], rom[op], "fetch ignores the stale opcode");
        }
    }

    #[test]
    fn exec_encodes_per_opcode() {
        let ldc = control(State::Exec, Op::Ldc);
        assert!(ldc.ram_wr);
        assert_eq!(ldc.sp, sp_ctl::INC);
        assert_eq!(ldc.data, data_sel::OPERAND);
        assert!(ldc.ir_wr);

        let halt = control(State::Exec, Op::Halt);
        assert_eq!(halt.next, State::Halt);
        assert_eq!(halt.pc, pc_ctl::HOLD);

        let bz = control(State::Exec, Op::Bz);
        assert_eq!(bz.pc, pc_ctl::BZ);
        assert_eq!(bz.sp, sp_ctl::DEC);
    }

    #[test]
    fn binop_row_carries_the_alu_function() {
        assert_eq!(control(State::Binop, Op::Add).alu_fn, 4);
        assert_eq!(control(State::Binop, Op::Sub).alu_fn, 5);
        assert_eq!(control(State::Binop, Op::Mul).alu_fn, 7);
        assert_eq!(control(State::Binop, Op::And).alu_fn, 8);
        assert_eq!(control(State::Binop, Op::Eq).alu_fn, 12);
        assert_eq!(control(State::Binop, Op::Lt).alu_fn, 13);
    }

    #[test]
    fn encode_packs_fields_disjointly() {
        let c = Ctrl {
            next: State::Swap2,
            pc: pc_ctl::BZ,
            sp: sp_ctl::DEC2,
            a_wr: true,
            addr: addr_sel::A,
            data: data_sel::A,
            ram_wr: true,
            alu_fn: 13,
            alu_left_zero: true,
            alu_right_ram: true,
            ir_wr: true,
        };
        let w = c.encode();
        assert_eq!(w & 0b111, 7);
        assert_eq!((w >> 3) & 0b11, 3);
        assert_eq!((w >> 5) & 0b11, 3);
        assert_eq!((w >> 7) & 1, 1);
        assert_eq!((w >> 8) & 0b111, 4);
        assert_eq!((w >> 11) & 0b11, 3);
        assert_eq!((w >> 13) & 1, 1);
        assert_eq!((w >> 14) & 0b1111, 13);
        assert_eq!((w >> 18) & 1, 1);
        assert_eq!((w >> 19) & 1, 1);
        assert_eq!((w >> 20) & 1, 1);
    }

    #[test]
    fn halt_state_loops() {
        assert_eq!(control(State::Halt, Op::Nop).next, State::Halt);
        assert!(!control(State::Halt, Op::Nop).ram_wr);
    }
}
